"""MetricField: construction, interpolation, Hessian recovery, gradation.

Checks the contracts the adaptation loop leans on: interpolation is
exact at sample points and SPD everywhere, Hessian recovery produces
the analytically expected eigenvalues on a quadratic, and the gradation
limiter bounds size growth along every edge.
"""

import numpy as np
import pytest

from repro.delaunay import refine_pslg
from repro.metric import MetricField, tensor

UNIT_SQUARE = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
SQUARE_SEGS = np.array([[0, 1], [1, 2], [2, 3], [3, 0]])


@pytest.fixture(scope="module")
def square_mesh():
    return refine_pslg(UNIT_SQUARE.copy(), SQUARE_SEGS.copy(),
                       max_area=0.01)


class TestConstruction:
    def test_uniform_sizes(self):
        pts = np.random.default_rng(0).uniform(size=(20, 2))
        f = MetricField.uniform(pts, 0.25)
        hs, hl = f.sizes()
        np.testing.assert_allclose(hs, 0.25)
        np.testing.assert_allclose(hl, 0.25)

    def test_from_sizes_isotropic(self):
        pts = np.zeros((3, 2))
        f = MetricField.from_sizes(pts, np.array([0.1, 0.2, 0.4]))
        hs, _ = f.sizes()
        np.testing.assert_allclose(hs, [0.1, 0.2, 0.4], rtol=1e-12)

    def test_rejects_non_spd(self):
        with pytest.raises(ValueError):
            MetricField(np.zeros((1, 2)),
                        np.array([[1.0, 5.0, 1.0]]))  # det < 0

    def test_from_hessian_quadratic(self, square_mesh):
        """u = x^2 + 10 y^2 has Hessian diag(2, 20) everywhere."""
        x, y = square_mesh.points[:, 0], square_mesh.points[:, 1]
        u = x * x + 10.0 * y * y
        f = MetricField.from_hessian(square_mesh, u, eps=1e-2,
                                     h_min=1e-6, h_max=10.0)
        lam1, lam2, v1 = tensor.eig(f.tensors)
        # Interior vertices see the exact Hessian; boundary recovery is
        # one-sided, so check the interior median.
        interior = ((x > 0.2) & (x < 0.8) & (y > 0.2) & (y < 0.8))
        assert np.median(lam1[interior]) == pytest.approx(2000.0, rel=0.05)
        assert np.median(lam2[interior]) == pytest.approx(200.0, rel=0.05)
        # Strong direction is y.
        assert np.median(np.abs(v1[interior, 1])) > 0.99

    def test_from_hessian_clamps_spacing(self, square_mesh):
        u = np.zeros(square_mesh.n_points)  # zero Hessian -> h_max clamp
        f = MetricField.from_hessian(square_mesh, u, eps=1e-2,
                                     h_min=1e-3, h_max=0.5)
        hs, hl = f.sizes()
        np.testing.assert_allclose(hs, 0.5, rtol=1e-9)
        np.testing.assert_allclose(hl, 0.5, rtol=1e-9)


class TestInterpolation:
    def test_exact_at_samples(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(size=(40, 2))
        f = MetricField.from_sizes(pts, rng.uniform(0.05, 0.5, 40))
        out = f.interpolate(pts)
        np.testing.assert_array_equal(out, f.tensors)

    def test_interpolated_tensors_spd(self):
        rng = np.random.default_rng(2)
        pts = rng.uniform(size=(50, 2))
        f = MetricField.from_sizes(pts, rng.uniform(0.05, 0.5, 50))
        q = rng.uniform(-0.2, 1.2, size=(200, 2))
        out = f.interpolate(q)
        assert np.all(out[:, 0] > 0)
        assert np.all(out[:, 0] * out[:, 2] - out[:, 1] ** 2 > 0)

    def test_interpolation_between_two_sizes_geometric(self):
        """Log-Euclidean blend of isotropic h1, h2 at the midpoint is
        the geometric mean (up to IDW weighting symmetry)."""
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        f = MetricField.from_sizes(pts, np.array([0.1, 0.4]))
        out = f.interpolate(np.array([[0.5, 0.0]]), k=2)
        h = 1.0 / np.sqrt(out[0, 0])
        assert h == pytest.approx(np.sqrt(0.1 * 0.4), rel=1e-6)


class TestEdgeLengthsAndGradation:
    def test_alauzet_length_exact(self):
        # Edge of Euclidean length 1 between h=0.1 and h=0.2:
        # L = (1/l0) is replaced by the graded formula
        # L = l_lo (r - 1) / ln r with l_lo = 1/0.2... check against
        # direct quadrature of 1/h(t) along the edge.
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        f = MetricField.from_sizes(pts, np.array([0.1, 0.2]))
        L = f.edge_lengths(np.array([[0, 1]]))[0]
        l0, l1 = 10.0, 5.0  # metric lengths at the endpoints
        r = l1 / l0
        assert L == pytest.approx(l0 * (r - 1.0) / np.log(r), rel=1e-12)

    def test_gradation_limit_bounds_growth(self, square_mesh):
        rng = np.random.default_rng(3)
        h = np.where(
            np.hypot(square_mesh.points[:, 0] - 0.5,
                     square_mesh.points[:, 1] - 0.5) < 0.1,
            0.01, 0.5)
        f = MetricField.from_sizes(square_mesh.points, h)
        t = square_mesh.triangles
        edges = np.unique(np.sort(np.concatenate(
            [t[:, [0, 1]], t[:, [1, 2]], t[:, [2, 0]]]), axis=1), axis=0)
        g = f.limit_gradation(edges, grading=0.2)
        hs, _ = g.sizes()
        lengths = np.linalg.norm(
            square_mesh.points[edges[:, 1]]
            - square_mesh.points[edges[:, 0]], axis=1)
        dh = np.abs(hs[edges[:, 1]] - hs[edges[:, 0]])
        assert np.all(dh <= 0.2 * lengths + 1e-9)

    def test_gradation_only_refines(self, square_mesh):
        h = np.where(square_mesh.points[:, 0] < 0.5, 0.01, 0.5)
        f = MetricField.from_sizes(square_mesh.points, h)
        t = square_mesh.triangles
        edges = np.unique(np.sort(np.concatenate(
            [t[:, [0, 1]], t[:, [1, 2]], t[:, [2, 0]]]), axis=1), axis=0)
        g = f.limit_gradation(edges, grading=0.3)
        hs_new, _ = g.sizes()
        hs_old, _ = f.sizes()
        assert np.all(hs_new <= hs_old + 1e-12)


class TestIntersectField:
    def test_pointwise_finer(self):
        rng = np.random.default_rng(4)
        pts = rng.uniform(size=(30, 2))
        f1 = MetricField.from_sizes(pts, rng.uniform(0.05, 0.5, 30))
        f2 = MetricField.from_sizes(pts, rng.uniform(0.05, 0.5, 30))
        fi = f1.intersect(f2)
        hs_i, _ = fi.sizes()
        hs_1, _ = f1.sizes()
        hs_2, _ = f2.sizes()
        assert np.all(hs_i <= np.minimum(hs_1, hs_2) * (1 + 1e-6))
