"""SPD tensor algebra: eigen-structure, log/exp calculus, intersection.

The compact ``[m11, m12, m22]`` representation and the closed-form 2x2
eigendecomposition are the foundation every metric consumer (refinement
criterion, adaptation operations, smoothing weights) builds on, so the
properties are checked against ``numpy.linalg`` and against the
defining algebraic identities.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metric import tensor


def random_spd(rng, n, *, lam_lo=1e-2, lam_hi=1e4):
    """Random SPD batch with controlled eigenvalue range."""
    lam1 = rng.uniform(lam_lo, lam_hi, n)
    lam2 = rng.uniform(lam_lo, lam_hi, n)
    theta = rng.uniform(0.0, np.pi, n)
    v1 = np.column_stack([np.cos(theta), np.sin(theta)])
    return tensor.from_eigs(np.maximum(lam1, lam2),
                            np.minimum(lam1, lam2), v1)


class TestEig:
    def test_matches_numpy_eigvalsh(self):
        rng = np.random.default_rng(7)
        m = random_spd(rng, 200)
        lam1, lam2, _ = tensor.eig(m)
        ref = np.linalg.eigvalsh(tensor.as_full(m))
        np.testing.assert_allclose(lam1, ref[:, 1], rtol=1e-10)
        np.testing.assert_allclose(lam2, ref[:, 0], rtol=1e-10)

    def test_eigenvector_satisfies_definition(self):
        rng = np.random.default_rng(8)
        m = random_spd(rng, 100)
        lam1, _, v1 = tensor.eig(m)
        full = tensor.as_full(m)
        mv = np.einsum("nij,nj->ni", full, v1)
        np.testing.assert_allclose(mv, lam1[:, None] * v1,
                                   rtol=1e-8, atol=1e-8)

    def test_isotropic_tensor_gets_unit_vector(self):
        m = tensor.identity(3) * 4.0
        lam1, lam2, v1 = tensor.eig(m)
        np.testing.assert_allclose(lam1, 4.0)
        np.testing.assert_allclose(lam2, 4.0)
        np.testing.assert_allclose(np.linalg.norm(v1, axis=1), 1.0)

    def test_from_eigs_roundtrip(self):
        rng = np.random.default_rng(9)
        m = random_spd(rng, 150)
        lam1, lam2, v1 = tensor.eig(m)
        np.testing.assert_allclose(tensor.from_eigs(lam1, lam2, v1), m,
                                   rtol=1e-9, atol=1e-12)


class TestLogExp:
    def test_roundtrip(self):
        rng = np.random.default_rng(10)
        m = random_spd(rng, 120)
        np.testing.assert_allclose(tensor.exp(tensor.log(m)), m,
                                   rtol=1e-8)

    def test_log_of_identity_is_zero(self):
        np.testing.assert_allclose(tensor.log(tensor.identity(4)), 0.0,
                                   atol=1e-14)

    def test_sqrtm_squares_back(self):
        rng = np.random.default_rng(11)
        m = random_spd(rng, 80)
        r = tensor.sqrtm(m)
        rf = tensor.as_full(r)
        np.testing.assert_allclose(np.einsum("nij,njk->nik", rf, rf),
                                   tensor.as_full(m), rtol=1e-8)


class TestQuadForm:
    def test_matches_explicit(self):
        rng = np.random.default_rng(12)
        m = random_spd(rng, 60)
        e = rng.normal(size=(60, 2))
        full = tensor.as_full(m)
        ref = np.einsum("ni,nij,nj->n", e, full, e)
        np.testing.assert_allclose(tensor.quad_form(m, e), ref,
                                   rtol=1e-12)


class TestIntersect:
    def test_result_finer_than_both(self):
        """h(intersection) <= h(either input) along every direction."""
        rng = np.random.default_rng(13)
        m1 = random_spd(rng, 100)
        m2 = random_spd(rng, 100)
        mi = tensor.intersect(m1, m2)
        theta = np.linspace(0.0, np.pi, 24, endpoint=False)
        dirs = np.column_stack([np.cos(theta), np.sin(theta)])
        for d in dirs:
            e = np.broadcast_to(d, (100, 2))
            qi = tensor.quad_form(mi, e)
            q1 = tensor.quad_form(m1, e)
            q2 = tensor.quad_form(m2, e)
            assert np.all(qi >= np.maximum(q1, q2) * (1.0 - 1e-5))

    def test_self_intersection_is_identity_map(self):
        rng = np.random.default_rng(14)
        m = random_spd(rng, 100)
        np.testing.assert_allclose(tensor.intersect(m, m), m, rtol=1e-5)

    def test_proportional_pair_picks_finer(self):
        rng = np.random.default_rng(15)
        m = random_spd(rng, 50)
        np.testing.assert_allclose(tensor.intersect(m, 4.0 * m), 4.0 * m,
                                   rtol=1e-5)
        np.testing.assert_allclose(tensor.intersect(4.0 * m, m), 4.0 * m,
                                   rtol=1e-5)

    def test_commutes_in_spirit(self):
        """intersect(a,b) and intersect(b,a) agree (same max envelope)."""
        rng = np.random.default_rng(16)
        m1 = random_spd(rng, 60)
        m2 = random_spd(rng, 60)
        a = tensor.intersect(m1, m2)
        b = tensor.intersect(m2, m1)
        np.testing.assert_allclose(tensor.det(a), tensor.det(b), rtol=1e-4)


@given(
    lam1=st.floats(1e-2, 1e4),
    ratio=st.floats(1.0, 1e3),
    theta=st.floats(0.0, np.pi),
)
@settings(max_examples=60, deadline=None)
def test_eig_property_random(lam1, ratio, theta):
    """eig() recovers the eigenvalues that built the tensor."""
    lam2 = lam1 / ratio
    v1 = np.array([[np.cos(theta), np.sin(theta)]])
    m = tensor.from_eigs(np.array([lam1]), np.array([lam2]), v1)
    out1, out2, _ = tensor.eig(m)
    assert out1[0] == pytest.approx(lam1, rel=1e-6)
    assert out2[0] == pytest.approx(lam2, rel=1e-6)
