"""Tests for mesh/PSLG I/O round trips."""

import numpy as np
import pytest

from repro.delaunay.kernel import delaunay_mesh
from repro.geometry.airfoils import naca0012
from repro.geometry.pslg import PSLG
from repro.io.meshio import (
    read_mesh_ascii,
    read_mesh_npz,
    read_node,
    read_poly,
    write_mesh_ascii,
    write_mesh_npz,
    write_node,
    write_poly,
)


@pytest.fixture
def mesh():
    rng = np.random.default_rng(0)
    pts = rng.uniform(-3, 7, size=(40, 2))
    return delaunay_mesh(pts)


class TestAsciiRoundTrip:
    def test_node_exact(self, tmp_path, mesh):
        p = tmp_path / "m.node"
        write_node(p, mesh.points)
        got = read_node(p)
        # repr-based writing: bit-exact round trip.
        np.testing.assert_array_equal(got, mesh.points)

    def test_mesh_round_trip(self, tmp_path, mesh):
        node, ele = write_mesh_ascii(tmp_path / "m", mesh)
        assert node.exists() and ele.exists()
        got = read_mesh_ascii(tmp_path / "m")
        np.testing.assert_array_equal(got.points, mesh.points)
        np.testing.assert_array_equal(got.triangles, mesh.triangles)

    def test_read_truncated_raises(self, tmp_path):
        p = tmp_path / "bad.node"
        p.write_text("5 2 0 0\n1 0.0 0.0\n")
        with pytest.raises(ValueError):
            read_node(p)

    def test_read_3d_rejected(self, tmp_path):
        p = tmp_path / "bad.node"
        p.write_text("1 3 0 0\n1 0 0 0\n")
        with pytest.raises(ValueError):
            read_node(p)


class TestNpzRoundTrip:
    def test_round_trip(self, tmp_path, mesh):
        p = tmp_path / "m.npz"
        write_mesh_npz(p, mesh)
        got = read_mesh_npz(p)
        np.testing.assert_array_equal(got.points, mesh.points)
        np.testing.assert_array_equal(got.triangles, mesh.triangles)

    def test_segments_preserved(self, tmp_path, mesh):
        from repro.delaunay.mesh import TriMesh

        m = TriMesh(mesh.points, mesh.triangles,
                    segments=np.array([(0, 1), (2, 3)], dtype=np.int32))
        p = tmp_path / "m.npz"
        write_mesh_npz(p, m)
        got = read_mesh_npz(p)
        np.testing.assert_array_equal(got.segments, m.segments)


class TestPoly:
    def test_poly_round_trip(self, tmp_path):
        pslg = PSLG.from_loops([naca0012(31),
                                naca0012(21) * 0.2 + np.array([3.0, 0.0])])
        holes = np.array([(0.5, 0.0), (3.1, 0.0)])
        p = tmp_path / "a.poly"
        write_poly(p, pslg, holes)
        got, got_holes = read_poly(p)
        assert got.n_points == pslg.n_points
        np.testing.assert_array_equal(np.sort(got.points, axis=0),
                                      np.sort(pslg.points, axis=0))
        np.testing.assert_array_equal(got_holes, holes)
        assert len(got.loops) == 2

    def test_poly_no_holes(self, tmp_path):
        pslg = PSLG.from_loops([naca0012(21)])
        p = tmp_path / "b.poly"
        write_poly(p, pslg)
        got, holes = read_poly(p)
        assert len(holes) == 0
        assert len(got.loops) == 1

    def test_poly_markers_round_trip(self, tmp_path):
        pslg = PSLG.from_loops([naca0012(21)])
        segs = pslg.all_segments()
        markers = np.arange(100, 100 + len(segs))
        p = tmp_path / "c.poly"
        write_poly(p, pslg, markers=markers)
        got, _holes, got_markers = read_poly(p, with_markers=True)
        # Markers follow the reconstructed segment order: match per edge.
        want = {(int(u), int(v)): int(m)
                for (u, v), m in zip(segs, markers)}
        for (u, v), m in zip(got.all_segments(), got_markers):
            assert want[(int(u), int(v))] == int(m)
        # Marker-less files report markers=None but still parse.
        write_poly(tmp_path / "d.poly", pslg)
        _, _, none_markers = read_poly(tmp_path / "d.poly",
                                       with_markers=True)
        assert none_markers is None

    def test_poly_marker_length_mismatch(self, tmp_path):
        pslg = PSLG.from_loops([naca0012(21)])
        with pytest.raises(ValueError, match="markers"):
            write_poly(tmp_path / "e.poly", pslg, markers=[1, 2, 3])

    def test_poly_malformed(self, tmp_path):
        p = tmp_path / "bad.poly"
        p.write_text("3 3 0 0\n")
        with pytest.raises(ValueError, match="2D"):
            read_poly(p)
        p.write_text("2 2 0 0\n1 0.0 0.0\n")
        with pytest.raises(ValueError, match="truncated"):
            read_poly(p)
        p.write_text("1 2 0 0\n1 0.0 0.0\n2 0\n1 1 1\n")
        with pytest.raises(ValueError, match="truncated"):
            read_poly(p)


class TestCLI:
    def test_naca_end_to_end(self, tmp_path):
        from repro.cli import main

        rc = main([
            "--naca", "0012", "--surface-points", "41",
            "--first-spacing", "5e-3", "--growth-ratio", "1.5",
            "--max-layers", "8", "--farfield-chords", "10",
            "--subdomains", "8",
            "-o", str(tmp_path / "out" / "naca"),
            "--format", "both", "--stats-json",
        ])
        assert rc == 0
        assert (tmp_path / "out" / "naca.node").exists()
        assert (tmp_path / "out" / "naca.ele").exists()
        assert (tmp_path / "out" / "naca.npz").exists()
        got = read_mesh_ascii(tmp_path / "out" / "naca")
        assert got.is_conforming()
        assert got.n_triangles > 500

    def test_requires_geometry(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["-o", "x"])


class TestVTK:
    def test_write_vtk_structure(self, tmp_path, mesh):
        from repro.io.meshio import write_vtk

        p = write_vtk(tmp_path / "m.vtk", mesh,
                      cell_data={"area": mesh.areas()},
                      point_data={"x": mesh.points[:, 0]})
        text = p.read_text()
        assert "DATASET UNSTRUCTURED_GRID" in text
        assert f"POINTS {mesh.n_points} double" in text
        assert f"CELLS {mesh.n_triangles} {4 * mesh.n_triangles}" in text
        assert "SCALARS area double 1" in text
        assert "SCALARS x double 1" in text
        # Every cell is a VTK_TRIANGLE.
        assert text.count("\n5\n") + text.count("\n5\n") >= 1

    def test_write_vtk_bad_field_length(self, tmp_path, mesh):
        from repro.io.meshio import write_vtk

        with pytest.raises(ValueError):
            write_vtk(tmp_path / "m.vtk", mesh,
                      cell_data={"bad": np.zeros(3)})

    def test_vtk_round_trip_with_data(self, tmp_path, mesh):
        from repro.io.meshio import read_vtk, write_vtk

        cp = np.linspace(-1.0, 1.0, mesh.n_points)
        area = mesh.areas()
        p = write_vtk(tmp_path / "m.vtk", mesh,
                      cell_data={"area": area}, point_data={"cp": cp})
        got, cell_data, point_data = read_vtk(p)
        np.testing.assert_array_equal(got.points, mesh.points)
        np.testing.assert_array_equal(got.triangles, mesh.triangles)
        np.testing.assert_array_equal(cell_data["area"], area)
        np.testing.assert_array_equal(point_data["cp"], cp)

    def test_vtk_round_trip_no_data(self, tmp_path, mesh):
        from repro.io.meshio import read_vtk, write_vtk

        p = write_vtk(tmp_path / "m.vtk", mesh)
        got, cell_data, point_data = read_vtk(p)
        np.testing.assert_array_equal(got.triangles, mesh.triangles)
        assert cell_data == {} and point_data == {}

    def test_read_vtk_malformed(self, tmp_path):
        from repro.io.meshio import read_vtk

        p = tmp_path / "bad.vtk"
        p.write_text("not a vtk file\n")
        with pytest.raises(ValueError, match="magic"):
            read_vtk(p)
        p.write_text("# vtk DataFile Version 3.0\nt\nBINARY\n"
                     "DATASET UNSTRUCTURED_GRID\n")
        with pytest.raises(ValueError, match="ASCII"):
            read_vtk(p)
        p.write_text("# vtk DataFile Version 3.0\nt\nASCII\n"
                     "DATASET POLYDATA\n")
        with pytest.raises(ValueError, match="UNSTRUCTURED_GRID"):
            read_vtk(p)
        p.write_text("# vtk DataFile Version 3.0\nt\nASCII\n"
                     "DATASET UNSTRUCTURED_GRID\nPOINTS 2 double\n"
                     "0.0 0.0 0.0\n")
        with pytest.raises(ValueError, match="truncated"):
            read_vtk(p)
        p.write_text("# vtk DataFile Version 3.0\nt\nASCII\n"
                     "DATASET UNSTRUCTURED_GRID\nPOINTS 3 double\n"
                     "0 0 0\n1 0 0\n0 1 0\n"
                     "CELLS 1 5\n4 0 1 2 2\n")
        with pytest.raises(ValueError, match="triangles"):
            read_vtk(p)


class TestCLIExtensions:
    @pytest.mark.parametrize("geo", [
        ["--joukowski"], ["--flat-plate"], ["--cylinder"],
        ["--naca5", "23012"],
    ])
    def test_geometry_flags(self, tmp_path, geo):
        from repro.cli import main

        rc = main(geo + [
            "--surface-points", "41", "--first-spacing", "5e-3",
            "--growth-ratio", "1.5", "--max-layers", "6",
            "--farfield-chords", "6", "--subdomains", "6",
            "-o", str(tmp_path / "m"), "--format", "npz",
        ])
        assert rc == 0
        got = read_mesh_npz(tmp_path / "m.npz")
        assert got.is_conforming()

    def test_vtk_and_report_and_resample(self, tmp_path, capsys):
        from repro.cli import main

        rc = main([
            "--naca", "0012", "--surface-points", "61", "--resample", "51",
            "--first-spacing", "5e-3", "--growth-ratio", "1.5",
            "--max-layers", "6", "--farfield-chords", "6",
            "--subdomains", "6", "--bl-mode", "structured",
            "-o", str(tmp_path / "m"), "--format", "vtk", "--report",
        ])
        assert rc == 0
        assert (tmp_path / "m.vtk").exists()
        out = capsys.readouterr().out
        assert "quality:" in out
