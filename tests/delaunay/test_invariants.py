"""Invariant harness for the overhauled Delaunay kernel.

Every optimisation in the fused fast path (inlined filtered predicates,
certified walks, batched cavity expansion, grid-seeded location) must be
*behaviour-preserving*.  This module checks the mathematical invariants
with exact arithmetic:

* **Global Delaunay property** — no vertex strictly inside any real
  triangle's circumcircle, via the exact ``incircle`` predicate.  Checked
  exhaustively (all vertex/triangle pairs) on small clouds and via the
  Delaunay lemma (every non-constrained internal edge locally Delaunay,
  which implies the global property) on larger ones.
* **Positive orientation** of every real triangle (exact ``orient2d``).
* **Locked-edge preservation** — every constrained segment is an edge of
  the final triangulation.
* **Structural integrity** — the kernel's own adjacency audit.

The same harness runs over uniform-random clouds, degenerate (cocircular
/ collinear-heavy) inputs, and the fuzz PSLG corpus; a differential test
pins the fast path to the scalar reference path triangle-for-triangle.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro.delaunay.constrained import insert_segment, triangulate_pslg
from repro.delaunay.kernel import Triangulation, triangulate
from repro.delaunay.refine import Refiner
from repro.geometry.predicates import incircle, orient2d

from .test_fuzz_pslg import star_polygon


# ----------------------------------------------------------------------
# The harness
# ----------------------------------------------------------------------
def real_triangles(tri: Triangulation):
    return [t for t in tri.live_triangles() if not tri.is_ghost(t)]


def assert_positive_orientation(tri: Triangulation) -> None:
    for t in real_triangles(tri):
        a, b, c = tri.tri_v[t]
        assert orient2d(tri.pts[a], tri.pts[b], tri.pts[c]) > 0, (
            f"triangle {t} not positively oriented"
        )


def assert_locally_delaunay(tri: Triangulation) -> None:
    """Every internal non-constrained edge is locally Delaunay (exact).

    By the Delaunay lemma this implies the global (constrained) Delaunay
    property; cocircular configurations (incircle == 0) are legal.
    """
    pts = tri.pts
    constraints = tri.constraints
    for t in real_triangles(tri):
        tv = tri.tri_v[t]
        tn = tri.tri_n[t]
        for k in range(3):
            nb = tn[k]
            if nb < t or tri.is_ghost(nb):
                continue  # each internal edge once; hull edges skipped
            u, v = tv[k - 2], tv[k - 1]
            if ((u, v) if u < v else (v, u)) in constraints:
                continue
            nv = tri.tri_v[nb]
            apex = nv[0] + nv[1] + nv[2] - u - v
            assert incircle(pts[tv[0]], pts[tv[1]], pts[tv[2]],
                            pts[apex]) <= 0, (
                f"edge ({u},{v}) of triangle {t} not locally Delaunay"
            )


def assert_globally_delaunay(tri: Triangulation) -> None:
    """Exhaustive check: no vertex strictly inside any circumcircle.

    O(n_vertices * n_triangles) exact tests — small inputs only.
    """
    pts = tri.pts
    for t in real_triangles(tri):
        a, b, c = tri.tri_v[t]
        pa, pb, pc = pts[a], pts[b], pts[c]
        for v in range(len(pts)):
            if v == a or v == b or v == c:
                continue
            assert incircle(pa, pb, pc, pts[v]) <= 0, (
                f"vertex {v} strictly inside circumcircle of triangle {t}"
            )


def assert_constraints_preserved(tri: Triangulation) -> None:
    for u, v in tri.constraints:
        assert tri.has_edge(u, v), f"locked edge ({u},{v}) missing"


def assert_invariants(tri: Triangulation, *, exhaustive: bool = False
                      ) -> None:
    tri.check_integrity()
    assert_positive_orientation(tri)
    assert_locally_delaunay(tri)
    assert_constraints_preserved(tri)
    if exhaustive:
        assert_globally_delaunay(tri)


def canonical_triangles(tri: Triangulation):
    """Rotation-normalised real triangle set, keyed by *coordinates*.

    Kernel vertex ids are an insertion-schedule artifact — the batch
    insertion strategy numbers points in acceptance order, not BRIO
    order — so cross-kernel comparisons must canonicalise through the
    geometry (unique for the duplicate-free clouds used here)."""
    coords = tri._arr.pts
    out = set()
    for t in real_triangles(tri):
        keys = sorted((float(coords[v, 0]), float(coords[v, 1]))
                      for v in tri.tri_v[t])
        out.add(tuple(keys))
    return out


# ----------------------------------------------------------------------
# Uniform-random clouds
# ----------------------------------------------------------------------
class TestRandomClouds:
    @pytest.mark.parametrize("n,seed", [(24, 0), (64, 1), (64, 2)])
    def test_small_clouds_exhaustive(self, n, seed):
        pts = np.random.default_rng(seed).random((n, 2))
        assert_invariants(triangulate(pts), exhaustive=True)

    @pytest.mark.parametrize("n,seed", [(300, 3), (900, 4)])
    def test_larger_clouds(self, n, seed):
        pts = np.random.default_rng(seed).random((n, 2))
        assert_invariants(triangulate(pts))

    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_fast_matches_reference(self, seed):
        """Differential: fast-path triangulation == scalar-reference
        triangulation as a set of triangles (same kernel vertex ids)."""
        pts = np.random.default_rng(seed).random((250, 2))
        fast = triangulate(pts, fast_predicates=True)
        ref = triangulate(pts, fast_predicates=False)
        assert canonical_triangles(fast) == canonical_triangles(ref)

    def test_clustered_and_duplicate_points(self):
        rng = np.random.default_rng(8)
        base = rng.random((60, 2))
        pts = np.vstack([base, base[:20] + 1e-13, base[:10]])
        tri = triangulate(pts)
        assert_invariants(tri, exhaustive=True)


# ----------------------------------------------------------------------
# Degenerate inputs: exact-predicate escalation paths
# ----------------------------------------------------------------------
class TestDegenerateInputs:
    def test_cocircular_ring_with_center(self):
        """All ring points cocircular: inserting the centre carves a
        cavity covering the whole disk, exercising the batched cavity
        expansion and the exact incircle ties."""
        n = 40
        ang = 2 * math.pi * np.arange(n) / n
        ring = np.column_stack([np.cos(ang), np.sin(ang)])
        pts = np.vstack([ring, [[0.0, 0.0]]])
        tri = Triangulation()
        for x, y in pts[:-1]:
            tri.insert_point(x, y)
        tri.insert_point(0.0, 0.0)
        assert tri.stat_batch_entries > 0, "batched expansion never used"
        assert_invariants(tri, exhaustive=True)

    def test_grid_points(self):
        """Integer lattice: every 2x2 cell is cocircular."""
        xs, ys = np.meshgrid(np.arange(9.0), np.arange(9.0))
        pts = np.column_stack([xs.ravel(), ys.ravel()])
        assert_invariants(triangulate(pts), exhaustive=True)

    def test_collinear_prefix_then_cloud(self):
        pts = np.array([[float(i), 0.0] for i in range(12)]
                       + [[0.3, 1.0], [5.5, -2.0], [7.1, 0.7]])
        assert_invariants(triangulate(pts), exhaustive=True)


# ----------------------------------------------------------------------
# Constrained triangulations + refinement (fuzz PSLG corpus)
# ----------------------------------------------------------------------
class TestConstrainedInvariants:
    @given(poly=star_polygon())
    @settings(max_examples=25, deadline=None)
    def test_cdt_invariants(self, poly):
        n = len(poly)
        segs = np.array([(i, (i + 1) % n) for i in range(n)])
        tri = triangulate_pslg(poly, segs)
        assert len(tri.constraints) >= n
        assert_invariants(tri)

    @given(poly=star_polygon(min_v=5, max_v=10))
    @settings(max_examples=10, deadline=None)
    def test_refined_cdt_invariants(self, poly):
        n = len(poly)
        segs = np.array([(i, (i + 1) % n) for i in range(n)])
        tri = triangulate_pslg(poly, segs)
        span = float(np.ptp(poly, axis=0).max())
        refiner = Refiner(tri, area_fn=lambda x, y: (span / 6) ** 2,
                          min_edge_floor=span * 1e-3)
        refiner.refine()
        assert_invariants(tri)

    def test_locked_edges_survive_nearby_insertions(self):
        square = np.array([[0.0, 0.0], [4.0, 0.0], [4.0, 4.0], [0.0, 4.0],
                           [2.0, 1.0], [2.0, 3.0]])
        tri = Triangulation()
        ids = [tri.insert_point(x, y) for x, y in square]
        insert_segment(tri, ids[4], ids[5])
        tri.mark_constraint(ids[4], ids[5])
        rng = np.random.default_rng(11)
        for x, y in rng.uniform(0.05, 3.95, size=(80, 2)):
            # Skip points exactly on the locked segment's line.
            if x == 2.0:
                continue
            tri.insert_point(x, y)
        assert_invariants(tri)


# ----------------------------------------------------------------------
# Determinism (satellite: seeded RNG threading)
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_identical_runs_byte_identical(self):
        pts = np.random.default_rng(13).random((500, 2))
        m1 = triangulate(pts).to_mesh()
        m2 = triangulate(pts).to_mesh()
        assert m1.points.tobytes() == m2.points.tobytes()
        assert m1.triangles.tobytes() == m2.triangles.tobytes()

    def test_seed_controls_insertion_order(self):
        pts = np.random.default_rng(14).random((200, 2))
        a = triangulate(pts, seed=1)
        b = triangulate(pts, seed=1)
        assert [tuple(v) for v in a.tri_v if v] == \
               [tuple(v) for v in b.tri_v if v]

    def test_insert_point_stream_deterministic(self):
        pts = np.random.default_rng(15).random((300, 2)).tolist()

        def build():
            tri = Triangulation(seed=99)
            for x, y in pts:
                tri.insert_point(x, y)
            return tri

        t1, t2 = build(), build()
        assert t1.pts == t2.pts
        assert [v for v in t1.tri_v if v] == [v for v in t2.tri_v if v]
