"""Tests for the incremental Bowyer-Watson kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delaunay.kernel import GHOST, Triangulation, TriangulationError, triangulate
from repro.geometry.primitives import polygon_area


def hull_area(points):
    from repro.delaunay.hull import convex_hull

    h = convex_hull(points)
    if len(h) < 3:
        return 0.0
    return abs(polygon_area(points[h]))


class TestBootstrap:
    def test_single_and_pair(self):
        t = Triangulation()
        t.insert_point(0, 0)
        t.insert_point(1, 0)
        assert t.n_live_triangles == 0

    def test_first_triangle(self):
        t = Triangulation()
        for p in [(0, 0), (1, 0), (0, 1)]:
            t.insert_point(*p)
        assert t.n_live_triangles == 4  # 1 real + 3 ghosts
        t.check_integrity()
        mesh = t.to_mesh()
        assert mesh.n_triangles == 1

    def test_collinear_prefix(self):
        t = Triangulation()
        for p in [(0, 0), (1, 0), (2, 0), (3, 0), (1, 1)]:
            t.insert_point(*p)
        t.check_integrity()
        mesh = t.to_mesh()
        assert mesh.n_points == 5
        assert mesh.is_conforming()
        assert mesh.delaunay_violations(respect_segments=False) == 0

    def test_all_collinear_no_triangles(self):
        t = Triangulation()
        for x in range(5):
            t.insert_point(x, 2 * x)
        assert t.n_live_triangles == 0

    def test_duplicate_points(self):
        t = Triangulation()
        a = t.insert_point(0, 0)
        b = t.insert_point(1, 0)
        c = t.insert_point(0, 1)
        assert t.insert_point(0, 0) == a
        assert t.insert_point(1, 0) == b
        assert t.insert_point(0, 1) == c
        with pytest.raises(TriangulationError):
            t.insert_point(0, 0, on_duplicate="raise")


class TestInsertion:
    def test_interior_point(self):
        t = Triangulation()
        for p in [(0, 0), (4, 0), (0, 4), (1, 1)]:
            t.insert_point(*p)
        t.check_integrity()
        assert t.to_mesh().n_triangles == 3

    def test_point_on_edge(self):
        t = Triangulation()
        for p in [(0, 0), (4, 0), (0, 4)]:
            t.insert_point(*p)
        t.insert_point(2, 0)  # exactly on hull edge
        t.check_integrity()
        mesh = t.to_mesh()
        assert mesh.n_triangles == 2
        assert mesh.delaunay_violations(respect_segments=False) == 0

    def test_point_on_interior_edge(self):
        t = Triangulation()
        for p in [(0, 0), (4, 0), (0, 4), (4, 4)]:
            t.insert_point(*p)
        # (2, 2) lies exactly on the diagonal shared edge.
        t.insert_point(2, 2)
        t.check_integrity()
        mesh = t.to_mesh()
        assert mesh.n_triangles == 4
        assert mesh.delaunay_violations(respect_segments=False) == 0

    def test_outside_hull(self):
        t = Triangulation()
        for p in [(0, 0), (1, 0), (0, 1), (5, 5), (-3, 2), (2, -4)]:
            t.insert_point(*p)
            t.check_integrity()
        mesh = t.to_mesh()
        assert mesh.n_points == 6
        assert mesh.delaunay_violations(respect_segments=False) == 0
        # Area of triangulated region equals the convex hull area.
        assert np.abs(mesh.areas()).sum() == pytest.approx(
            hull_area(mesh.points), rel=1e-12
        )

    def test_collinear_extension_of_hull(self):
        t = Triangulation()
        for p in [(0, 0), (1, 0), (0, 1), (2, 0), (3, 0)]:
            t.insert_point(*p)
            t.check_integrity()
        mesh = t.to_mesh()
        assert mesh.n_triangles == 3


class TestRandomSets:
    @pytest.mark.parametrize("n,seed", [(20, 0), (100, 1), (400, 2)])
    def test_random_uniform_is_delaunay(self, n, seed):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(-10, 10, size=(n, 2))
        tri = triangulate(pts)
        tri.check_integrity()
        mesh = tri.to_mesh()
        assert mesh.n_points == n
        assert mesh.is_conforming()
        assert mesh.delaunay_violations(respect_segments=False) == 0
        assert np.abs(mesh.areas()).sum() == pytest.approx(
            hull_area(mesh.points), rel=1e-9
        )
        assert np.all(mesh.areas() > 0)  # all CCW

    def test_matches_scipy_triangle_count(self):
        from scipy.spatial import Delaunay as SciPyDelaunay

        from repro.delaunay.kernel import delaunay_mesh

        rng = np.random.default_rng(7)
        pts = rng.uniform(0, 1, size=(200, 2))
        mesh = delaunay_mesh(pts)
        sp = SciPyDelaunay(pts)
        # For points in general position the DT is unique.
        ours = {tuple(sorted(t)) for t in mesh.triangles.tolist()}
        theirs = {tuple(sorted(t)) for t in sp.simplices.tolist()}
        assert ours == theirs

    def test_grid_cocircular(self):
        # Every 2x2 cell of a grid is cocircular: heavily degenerate.
        xs, ys = np.meshgrid(np.arange(8.0), np.arange(8.0))
        pts = np.column_stack([xs.ravel(), ys.ravel()])
        tri = triangulate(pts)
        tri.check_integrity()
        mesh = tri.to_mesh()
        assert mesh.n_points == 64
        # Triangulated area must tile the 7x7 square exactly.
        assert np.abs(mesh.areas()).sum() == pytest.approx(49.0, rel=1e-12)
        assert mesh.delaunay_violations(respect_segments=False) == 0
        assert mesh.n_triangles == 2 * 49  # Euler: 2*interior cells

    def test_sorted_insertion_mode(self):
        rng = np.random.default_rng(11)
        pts = rng.uniform(0, 1, size=(150, 2))
        pts = pts[np.lexsort((pts[:, 1], pts[:, 0]))]
        mesh = triangulate(pts, assume_sorted=True).to_mesh()
        assert mesh.delaunay_violations(respect_segments=False) == 0
        assert mesh.n_points == 150

    def test_clustered_points(self):
        rng = np.random.default_rng(13)
        cluster = rng.normal(0, 1e-6, size=(50, 2))
        spread = rng.uniform(-100, 100, size=(50, 2))
        pts = np.vstack([cluster, spread])
        mesh = triangulate(pts).to_mesh()
        assert mesh.delaunay_violations(respect_segments=False) == 0
        assert mesh.n_points == 100


class TestLocate:
    def test_locate_inside(self):
        t = Triangulation()
        for p in [(0, 0), (4, 0), (0, 4)]:
            t.insert_point(*p)
        found = t.locate((1.0, 1.0))
        assert not t.is_ghost(found)

    def test_locate_outside_returns_ghost(self):
        t = Triangulation()
        for p in [(0, 0), (4, 0), (0, 4)]:
            t.insert_point(*p)
        found = t.locate((10.0, 10.0))
        assert t.is_ghost(found)

    def test_locate_empty_raises(self):
        with pytest.raises(TriangulationError):
            Triangulation().locate((0, 0))


class TestFlip:
    def test_flip_diagonal(self):
        t = Triangulation()
        ids = [t.insert_point(*p) for p in [(0, 0), (2, 0), (2, 2), (0, 2)]]
        # Find the diagonal edge and flip it.
        mesh_before = t.to_mesh()
        edges_before = {tuple(e) for e in mesh_before.edges().tolist()}
        flipped = False
        for tt in list(t.live_triangles()):
            if t.is_ghost(tt):
                continue
            for k in range(3):
                if t.edge_is_flippable(tt, k):
                    t.flip(tt, k)
                    flipped = True
                    break
            if flipped:
                break
        assert flipped
        t.check_integrity()
        edges_after = {tuple(e) for e in t.to_mesh().edges().tolist()}
        assert edges_before != edges_after
        assert len(edges_after) == len(edges_before)

    def test_flip_constrained_raises(self):
        t = Triangulation()
        for p in [(0, 0), (2, 0), (2, 2), (0, 2)]:
            t.insert_point(*p)
        for tt in t.live_triangles():
            if t.is_ghost(tt):
                continue
            for k in range(3):
                if t.edge_is_flippable(tt, k):
                    u, v = t._edge(tt, k)
                    t.mark_constraint(u, v)
                    with pytest.raises(TriangulationError):
                        t.flip(tt, k)
                    return
        pytest.fail("no flippable edge found")


class TestVertexStar:
    def test_star_of_interior_vertex(self):
        t = Triangulation()
        for p in [(0, 0), (4, 0), (0, 4), (4, 4), (2, 1.9)]:
            t.insert_point(*p)
        vid = 4
        star = t.triangles_around_vertex(vid)
        real = [s for s in star if not t.is_ghost(s)]
        assert len(real) == 4
        for s in star:
            assert vid in t.tri_v[s]

    def test_star_of_hull_vertex_includes_ghosts(self):
        t = Triangulation()
        for p in [(0, 0), (4, 0), (0, 4)]:
            t.insert_point(*p)
        star = t.triangles_around_vertex(0)
        assert any(t.is_ghost(s) for s in star)


@given(
    pts=st.lists(
        st.tuples(
            st.floats(min_value=-50, max_value=50, allow_nan=False),
            st.floats(min_value=-50, max_value=50, allow_nan=False),
        ),
        min_size=3,
        max_size=40,
        unique=True,
    )
)
@settings(max_examples=60, deadline=None)
def test_property_always_delaunay_and_conforming(pts):
    arr = np.asarray(pts, dtype=float)
    tri = triangulate(arr)
    tri.check_integrity()
    mesh = tri.to_mesh()
    assert mesh.is_conforming()
    assert mesh.delaunay_violations(respect_segments=False) == 0
    if mesh.n_triangles:
        # Exact CCW orientation (float areas may round to 0 for slivers).
        from repro.geometry.predicates import orient2d

        for a, b, c in mesh.triangles:
            assert orient2d(mesh.points[a], mesh.points[b], mesh.points[c]) > 0
        assert np.abs(mesh.areas()).sum() == pytest.approx(
            hull_area(arr), rel=1e-9, abs=1e-12
        )
