"""MeshArrays SoA storage: growth, dead-slot contract, zero-copy compact.

The acceptance bar for the array-backed mesh core: finalize and serde
must not copy per triangle in Python, and the dense compaction must hand
back *views* of kernel storage (asserted on ``.base`` identity).
"""

import numpy as np
import pytest

from repro.delaunay.arrays import DEAD, MeshArrays
from repro.delaunay.kernel import (
    Triangulation,
    TriangulationError,
    triangulate,
)


class TestMeshArrays:
    def test_growth_preserves_live_prefix(self):
        a = MeshArrays(cap_pts=4, cap_tris=4)
        for i in range(100):
            a.new_point(float(i), float(-i))
        assert a.n_pts == 100
        assert a.point(57) == (57.0, -57.0)
        for _ in range(100):
            t = a.new_triangle_slot()
            j = 3 * t
            a.tv[j] = 0
            a.tv[j + 1] = 1
            a.tv[j + 2] = 2
        assert a.n_tris == 100
        assert a.triangle(99) == (0, 1, 2)

    def test_kill_recycles_and_is_dead(self):
        a = MeshArrays()
        t = a.new_triangle_slot()
        a.tv[3 * t] = 5
        assert not a.is_dead(t)
        a.kill(t)
        assert a.is_dead(t)
        assert a.triangle(t) is None
        assert a.new_triangle_slot() == t  # recycled from the free list

    def test_reserve_rebinds_views(self):
        a = MeshArrays(cap_pts=4)
        a.new_point(1.0, 2.0)
        old_px = a.px
        a.reserve_points(10_000)
        assert a.px is not old_px
        assert a.point(0) == (1.0, 2.0)

    def test_compact_dense_returns_view(self):
        tri = triangulate(np.random.default_rng(0).random((50, 2)))
        pts, tris, remap = tri._arr.compact()
        assert remap is None
        # Zero-copy: the point block is a read-only view of the kernel
        # buffer, not a copy.
        assert pts.base is tri._arr.pts
        assert not pts.flags.writeable
        assert tris.min() >= 0
        assert tris.max() < len(pts)

    def test_compact_sparse_remaps(self):
        tri = triangulate(np.random.default_rng(1).random((30, 2)))
        arr = tri._arr
        # Keep only the first live real triangle: most vertices drop out.
        mask = arr.tri_v[: arr.n_tris].min(axis=1) >= 0
        first = int(np.flatnonzero(mask)[0])
        keep = np.zeros(arr.n_tris, dtype=bool)
        keep[first] = True
        pts, tris, remap = arr.compact(keep)
        assert tris.shape == (1, 3)
        assert len(pts) == 3
        assert sorted(tris[0].tolist()) == [0, 1, 2]
        kernel_ids = np.flatnonzero(remap >= 0)
        assert np.array_equal(
            pts, arr.pts[kernel_ids][np.argsort(remap[kernel_ids])])

    def test_compact_empty(self):
        a = MeshArrays()
        pts, tris, remap = a.compact()
        assert pts.shape == (0, 2)
        assert tris.shape == (0, 3)
        assert np.all(remap == -1)


class TestDeadSlotContract:
    """Satellite: ``is_ghost`` liveness semantics on free-list reuse."""

    def test_is_ghost_raises_on_dead_slot(self):
        tri = triangulate(np.random.default_rng(2).random((20, 2)))
        arr = tri._arr
        live = [t for t in tri.live_triangles()][0]
        arr.kill(live)
        with pytest.raises(TriangulationError, match="dead"):
            tri.is_ghost(live)

    def test_tri_v_view_returns_none_for_dead(self):
        tri = triangulate(np.random.default_rng(3).random((20, 2)))
        live = [t for t in tri.live_triangles()][0]
        tri._arr.kill(live)
        assert tri.tri_v[live] is None


class TestToMeshZeroCopy:
    def test_dense_to_mesh_shares_kernel_buffer(self):
        tri = triangulate(np.random.default_rng(4).random((200, 2)))
        mesh = tri.to_mesh()
        # Every inserted vertex is referenced -> dense path -> the mesh
        # points are a view over the kernel's point buffer.
        assert mesh.points.base is tri._arr.pts
        assert not mesh.points.flags.writeable
        assert tri.stat_finalize_ns > 0

    def test_masked_to_mesh_matches_bruteforce_export(self):
        tri = triangulate(np.random.default_rng(5).random((120, 2)))
        rng = np.random.default_rng(6)
        keep = rng.random(tri._arr.n_tris) < 0.5
        mesh = tri.to_mesh(keep_mask=keep)
        # Reference export with per-triangle Python loops.
        tris = []
        for t in tri.live_triangles():
            if tri.is_ghost(t) or not keep[t]:
                continue
            tris.append(tuple(tri.tri_v[t]))
        used = sorted({v for tr in tris for v in tr})
        remap = {v: i for i, v in enumerate(used)}
        ref_pts = np.asarray([tri.pts[v] for v in used])
        ref_tris = np.asarray(
            [[remap[a], remap[b], remap[c]] for a, b, c in tris],
            dtype=np.int32)
        assert np.array_equal(mesh.points, ref_pts)
        assert np.array_equal(mesh.triangles, ref_tris)
