"""Local-operation adaptation: invariants, conformity, byte-identity.

Three layers of guarantees:

* **Operation invariants** (hypothesis-driven): whatever sequence of
  split/collapse/flip/smooth the adaptor applies to whatever metric,
  no triangle ever inverts (exact ``orient2d``), every constrained
  segment survives as a chain of mesh edges, and the kernel's own
  adjacency audit stays green.
* **Adaptation effectiveness**: adapting toward a metric raises the
  fraction of in-band metric edge lengths.
* **Differential byte-identity**: the :class:`SizingCriterion`
  refactor of the refinement sizing contract keeps the default area
  path *bit-identical* — pinned canonical hashes from the pre-refactor
  code must reproduce exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delaunay import (
    AreaCriterion,
    MeshAdaptor,
    MetricCriterion,
    adapt_mesh,
    refine_pslg,
)
from repro.delaunay.adapt import HIGH_BAND, LOW_BAND
from repro.delaunay.constrained import triangulate_pslg
from repro.delaunay.kernel import GHOST
from repro.geometry.predicates import orient2d
from repro.metric import MetricField
from repro.runtime import serde

UNIT_SQUARE = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
SQUARE_SEGS = np.array([[0, 1], [1, 2], [2, 3], [3, 0]])


def square_mesh(max_area=0.02):
    return refine_pslg(UNIT_SQUARE.copy(), SQUARE_SEGS.copy(),
                       max_area=max_area)


def assert_no_inversion(tri):
    for t in tri.live_triangles():
        tv = tri.tri_v[t]
        if tv is None or GHOST in tv:
            continue
        a, b, c = tv
        assert orient2d(tri.pts[a], tri.pts[b], tri.pts[c]) > 0


def assert_segments_survive(mesh, segments, original_points):
    """Every original constrained segment is covered by mesh edges.

    Splits may subdivide a segment, so membership is checked on the
    *endpoints*: both endpoints of each original segment still exist
    as mesh vertices, and the mesh's constrained-segment set covers a
    path between them along the original support line.
    """
    pts = mesh.points
    for u, v in segments:
        pu, pv = original_points[u], original_points[v]
        du = np.linalg.norm(pts - pu, axis=1)
        dv = np.linalg.norm(pts - pv, axis=1)
        assert du.min() < 1e-12, f"segment endpoint {pu} lost"
        assert dv.min() < 1e-12, f"segment endpoint {pv} lost"
    # All mesh segment endpoints lie on the original segment support.
    seg_pts = pts[np.unique(mesh.segments.ravel())]
    for p in seg_pts:
        on_any = False
        for u, v in segments:
            a, b = original_points[u], original_points[v]
            ab = b - a
            t = np.dot(p - a, ab) / np.dot(ab, ab)
            if -1e-12 <= t <= 1 + 1e-12:
                proj = a + t * ab
                if np.linalg.norm(p - proj) < 1e-9:
                    on_any = True
                    break
        assert on_any, f"segment vertex {p} off every original segment"


def metric_from_case(points, case, h_fine, h_coarse):
    x, y = points[:, 0], points[:, 1]
    if case == 0:      # horizontal band
        h = np.where(np.abs(y - 0.5) < 0.15, h_fine, h_coarse)
    elif case == 1:    # radial spot
        h = np.where(np.hypot(x - 0.5, y - 0.5) < 0.25, h_fine, h_coarse)
    elif case == 2:    # uniform coarse (drives collapses)
        h = np.full(len(points), h_coarse)
    else:              # uniform fine (drives splits)
        h = np.full(len(points), h_fine)
    return MetricField.from_sizes(points, h)


class TestOperationInvariants:
    @given(
        case=st.integers(0, 3),
        h_fine=st.floats(0.03, 0.08),
        h_coarse=st.floats(0.2, 0.5),
        passes=st.integers(1, 3),
    )
    @settings(max_examples=12, deadline=None)
    def test_adapt_never_inverts_or_drops_segments(
            self, case, h_fine, h_coarse, passes):
        mesh = square_mesh()
        field = metric_from_case(mesh.points, case, h_fine, h_coarse)
        tri = triangulate_pslg(mesh.points, mesh.segments)
        adaptor = MeshAdaptor(tri, field)
        adaptor.adapt(max_passes=passes)
        tri.check_integrity()
        assert_no_inversion(tri)
        out = adaptor.to_mesh()
        assert_segments_survive(out, mesh.segments, mesh.points)

    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_individual_operations_preserve_invariants(self, data):
        """Random interleaving of raw split/collapse/flip calls."""
        mesh = square_mesh(max_area=0.05)
        field = MetricField.uniform(mesh.points, 0.15)
        tri = triangulate_pslg(mesh.points, mesh.segments)
        adaptor = MeshAdaptor(tri, field)
        protected = adaptor._protected_vertices()
        for _ in range(20):
            edges = adaptor._interior_edges()
            if not edges:
                break
            i = data.draw(st.integers(0, len(edges) - 1))
            op = data.draw(st.integers(0, 2))
            u, v = edges[i]
            if op == 0:
                adaptor.split_edge(u, v)
            elif op == 1:
                adaptor.collapse_edge(u, v, protected)
            else:
                adaptor.flip_edge(u, v)
            tri.check_integrity()
            assert_no_inversion(tri)
        out = adaptor.to_mesh()
        assert_segments_survive(out, mesh.segments, mesh.points)

    def test_protect_segments_keeps_boundary_verbatim(self):
        mesh = square_mesh()
        field = MetricField.uniform(mesh.points, 0.02)  # wants splits
        adapted, _ = adapt_mesh(mesh, field, max_passes=2,
                                protect_segments=True)
        orig = {tuple(p) for p in
                mesh.points[np.unique(mesh.segments.ravel())]}
        new = {tuple(p) for p in
               adapted.points[np.unique(adapted.segments.ravel())]}
        assert new == orig


class TestAdaptationEffect:
    def test_conformity_improves_toward_band_metric(self):
        mesh = square_mesh()
        field = metric_from_case(mesh.points, 0, 0.04, 0.3)
        adapted, report = adapt_mesh(mesh, field, max_passes=4)
        assert report.conformity_after > report.conformity_before
        assert report.conformity_after > 0.8
        assert report.splits > 0 and report.collapses > 0
        assert adapted.is_conforming()
        assert np.all(adapted.areas() > 0)

    def test_uniform_fine_metric_refines(self):
        mesh = square_mesh(max_area=0.1)
        field = MetricField.uniform(mesh.points, 0.05)
        adapted, report = adapt_mesh(mesh, field, max_passes=3)
        assert adapted.n_points > mesh.n_points
        assert report.splits > 0

    def test_uniform_coarse_metric_coarsens(self):
        mesh = square_mesh(max_area=0.005)
        field = MetricField.uniform(mesh.points, 0.3)
        adapted, report = adapt_mesh(mesh, field, max_passes=3)
        assert adapted.n_points < mesh.n_points
        assert report.collapses > 0

    def test_holes_stay_empty(self):
        pts = np.vstack([UNIT_SQUARE,
                         [[0.4, 0.4], [0.6, 0.4], [0.6, 0.6], [0.4, 0.6]]])
        segs = np.vstack([SQUARE_SEGS,
                          [[4, 5], [5, 6], [6, 7], [7, 4]]])
        mesh = refine_pslg(pts, segs, max_area=0.02,
                           holes=[(0.5, 0.5)])
        field = MetricField.uniform(mesh.points, 0.1)
        adapted, _ = adapt_mesh(mesh, field, holes=[(0.5, 0.5)],
                                max_passes=2)
        cents = adapted.points[adapted.triangles].mean(axis=1)
        inside = ((np.abs(cents[:, 0] - 0.5) < 0.1 - 1e-9)
                  & (np.abs(cents[:, 1] - 0.5) < 0.1 - 1e-9))
        assert not inside.any()


# ----------------------------------------------------------------------
# Differential byte-identity of the SizingCriterion refactor
# ----------------------------------------------------------------------
#: Canonical hashes pinned from the pre-refactor refinement code
#: (commit 946022f): the AreaCriterion default path must reproduce
#: these outputs byte for byte.
PINNED = {
    "square_max_area": (
        "7494fd968e968a061abf2531dc7981b4ca8342734c6ae26200bb767ff2767815"),
    "lshape_area_fn": (
        "6449ee1a2c65301e4a23ccf4ce2fc401b325d8f4545a1c2d8fab1dbaf07d7645"),
    "thin_rect_quality": (
        "f325e6c1a57f96a9a960633a66ca2eff0eedde421bc2ddda2d9499a4b5126659"),
    "holed_square": (
        "b361060858fad0e6d1bb610309071fd3b3ee266248ef0577a8cd7e7cba7e0312"),
}


def mesh_hash(mesh):
    return serde.canonical_hash(serde.pack_mesh(mesh))


class TestByteIdentity:
    def test_square_max_area(self):
        mesh = refine_pslg(UNIT_SQUARE.copy(), SQUARE_SEGS.copy(),
                           max_area=0.01)
        assert mesh_hash(mesh) == PINNED["square_max_area"]

    def test_lshape_area_fn(self):
        pts = np.array([[0.0, 0.0], [2.0, 0.0], [2.0, 1.0],
                        [1.0, 1.0], [1.0, 2.0], [0.0, 2.0]])
        segs = np.array([[0, 1], [1, 2], [2, 3], [3, 4], [4, 5], [5, 0]])
        mesh = refine_pslg(
            pts, segs, area_fn=lambda x, y: 0.002 + 0.05 * (x * x + y * y))
        assert mesh_hash(mesh) == PINNED["lshape_area_fn"]

    def test_thin_rect_quality_only(self):
        pts = np.array([[0.0, 0.0], [10.0, 0.0], [10.0, 1.0], [0.0, 1.0]])
        segs = np.array([[0, 1], [1, 2], [2, 3], [3, 0]])
        mesh = refine_pslg(pts, segs)
        assert mesh_hash(mesh) == PINNED["thin_rect_quality"]

    def test_holed_square(self):
        pts = np.vstack([UNIT_SQUARE,
                         [[0.4, 0.4], [0.6, 0.4], [0.6, 0.6], [0.4, 0.6]]])
        segs = np.vstack([SQUARE_SEGS,
                          [[4, 5], [5, 6], [6, 7], [7, 4]]])
        mesh = refine_pslg(pts, segs, max_area=0.02, holes=[(0.5, 0.5)])
        assert mesh_hash(mesh) == PINNED["holed_square"]

    def test_explicit_area_criterion_matches_area_fn(self):
        """AreaCriterion(fn) given as `criterion` == area_fn=fn."""
        fn = lambda x, y: 0.005 + 0.02 * x
        a = refine_pslg(UNIT_SQUARE.copy(), SQUARE_SEGS.copy(), area_fn=fn)
        b = refine_pslg(UNIT_SQUARE.copy(), SQUARE_SEGS.copy(),
                        criterion=AreaCriterion(fn))
        assert mesh_hash(a) == mesh_hash(b)


class TestMetricCriterion:
    def test_refines_to_metric_band(self):
        field = MetricField.uniform(UNIT_SQUARE, 0.15)
        crit = MetricCriterion(field)
        mesh = refine_pslg(UNIT_SQUARE.copy(), SQUARE_SEGS.copy(),
                           criterion=crit)
        t = mesh.triangles
        edges = np.unique(np.sort(np.concatenate(
            [t[:, [0, 1]], t[:, [1, 2]], t[:, [2, 0]]]), axis=1), axis=0)
        lengths = field.interpolate_field(mesh.points).edge_lengths(edges)
        assert np.all(lengths <= crit.max_edge * 1.3)

    def test_criterion_and_area_mutually_exclusive(self):
        field = MetricField.uniform(UNIT_SQUARE, 0.2)
        with pytest.raises(ValueError):
            refine_pslg(UNIT_SQUARE.copy(), SQUARE_SEGS.copy(),
                        criterion=MetricCriterion(field), max_area=0.1)
