"""Property-based fuzzing of the constrained Delaunay + refinement stack.

Random star-shaped polygons (always simple) with random interior points
and optional holes drive the full PSLG -> CDT -> Ruppert pipeline; the
invariants checked are the ones every downstream consumer relies on.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.delaunay.constrained import constrained_delaunay
from repro.delaunay.refine import RUPPERT_BOUND, refine_pslg
from repro.delaunay.smooth import validate_mesh
from repro.geometry.primitives import polygon_area


@st.composite
def star_polygon(draw, min_v=4, max_v=14, radius=10.0):
    """A simple polygon star-shaped about the origin.

    Angles are built constructively from bounded gap weights (every gap in
    roughly [0.25, 2.3] radians), so the origin is strictly interior and
    the polygon is simple by construction — no assume() filtering.
    """
    n = draw(st.integers(min_value=min_v, max_value=max_v))
    weights = draw(
        st.lists(st.floats(min_value=0.6, max_value=1.0),
                 min_size=n, max_size=n)
    )
    total = sum(weights)
    offset = draw(st.floats(min_value=0.0, max_value=2 * math.pi))
    angles = []
    acc = 0.0
    for w in weights:
        angles.append(offset + acc / total * 2 * math.pi)
        acc += w
    radii = draw(
        st.lists(st.floats(min_value=0.2 * radius, max_value=radius),
                 min_size=n, max_size=n)
    )
    pts = np.array(
        [(r * math.cos(a), r * math.sin(a)) for a, r in zip(angles, radii)]
    )
    return pts


class TestCDTFuzz:
    @given(poly=star_polygon())
    @settings(max_examples=60, deadline=None)
    def test_cdt_of_star_polygon(self, poly):
        n = len(poly)
        segs = np.array([(i, (i + 1) % n) for i in range(n)])
        mesh = constrained_delaunay(poly, segs)
        rep = validate_mesh(mesh, check_delaunay=True)
        assert rep.conforming
        assert rep.inverted_triangles == 0
        assert rep.delaunay_violations == 0
        # Carving leaves exactly the polygon area.
        assert rep.total_area == pytest.approx(abs(polygon_area(poly)),
                                               rel=1e-9)
        assert rep.boundary_loops == 1

    @given(poly=star_polygon(), seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=40, deadline=None)
    def test_cdt_with_interior_points(self, poly, seed):
        n = len(poly)
        rng = np.random.default_rng(seed)
        # Interior points: scaled-down boundary points are strictly inside
        # a polygon star-shaped about the origin (the strategy guarantees
        # the origin is interior: every angular gap is below pi).
        scales = rng.uniform(0.2, 0.8, size=min(n, 6))
        interior = poly[: len(scales)] * scales[:, None]
        pts = np.vstack([poly, interior])
        segs = np.array([(i, (i + 1) % n) for i in range(n)])
        mesh = constrained_delaunay(pts, segs)
        assert mesh.is_conforming()
        assert np.abs(mesh.areas()).sum() == pytest.approx(
            abs(polygon_area(poly)), rel=1e-9)
        # All interior points present in the mesh.
        mesh_pts = {tuple(np.round(p, 12)) for p in mesh.points}
        for q in interior:
            assert tuple(np.round(q, 12)) in mesh_pts

    @given(poly=star_polygon(min_v=6, max_v=12))
    @settings(max_examples=25, deadline=None)
    def test_refined_star_quality(self, poly):
        n = len(poly)
        segs = np.array([(i, (i + 1) % n) for i in range(n)])
        # Guard the (possibly sharp) star corners with a floor.
        per = np.linalg.norm(np.diff(np.vstack([poly, poly[:1]]), axis=0),
                             axis=1)
        floor = float(per.min()) / 16.0
        mesh = refine_pslg(poly, segs, quality_bound=RUPPERT_BOUND,
                           min_edge_floor=floor, max_steiner=100_000)
        rep = validate_mesh(mesh, check_delaunay=False)
        assert rep.conforming
        assert rep.inverted_triangles == 0
        # Float-area accumulation over guarded corner slivers: 1e-6 rel.
        assert rep.total_area == pytest.approx(abs(polygon_area(poly)),
                                               rel=1e-6)
        # Triangles safely above the cusp guard meet Ruppert's bound.
        ratios = mesh.radius_edge_ratios()
        lmins = mesh.edge_lengths().min(axis=1)
        unguarded = lmins > 4.0 * floor
        if unguarded.any():
            ok = (ratios[unguarded] <= RUPPERT_BOUND + 1e-9).mean()
            assert ok >= 0.6

    @given(poly=star_polygon(min_v=5, max_v=10))
    @settings(max_examples=25, deadline=None)
    def test_star_with_hole(self, poly):
        n = len(poly)
        inner = poly * 0.35  # a scaled copy is strictly inside (star-shaped)
        # ... and similar, so the loops do not touch.
        pts = np.vstack([poly, inner])
        segs = np.array(
            [(i, (i + 1) % n) for i in range(n)]
            + [(n + i, n + (i + 1) % n) for i in range(n)]
        )
        mesh = constrained_delaunay(pts, segs, holes=[(0.0, 0.0)])
        expected = abs(polygon_area(poly)) - abs(polygon_area(inner))
        assert np.abs(mesh.areas()).sum() == pytest.approx(expected,
                                                           rel=1e-9)
        assert validate_mesh(mesh, check_delaunay=False).boundary_loops == 2
