"""Tests for the TriMesh data structure and quality metrics."""

import math

import numpy as np
import pytest

from repro.delaunay.mesh import TriMesh, merge_meshes


def unit_square_two_tris():
    pts = np.array([(0, 0), (1, 0), (1, 1), (0, 1)], dtype=float)
    tris = np.array([(0, 1, 2), (0, 2, 3)])
    return TriMesh(pts, tris)


class TestBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            TriMesh(np.zeros((3, 3)), np.array([(0, 1, 2)]))
        with pytest.raises(ValueError):
            TriMesh(np.zeros((2, 2)), np.array([(0, 1, 2)]))

    def test_negative_triangle_index_rejected(self):
        # Regression: only the upper bound used to be checked, so a
        # stray GHOST (-1) id slipped through validation.
        with pytest.raises(ValueError, match="negative"):
            TriMesh(np.zeros((3, 2)), np.array([(0, 1, -1)]))

    def test_segment_indices_validated(self):
        pts = np.array([(0, 0), (1, 0), (1, 1)], dtype=float)
        tris = np.array([(0, 1, 2)])
        with pytest.raises(ValueError, match="segment"):
            TriMesh(pts, tris, np.array([(0, 3)]))
        with pytest.raises(ValueError, match="segment"):
            TriMesh(pts, tris, np.array([(-1, 1)]))
        with pytest.raises(ValueError, match="segment"):
            TriMesh(pts, tris, np.array([(0, 1, 2)]))

    def test_areas_and_centroids(self):
        m = unit_square_two_tris()
        np.testing.assert_allclose(m.areas(), [0.5, 0.5])
        np.testing.assert_allclose(m.centroids()[0], (2 / 3, 1 / 3))

    def test_edge_lengths_opposite_convention(self):
        pts = np.array([(0, 0), (3, 0), (0, 4)], dtype=float)
        m = TriMesh(pts, np.array([(0, 1, 2)]))
        ls = m.edge_lengths()[0]
        # Column k is opposite vertex k: opposite 0 is edge (1,2) len 5.
        assert ls[0] == pytest.approx(5.0)
        assert ls[1] == pytest.approx(4.0)
        assert ls[2] == pytest.approx(3.0)

    def test_circumradius_right_triangle(self):
        pts = np.array([(0, 0), (3, 0), (0, 4)], dtype=float)
        m = TriMesh(pts, np.array([(0, 1, 2)]))
        assert m.circumradii()[0] == pytest.approx(2.5)

    def test_degenerate_circumradius_inf(self):
        pts = np.array([(0, 0), (1, 0), (2, 0)], dtype=float)
        m = TriMesh(pts, np.array([(0, 1, 2)]))
        assert m.circumradii()[0] == math.inf

    def test_angles_sum(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 1, size=(30, 2))
        from repro.delaunay.kernel import delaunay_mesh

        m = delaunay_mesh(pts)
        np.testing.assert_allclose(m.angles().sum(axis=1), math.pi, rtol=1e-9)

    def test_equilateral_metrics(self):
        h = math.sqrt(3) / 2
        m = TriMesh(np.array([(0, 0), (1, 0), (0.5, h)]), np.array([(0, 1, 2)]))
        assert m.radius_edge_ratios()[0] == pytest.approx(1 / math.sqrt(3))
        assert math.degrees(m.min_angle()) == pytest.approx(60.0)

    def test_aspect_ratio_anisotropic(self):
        # A 1000:1 sliver, like a boundary-layer triangle.
        m = TriMesh(
            np.array([(0, 0), (1, 0), (0.5, 0.0005)]), np.array([(0, 1, 2)])
        )
        # base 1, min altitude 2*area/base = 0.0005 -> ratio 2000.
        assert m.aspect_ratios()[0] == pytest.approx(2000.0, rel=0.01)


class TestTopology:
    def test_edges_and_boundary(self):
        m = unit_square_two_tris()
        assert len(m.edges()) == 5
        be = {tuple(e) for e in m.boundary_edges().tolist()}
        assert be == {(0, 1), (1, 2), (2, 3), (0, 3)}

    def test_neighbors(self):
        m = unit_square_two_tris()
        nbr = m.neighbors()
        # Triangle 0 = (0,1,2): edge opposite vertex 1 is (2,0) shared with t1.
        assert nbr[0, 1] == 1
        assert nbr[1, 2] == 0 or nbr[1].tolist().count(0) == 1

    def test_conforming(self):
        m = unit_square_two_tris()
        assert m.is_conforming()
        bad = TriMesh(
            np.array([(0, 0), (1, 0), (0, 1), (1, 1), (0.5, -1)], dtype=float),
            np.array([(0, 1, 2), (0, 1, 3), (0, 1, 4)]),
        )
        assert not bad.is_conforming()

    def test_vertex_degrees(self):
        m = unit_square_two_tris()
        np.testing.assert_array_equal(m.vertex_degrees(), [2, 1, 2, 1])

    def test_contains_segments(self):
        m = unit_square_two_tris()
        assert m.contains_segments(np.array([(0, 1), (2, 0)]))
        assert not m.contains_segments(np.array([(1, 3)]))


class TestDelaunayCheck:
    def test_flat_quad_violation(self):
        # Choose the "wrong" diagonal of a quad: Delaunay violation.
        pts = np.array([(0, 0), (2, 0), (2.2, 1), (0, 1)], dtype=float)
        good = TriMesh(pts, np.array([(0, 1, 3), (1, 2, 3)]))
        bad = TriMesh(pts, np.array([(0, 1, 2), (0, 2, 3)]))
        total = good.delaunay_violations(respect_segments=False) + \
            bad.delaunay_violations(respect_segments=False)
        assert total == 1  # exactly one of the two diagonals violates

    def test_constrained_edge_exempt(self):
        pts = np.array([(0, 0), (2, 0), (2.2, 1), (0, 1)], dtype=float)
        for tris in ([(0, 1, 2), (0, 2, 3)], [(0, 1, 3), (1, 2, 3)]):
            m = TriMesh(pts, np.array(tris))
            if m.delaunay_violations(respect_segments=False) == 1:
                diag = (
                    np.array([(0, 2)]) if (0, 2) in
                    {tuple(sorted(e)) for e in m.edges().tolist()} else
                    np.array([(1, 3)])
                )
                m2 = TriMesh(pts, np.array(tris), segments=diag)
                assert m2.delaunay_violations(respect_segments=True) == 0
                return
        pytest.fail("no violating diagonal found")


class TestQualitySummary:
    def test_summary_keys(self):
        m = unit_square_two_tris()
        s = m.quality_summary()
        assert s["n_triangles"] == 2
        assert s["min_angle_deg"] == pytest.approx(45.0)
        assert s["total_area"] == pytest.approx(1.0)

    def test_empty_mesh(self):
        m = TriMesh(np.zeros((3, 2)), np.empty((0, 3), dtype=np.int32))
        assert m.quality_summary()["n_triangles"] == 0
        assert math.isnan(m.min_angle())


class TestMerge:
    def test_merge_shared_border(self):
        left = TriMesh(
            np.array([(0, 0), (1, 0), (1, 1), (0, 1)], dtype=float),
            np.array([(0, 1, 2), (0, 2, 3)]),
        )
        right = TriMesh(
            np.array([(1, 0), (2, 0), (2, 1), (1, 1)], dtype=float),
            np.array([(0, 1, 2), (0, 2, 3)]),
        )
        merged = merge_meshes([left, right])
        assert merged.n_points == 6  # two shared vertices welded
        assert merged.n_triangles == 4
        assert merged.is_conforming()
        assert np.abs(merged.areas()).sum() == pytest.approx(2.0)

    def test_merge_empty_raises(self):
        with pytest.raises(ValueError):
            merge_meshes([])

    def test_merge_preserves_segments(self):
        m = TriMesh(
            np.array([(0, 0), (1, 0), (0, 1)], dtype=float),
            np.array([(0, 1, 2)]),
            segments=np.array([(0, 1)]),
        )
        merged = merge_meshes([m, m])
        assert merged.n_triangles == 1  # duplicate dropped
        assert len(merged.segments) == 1


class TestDnc:
    def test_insertion_orders(self):
        from repro.delaunay.dnc import insertion_order, triangulate_ordered

        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 1, size=(100, 2))
        for policy in ("sorted", "random", "brio", "given"):
            order = insertion_order(pts, policy)
            assert sorted(order.tolist()) == list(range(100))
            mesh = triangulate_ordered(pts, policy)
            assert mesh.n_triangles > 0
            assert mesh.delaunay_violations(respect_segments=False) == 0

    def test_unknown_policy(self):
        from repro.delaunay.dnc import insertion_order

        with pytest.raises(ValueError):
            insertion_order(np.zeros((4, 2)), "zigzag")

    def test_all_policies_same_triangulation(self):
        from repro.delaunay.dnc import triangulate_ordered

        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 1, size=(80, 2))
        meshes = [triangulate_ordered(pts, p) for p in ("sorted", "brio", "random")]
        sets = [
            {tuple(sorted(t)) for t in m.triangles.tolist()} for m in meshes
        ]
        assert sets[0] == sets[1] == sets[2]
