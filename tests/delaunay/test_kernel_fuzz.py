"""Mixed-operation fuzzing of the triangulation kernel.

Interleaves point insertions, segment insertions, and legalising flips in
random orders and checks the structural invariants after every batch —
the usage pattern Ruppert refinement exercises, compressed into a fuzzer.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delaunay.constrained import insert_segment
from repro.delaunay.kernel import Triangulation, TriangulationError


@st.composite
def op_sequence(draw):
    """A random interleaving of inserts and segment ops over a point set."""
    n_pts = draw(st.integers(min_value=6, max_value=24))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0, 100, size=(n_pts, 2))
    ops = []
    inserted = 0
    # First insert at least 3 points to bootstrap.
    for _ in range(3):
        ops.append(("insert", inserted))
        inserted += 1
    while inserted < n_pts:
        kind = draw(st.sampled_from(["insert", "insert", "segment"]))
        if kind == "insert":
            ops.append(("insert", inserted))
            inserted += 1
        else:
            i = draw(st.integers(min_value=0, max_value=inserted - 1))
            j = draw(st.integers(min_value=0, max_value=inserted - 1))
            if i != j:
                ops.append(("segment", (i, j)))
    return pts, ops


class TestMixedOps:
    @given(op_sequence())
    @settings(max_examples=40, deadline=None)
    def test_invariants_after_every_batch(self, case):
        pts, ops = case
        tri = Triangulation()
        kernel_id = {}
        constrained_pairs = []
        for step, (kind, payload) in enumerate(ops):
            if kind == "insert":
                i = payload
                kernel_id[i] = tri.insert_point(pts[i, 0], pts[i, 1])
            else:
                i, j = payload
                u, v = kernel_id[i], kernel_id[j]
                if u == v:
                    continue
                try:
                    subs = insert_segment(tri, u, v)
                except TriangulationError:
                    # A crossing with an existing constrained segment is a
                    # legal rejection for random segment soup.
                    continue
                for su, sv in subs:
                    tri.mark_constraint(su, sv)
                    constrained_pairs.append((su, sv))
            if step % 5 == 0:
                tri.check_integrity()
        tri.check_integrity()
        # All surviving constrained edges still exist...
        for su, sv in constrained_pairs:
            key = (min(su, sv), max(su, sv))
            if key in tri.constraints:
                assert tri.has_edge(su, sv)
        # ...and the mesh is conforming and constrained-Delaunay.
        mesh = tri.to_mesh()
        assert mesh.is_conforming()
        assert mesh.delaunay_violations(respect_segments=True) == 0

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=30, deadline=None)
    def test_duplicate_resilience(self, seed):
        """Inserting every point twice changes nothing."""
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 10, size=(15, 2))
        tri = Triangulation()
        first = [tri.insert_point(x, y) for x, y in pts]
        n_before = tri.n_live_triangles
        second = [tri.insert_point(x, y) for x, y in pts]
        assert first == second
        assert tri.n_live_triangles == n_before
        tri.check_integrity()

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_collinear_then_general(self, seed):
        """A long collinear prefix followed by general points."""
        rng = np.random.default_rng(seed)
        n_col = int(rng.integers(3, 10))
        xs = np.sort(rng.uniform(0, 10, n_col))
        tri = Triangulation()
        for x in xs:
            tri.insert_point(x, 2.0 * x + 1.0)  # on a line
        for _ in range(8):
            x, y = rng.uniform(0, 10, 2)
            tri.insert_point(x, y)
            if tri.n_live_triangles:
                tri.check_integrity()
        mesh = tri.to_mesh()
        assert mesh.is_conforming()
        assert mesh.delaunay_violations(respect_segments=False) == 0
