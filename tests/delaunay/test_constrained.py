"""Tests for constrained segment recovery and carving."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delaunay.constrained import (
    carve,
    constrained_delaunay,
    insert_segment,
    triangulate_pslg,
)
from repro.delaunay.kernel import Triangulation, triangulate


def build(points):
    tri = Triangulation()
    ids = [tri.insert_point(x, y) for x, y in points]
    return tri, ids


class TestInsertSegment:
    def test_already_an_edge(self):
        tri, ids = build([(0, 0), (1, 0), (0, 1)])
        segs = insert_segment(tri, ids[0], ids[1])
        assert segs == [(ids[0], ids[1])]

    def test_force_missing_diagonal(self):
        # Square of 4 points plus midpoints arranged so one diagonal exists;
        # force the other.
        tri, ids = build([(0, 0), (2, 0), (2, 2), (0, 2)])
        a, c = ids[0], ids[2]
        b, d = ids[1], ids[3]
        # Whatever diagonal the kernel chose, force the other one.
        if tri.has_edge(a, c):
            insert_segment(tri, b, d)
            assert tri.has_edge(b, d)
        else:
            insert_segment(tri, a, c)
            assert tri.has_edge(a, c)
        tri.check_integrity()

    def test_long_segment_through_many_triangles(self):
        rng = np.random.default_rng(5)
        pts = rng.uniform(0, 1, size=(60, 2)).tolist()
        pts.append((-0.5, 0.5))
        pts.append((1.5, 0.5))
        tri, ids = build(pts)
        insert_segment(tri, ids[-2], ids[-1])
        tri.check_integrity()
        # The segment may have been split by collinear vertices (none here
        # with random data): it must exist as an edge.
        assert tri.has_edge(ids[-2], ids[-1])

    def test_segment_through_collinear_vertex(self):
        tri, ids = build([(0, 0), (2, 0), (4, 0), (1, 1), (3, 1), (1, -1), (3, -1)])
        created = insert_segment(tri, ids[0], ids[2])
        # Vertex (2,0) lies on the segment: it must split into two.
        assert sorted(
            tuple(sorted(s)) for s in created
        ) == [(ids[0], ids[1]), (ids[1], ids[2])]
        tri.check_integrity()

    def test_degenerate_raises(self):
        tri, ids = build([(0, 0), (1, 0), (0, 1)])
        with pytest.raises(ValueError):
            insert_segment(tri, ids[0], ids[0])

    @given(seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_random_segment_recovery(self, seed):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 10, size=(30, 2))
        tri, ids = build(pts.tolist())
        i, j = int(rng.integers(0, 30)), int(rng.integers(0, 30))
        if i == j:
            return
        segs = insert_segment(tri, ids[i], ids[j])
        tri.check_integrity()
        for u, v in segs:
            assert tri.has_edge(u, v)
        mesh = tri.to_mesh()
        assert mesh.is_conforming()
        # Constrained edges are exempt; everything else stays Delaunay.
        assert mesh.delaunay_violations(respect_segments=True) == 0


class TestTriangulatePSLG:
    def test_square_boundary(self):
        pts = np.array([(0, 0), (1, 0), (1, 1), (0, 1)], dtype=float)
        segs = np.array([(0, 1), (1, 2), (2, 3), (3, 0)])
        tri = triangulate_pslg(pts, segs)
        tri.check_integrity()
        mesh = tri.to_mesh()
        assert mesh.contains_segments(
            np.array([[mesh_idx(mesh, pts[u]), mesh_idx(mesh, pts[v])]
                      for u, v in segs])
        )

    def test_nonconvex_polygon(self):
        # An L-shape: the reflex corner needs a constrained boundary.
        pts = np.array(
            [(0, 0), (2, 0), (2, 1), (1, 1), (1, 2), (0, 2)], dtype=float
        )
        segs = np.array([(i, (i + 1) % 6) for i in range(6)])
        mesh = constrained_delaunay(pts, segs)
        assert mesh.is_conforming()
        # Carving must remove everything outside the L: area == 3.
        assert np.abs(mesh.areas()).sum() == pytest.approx(3.0)

    def test_square_with_square_hole(self):
        outer = [(0, 0), (4, 0), (4, 4), (0, 4)]
        inner = [(1.5, 1.5), (2.5, 1.5), (2.5, 2.5), (1.5, 2.5)]
        pts = np.array(outer + inner, dtype=float)
        segs = np.array(
            [(i, (i + 1) % 4) for i in range(4)]
            + [(4 + i, 4 + (i + 1) % 4) for i in range(4)]
        )
        mesh = constrained_delaunay(pts, segs, holes=[(2.0, 2.0)])
        assert np.abs(mesh.areas()).sum() == pytest.approx(16.0 - 1.0)
        # No triangle centroid inside the hole.
        c = mesh.centroids()
        assert not np.any(
            (c[:, 0] > 1.5) & (c[:, 0] < 2.5) & (c[:, 1] > 1.5) & (c[:, 1] < 2.5)
        )

    def test_airfoil_in_box(self):
        from repro.geometry.airfoils import naca0012

        af = naca0012(51)
        box = np.array([(-2, -2), (3, -2), (3, 2), (-2, 2)], dtype=float)
        pts = np.vstack([af, box])
        n = len(af)
        segs = np.array(
            [(i, (i + 1) % n) for i in range(n)]
            + [(n + i, n + (i + 1) % 4) for i in range(4)]
        )
        mesh = constrained_delaunay(pts, segs, holes=[(0.5, 0.0)])
        assert mesh.is_conforming()
        assert mesh.n_triangles > n
        # Hole carved: total area < box area.
        total = np.abs(mesh.areas()).sum()
        assert total < 20.0
        assert total > 19.0  # airfoil area is ~0.08
        assert mesh.delaunay_violations(respect_segments=True) == 0


def mesh_idx(mesh, p):
    d = np.linalg.norm(mesh.points - np.asarray(p), axis=1)
    return int(np.argmin(d))


class TestCarve:
    def test_no_constraints_keeps_hull(self):
        rng = np.random.default_rng(2)
        pts = rng.uniform(0, 1, size=(20, 2))
        tri = triangulate(pts)
        mask = carve(tri)
        mesh = tri.to_mesh(keep_mask=mask)
        # Without constraints everything floods from outside: empty mesh.
        assert mesh.n_triangles == 0

    def test_closed_loop_keeps_interior(self):
        pts = np.array([(0, 0), (1, 0), (1, 1), (0, 1), (0.5, 0.5)], dtype=float)
        segs = np.array([(0, 1), (1, 2), (2, 3), (3, 0)])
        tri = triangulate_pslg(pts, segs)
        mask = carve(tri)
        mesh = tri.to_mesh(keep_mask=mask)
        assert np.abs(mesh.areas()).sum() == pytest.approx(1.0)
        assert mesh.n_triangles == 4  # centre point fans to 4 corners
