"""Tests for the monotone chain convex hull."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.delaunay.hull import convex_hull, lower_hull, lower_hull_sorted, upper_hull
from repro.geometry.predicates import orient2d

coord = st.floats(min_value=-100, max_value=100, allow_nan=False)


def brute_lower_hull(points):
    """O(n^3) reference: points on the lower hull are those with no point
    strictly below the hull chain — computed via the full hull."""
    from itertools import combinations

    n = len(points)
    if n == 1:
        return [0]
    # A point is on the lower hull iff it is an endpoint of an edge such
    # that all other points are strictly above (left of) the directed edge.
    on_hull = set()
    order = np.lexsort((points[:, 1], points[:, 0]))
    on_hull.add(int(order[0]))
    on_hull.add(int(order[-1]))
    for i, j in combinations(range(n), 2):
        a, b = points[i], points[j]
        if tuple(a) > tuple(b):
            i, j, a, b = j, i, b, a
        sides = [orient2d(a, b, points[k]) for k in range(n) if k not in (i, j)]
        if all(s > 0 for s in sides):
            on_hull.add(i)
            on_hull.add(j)
    return sorted(on_hull, key=lambda k: (points[k][0], points[k][1]))


class TestLowerHull:
    def test_simple_vee(self):
        pts = np.array([(0, 1), (1, 0), (2, 1)], dtype=float)
        assert lower_hull(pts) == [0, 1, 2]

    def test_collinear_dropped(self):
        pts = np.array([(0, 0), (1, 0), (2, 0)], dtype=float)
        assert lower_hull(pts) == [0, 2]

    def test_interior_point_excluded(self):
        pts = np.array([(0, 0), (1, 1), (2, 0), (1, 0.2)], dtype=float)
        hull = lower_hull(pts)
        assert 1 not in hull and 3 not in hull
        assert hull == [0, 2]

    def test_single_point(self):
        assert lower_hull(np.array([(3.0, 4.0)])) == [0]

    def test_empty(self):
        assert lower_hull(np.empty((0, 2))) == []

    @given(st.lists(st.tuples(coord, coord), min_size=1, max_size=25, unique=True))
    @settings(max_examples=120)
    def test_matches_bruteforce(self, pts):
        points = np.asarray(pts, dtype=float)
        got = lower_hull(points)
        # All points weakly above every hull edge.
        for a, b in zip(got, got[1:]):
            for k in range(len(points)):
                if k in (a, b):
                    continue
                assert orient2d(points[a], points[b], points[k]) >= 0
        # Hull is strictly convex: consecutive turns are strict lefts.
        for a, b, c in zip(got, got[1:], got[2:]):
            assert orient2d(points[a], points[b], points[c]) > 0
        # Endpoints are the lexicographic extremes.
        order = np.lexsort((points[:, 1], points[:, 0]))
        assert got[0] == order[0]
        assert got[-1] == order[-1]

    @given(st.lists(st.tuples(coord, coord), min_size=3, max_size=15, unique=True))
    @settings(max_examples=60)
    def test_linear_time_presorted_agrees(self, pts):
        points = np.asarray(pts, dtype=float)
        order = np.lexsort((points[:, 1], points[:, 0]))
        assert lower_hull_sorted(points, order) == lower_hull(points)


class TestFullHull:
    def test_square_ccw(self):
        pts = np.array([(0, 0), (1, 0), (1, 1), (0, 1), (0.5, 0.5)], dtype=float)
        h = convex_hull(pts)
        assert set(h) == {0, 1, 2, 3}
        n = len(h)
        for i in range(n):
            a, b, c = pts[h[i]], pts[h[(i + 1) % n]], pts[h[(i + 2) % n]]
            assert orient2d(a, b, c) > 0

    def test_all_collinear(self):
        pts = np.array([(0, 0), (1, 1), (2, 2), (3, 3)], dtype=float)
        h = convex_hull(pts)
        assert set(h) == {0, 3}

    @given(st.lists(st.tuples(coord, coord), min_size=3, max_size=30, unique=True))
    @settings(max_examples=80)
    def test_all_points_inside(self, pts):
        points = np.asarray(pts, dtype=float)
        h = convex_hull(points)
        assume(len(h) >= 3)
        n = len(h)
        for k in range(len(points)):
            for i in range(n):
                a, b = points[h[i]], points[h[(i + 1) % n]]
                assert orient2d(a, b, points[k]) >= 0


class TestUpperHull:
    def test_mirror_of_lower(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(-1, 1, size=(40, 2))
        up = upper_hull(pts)
        lo_mirror = lower_hull(pts * np.array([1.0, -1.0]))
        assert sorted(up) == sorted(lo_mirror)
