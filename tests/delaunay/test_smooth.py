"""Tests for mesh smoothing and validation."""

import numpy as np
import pytest

from repro.delaunay.kernel import delaunay_mesh
from repro.delaunay.mesh import TriMesh
from repro.delaunay.refine import refine_pslg
from repro.delaunay.smooth import (laplacian_smooth, metric_smooth,
                                   validate_mesh)


def square_mesh(max_area=0.02):
    pts = np.array([(0, 0), (1, 0), (1, 1), (0, 1)], dtype=float)
    segs = np.array([(0, 1), (1, 2), (2, 3), (3, 0)])
    return refine_pslg(pts, segs, max_area=max_area)


class TestLaplacianSmooth:
    def test_improves_min_angle_of_perturbed_mesh(self):
        rng = np.random.default_rng(0)
        mesh = square_mesh()
        # Perturb interior vertices to damage quality.
        fixed = np.zeros(mesh.n_points, dtype=bool)
        fixed[np.unique(mesh.boundary_edges().ravel())] = True
        pts = mesh.points.copy()
        interior = ~fixed
        h = 0.03
        pts[interior] += rng.uniform(-h, h, size=(interior.sum(), 2))
        bad = TriMesh(pts, mesh.triangles)
        if np.any(bad.areas() <= 0):
            pytest.skip("perturbation inverted the mesh; not the scenario")
        smoothed = laplacian_smooth(bad, iterations=10)
        assert smoothed.min_angle() > bad.min_angle()

    def test_boundary_fixed(self):
        mesh = square_mesh()
        smoothed = laplacian_smooth(mesh, iterations=3)
        bidx = np.unique(mesh.boundary_edges().ravel())
        np.testing.assert_array_equal(smoothed.points[bidx],
                                      mesh.points[bidx])

    def test_never_inverts(self):
        mesh = square_mesh(max_area=0.05)
        smoothed = laplacian_smooth(mesh, iterations=20, relaxation=1.0)
        assert np.all(smoothed.areas() > 0)

    def test_protect_mask(self):
        mesh = square_mesh()
        protect = np.arange(mesh.n_points)  # freeze everything
        smoothed = laplacian_smooth(mesh, protect=protect)
        np.testing.assert_array_equal(smoothed.points, mesh.points)

    def test_validation(self):
        mesh = square_mesh()
        with pytest.raises(ValueError):
            laplacian_smooth(mesh, relaxation=0.0)

    def test_topology_unchanged(self):
        mesh = square_mesh()
        smoothed = laplacian_smooth(mesh)
        np.testing.assert_array_equal(smoothed.triangles, mesh.triangles)
        assert smoothed.is_conforming()


class TestMetricSmooth:
    def test_equalises_metric_lengths(self):
        """A stretched metric pulls vertices toward metric-uniform
        spacing: the variance of metric edge lengths drops."""
        from repro.metric import MetricField, tensor

        mesh = square_mesh()
        field = MetricField.from_sizes(
            mesh.points,
            np.where(mesh.points[:, 0] < 0.5, 0.05, 0.2))

        def length_spread(m):
            t = m.triangles
            edges = np.unique(np.sort(np.concatenate(
                [t[:, [0, 1]], t[:, [1, 2]], t[:, [2, 0]]]), axis=1),
                axis=0)
            tens = field.interpolate(m.points)
            vec = m.points[edges[:, 1]] - m.points[edges[:, 0]]
            m_edge = 0.5 * (tens[edges[:, 0]] + tens[edges[:, 1]])
            ls = np.sqrt(np.maximum(tensor.quad_form(m_edge, vec), 0.0))
            return np.std(np.log(np.maximum(ls, 1e-12)))

        smoothed = metric_smooth(mesh, field, iterations=10)
        assert length_spread(smoothed) < length_spread(mesh)

    def test_never_inverts_and_boundary_fixed(self):
        from repro.metric import MetricField

        mesh = square_mesh(max_area=0.05)
        field = MetricField.uniform(mesh.points, 0.1)
        smoothed = metric_smooth(mesh, field, iterations=15,
                                 relaxation=1.0)
        assert np.all(smoothed.areas() > 0)
        bidx = np.unique(mesh.boundary_edges().ravel())
        np.testing.assert_array_equal(smoothed.points[bidx],
                                      mesh.points[bidx])

    def test_topology_unchanged(self):
        from repro.metric import MetricField

        mesh = square_mesh()
        field = MetricField.uniform(mesh.points, 0.15)
        smoothed = metric_smooth(mesh, field)
        np.testing.assert_array_equal(smoothed.triangles, mesh.triangles)
        assert smoothed.is_conforming()


class TestValidateMesh:
    def test_good_mesh(self):
        mesh = square_mesh()
        rep = validate_mesh(mesh)
        assert rep.ok
        assert rep.conforming
        assert rep.inverted_triangles == 0
        assert rep.delaunay_violations == 0
        assert rep.boundary_loops == 1
        assert rep.total_area == pytest.approx(1.0)
        assert "OK" in rep.summary()

    def test_inverted_detected(self):
        pts = np.array([(0, 0), (1, 0), (0, 1)], dtype=float)
        rep = validate_mesh(TriMesh(pts, np.array([(0, 2, 1)])))
        assert rep.inverted_triangles == 1
        assert not rep.ok

    def test_nonconforming_detected(self):
        pts = np.array([(0, 0), (1, 0), (0, 1), (1, 1), (0.5, -1)],
                       dtype=float)
        rep = validate_mesh(
            TriMesh(pts, np.array([(0, 1, 2), (0, 1, 3), (0, 1, 4)])))
        assert not rep.conforming
        assert not rep.ok

    def test_duplicate_points_detected(self):
        pts = np.array([(0, 0), (1, 0), (0, 1), (0, 0)], dtype=float)
        rep = validate_mesh(TriMesh(pts, np.array([(0, 1, 2)])))
        assert rep.duplicate_points == 1

    def test_missing_segment_detected(self):
        pts = np.array([(0, 0), (1, 0), (0, 1), (1, 1)], dtype=float)
        mesh = TriMesh(pts, np.array([(0, 1, 2)]),
                       segments=np.array([(1, 3)]))
        rep = validate_mesh(mesh)
        assert not rep.segments_present

    def test_hole_counts_two_loops(self):
        outer = [(0, 0), (4, 0), (4, 4), (0, 4)]
        inner = [(1.5, 1.5), (2.5, 1.5), (2.5, 2.5), (1.5, 2.5)]
        pts = np.array(outer + inner, dtype=float)
        segs = np.array([(i, (i + 1) % 4) for i in range(4)]
                        + [(4 + i, 4 + (i + 1) % 4) for i in range(4)])
        mesh = refine_pslg(pts, segs, holes=[(2.0, 2.0)], max_area=0.5)
        rep = validate_mesh(mesh)
        assert rep.boundary_loops == 2
        assert rep.ok

    def test_pipeline_mesh_validates(self):
        from repro import BoundaryLayerConfig, MeshConfig, PSLG, generate_mesh
        from repro.geometry.airfoils import naca0012

        pslg = PSLG.from_loops([naca0012(41)])
        res = generate_mesh(pslg, MeshConfig(
            bl=BoundaryLayerConfig(first_spacing=5e-3, growth_ratio=1.5,
                                   max_layers=8),
            farfield_chords=8.0, target_subdomains=6,
        ))
        rep = validate_mesh(res.mesh, check_delaunay=False)
        assert rep.ok
        assert rep.boundary_loops == 2  # airfoil + far field
