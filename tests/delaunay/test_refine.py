"""Tests for Ruppert refinement."""

import math

import numpy as np
import pytest

from repro.delaunay.mesh import TriMesh
from repro.delaunay.refine import RUPPERT_BOUND, RefinementError, refine_pslg


def square_pslg(side=1.0):
    pts = np.array([(0, 0), (side, 0), (side, side), (0, side)], dtype=float)
    segs = np.array([(0, 1), (1, 2), (2, 3), (3, 0)])
    return pts, segs


class TestQualityRefinement:
    def test_square_quality(self):
        pts, segs = square_pslg()
        mesh = refine_pslg(pts, segs, quality_bound=RUPPERT_BOUND)
        assert mesh.is_conforming()
        assert np.abs(mesh.areas()).sum() == pytest.approx(1.0)
        # All radius-edge ratios below the bound.
        assert mesh.radius_edge_ratios().max() <= RUPPERT_BOUND + 1e-9
        # sqrt(2) bound <=> min angle >= 20.7 degrees.
        assert math.degrees(mesh.min_angle()) >= 20.7 - 1e-6

    def test_thin_rectangle(self):
        pts = np.array([(0, 0), (10, 0), (10, 1), (0, 1)], dtype=float)
        segs = np.array([(0, 1), (1, 2), (2, 3), (3, 0)])
        mesh = refine_pslg(pts, segs)
        assert np.abs(mesh.areas()).sum() == pytest.approx(10.0)
        assert mesh.radius_edge_ratios().max() <= RUPPERT_BOUND + 1e-9

    def test_l_shape(self):
        pts = np.array(
            [(0, 0), (2, 0), (2, 1), (1, 1), (1, 2), (0, 2)], dtype=float
        )
        segs = np.array([(i, (i + 1) % 6) for i in range(6)])
        mesh = refine_pslg(pts, segs)
        assert np.abs(mesh.areas()).sum() == pytest.approx(3.0)
        assert mesh.radius_edge_ratios().max() <= RUPPERT_BOUND + 1e-9

    def test_no_quality_no_change(self):
        pts, segs = square_pslg()
        mesh = refine_pslg(pts, segs, quality_bound=None)
        assert mesh.n_points == 4  # nothing to do


class TestAreaRefinement:
    def test_uniform_area_bound(self):
        pts, segs = square_pslg()
        mesh = refine_pslg(pts, segs, max_area=0.01)
        assert np.abs(mesh.areas()).max() <= 0.01 + 1e-12
        assert np.abs(mesh.areas()).sum() == pytest.approx(1.0)
        # Roughly 1/0.01 * 2 triangles expected; sanity band.
        assert 100 <= mesh.n_triangles <= 800

    def test_area_halving_doubles_triangles_roughly(self):
        pts, segs = square_pslg()
        m1 = refine_pslg(pts, segs, max_area=0.02)
        m2 = refine_pslg(pts, segs, max_area=0.01)
        assert m2.n_triangles > 1.4 * m1.n_triangles

    def test_spatially_varying_sizing(self):
        pts, segs = square_pslg()

        def area_fn(x, y):
            # Fine near the left edge, coarse at the right.
            return 0.001 + 0.05 * x

        mesh = refine_pslg(pts, segs, area_fn=area_fn)
        areas = np.abs(mesh.areas())
        cents = mesh.centroids()
        left = areas[cents[:, 0] < 0.25]
        right = areas[cents[:, 0] > 0.75]
        assert left.mean() < right.mean() / 3
        for a, (cx, cy) in zip(areas, cents):
            assert a <= area_fn(cx, cy) + 1e-12

    def test_bad_max_area(self):
        pts, segs = square_pslg()
        with pytest.raises(ValueError):
            refine_pslg(pts, segs, max_area=0.0)

    def test_steiner_budget(self):
        pts, segs = square_pslg()
        with pytest.raises(RefinementError):
            refine_pslg(pts, segs, max_area=1e-5, max_steiner=50)


class TestConstraintsPreserved:
    def test_boundary_still_present_as_subsegments(self):
        pts, segs = square_pslg()
        mesh = refine_pslg(pts, segs, max_area=0.05)
        # All boundary edges must lie on the original square's sides.
        be = mesh.boundary_edges()
        P = mesh.points
        for u, v in be:
            pu, pv = P[u], P[v]
            on_side = (
                (pu[0] == 0 and pv[0] == 0) or (pu[0] == 1 and pv[0] == 1)
                or (pu[1] == 0 and pv[1] == 0) or (pu[1] == 1 and pv[1] == 1)
            )
            assert on_side, (pu, pv)

    def test_hole_preserved(self):
        outer = [(0, 0), (4, 0), (4, 4), (0, 4)]
        inner = [(1.5, 1.5), (2.5, 1.5), (2.5, 2.5), (1.5, 2.5)]
        pts = np.array(outer + inner, dtype=float)
        segs = np.array(
            [(i, (i + 1) % 4) for i in range(4)]
            + [(4 + i, 4 + (i + 1) % 4) for i in range(4)]
        )
        mesh = refine_pslg(pts, segs, holes=[(2.0, 2.0)], max_area=0.1)
        assert np.abs(mesh.areas()).sum() == pytest.approx(15.0)
        c = mesh.centroids()
        inside_hole = (
            (c[:, 0] > 1.5) & (c[:, 0] < 2.5) & (c[:, 1] > 1.5) & (c[:, 1] < 2.5)
        )
        assert not inside_hole.any()
        assert mesh.radius_edge_ratios().max() <= RUPPERT_BOUND + 1e-9

    def test_no_encroached_segments_remain(self):
        pts, segs = square_pslg()
        mesh = refine_pslg(pts, segs, max_area=0.05)
        P = mesh.points
        # For every constrained subsegment, no mesh vertex strictly inside
        # its diametral circle.
        for u, v in mesh.segments:
            mid = 0.5 * (P[u] + P[v])
            r2 = ((P[u] - P[v]) ** 2).sum() / 4.0
            d2 = ((P - mid) ** 2).sum(axis=1)
            inside = d2 < r2 * (1 - 1e-12)
            inside[[u, v]] = False
            assert not inside.any()


class TestAirfoilRefinement:
    def test_naca0012_mesh(self):
        from repro.geometry.airfoils import naca0012

        af = naca0012(61)
        box = np.array([(-1, -1.5), (2.5, -1.5), (2.5, 1.5), (-1, 1.5)])
        pts = np.vstack([af, box])
        n = len(af)
        segs = np.array(
            [(i, (i + 1) % n) for i in range(n)]
            + [(n + i, n + (i + 1) % 4) for i in range(4)]
        )
        # min_edge_floor guards the sharp trailing-edge cusp.
        mesh = refine_pslg(
            pts, segs, holes=[(0.5, 0.0)], max_area=0.05,
            min_edge_floor=1e-3,
        )
        assert mesh.is_conforming()
        assert mesh.n_triangles > 200
        total = np.abs(mesh.areas()).sum()
        assert total == pytest.approx(3.5 * 3.0 - 0.0817, abs=0.01)
        # Quality holds away from the cusp guard.
        ratios = mesh.radius_edge_ratios()
        lens = mesh.edge_lengths().min(axis=1)
        unguarded = lens > 2e-3
        assert ratios[unguarded].max() <= RUPPERT_BOUND + 1e-6
