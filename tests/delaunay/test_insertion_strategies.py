"""Cavity-engine insertion strategies: registry, independence, parity.

The batch strategy's entire correctness argument rests on one planning
invariant: within a sub-batch, every accepted candidate's cavity
*closed edge-neighbourhood* (cavity plus every triangle sharing an
edge with it) is disjoint from every other accepted cavity.  By the
Clarkson–Shor history lemma a new fan triangle's circumdisk lies
inside disk(destroyed triangle) ∪ disk(surviving edge-neighbour), so
neighbourhood separation guarantees no accepted point's conflict set
changes while the batch replays — the property test here asserts it
on the strategy's own planning trace, and the differential tests pin
the *result* to the scalar path (exact Delaunay, canonical-hash
parity).
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delaunay import available_strategies, get_strategy
from repro.delaunay.cavity import (
    INSERT_ENV,
    BatchInsertion,
    InsertionStrategy,
    ScalarInsertion,
    brio_order,
    canonical_strategy_name,
    resolve_strategy_name,
)
from repro.delaunay.kernel import Triangulation, delaunay_mesh, triangulate
from repro.geometry.airfoils import naca4
from repro.geometry.predicates import incircle
from repro.runtime import serde
from repro.runtime.counters import use_counters


# ----------------------------------------------------------------------
# Registry / resolution
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtin_strategies_registered(self):
        names = available_strategies()
        assert "scalar" in names and "batch" in names
        assert isinstance(get_strategy("scalar"), ScalarInsertion)
        assert isinstance(get_strategy("batch"), BatchInsertion)

    def test_aliases_resolve_to_canonical(self):
        assert canonical_strategy_name("serial") == "scalar"
        assert canonical_strategy_name("default") == "scalar"
        assert canonical_strategy_name("vectorized") == "batch"

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="scalar"):
            canonical_strategy_name("bogus")

    def test_resolution_order_explicit_env_default(self, monkeypatch):
        monkeypatch.delenv(INSERT_ENV, raising=False)
        assert resolve_strategy_name(None) == "scalar"
        monkeypatch.setenv(INSERT_ENV, "vectorized")
        assert resolve_strategy_name(None) == "batch"
        # Explicit argument beats the environment.
        assert resolve_strategy_name("scalar") == "scalar"

    def test_env_typo_raises(self, monkeypatch):
        monkeypatch.setenv(INSERT_ENV, "btach")
        with pytest.raises(ValueError):
            resolve_strategy_name(None)

    def test_custom_strategy_registration(self):
        from repro.delaunay.cavity import _ALIASES, _REGISTRY, register_strategy

        class Probe(InsertionStrategy):
            name = "probe-test"

        register_strategy(Probe(), aliases=("probe-alias",))
        try:
            assert canonical_strategy_name("probe-alias") == "probe-test"
            assert "probe-test" in available_strategies()
        finally:
            _REGISTRY.pop("probe-test", None)
            _ALIASES.pop("probe-alias", None)


# ----------------------------------------------------------------------
# Independence property on the planning trace
# ----------------------------------------------------------------------
def _batch_triangulate(pts, trace):
    tri = Triangulation()
    order = brio_order(pts, seed=0xC0FFEE)
    BatchInsertion(trace=trace).insert_points(tri, pts, order)
    return tri


class TestIndependenceProperty:
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=150, max_value=400))
    @settings(max_examples=15, deadline=None)
    def test_accepted_sets_are_neighbourhood_separated(self, seed, n):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(-3.0, 3.0, size=(n, 2))
        trace = []
        _batch_triangulate(pts, trace)
        committed = sum(len(sub) for sub in trace)
        assert committed > 0, "batch path never engaged"
        for sub in trace:
            for i, (_, cav_i, nbhd_i) in enumerate(sub):
                cav_i = set(cav_i)
                nbhd_i = set(nbhd_i)
                assert cav_i <= nbhd_i
                for j, (_, cav_j, _) in enumerate(sub):
                    if i == j:
                        continue
                    # Cavities pairwise disjoint AND no other accepted
                    # cavity intrudes into this candidate's closed
                    # edge-neighbourhood (both directions hold because
                    # edge adjacency is symmetric).
                    assert nbhd_i.isdisjoint(cav_j), (
                        f"sub-batch places two conflicting points: "
                        f"{sorted(cav_i)} ~ {sorted(cav_j)}")

    def test_clustered_points_still_separate(self):
        # Tight clusters force bucket collisions and retries; whatever
        # is accepted must still be neighbourhood-separated.
        rng = np.random.default_rng(7)
        centers = rng.uniform(0, 1, size=(12, 2))
        pts = np.vstack([
            c + rng.normal(scale=1e-3, size=(30, 2)) for c in centers
        ])
        trace = []
        tri = _batch_triangulate(pts, trace)
        tri.check_integrity()
        for sub in trace:
            claimed = set()
            for _, cav, nbhd in sub:
                assert claimed.isdisjoint(nbhd)
                claimed |= set(cav)


# ----------------------------------------------------------------------
# Differential: batch vs scalar must both be exactly Delaunay
# ----------------------------------------------------------------------
def _assert_exactly_delaunay(mesh):
    assert mesh.is_conforming()
    p = mesh.points
    t = mesh.triangles
    nbr = mesh.neighbors()
    for ti in range(len(t)):
        for k in range(3):
            tj = nbr[ti, k]
            if tj < 0 or tj < ti:
                continue
            u, v = int(t[ti, (k + 1) % 3]), int(t[ti, (k + 2) % 3])
            opp = [int(w) for w in t[tj] if w != u and w != v]
            assert len(opp) == 1
            a, b, c = p[t[ti, 0]], p[t[ti, 1]], p[t[ti, 2]]
            assert incircle(a, b, c, p[opp[0]]) <= 0, (
                f"edge ({u},{v}) not locally Delaunay")


CLOUDS = {
    "uniform": lambda rng: rng.uniform(0, 1, size=(500, 2)),
    "gaussian": lambda rng: rng.normal(size=(500, 2)),
    "anisotropic": lambda rng: rng.uniform(0, 1, (500, 2)) * [100.0, 1.0],
    "grid-jitter": lambda rng: (
        np.stack(np.meshgrid(np.arange(20.0), np.arange(20.0)),
                 axis=-1).reshape(-1, 2)
        + rng.normal(scale=1e-6, size=(400, 2))),
}


class TestDifferential:
    @pytest.mark.parametrize("cloud", sorted(CLOUDS))
    def test_batch_mesh_exactly_delaunay(self, cloud):
        rng = np.random.default_rng(hash(cloud) % (2**32))
        pts = CLOUDS[cloud](rng)
        mesh_b = delaunay_mesh(pts, strategy="batch")
        mesh_s = delaunay_mesh(pts, strategy="scalar")
        _assert_exactly_delaunay(mesh_b)
        assert mesh_b.n_triangles == mesh_s.n_triangles
        assert mesh_b.n_points == mesh_s.n_points

    @pytest.mark.parametrize("cloud", sorted(CLOUDS))
    def test_canonical_hash_parity(self, cloud):
        rng = np.random.default_rng(hash(cloud) % (2**32))
        pts = CLOUDS[cloud](rng)
        h = [serde.canonical_hash(serde.pack_mesh(
                delaunay_mesh(pts, strategy=s).canonical()))
             for s in ("scalar", "batch")]
        assert h[0] == h[1]

    def test_batch_kernel_passes_integrity_audit(self):
        rng = np.random.default_rng(99)
        pts = rng.uniform(0, 10, size=(800, 2))
        tri = triangulate(pts, strategy="batch")
        tri.check_integrity()
        assert tri.stat_batch_points > 0

    def test_duplicate_points_map_to_first_occurrence(self):
        rng = np.random.default_rng(3)
        base = rng.uniform(0, 1, size=(300, 2))
        pts = np.vstack([base, base[:50]])
        for strategy in ("scalar", "batch"):
            tri = triangulate(pts, strategy=strategy)
            # The kernel dedups: one vertex per distinct coordinate.
            assert tri._arr.n_pts == 300, strategy
            # delaunay_mesh keeps the caller's indexing but triangles
            # only ever reference the first occurrence of a duplicate.
            mesh = delaunay_mesh(pts, strategy=strategy)
            assert mesh.n_points == 350
            assert int(mesh.triangles.max()) < 300


class TestNacaGoldenParity:
    def test_naca0012_canonical_hash_parity(self):
        # The golden-case geometry: NACA 0012 surface stations plus a
        # graded cloud around them (the bulk-insert workload the
        # pipeline's CDT stage sees).
        surface = naca4("0012", 101)
        rng = np.random.default_rng(0xC0FFEE)
        cloud = rng.uniform([-0.5, -0.6], [1.5, 0.6], size=(1500, 2))
        pts = np.vstack([surface, cloud])
        meshes = {s: delaunay_mesh(pts, strategy=s)
                  for s in ("scalar", "batch")}
        _assert_exactly_delaunay(meshes["batch"])
        hashes = {s: serde.canonical_hash(serde.pack_mesh(m.canonical()))
                  for s, m in meshes.items()}
        assert hashes["scalar"] == hashes["batch"]


# ----------------------------------------------------------------------
# Counters / env plumbing
# ----------------------------------------------------------------------
class TestCountersAndEnv:
    def test_batch_counter_samples_flow(self):
        rng = np.random.default_rng(11)
        pts = rng.uniform(0, 1, size=(600, 2))
        with use_counters() as sink:
            tri = triangulate(pts, strategy="batch")
            sink.absorb_kernel(tri)
        assert sink.samples.get("kernel.batch_size"), (
            "no kernel.batch_size samples recorded")
        assert "kernel.conflict_retries" in sink.samples
        assert sink.kernel.batch_points == tri.stat_batch_points > 0
        assert sink.kernel.conflict_retries == tri.stat_conflict_retries
        plain = sink.kernel.to_plain()
        assert plain["batch_points"] == tri.stat_batch_points
        assert "conflict_retries" in plain

    def test_scalar_records_no_batch_points(self):
        rng = np.random.default_rng(12)
        pts = rng.uniform(0, 1, size=(300, 2))
        tri = triangulate(pts, strategy="scalar")
        assert tri.stat_batch_points == 0

    def test_env_selects_batch_for_triangulate(self, monkeypatch):
        monkeypatch.setenv(INSERT_ENV, "batch")
        rng = np.random.default_rng(13)
        pts = rng.uniform(0, 1, size=(400, 2))
        tri = triangulate(pts)
        assert tri.stat_batch_points > 0

    def test_generate_mesh_exports_strategy(self, monkeypatch):
        monkeypatch.delenv(INSERT_ENV, raising=False)
        seen = {}

        from repro.core import pipeline

        orig = pipeline._generate_mesh_impl

        def spy(pslg, config, backend, n_ranks, stream, insert_strategy):
            seen["env"] = os.environ.get(INSERT_ENV)
            seen["strategy"] = insert_strategy
            raise RuntimeError("stop here")

        monkeypatch.setattr(pipeline, "_generate_mesh_impl", spy)
        with pytest.raises(RuntimeError, match="stop here"):
            pipeline.generate_mesh(None, insert_strategy="vectorized")
        assert seen == {"env": "batch", "strategy": "batch"}
        # ... and the environment is restored afterwards.
        assert INSERT_ENV not in os.environ
        monkeypatch.setattr(pipeline, "_generate_mesh_impl", orig)
