"""Tests for AABB boxes and Cohen-Sutherland clipping."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.geometry.aabb import AABB, boxes_from_segments, segment_extent_box
from repro.geometry.clipping import (
    BOTTOM,
    INSIDE,
    LEFT,
    RIGHT,
    TOP,
    clip_segment,
    outcode,
    segment_intersects_box,
    segments_intersect_box_batch,
)

coord = st.floats(min_value=-100, max_value=100, allow_nan=False)
point = st.tuples(coord, coord)

UNIT = AABB(0, 0, 1, 1)


class TestAABB:
    def test_inverted_raises(self):
        with pytest.raises(ValueError):
            AABB(1, 0, 0, 1)

    def test_of_points(self):
        b = AABB.of_points([(0, 1), (2, -1), (1, 0)])
        assert (b.xmin, b.ymin, b.xmax, b.ymax) == (0, -1, 2, 1)

    def test_of_empty_raises(self):
        with pytest.raises(ValueError):
            AABB.of_points([])

    def test_contains(self):
        assert UNIT.contains_point((0.5, 0.5))
        assert UNIT.contains_point((0, 0))  # closed box
        assert not UNIT.contains_point((1.1, 0.5))

    def test_overlaps(self):
        assert UNIT.overlaps(AABB(0.5, 0.5, 2, 2))
        assert UNIT.overlaps(AABB(1, 0, 2, 1))  # edge touch
        assert not UNIT.overlaps(AABB(1.01, 0, 2, 1))

    def test_union_and_expand(self):
        u = UNIT.union(AABB(2, 2, 3, 3))
        assert (u.xmin, u.ymin, u.xmax, u.ymax) == (0, 0, 3, 3)
        e = UNIT.expanded(1)
        assert (e.xmin, e.ymin, e.xmax, e.ymax) == (-1, -1, 2, 2)

    def test_4d_point(self):
        assert UNIT.as_4d_point() == (0, 0, 1, 1)

    @given(a=point, b=point)
    def test_segment_extent_contains_endpoints(self, a, b):
        box = segment_extent_box(a, b)
        assert box.contains_point(a) and box.contains_point(b)

    def test_boxes_from_segments(self):
        segs = np.array([[[0, 0], [1, 2]], [[3, -1], [2, 4]]], dtype=float)
        boxes = boxes_from_segments(segs)
        assert boxes.shape == (2, 4)
        np.testing.assert_allclose(boxes[0], [0, 0, 1, 2])
        np.testing.assert_allclose(boxes[1], [2, -1, 3, 4])

    def test_boxes_from_segments_bad_shape(self):
        with pytest.raises(ValueError):
            boxes_from_segments(np.zeros((3, 2)))


class TestOutcode:
    def test_regions(self):
        assert outcode((0.5, 0.5), UNIT) == INSIDE
        assert outcode((-1, 0.5), UNIT) == LEFT
        assert outcode((2, 0.5), UNIT) == RIGHT
        assert outcode((0.5, -1), UNIT) == BOTTOM
        assert outcode((0.5, 2), UNIT) == TOP
        assert outcode((-1, -1), UNIT) == LEFT | BOTTOM
        assert outcode((2, 2), UNIT) == RIGHT | TOP


class TestSegmentIntersectsBox:
    def test_fully_inside(self):
        assert segment_intersects_box((0.2, 0.2), (0.8, 0.8), UNIT)

    def test_crossing(self):
        assert segment_intersects_box((-1, 0.5), (2, 0.5), UNIT)

    def test_diagonal_corner_cut(self):
        assert segment_intersects_box((-0.5, 0.5), (0.5, -0.5), UNIT)

    def test_miss_same_side(self):
        assert not segment_intersects_box((-1, -1), (-1, 2), UNIT)

    def test_miss_diagonal(self):
        # Both endpoints outside in different regions, but misses the box.
        assert not segment_intersects_box((-1, 0.5), (0.5, 2.5), UNIT)

    def test_touch_edge(self):
        assert segment_intersects_box((0, -1), (0, 2), UNIT)

    @given(a=point, b=point)
    @settings(max_examples=300)
    def test_matches_bruteforce(self, a, b):
        from repro.geometry.primitives import segments_intersect

        box = AABB(-10, -10, 10, 10)
        got = segment_intersects_box(a, b, box)
        inside = box.contains_point(a) or box.contains_point(b)
        edges = [
            ((box.xmin, box.ymin), (box.xmax, box.ymin)),
            ((box.xmax, box.ymin), (box.xmax, box.ymax)),
            ((box.xmax, box.ymax), (box.xmin, box.ymax)),
            ((box.xmin, box.ymax), (box.xmin, box.ymin)),
        ]
        expect = inside or any(segments_intersect(a, b, e0, e1) for e0, e1 in edges)
        assert got == expect


class TestClipSegment:
    def test_clip_crossing(self):
        seg = clip_segment((-1, 0.5), (2, 0.5), UNIT)
        assert seg is not None
        (x0, y0), (x1, y1) = seg
        assert sorted([x0, x1]) == pytest.approx([0, 1])
        assert y0 == pytest.approx(0.5) and y1 == pytest.approx(0.5)

    def test_clip_miss(self):
        assert clip_segment((-1, -1), (-1, 2), UNIT) is None

    def test_clip_inside_unchanged(self):
        seg = clip_segment((0.2, 0.2), (0.8, 0.8), UNIT)
        assert seg == ((0.2, 0.2), (0.8, 0.8))

    def test_subnormal_corner_graze(self):
        # Regression: a segment grazing the (0, 0) corner by a subnormal
        # margin used to underflow the product-first interpolation in
        # clip_segment, returning a degenerate "clip" that
        # segment_intersects_box (correctly) rejects.
        a = (-2.3139926960687743e-280, 0.0)
        b = (0.0, -2.3139926960687743e-280)
        assert not segment_intersects_box(a, b, UNIT)
        assert clip_segment(a, b, UNIT) is None

    def test_corner_graze_clip_order_consistency(self):
        # Regression: this segment misses the (0, 1) corner by ~2.6e-202.
        # Clipping the LEFT endpoint first rounds it onto the corner
        # (1.0 + 2.6e-202 -> 1.0, "hit"); clipping the TOP endpoint first
        # keeps both endpoints LEFT ("miss").  clip_segment and
        # segment_intersects_box must pick the endpoint to clip with the
        # same rule, or they disagree on exactly these grazers.
        a = (-2.6050635923917887e-202, 1.0)
        b = (1.0, 2.0)
        assert not segment_intersects_box(a, b, UNIT)
        assert clip_segment(a, b, UNIT) is None

    @given(a=point, b=point)
    @settings(max_examples=200)
    def test_clip_consistent_with_test(self, a, b):
        got = clip_segment(a, b, UNIT)
        assert (got is not None) == segment_intersects_box(a, b, UNIT)
        if got is not None:
            for p in got:
                assert UNIT.expanded(1e-9).contains_point(p)


class TestBatchPrefilter:
    @given(st.lists(st.tuples(point, point), min_size=1, max_size=40))
    @settings(max_examples=100)
    def test_matches_scalar(self, segs):
        box = AABB(-10, -10, 10, 10)
        arr = np.array([[list(a), list(b)] for a, b in segs], dtype=float)
        mask = segments_intersect_box_batch(arr, box)
        for i, (a, b) in enumerate(segs):
            assert mask[i] == segment_intersects_box(a, b, box), (a, b)
