"""Tests for surface resampling."""

import math

import numpy as np
import pytest

from repro.geometry.airfoils import naca0012
from repro.geometry.resample import (
    loop_curvature,
    resample_curvature,
    resample_uniform,
)


def circle(n=100, r=2.0):
    th = np.linspace(0, 2 * math.pi, n, endpoint=False)
    return np.column_stack([r * np.cos(th), r * np.sin(th)])


class TestCurvature:
    def test_circle_curvature(self):
        c = circle(n=200, r=2.0)
        kappa = loop_curvature(c)
        np.testing.assert_allclose(kappa, 0.5, rtol=1e-3)

    def test_square_corners_large(self):
        sq = np.array([(0, 0), (1, 0), (1, 1), (0, 1)], dtype=float)
        kappa = loop_curvature(sq)
        assert np.all(kappa > 1.0)

    def test_flat_segments_zero(self):
        line = np.array([(0, 0), (1, 0), (2, 0), (2, 1), (0, 1)],
                        dtype=float)
        kappa = loop_curvature(line)
        assert kappa[1] == pytest.approx(0.0, abs=1e-12)

    def test_duplicate_vertex_rejected(self):
        bad = np.array([(0, 0), (0, 0), (1, 0), (0, 1)], dtype=float)
        with pytest.raises(ValueError):
            loop_curvature(bad)

    def test_airfoil_le_most_curved(self):
        af = naca0012(201)
        kappa = loop_curvature(af)
        # Exclude the TE cusp vertex itself (a corner, finite but huge).
        smooth = np.abs(af[:, 0] - 1.0) > 1e-6
        le_region = af[:, 0] < 0.02
        assert kappa[smooth & le_region].max() > 5 * np.median(kappa[smooth])


class TestResampleUniform:
    def test_count_and_spacing(self):
        c = circle(n=173)
        out = resample_uniform(c, 60)
        assert len(out) == 60
        d = np.linalg.norm(np.diff(np.vstack([out, out[:1]]), axis=0),
                           axis=1)
        assert d.max() / d.min() < 1.15

    def test_points_on_original_polyline(self):
        from repro.geometry.primitives import segment_point_distance

        sq = np.array([(0, 0), (4, 0), (4, 4), (0, 4)], dtype=float)
        out = resample_uniform(sq, 16)
        for p in out:
            dmin = min(
                segment_point_distance(p, sq[i], sq[(i + 1) % 4])
                for i in range(4)
            )
            assert dmin < 1e-9

    def test_corners_preserved(self):
        sq = np.array([(0, 0), (4, 0), (4, 4), (0, 4)], dtype=float)
        out = resample_uniform(sq, 20)
        out_set = {tuple(np.round(p, 9)) for p in out}
        for corner in sq:
            assert tuple(np.round(corner, 9)) in out_set

    def test_validation(self):
        with pytest.raises(ValueError):
            resample_uniform(circle(), 2)
        sq = np.array([(0, 0), (4, 0), (4, 4), (0, 4)], dtype=float)
        with pytest.raises(ValueError):
            resample_uniform(sq, 3)  # fewer points than corners


class TestResampleCurvature:
    def test_clusters_at_leading_edge(self):
        af = naca0012(401)
        out = resample_curvature(af, 101, strength=3.0)
        assert len(out) == 101
        d = np.linalg.norm(np.diff(np.vstack([out, out[:1]]), axis=0),
                           axis=1)
        mids = 0.5 * (out + np.roll(out, -1, axis=0))
        le = mids[:, 0] < 0.1
        mid_chord = (mids[:, 0] > 0.3) & (mids[:, 0] < 0.7)
        assert d[le].mean() < 0.6 * d[mid_chord].mean()

    def test_zero_strength_is_uniform(self):
        c = circle(n=211)
        a = resample_curvature(c, 50, strength=0.0)
        b = resample_uniform(c, 50)
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_max_ratio_bounds_starvation(self):
        af = naca0012(401)
        out = resample_curvature(af, 81, strength=10.0, max_ratio=5.0)
        d = np.linalg.norm(np.diff(np.vstack([out, out[:1]]), axis=0),
                           axis=1)
        # No absurdly long edges despite the strong clustering.
        assert d.max() / np.median(d) < 12.0

    def test_negative_strength_rejected(self):
        with pytest.raises(ValueError):
            resample_curvature(circle(), 20, strength=-1.0)

    def test_meshing_pipeline_accepts_resampled_surface(self):
        from repro.core.bl_pipeline import (
            BoundaryLayerConfig,
            generate_boundary_layer,
        )
        from repro.geometry.pslg import PSLG

        out = resample_curvature(naca0012(301), 81, strength=2.0)
        pslg = PSLG.from_loops([out])
        res = generate_boundary_layer(
            pslg, BoundaryLayerConfig(first_spacing=2e-3, growth_ratio=1.4,
                                      max_layers=10))
        assert res.mesh.is_conforming()
        assert res.mesh.n_triangles > 100
