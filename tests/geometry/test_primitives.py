"""Tests for geometric primitives."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.geometry.primitives import (
    angle_between,
    circumcenter,
    circumradius,
    distance,
    lerp_unit,
    normalize,
    perp_left,
    perp_right,
    point_on_segment,
    polygon_area,
    polygon_is_ccw,
    rotate,
    segment_intersection_point,
    segment_point_distance,
    segments_intersect,
    signed_turn_angle,
    triangle_angles,
    triangle_area,
)

coord = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)
point = st.tuples(coord, coord)


class TestVectors:
    def test_normalize(self):
        assert normalize((3, 4)) == (0.6, 0.8)

    def test_normalize_zero_raises(self):
        with pytest.raises(ValueError):
            normalize((0, 0))

    def test_perp(self):
        assert perp_left((1, 0)) == (0, 1)
        assert perp_right((1, 0)) == (0, -1)

    def test_rotate_quarter(self):
        x, y = rotate((1, 0), math.pi / 2)
        assert abs(x) < 1e-15 and abs(y - 1) < 1e-15

    @given(point)
    def test_perp_orthogonal(self, v):
        assume(v != (0.0, 0.0))
        for p in (perp_left(v), perp_right(v)):
            assert abs(v[0] * p[0] + v[1] * p[1]) < 1e-9 * (v[0]**2 + v[1]**2 + 1)


class TestAngles:
    def test_angle_between_orthogonal(self):
        assert angle_between((1, 0), (0, 1)) == pytest.approx(math.pi / 2)

    def test_angle_between_opposite(self):
        assert angle_between((1, 0), (-1, 0)) == pytest.approx(math.pi)

    def test_signed_turn(self):
        assert signed_turn_angle((1, 0), (0, 1)) == pytest.approx(math.pi / 2)
        assert signed_turn_angle((1, 0), (0, -1)) == pytest.approx(-math.pi / 2)

    @given(st.floats(min_value=-3.1, max_value=3.1))
    def test_signed_turn_roundtrip(self, theta):
        v = rotate((1.0, 0.0), theta)
        assert signed_turn_angle((1.0, 0.0), v) == pytest.approx(theta, abs=1e-9)


class TestSegments:
    def test_proper_crossing(self):
        assert segments_intersect((0, 0), (2, 2), (0, 2), (2, 0))

    def test_disjoint(self):
        assert not segments_intersect((0, 0), (1, 0), (0, 1), (1, 1))

    def test_shared_endpoint(self):
        assert segments_intersect((0, 0), (1, 0), (1, 0), (2, 1))
        assert not segments_intersect(
            (0, 0), (1, 0), (1, 0), (2, 1), proper_only=True
        )

    def test_t_junction(self):
        assert segments_intersect((0, 0), (2, 0), (1, -1), (1, 0))
        assert not segments_intersect(
            (0, 0), (2, 0), (1, -1), (1, 0), proper_only=True
        )

    def test_collinear_overlap(self):
        assert segments_intersect((0, 0), (2, 0), (1, 0), (3, 0))
        assert not segments_intersect(
            (0, 0), (2, 0), (1, 0), (3, 0), proper_only=True
        )

    def test_collinear_disjoint(self):
        assert not segments_intersect((0, 0), (1, 0), (2, 0), (3, 0))

    def test_intersection_point(self):
        p = segment_intersection_point((0, 0), (2, 2), (0, 2), (2, 0))
        assert p == pytest.approx((1, 1))

    def test_intersection_point_none(self):
        assert segment_intersection_point((0, 0), (1, 0), (0, 1), (1, 1)) is None

    @given(a=point, b=point, c=point, d=point)
    @settings(max_examples=200)
    def test_symmetry(self, a, b, c, d):
        assert segments_intersect(a, b, c, d) == segments_intersect(c, d, a, b)
        assert segments_intersect(a, b, c, d) == segments_intersect(b, a, d, c)

    @given(a=point, b=point, c=point, d=point)
    @settings(max_examples=100)
    def test_intersection_point_lies_on_both(self, a, b, c, d):
        p = segment_intersection_point(a, b, c, d)
        if p is None:
            return
        assert segment_point_distance(p, a, b) < 1e-6 * (
            1 + max(abs(v) for v in (*a, *b, *c, *d))
        )
        assert segment_point_distance(p, c, d) < 1e-6 * (
            1 + max(abs(v) for v in (*a, *b, *c, *d))
        )

    def test_point_on_segment(self):
        assert point_on_segment((1, 1), (0, 0), (2, 2))
        assert not point_on_segment((3, 3), (0, 0), (2, 2))
        assert not point_on_segment((1, 1.0001), (0, 0), (2, 2))

    def test_segment_point_distance(self):
        assert segment_point_distance((0, 1), (0, 0), (2, 0)) == pytest.approx(1)
        assert segment_point_distance((-1, 0), (0, 0), (2, 0)) == pytest.approx(1)
        assert segment_point_distance((3, 0), (0, 0), (2, 0)) == pytest.approx(1)
        assert segment_point_distance((1, 0), (1, 1), (1, 1)) == pytest.approx(1)


class TestPolygons:
    def test_unit_square_area(self):
        sq = [(0, 0), (1, 0), (1, 1), (0, 1)]
        assert polygon_area(sq) == pytest.approx(1.0)
        assert polygon_is_ccw(sq)
        assert polygon_area(sq[::-1]) == pytest.approx(-1.0)

    def test_triangle_area_matches_polygon(self):
        a, b, c = (0, 0), (3, 0), (0, 4)
        assert triangle_area(a, b, c) == pytest.approx(6.0)
        assert polygon_area([a, b, c]) == pytest.approx(6.0)


class TestCircumcircle:
    def test_right_triangle(self):
        cc = circumcenter((0, 0), (2, 0), (0, 2))
        assert cc == pytest.approx((1, 1))
        assert circumradius((0, 0), (2, 0), (0, 2)) == pytest.approx(math.sqrt(2))

    def test_degenerate(self):
        with pytest.raises(ValueError):
            circumcenter((0, 0), (1, 1), (2, 2))
        assert circumradius((0, 0), (1, 1), (2, 2)) == math.inf

    @given(a=point, b=point, c=point)
    @settings(max_examples=100)
    def test_equidistance(self, a, b, c):
        assume(abs(triangle_area(a, b, c)) > 1e-3)
        cc = circumcenter(a, b, c)
        r = distance(cc, a)
        scale = max(1.0, r)
        assert distance(cc, b) == pytest.approx(r, rel=1e-6, abs=1e-6 * scale)
        assert distance(cc, c) == pytest.approx(r, rel=1e-6, abs=1e-6 * scale)


class TestTriangleAngles:
    def test_equilateral(self):
        h = math.sqrt(3) / 2
        angles = triangle_angles((0, 0), (1, 0), (0.5, h))
        for ang in angles:
            assert ang == pytest.approx(math.pi / 3)

    @given(a=point, b=point, c=point)
    @settings(max_examples=100)
    def test_sum_to_pi(self, a, b, c):
        assume(abs(triangle_area(a, b, c)) > 1e-3)
        assert sum(triangle_angles(a, b, c)) == pytest.approx(math.pi)


class TestLerpUnit:
    def test_endpoints(self):
        u, v = (1.0, 0.0), (0.0, 1.0)
        assert lerp_unit(u, v, 0.0) == pytest.approx(u)
        assert lerp_unit(u, v, 1.0) == pytest.approx(v)

    def test_midpoint_unit_length(self):
        w = lerp_unit((1.0, 0.0), (0.0, 1.0), 0.5)
        assert math.hypot(*w) == pytest.approx(1.0)
        assert w[0] == pytest.approx(w[1])

    def test_opposite_vectors_fall_back_to_perp(self):
        w = lerp_unit((1.0, 0.0), (-1.0, 0.0), 0.5)
        assert math.hypot(*w) == pytest.approx(1.0)
        assert abs(w[1]) == pytest.approx(1.0)

    @given(st.floats(min_value=0, max_value=1),
           st.floats(min_value=-3.1, max_value=3.1),
           st.floats(min_value=-3.1, max_value=3.1))
    @settings(max_examples=100)
    def test_always_unit(self, t, th1, th2):
        u = rotate((1.0, 0.0), th1)
        v = rotate((1.0, 0.0), th2)
        w = lerp_unit(u, v, t)
        assert math.hypot(*w) == pytest.approx(1.0, abs=1e-9)
