"""Tests for the PSLG container and airfoil generators."""

import math

import numpy as np
import pytest

from repro.geometry.airfoils import (
    add_cove,
    blunt_trailing_edge,
    cosine_spacing,
    farfield_box,
    naca4,
    naca0012,
    three_element_airfoil,
    transform_coords,
)
from repro.geometry.primitives import polygon_area, polygon_is_ccw
from repro.geometry.pslg import PSLG, Loop


SQUARE = np.array([(0, 0), (1, 0), (1, 1), (0, 1)], dtype=float)


class TestLoop:
    def test_too_few_vertices(self):
        with pytest.raises(ValueError):
            Loop([0, 1])

    def test_repeated_vertex(self):
        with pytest.raises(ValueError):
            Loop([0, 1, 1, 2])

    def test_edges_wrap(self):
        lp = Loop([3, 4, 5])
        assert list(lp.edges()) == [(3, 4), (4, 5), (5, 3)]


class TestPSLG:
    def test_basic_square(self):
        p = PSLG(SQUARE, [Loop([0, 1, 2, 3])])
        assert p.n_points == 4
        assert p.bbox().width == 1

    def test_cw_loop_reoriented(self):
        p = PSLG(SQUARE, [Loop([3, 2, 1, 0])])
        pts = p.loop_points(p.loops[0])
        assert polygon_is_ccw(pts)

    def test_out_of_range_index(self):
        with pytest.raises(ValueError):
            PSLG(SQUARE, [Loop([0, 1, 7])])

    def test_shared_vertices_rejected(self):
        pts = np.vstack([SQUARE, SQUARE + 2.0])
        with pytest.raises(ValueError):
            PSLG(pts, [Loop([0, 1, 2, 3]), Loop([0, 5, 6])])

    def test_nonfinite_rejected(self):
        bad = SQUARE.copy()
        bad[0, 0] = np.nan
        with pytest.raises(ValueError):
            PSLG(bad, [Loop([0, 1, 2, 3])])

    def test_edge_tangents_unit(self):
        p = PSLG(SQUARE, [Loop([0, 1, 2, 3])])
        t = p.loop_edge_tangents(p.loops[0])
        np.testing.assert_allclose(np.linalg.norm(t, axis=1), 1.0)

    def test_edge_lengths(self):
        p = PSLG(SQUARE, [Loop([0, 1, 2, 3])])
        np.testing.assert_allclose(p.loop_edge_lengths(p.loops[0]), 1.0)
        assert p.min_edge_length() == pytest.approx(1.0)

    def test_from_loops_drops_closing_duplicate(self):
        closed = np.vstack([SQUARE, SQUARE[:1]])
        p = PSLG.from_loops([closed])
        assert p.n_points == 4

    def test_all_segments(self):
        p = PSLG.from_loops([SQUARE, SQUARE + 5.0])
        segs = p.all_segments()
        assert segs.shape == (8, 2)

    def test_chord_length(self):
        p = PSLG.from_loops([naca0012(51)])
        assert p.chord_length() == pytest.approx(1.0, abs=1e-3)


class TestCosineSpacing:
    def test_endpoints_and_monotonic(self):
        x = cosine_spacing(21)
        assert x[0] == 0.0 and x[-1] == pytest.approx(1.0)
        assert np.all(np.diff(x) > 0)

    def test_clusters_at_ends(self):
        x = cosine_spacing(101)
        d = np.diff(x)
        assert d[0] < d[len(d) // 2] / 5
        assert d[-1] < d[len(d) // 2] / 5

    def test_too_few(self):
        with pytest.raises(ValueError):
            cosine_spacing(1)


class TestNACA4:
    def test_symmetric_0012(self):
        c = naca0012(101)
        # Symmetric section: for every (x, y) there's an (x, -y).
        ys = {(round(x, 9), round(y, 9)) for x, y in c}
        for x, y in c:
            assert (round(x, 9), round(-y, 9)) in ys

    def test_ccw(self):
        assert polygon_is_ccw(naca0012(51))
        assert polygon_is_ccw(naca4("4412", 51))

    def test_thickness_max(self):
        c = naca0012(201)
        thick = c[:, 1].max() - c[:, 1].min()
        assert thick == pytest.approx(0.12, abs=0.005)

    def test_closed_te_single_vertex(self):
        c = naca4("0012", 51, closed_te=True)
        te = c[np.abs(c[:, 0] - 1.0) < 1e-9]
        assert len(te) == 1

    def test_open_te_two_vertices(self):
        c = naca4("0012", 51, closed_te=False)
        te = c[np.abs(c[:, 0] - 1.0) < 1e-9]
        assert len(te) == 2

    def test_cambered_has_positive_mean_camber(self):
        c = naca4("4412", 101)
        mid = c[(c[:, 0] > 0.3) & (c[:, 0] < 0.7)]
        assert mid[:, 1].mean() > 0.02

    def test_bad_code(self):
        with pytest.raises(ValueError):
            naca4("00x2")
        with pytest.raises(ValueError):
            naca4("0000")

    def test_no_duplicate_consecutive_points(self):
        c = naca4("0012", 101)
        d = np.linalg.norm(np.diff(np.vstack([c, c[:1]]), axis=0), axis=1)
        assert d.min() > 1e-9


class TestTransforms:
    def test_scale_translate(self):
        out = transform_coords(SQUARE, scale=2.0, translate=(1, 1))
        np.testing.assert_allclose(out[0], (1, 1))
        np.testing.assert_allclose(out[2], (3, 3))

    def test_rotation_preserves_area(self):
        out = transform_coords(SQUARE, rotate_deg=37.0, pivot=(0.3, 0.3))
        assert polygon_area(out) == pytest.approx(1.0)

    def test_scale_scales_area(self):
        out = transform_coords(SQUARE, scale=3.0)
        assert polygon_area(out) == pytest.approx(9.0)


class TestCove:
    def test_cove_reduces_area(self):
        c = naca4("4412", 101)
        coved = add_cove(c, x_start=0.6, x_end=0.95, depth=0.5)
        assert polygon_area(coved) < polygon_area(c)

    def test_cove_creates_concavity(self):
        from repro.geometry.predicates import orient2d

        c = naca4("4412", 201)
        coved = add_cove(c, x_start=0.6, x_end=0.95, depth=0.8)
        n = len(coved)
        reflex = 0
        for i in range(n):
            a, b, cc = coved[i - 1], coved[i], coved[(i + 1) % n]
            if orient2d(a, b, cc) < 0:
                reflex += 1
        assert reflex >= 2  # the two cove lips at least

    def test_bad_depth(self):
        with pytest.raises(ValueError):
            add_cove(naca0012(51), depth=0.0)


class TestBluntTE:
    def test_truncation(self):
        c = naca0012(201)
        b = blunt_trailing_edge(c, x_cut=0.95)
        assert b[:, 0].max() == pytest.approx(0.95, abs=1e-9)
        # The blunt base: two vertices at x == x_cut with distinct y.
        base = b[np.abs(b[:, 0] - 0.95) < 1e-9]
        assert len(base) == 2
        assert abs(base[0, 1] - base[1, 1]) > 1e-4

    def test_still_ccw_simple(self):
        b = blunt_trailing_edge(naca0012(101), x_cut=0.9)
        assert polygon_is_ccw(b)

    def test_cut_too_aggressive(self):
        with pytest.raises(ValueError):
            blunt_trailing_edge(naca0012(51), x_cut=-1.0)


class TestThreeElement:
    def test_structure(self):
        p = three_element_airfoil(n_points=61)
        assert [lp.name for lp in p.loops] == ["slat", "main", "flap"]
        assert all(lp.is_body for lp in p.loops)

    def test_loops_disjoint_bboxes_overlap_domain(self):
        """Elements must not intersect each other (they are solid bodies)."""
        from repro.geometry.primitives import segments_intersect

        p = three_element_airfoil(n_points=61)
        loops_pts = [p.loop_points(lp) for lp in p.loops]
        for i in range(len(loops_pts)):
            for j in range(i + 1, len(loops_pts)):
                a, b = loops_pts[i], loops_pts[j]
                for k in range(len(a)):
                    a0, a1 = a[k], a[(k + 1) % len(a)]
                    for l in range(len(b)):
                        b0, b1 = b[l], b[(l + 1) % len(b)]
                        assert not segments_intersect(
                            tuple(a0), tuple(a1), tuple(b0), tuple(b1)
                        ), (i, j, k, l)

    def test_slat_ahead_flap_behind(self):
        p = three_element_airfoil(n_points=41)
        slat, main, flap = (p.loop_points(lp) for lp in p.loops)
        assert slat[:, 0].mean() < main[:, 0].mean() < flap[:, 0].mean()

    def test_ccw_loops(self):
        p = three_element_airfoil(n_points=41)
        for lp in p.loops:
            assert polygon_is_ccw(p.loop_points(lp))


class TestFarfield:
    def test_box_size(self):
        p = PSLG.from_loops([naca0012(51)])
        ff = farfield_box(p, chords=40, n_per_side=8)
        assert len(ff) == 32
        assert ff[:, 0].max() - ff[:, 0].min() == pytest.approx(80.0, rel=0.01)
        assert polygon_is_ccw(ff)

    def test_bad_chords(self):
        p = PSLG.from_loops([naca0012(51)])
        with pytest.raises(ValueError):
            farfield_box(p, chords=0)


class TestExtraGeometries:
    def test_circle(self):
        from repro.geometry.airfoils import circle

        c = circle(64, radius=0.5, center=(0.5, 0.0))
        assert len(c) == 64
        r = np.hypot(c[:, 0] - 0.5, c[:, 1])
        np.testing.assert_allclose(r, 0.5)
        with pytest.raises(ValueError):
            circle(2)

    def test_flat_plate_blunt(self):
        from repro.geometry.airfoils import flat_plate

        p = flat_plate(31, thickness=0.01)
        assert polygon_is_ccw(p)
        # Four corners at the two vertical bases.
        corners = p[(np.abs(p[:, 0]) < 1e-12) | (np.abs(p[:, 0] - 1) < 1e-12)]
        assert len(corners) == 4

    def test_flat_plate_sharp(self):
        from repro.geometry.airfoils import flat_plate

        p = flat_plate(31, thickness=0.01, blunt=False)
        assert polygon_is_ccw(p)
        assert p[:, 0].min() < 0  # sharp nose extends past the plate
        with pytest.raises(ValueError):
            flat_plate(31, thickness=0.0)

    def test_joukowski_cusp(self):
        from repro.core.normals import VertexKind, loop_surface_vertices
        from repro.geometry.airfoils import joukowski
        from repro.geometry.pslg import PSLG

        c = joukowski(201, thickness=0.1, camber=0.05)
        assert polygon_is_ccw(c)
        assert c[:, 0].min() == pytest.approx(0.0)
        assert c[:, 0].max() == pytest.approx(1.0)
        # The conformal map produces a true cusp at the trailing edge.
        pslg = PSLG.from_loops([c])
        sv = loop_surface_vertices(pslg, pslg.loops[0])
        te = max(sv, key=lambda v: v.position[0])
        assert te.kind == VertexKind.CUSP

    def test_joukowski_validation(self):
        from repro.geometry.airfoils import joukowski

        with pytest.raises(ValueError):
            joukowski(4)
        with pytest.raises(ValueError):
            joukowski(101, thickness=0.0)

    def test_naca5_23012(self):
        from repro.geometry.airfoils import naca5

        c = naca5("23012", 101)
        assert polygon_is_ccw(c)
        thick = c[:, 1].max() - c[:, 1].min()
        assert thick == pytest.approx(0.12, abs=0.01)
        # Cambered: forward camber peak (the 230xx family).
        mid = c[(c[:, 0] > 0.1) & (c[:, 0] < 0.3)]
        assert mid[:, 1].mean() > 0.0

    def test_naca5_validation(self):
        from repro.geometry.airfoils import naca5

        with pytest.raises(ValueError):
            naca5("2301")
        with pytest.raises(ValueError):
            naca5("99012")
        with pytest.raises(ValueError):
            naca5("23000")

    def test_joukowski_meshes_cleanly(self):
        from repro.core.bl_pipeline import (
            BoundaryLayerConfig,
            generate_boundary_layer,
        )
        from repro.geometry.airfoils import joukowski
        from repro.geometry.pslg import PSLG

        pslg = PSLG.from_loops([joukowski(81)])
        res = generate_boundary_layer(
            pslg, BoundaryLayerConfig(first_spacing=2e-3, growth_ratio=1.4,
                                      max_layers=10))
        assert res.mesh.is_conforming()
        assert np.all(res.mesh.areas() > 0)
