"""Unit and property tests for the robust geometric predicates."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.predicates import (
    ORIENT_CCW,
    ORIENT_COLLINEAR,
    ORIENT_CW,
    incircle,
    incircle_batch,
    orient2d,
    orient2d_batch,
)

coord = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
point = st.tuples(coord, coord)


class TestOrient2d:
    def test_ccw(self):
        assert orient2d((0, 0), (1, 0), (0, 1)) == ORIENT_CCW

    def test_cw(self):
        assert orient2d((0, 0), (0, 1), (1, 0)) == ORIENT_CW

    def test_collinear(self):
        assert orient2d((0, 0), (1, 1), (2, 2)) == ORIENT_COLLINEAR

    def test_collinear_tiny_offsets(self):
        # Near-degenerate: points on a line with coordinates that round.
        a = (0.1, 0.1)
        b = (0.2, 0.2)
        c = (0.3, 0.3)
        assert orient2d(a, b, c) == ORIENT_COLLINEAR

    def test_adversarial_near_collinear(self):
        # Classic robustness test: walking a point across a line in ulps.
        base = (12.0, 12.0)
        for i in range(-8, 9):
            c = (24.0, np.nextafter(24.0, 24.0 + i))
            got = orient2d((0.0, 0.0), base, c)
            exact = np.sign((c[1] - 24.0))  # line y = x through origin & base
            assert got == int(exact)

    @given(a=point, b=point, c=point)
    @settings(max_examples=200)
    def test_antisymmetry(self, a, b, c):
        assert orient2d(a, b, c) == -orient2d(b, a, c)

    @given(a=point, b=point, c=point)
    @settings(max_examples=200)
    def test_cyclic_invariance(self, a, b, c):
        s = orient2d(a, b, c)
        assert orient2d(b, c, a) == s
        assert orient2d(c, a, b) == s

    @given(a=point, b=point)
    @settings(max_examples=100)
    def test_degenerate_repeats(self, a, b):
        assert orient2d(a, a, b) == ORIENT_COLLINEAR
        assert orient2d(a, b, b) == ORIENT_COLLINEAR
        assert orient2d(a, b, a) == ORIENT_COLLINEAR


class TestOrient2dBatch:
    @given(st.lists(st.tuples(point, point, point), min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_matches_scalar(self, triples):
        a = np.array([t[0] for t in triples])
        b = np.array([t[1] for t in triples])
        c = np.array([t[2] for t in triples])
        batch = orient2d_batch(a, b, c)
        for i, (pa, pb, pc) in enumerate(triples):
            assert batch[i] == orient2d(pa, pb, pc)


class TestIncircle:
    def test_inside(self):
        # Unit circle through three CCW points; origin is inside.
        a, b, c = (1, 0), (0, 1), (-1, 0)
        assert incircle(a, b, c, (0, 0)) == 1

    def test_outside(self):
        a, b, c = (1, 0), (0, 1), (-1, 0)
        assert incircle(a, b, c, (2, 2)) == -1

    def test_cocircular(self):
        a, b, c = (1, 0), (0, 1), (-1, 0)
        assert incircle(a, b, c, (0, -1)) == 0

    def test_orientation_flips_sign(self):
        a, b, c, d = (1, 0), (0, 1), (-1, 0), (0, 0)
        assert incircle(a, c, b, d) == -incircle(a, b, c, d)

    def test_near_cocircular_exact(self):
        a, b, c = (1.0, 0.0), (0.0, 1.0), (-1.0, 0.0)
        d_in = (0.0, np.nextafter(-1.0, 0.0))
        d_out = (0.0, np.nextafter(-1.0, -2.0))
        assert incircle(a, b, c, d_in) == 1
        assert incircle(a, b, c, d_out) == -1

    @given(a=point, b=point, c=point, d=point)
    @settings(max_examples=150)
    def test_symmetry_under_even_permutation(self, a, b, c, d):
        s = incircle(a, b, c, d)
        assert incircle(b, c, a, d) == s
        assert incircle(c, a, b, d) == s

    @given(a=point, b=point, c=point)
    @settings(max_examples=100)
    def test_vertex_on_circle(self, a, b, c):
        # Each defining vertex is cocircular by definition.
        assert incircle(a, b, c, a) == 0
        assert incircle(a, b, c, b) == 0
        assert incircle(a, b, c, c) == 0


class TestIncircleBatch:
    @given(
        st.lists(st.tuples(point, point, point, point), min_size=1, max_size=20)
    )
    @settings(max_examples=40)
    def test_matches_scalar(self, quads):
        a = np.array([q[0] for q in quads])
        b = np.array([q[1] for q in quads])
        c = np.array([q[2] for q in quads])
        d = np.array([q[3] for q in quads])
        batch = incircle_batch(a, b, c, d)
        for i, (pa, pb, pc, pd) in enumerate(quads):
            assert batch[i] == incircle(pa, pb, pc, pd)


def test_incircle_consistent_with_circumcircle_distance():
    rng = np.random.default_rng(42)
    from repro.geometry.primitives import circumcenter, distance

    for _ in range(200):
        pts = rng.uniform(-10, 10, size=(4, 2))
        a, b, c, d = (tuple(p) for p in pts)
        if orient2d(a, b, c) != ORIENT_CCW:
            a, b = b, a
        if orient2d(a, b, c) != ORIENT_CCW:
            continue  # collinear triple
        cc = circumcenter(a, b, c)
        r = distance(cc, a)
        dist_d = distance(cc, d)
        if abs(dist_d - r) < 1e-9 * max(r, 1.0):
            continue  # too close to the circle for float comparison
        expected = 1 if dist_d < r else -1
        assert incircle(a, b, c, d) == expected
