"""Property tests for the content-addressed cache key (hypothesis).

The service's cache is only sound if the canonical hash is a faithful
fingerprint of request *content*: invariant under serde pack→unpack
round trips and dict key order (both of which vary by transport path),
and different whenever any byte of any buffer differs (else distinct
requests would alias to the same mesh).
"""

import numpy as np
import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.pipeline import MeshConfig, pack_mesh_request  # noqa: E402
from repro.geometry.airfoils import naca4, transform_coords  # noqa: E402
from repro.geometry.pslg import PSLG  # noqa: E402
from repro.runtime import serde  # noqa: E402

_DTYPES = ["<f8", "<f4", "<i8", "<i4", "|u1"]


@st.composite
def buffer_dicts(draw):
    """Random serde buffer dicts: mixed dtypes, shapes, raw contents."""
    keys = draw(st.lists(
        st.text(alphabet="abcdefgh_.", min_size=1, max_size=12),
        min_size=1, max_size=5, unique=True))
    out = {}
    for key in keys:
        dtype = np.dtype(draw(st.sampled_from(_DTYPES)))
        ndim = draw(st.integers(0, 2))
        shape = tuple(draw(st.integers(0, 4)) for _ in range(ndim))
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize \
            if ndim else dtype.itemsize
        raw = draw(st.binary(min_size=nbytes, max_size=nbytes))
        out[key] = np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
    return out


@given(buffer_dicts())
@settings(max_examples=60, deadline=None)
def test_bytes_round_trip_is_bit_exact(buffers):
    back = serde.bytes_to_buffers(serde.buffers_to_bytes(buffers))
    assert sorted(back) == sorted(buffers)
    for key in buffers:
        a = np.ascontiguousarray(buffers[key])
        b = back[key]
        assert a.dtype == b.dtype
        assert a.shape == b.shape
        assert a.tobytes() == b.tobytes()


@given(buffer_dicts(), st.randoms(use_true_random=False))
@settings(max_examples=60, deadline=None)
def test_hash_invariant_under_round_trip_and_key_order(buffers, rng):
    reference = serde.canonical_hash(buffers)
    back = serde.bytes_to_buffers(serde.buffers_to_bytes(buffers))
    assert serde.canonical_hash(back) == reference
    keys = list(buffers)
    rng.shuffle(keys)
    shuffled = {key: buffers[key] for key in keys}
    assert serde.canonical_hash(shuffled) == reference


@given(buffer_dicts(), st.data())
@settings(max_examples=60, deadline=None)
def test_hash_sensitive_to_any_flipped_byte(buffers, data):
    keys = [k for k in sorted(buffers) if buffers[k].nbytes > 0]
    if not keys:
        return
    key = data.draw(st.sampled_from(keys))
    arr = np.ascontiguousarray(buffers[key])
    raw = bytearray(arr.tobytes())
    idx = data.draw(st.integers(0, len(raw) - 1))
    raw[idx] ^= 0xFF
    mutated = dict(buffers)
    mutated[key] = np.frombuffer(bytes(raw),
                                 dtype=arr.dtype).reshape(arr.shape)
    assert serde.canonical_hash(mutated) != serde.canonical_hash(buffers)


def test_hash_distinguishes_key_names_and_dtypes():
    a = {"x": np.zeros(4, dtype=np.float64)}
    renamed = {"y": np.zeros(4, dtype=np.float64)}
    # Same 32 raw bytes, different dtype tag.
    retyped = {"x": np.zeros(4, dtype=np.int64)}
    reshaped = {"x": np.zeros((2, 2), dtype=np.float64)}
    hashes = {serde.canonical_hash(b)
              for b in (a, renamed, retyped, reshaped)}
    assert len(hashes) == 4


def test_distinct_pslg_requests_never_collide_on_corpus():
    hashes = set()
    count = 0
    for code in ("0012", "2412", "4412"):
        for n_points in (21, 31):
            for rotate in (0.0, 2.0):
                coords = transform_coords(naca4(code, n_points),
                                          rotate_deg=rotate)
                pslg = PSLG.from_loops([coords], names=[f"naca{code}"])
                hashes.add(serde.canonical_hash(
                    pack_mesh_request(pslg, MeshConfig())))
                count += 1
    assert len(hashes) == count


def test_config_participates_in_the_key():
    pslg = PSLG.from_loops([naca4("0012", 21)], names=["naca0012"])
    base = serde.canonical_hash(pack_mesh_request(pslg, MeshConfig()))
    again = serde.canonical_hash(pack_mesh_request(pslg, MeshConfig()))
    graded = serde.canonical_hash(
        pack_mesh_request(pslg, MeshConfig(grading=0.5)))
    assert base == again  # fresh pack calls are deterministic
    assert graded != base


@given(st.integers(0, 10_000), st.floats(1e-9, 1e-3),
       st.integers(0, 1))
@settings(max_examples=40, deadline=None)
def test_any_coordinate_perturbation_changes_the_key(seed, eps, axis):
    coords = naca4("2412", 21)
    pslg = PSLG.from_loops([coords], names=["naca2412"])
    perturbed_pts = pslg.points.copy()
    idx = seed % len(perturbed_pts)
    perturbed_pts[idx, axis] += eps
    perturbed = PSLG(perturbed_pts, pslg.loops)
    config = MeshConfig()
    assert serde.canonical_hash(pack_mesh_request(perturbed, config)) != \
        serde.canonical_hash(pack_mesh_request(pslg, config))
