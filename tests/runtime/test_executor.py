"""The pluggable executor layer: registry, backends, load board.

Work functions used with the ``processes`` backend live at module scope
— the backend rejects closures by contract (they cannot cross the
process boundary).
"""

import contextlib
import multiprocessing as mp

import numpy as np
import pytest

from repro.lint import tsan
from repro.runtime import counters as counters_mod
from repro.runtime import executor
from repro.runtime.executor import (
    ExecutorError,
    LoadBoard,
    ProcessesBackend,
    lpt_assignment,
)

ALL_BACKENDS = ["serial", "local", "threads", "processes"]


def _ctx():
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def _maybe_suspend(name):
    """Under an ambient REPRO_SANITIZE=1 session the processes backend
    fails fast by design; suspend the detector for those cases only."""
    if name == "processes" and tsan.enabled():
        return tsan.suspend()
    return contextlib.nullcontext()


# ----------------------------------------------------------------------
# Module-level work functions (processes-backend-portable).
# ----------------------------------------------------------------------
def _double(payload):
    return {"x": payload["x"] * 2.0}


def _maybe_boom(payload):
    if payload["flag"][0] > 0:
        raise ValueError("boom in worker")
    return {"flag": payload["flag"]}


def _not_buffers(payload):
    return 3.5


def _count_events(payload):
    sink = counters_mod.current()
    if sink is not None:
        sink.incr("test.items_seen")
    return {"x": payload["x"]}


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_available_includes_all(self):
        names = executor.available_backends()
        assert names == sorted(names)
        for n in ALL_BACKENDS:
            assert n in names

    def test_local_is_alias_for_serial(self):
        assert executor.canonical_backend_name("local") == "serial"
        assert executor.get_backend("local") is executor.get_backend("serial")

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            executor.canonical_backend_name("mpi")
        with pytest.raises(ValueError, match="unknown backend"):
            executor.get_backend("cuda")

    def test_resolve_precedence(self, monkeypatch):
        monkeypatch.delenv(executor.BACKEND_ENV, raising=False)
        assert executor.resolve_backend_name(None) == "local"
        assert executor.resolve_backend_name(None,
                                             default="threads") == "threads"
        monkeypatch.setenv(executor.BACKEND_ENV, "processes")
        assert executor.resolve_backend_name(None) == "processes"
        # Explicit argument beats the environment.
        assert executor.resolve_backend_name("serial") == "serial"

    def test_flags(self):
        assert not executor.get_backend("serial").parallel
        assert executor.get_backend("threads").parallel
        assert executor.get_backend("processes").parallel
        assert executor.get_backend("threads").supports_sanitizer
        assert not executor.get_backend("processes").supports_sanitizer


# ----------------------------------------------------------------------
# map_workitems over every backend
# ----------------------------------------------------------------------
class TestMapWorkitems:
    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_results_in_payload_order(self, name):
        backend = executor.get_backend(name)
        payloads = [{"x": np.full(3, float(i))} for i in range(9)]
        costs = [float(9 - i) for i in range(9)]
        with _maybe_suspend(name):
            results = backend.map_workitems(_double, payloads, costs=costs,
                                            n_ranks=3)
        assert len(results) == 9
        for i, r in enumerate(results):
            assert np.array_equal(r["x"], np.full(3, 2.0 * i))

    @pytest.mark.parametrize("name", ALL_BACKENDS)
    def test_no_costs_given(self, name):
        backend = executor.get_backend(name)
        payloads = [{"x": np.asarray([float(i)])} for i in range(5)]
        with _maybe_suspend(name):
            results = backend.map_workitems(_double, payloads, n_ranks=2)
        for i, r in enumerate(results):
            assert np.array_equal(r["x"], np.asarray([2.0 * i]))

    def test_processes_empty(self):
        with tsan.suspend():
            assert executor.get_backend("processes").map_workitems(
                _double, [], n_ranks=2) == []

    @pytest.mark.parametrize("name", ["threads", "processes"])
    def test_bad_rank_count(self, name):
        with _maybe_suspend(name):
            with pytest.raises(ExecutorError, match="at least one rank"):
                executor.get_backend(name).map_workitems(
                    _double, [{"x": np.ones(1)}], n_ranks=0)

    def test_more_ranks_than_items(self):
        backend = executor.get_backend("processes")
        payloads = [{"x": np.asarray([1.0])}, {"x": np.asarray([2.0])}]
        with tsan.suspend():
            results = backend.map_workitems(_double, payloads, n_ranks=8)
        assert np.array_equal(results[1]["x"], np.asarray([4.0]))


# ----------------------------------------------------------------------
# Processes-backend contracts
# ----------------------------------------------------------------------
class TestProcessesContracts:
    def test_closure_rejected(self):
        backend = executor.get_backend("processes")
        with tsan.suspend():
            with pytest.raises(ExecutorError, match="module-level"):
                backend.map_workitems(lambda p: p, [{"x": np.ones(1)}])

    def test_non_buffer_payload_rejected(self):
        backend = executor.get_backend("processes")
        with tsan.suspend():
            with pytest.raises(ExecutorError, match="buffer dict"):
                backend.map_workitems(_double, [{"x": [1.0, 2.0]}])

    def test_non_buffer_result_rejected(self):
        backend = executor.get_backend("processes")
        with tsan.suspend():
            with pytest.raises(ExecutorError, match="buffer dict"):
                backend.map_workitems(_not_buffers, [{"x": np.ones(1)}])

    def test_worker_exception_propagates(self):
        backend = executor.get_backend("processes")
        payloads = [{"flag": np.asarray([0.0])}, {"flag": np.asarray([1.0])}]
        with tsan.suspend():
            with pytest.raises(ExecutorError, match="boom in worker"):
                backend.map_workitems(_maybe_boom, payloads, n_ranks=2)

    def test_sanitizer_fails_fast(self):
        backend = executor.get_backend("processes")
        with tsan.sanitize():
            with pytest.raises(ExecutorError, match="shared-memory"):
                backend.map_workitems(_double, [{"x": np.ones(1)}])
        # With the detector off again, the same call runs fine.
        with tsan.suspend():
            out = backend.map_workitems(_double, [{"x": np.ones(1)}])
        assert np.array_equal(out[0]["x"], np.full(1, 2.0))

    def test_sanitizer_allowed_on_threads_and_serial(self):
        payloads = [{"x": np.asarray([float(i)])} for i in range(3)]
        with tsan.sanitize() as det:
            for name in ("serial", "threads"):
                out = executor.get_backend(name).map_workitems(
                    _double, payloads, n_ranks=2)
                assert np.array_equal(out[2]["x"], np.asarray([4.0]))
            assert det.status()["races_detected"] == 0

    def test_counter_snapshots_merge_into_parent(self):
        backend = executor.get_backend("processes")
        payloads = [{"x": np.asarray([float(i)])} for i in range(6)]
        with tsan.suspend(), counters_mod.use_counters() as sink:
            backend.map_workitems(_count_events, payloads, n_ranks=2)
        # Worker-side events crossed the process boundary and merged.
        assert sink.events.get("test.items_seen", 0) == 6
        per_rank = [n for name, n in sorted(sink.events.items())
                    if name.startswith("executor.items.rank")]
        assert sum(per_rank) == 6
        assert "executor.steals" in sink.events
        assert any(name == "executor.processes.item"
                   for name in sink.phases)

    def test_spawn_context_also_works(self):
        # Forces the pickled-LoadBoard path even where fork is default.
        backend = ProcessesBackend(start_method="spawn")
        payloads = [{"x": np.asarray([float(i)])} for i in range(4)]
        with tsan.suspend():
            results = backend.map_workitems(_double, payloads, n_ranks=2)
        for i, r in enumerate(results):
            assert np.array_equal(r["x"], np.asarray([2.0 * i]))


# ----------------------------------------------------------------------
# Scheduling: LPT assignment + LoadBoard claims/steals
# ----------------------------------------------------------------------
class TestLptAssignment:
    def test_balances_loads(self):
        costs = [5.0, 4.0, 3.0, 3.0, 2.0, 1.0]
        out = lpt_assignment(costs, 2)
        loads = sorted(sum(costs[i] for i in items) for items in out)
        assert loads == [9.0, 9.0]
        assert sorted(i for items in out for i in items) == list(range(6))

    def test_largest_first(self):
        out = lpt_assignment([1.0, 100.0, 10.0], 3)
        # The heaviest item lands alone on the first-picked worker.
        assert [1] in out

    def test_more_workers_than_items(self):
        out = lpt_assignment([2.0], 4)
        assert sum(len(items) for items in out) == 1


class TestLoadBoard:
    def test_own_items_largest_first(self):
        board = LoadBoard(_ctx(), [1.0, 5.0, 3.0], [[0, 1, 2]])
        claimed = [board.claim(0) for _ in range(4)]
        assert claimed == [(1, False), (2, False), (0, False), None]

    def test_steals_from_most_loaded_victim(self):
        costs = [4.0, 1.0, 1.0, 6.0, 6.0]
        board = LoadBoard(_ctx(), costs, [[0], [1, 2], [3, 4]])
        assert board.claim(0) == (0, False)
        # Worker 0 drained its own assignment; worker 2 holds the most
        # remaining load, so the steal takes its largest item.
        assert board.claim(0) == (3, True)
        assert board.claim(1) == (1, False)
        assert board.claim(2) == (4, False)
        assert board.claim(2) == (2, True)
        assert board.claim(0) is None
        assert board.remaining_loads() == [0.0, 0.0, 0.0]

    def test_each_item_claimed_exactly_once(self):
        rng = np.random.default_rng(11)
        costs = [float(c) for c in rng.uniform(1.0, 9.0, size=20)]
        board = LoadBoard(_ctx(), costs, lpt_assignment(costs, 3))
        claimed = []
        # Interleave claims across workers until the board drains.
        workers = [0, 1, 2]
        k = 0
        while True:
            got = board.claim(workers[k % 3])
            k += 1
            if got is None and len(claimed) == 20:
                break
            if got is not None:
                claimed.append(got[0])
        assert sorted(claimed) == list(range(20))
