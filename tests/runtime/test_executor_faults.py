"""Fault injection for the persistent worker pool.

The pool's crash contract: a SIGKILLed worker never loses work — the
parent detects the death, respawns a worker, requeues the in-flight
item, and the batch result is byte-identical to a serial run.  A worker
that *raises* (an item bug, not a crash) aborts the batch with an
``ExecutorError`` naming the payload index, without hanging or
poisoning the pool.  An item that kills every worker it touches is
given up on after a bounded number of dispatch attempts.

Work functions live at module scope (processes-backend contract); the
crash switch is a marker file so the first execution attempt dies and
every retry succeeds deterministically.
"""

import contextlib
import os
import signal

import numpy as np
import pytest

from repro.lint import tsan
from repro.runtime.executor import ExecutorError, ProcessesBackend


def _suspended():
    """Processes-backend tests fail fast under an ambient sanitizer."""
    if tsan.enabled():
        return tsan.suspend()
    return contextlib.nullcontext()


def _decode_path(payload) -> str:
    return bytes(payload["marker"].astype(np.uint8)).decode()


def _encode_path(path: str) -> np.ndarray:
    return np.frombuffer(path.encode(), dtype=np.uint8).copy()


# ----------------------------------------------------------------------
# Module-level work functions.
# ----------------------------------------------------------------------
def _kill_once_then_double(payload):
    """SIGKILL this worker on the first execution attempt, then behave.

    The marker file flips the switch: missing -> create it and die
    mid-item (the parent never hears back); present -> a plain doubling
    work item.  Retries after the respawn therefore succeed.
    """
    marker = _decode_path(payload)
    if payload["kill"][0] > 0 and not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return {"x": payload["x"] * 2.0}


def _kill_always(payload):
    """Poison item: SIGKILL whichever worker dares to execute it."""
    os.kill(os.getpid(), signal.SIGKILL)


def _boom_on_flag(payload):
    if payload["flag"][0] > 0:
        raise ValueError("deliberate item failure")
    return {"flag": payload["flag"] * 3.0}


def _double(payload):
    return {"x": payload["x"] * 2.0}


# ----------------------------------------------------------------------
# Crash -> respawn -> requeue
# ----------------------------------------------------------------------
class TestWorkerCrash:
    def test_sigkill_mid_batch_respawns_and_requeues(self, tmp_path):
        """A worker SIGKILLed mid-batch costs nothing but time: the pool
        respawns, requeues the lost item, and the batch output is
        byte-identical to computing the items serially."""
        marker = str(tmp_path / "killed-once")
        payloads = [
            {"x": np.full(4, float(i)),
             "kill": np.asarray([1.0 if i == 0 else 0.0]),
             "marker": _encode_path(marker)}
            for i in range(6)
        ]
        backend = ProcessesBackend(persistent=True)
        try:
            with _suspended():
                results = backend.map_workitems(_kill_once_then_double,
                                                payloads, n_ranks=3)
            pool = backend._pool
            assert pool.stats["respawns"] >= 1
            assert os.path.exists(marker)
        finally:
            backend.shutdown_pool()
        # Byte-identical to the serial evaluation of the same items.
        assert len(results) == len(payloads)
        for i, res in enumerate(results):
            expected = {"x": payloads[i]["x"] * 2.0}
            assert set(res) == {"x"}
            assert res["x"].dtype == expected["x"].dtype
            assert res["x"].tobytes() == expected["x"].tobytes()

    def test_crash_during_streaming_session(self, tmp_path):
        """Same contract through the streaming interface."""
        marker = str(tmp_path / "killed-once-stream")
        backend = ProcessesBackend(persistent=True)
        try:
            with _suspended():
                session = backend.stream_workitems(_kill_once_then_double,
                                                   n_ranks=2)
                for i in range(5):
                    session.submit({
                        "x": np.full(3, float(i)),
                        "kill": np.asarray([1.0 if i == 0 else 0.0]),
                        "marker": _encode_path(marker)})
                results = session.results()
        finally:
            backend.shutdown_pool()
        for i, res in enumerate(results):
            assert res["x"].tobytes() == np.full(3, float(i) * 2.0).tobytes()

    def test_poison_item_gives_up_after_bounded_attempts(self):
        """An item that kills every worker is abandoned with an error
        naming the item, not retried forever."""
        backend = ProcessesBackend(persistent=True)
        try:
            with _suspended(), pytest.raises(
                    ExecutorError,
                    match=r"work item 0 crashed its worker on all "
                          r"\d+ dispatch attempts"):
                backend.map_workitems(_kill_always,
                                      [{"x": np.zeros(2)}], n_ranks=2)
            # The abort did not wedge the pool: it still does real work.
            with _suspended():
                out = backend.map_workitems(
                    _double, [{"x": np.asarray([2.5])}], n_ranks=2)
            assert out[0]["x"][0] == 5.0
        finally:
            backend.shutdown_pool()


# ----------------------------------------------------------------------
# Item errors (raises, not crashes)
# ----------------------------------------------------------------------
class TestItemError:
    def test_error_names_payload_index_and_pool_survives(self):
        payloads = [{"flag": np.asarray([0.0])} for _ in range(5)]
        payloads[3] = {"flag": np.asarray([1.0])}
        backend = ProcessesBackend(persistent=True)
        try:
            with _suspended(), pytest.raises(
                    ExecutorError,
                    match=r"work item 3 failed in pool worker \d+"):
                backend.map_workitems(_boom_on_flag, payloads, n_ranks=2)
            # No hang, no poisoned state: the very next batch succeeds
            # on the same pool (workers were not torn down).
            with _suspended():
                out = backend.map_workitems(
                    _boom_on_flag,
                    [{"flag": np.asarray([0.0])}] * 4, n_ranks=2)
            assert all(o["flag"][0] == 0.0 for o in out)
        finally:
            backend.shutdown_pool()

    def test_traceback_is_carried_in_the_error(self):
        backend = ProcessesBackend(persistent=True)
        try:
            with _suspended(), pytest.raises(
                    ExecutorError, match="deliberate item failure"):
                backend.map_workitems(_boom_on_flag,
                                      [{"flag": np.asarray([1.0])}],
                                      n_ranks=1)
        finally:
            backend.shutdown_pool()


# ----------------------------------------------------------------------
# Pool lifecycle
# ----------------------------------------------------------------------
class TestPoolLifecycle:
    def test_workers_are_reused_across_calls(self):
        backend = ProcessesBackend(persistent=True)
        try:
            with _suspended():
                backend.map_workitems(_double, [{"x": np.ones(2)}] * 4,
                                      n_ranks=2)
                forks_after_first = backend._pool.stats["forks"]
                backend.map_workitems(_double, [{"x": np.ones(2)}] * 4,
                                      n_ranks=2)
                assert backend._pool.stats["forks"] == forks_after_first
                assert backend._pool.stats["calls"] == 2
        finally:
            backend.shutdown_pool()

    def test_idle_workers_reaped_after_ttl(self):
        backend = ProcessesBackend(persistent=True, ttl=0.0)
        try:
            with _suspended():
                backend.map_workitems(_double, [{"x": np.ones(2)}] * 2,
                                      n_ranks=2)
                pool = backend._pool
                assert pool.n_workers() == 2
                # TTL 0: the next call boundary reaps every idle worker
                # before refilling on demand.
                backend.map_workitems(_double, [{"x": np.ones(2)}],
                                      n_ranks=1)
                assert pool.stats["reaped"] >= 2
        finally:
            backend.shutdown_pool()

    def test_shutdown_is_idempotent_and_terminal(self):
        backend = ProcessesBackend(persistent=True)
        with _suspended():
            backend.map_workitems(_double, [{"x": np.ones(2)}], n_ranks=1)
        pool = backend._pool
        backend.shutdown_pool()
        assert pool.closed
        assert pool.n_workers() == 0
        backend.shutdown_pool()  # second call is a no-op
        # The backend recovers by building a fresh pool on demand.
        with _suspended():
            out = backend.map_workitems(_double, [{"x": np.ones(2)}],
                                        n_ranks=1)
        assert out[0]["x"][0] == 2.0
        backend.shutdown_pool()
