"""Tests for the profiling/observability layer (repro.runtime.counters)."""

import threading

import numpy as np

from repro.delaunay.kernel import triangulate
from repro.runtime.counters import (
    Counters,
    Histogram,
    KernelCounters,
    current,
    phase,
    use_counters,
)


class TestHistogram:
    def test_add_and_stats(self):
        h = Histogram(8)
        for v in (0, 1, 1, 3, 100):
            h.add(v)
        assert h.count == 5
        assert h.total == 105
        assert h.buckets[1] == 2
        assert h.buckets[7] == 1  # overflow bucket
        assert h.mean() == 21.0
        assert h.percentile(50.0) == 1

    def test_merge_counts_overflow_folding(self):
        h = Histogram(4)
        h.merge_counts([1, 2, 3, 4, 5, 6], count=21, total=100)
        assert h.buckets == [1, 2, 3, 15]
        assert h.count == 21 and h.total == 100


class TestKernelCounters:
    def test_absorb_from_triangulation(self):
        tri = triangulate(np.random.default_rng(0).random((150, 2)))
        kc = KernelCounters()
        kc.absorb(tri)
        assert kc.inserts == 150
        assert kc.incircle_tests > 0
        assert kc.orient_tests > 0
        assert kc.cavity_hist.count == kc.inserts
        assert 0.0 <= kc.exact_escalation_rate < 1.0
        d = kc.as_dict()
        assert d["inserts"] == 150
        assert "exact_escalation_rate" in d

    def test_merge_accumulates(self):
        tri = triangulate(np.random.default_rng(1).random((80, 2)))
        a, b = KernelCounters(), KernelCounters()
        a.absorb(tri)
        b.absorb(tri)
        b.merge(a)
        assert b.inserts == 2 * a.inserts
        assert b.walk_hist.count == 2 * a.walk_hist.count


class TestAmbientSink:
    def test_off_by_default(self):
        assert current() is None
        with phase("noop"):
            pass  # must not raise with no sink installed

    def test_use_counters_installs_and_restores(self):
        with use_counters() as sink:
            assert current() is sink
            with phase("stage"):
                pass
            sink.incr("things", 3)
        assert current() is None
        assert "stage" in sink.phases
        assert sink.events["things"] == 3

    def test_nesting_restores_outer(self):
        with use_counters() as outer:
            with use_counters() as inner:
                assert current() is inner
            assert current() is outer

    def test_report_renders(self):
        with use_counters() as sink:
            with phase("mesh"):
                sink.kernel.absorb(
                    triangulate(np.random.default_rng(2).random((60, 2))))
            sink.incr("steiner_points")
        text = sink.report()
        assert "mesh" in text and "inserts" in text and "steiner_points" in text

    def test_thread_safe_absorption(self):
        tri = triangulate(np.random.default_rng(3).random((50, 2)))
        sink = Counters()

        def work():
            for _ in range(50):
                sink.absorb_kernel(tri)
                sink.incr("n")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sink.kernel.inserts == 200 * tri.stat_inserts
        assert sink.events["n"] == 200


class TestSampleStreams:
    """``observe`` keeps raw per-observation values — the measurement
    source the simulator calibrates its cost/network models from."""

    def test_observe_appends_raw_values(self):
        sink = Counters()
        sink.observe("executor.item_seconds", 0.25)
        sink.observe("executor.item_seconds", 0.5)
        sink.observe("executor.item_bytes", 1024)
        assert sink.samples["executor.item_seconds"] == [0.25, 0.5]
        assert sink.samples["executor.item_bytes"] == [1024.0]

    def test_snapshot_merge_concatenates_streams(self):
        worker_a, worker_b, parent = Counters(), Counters(), Counters()
        for v in (0.1, 0.2):
            worker_a.observe("s", v)
        worker_b.observe("s", 0.3)
        worker_b.observe("other", 7.0)
        parent.observe("s", 0.05)
        parent.merge_snapshot(worker_a.snapshot())
        parent.merge_snapshot(worker_b.snapshot())
        assert parent.samples["s"] == [0.05, 0.1, 0.2, 0.3]
        assert parent.samples["other"] == [7.0]

    def test_snapshot_is_plain_data_copy(self):
        sink = Counters()
        sink.observe("s", 1.0)
        snap = sink.snapshot()
        sink.observe("s", 2.0)
        assert snap["samples"]["s"] == [1.0]  # detached from the sink

    def test_as_dict_summarises_samples(self):
        sink = Counters()
        for v in (1.0, 2.0, 3.0):
            sink.observe("s", v)
        summary = sink.as_dict()["samples"]["s"]
        assert summary == {"n": 3, "total": 6.0, "mean": 2.0}

    def test_observe_thread_safe(self):
        sink = Counters()

        def work():
            for i in range(200):
                sink.observe("s", float(i))

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(sink.samples["s"]) == 800
