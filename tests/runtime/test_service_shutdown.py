"""Shutdown-path tests the main service suite does not cover.

Two concerns live here:

* **threads backend** — it exposes none of the pool hooks
  (``warm_pool``/``abort``/``shutdown_pool``), so service shutdown must
  degrade gracefully through the ``getattr`` probes: the in-flight
  batch runs out, every client still gets a definitive ok/err frame,
  and stop time stays bounded.
* **fd hygiene** — a pool worker respawned *after* the daemon has
  bound its listening socket forks with that fd open.  The pool's
  ``exclude_fds`` contract makes the worker close it at startup; the
  regression test proves the inherited duplicate would otherwise be
  there (positive control) and is gone with the contract in force.

Work functions are module-level so the processes backend's workers can
resolve them by import path (closures are rejected by design).
"""

import os
import threading
import time

import numpy as np
import pytest

from repro.runtime import serde
from repro.runtime.client import ServiceClient
from repro.runtime.counters import monotonic
from repro.runtime.service import MeshService, ServiceError, ServiceThread


def _buffers(tag, n=16):
    return {"x": np.full(n, float(tag)), "tag": np.asarray([float(tag)])}


def _echo_item(payload):
    return {"y": np.asarray(payload["x"]) * 2.0, "tag": payload["tag"]}


def _slow_item(payload):
    time.sleep(float(payload["delay"][0]) if "delay" in payload else 0.3)
    return {"y": np.asarray(payload["x"]) + 1.0}


def _unit_cost(payload):
    return 1.0


# -- threads backend ----------------------------------------------------


def test_threads_shutdown_mid_batch_returns_frames_and_is_bounded(tmp_path):
    """The threads backend has no abort hook: shutdown lets the
    in-flight batch finish, fails undispatched requests cleanly, and
    every client gets exactly one ok/err frame — no hung sockets."""
    svc = MeshService(f"unix:{tmp_path}/svc.sock", backend="threads",
                      n_ranks=2, batch_window=0.05, max_batch=8,
                      work_fn=_slow_item, cost_fn=_unit_cost)
    thread = ServiceThread(svc)
    endpoint = thread.start()
    oks = {}
    errors = {}

    def run(tag):
        try:
            with ServiceClient(endpoint) as client:
                payload = _buffers(tag)
                payload["delay"] = np.asarray([0.5])
                _kind, blob = client.submit_packed(payload)
                oks[tag] = serde.bytes_to_buffers(blob)
        except ServiceError as exc:
            errors[tag] = str(exc)

    clients = [threading.Thread(target=run, args=(float(i),))
               for i in range(4)]
    for t in clients:
        t.start()
    deadline = monotonic() + 20.0
    while svc.stats()["batches"] < 1.0 and monotonic() < deadline:
        time.sleep(0.02)
    t0 = monotonic()
    thread.stop()
    stop_elapsed = monotonic() - t0
    for t in clients:
        t.join(timeout=30)
    assert not any(t.is_alive() for t in clients)
    # Every request resolved one way; the dispatched ones completed
    # with correct results despite the shutdown racing them.
    assert sorted(list(oks) + list(errors)) == [0.0, 1.0, 2.0, 3.0]
    for tag, result in oks.items():
        np.testing.assert_allclose(result["y"], np.full(16, tag) + 1.0)
    assert all("shutting down" in msg or "abort" in msg
               for msg in errors.values())
    # Bounded by the batch running out (2 rounds x 0.5s), not by any
    # timeout: a hang here means a probe path regressed.
    assert stop_elapsed < 10.0


def test_threads_shutdown_idle_is_fast(tmp_path):
    """With nothing in flight, the probe-and-fallback shutdown path
    must not sleep on any pool hook the backend does not have."""
    svc = MeshService(f"unix:{tmp_path}/svc.sock", backend="threads",
                      n_ranks=2, work_fn=_echo_item, cost_fn=_unit_cost)
    thread = ServiceThread(svc)
    endpoint = thread.start()
    with ServiceClient(endpoint) as client:
        _kind, blob = client.submit_packed(_buffers(3.0))
    result = serde.bytes_to_buffers(blob)
    np.testing.assert_allclose(result["y"], np.full(16, 6.0))
    t0 = monotonic()
    thread.stop()
    assert monotonic() - t0 < 5.0


# -- listening-socket fd hygiene ---------------------------------------


def _fds_linked_to_socket(pid, inode):
    """fd numbers in ``/proc/<pid>/fd`` that point at ``socket:[inode]``."""
    target = f"socket:[{inode}]"
    try:
        entries = os.listdir(f"/proc/{pid}/fd")
    except OSError:
        return None  # process already gone
    found = []
    for entry in entries:
        try:
            link = os.readlink(f"/proc/{pid}/fd/{entry}")
        except OSError:
            continue
        if link == target:
            found.append(int(entry))
    return found


def _wait_for_clean_fds(pid, inode, timeout=5.0):
    """Poll until the worker's startup close-loop has run (or fail)."""
    deadline = monotonic() + timeout
    while monotonic() < deadline:
        linked = _fds_linked_to_socket(pid, inode)
        if not linked:
            return linked
        time.sleep(0.02)
    return _fds_linked_to_socket(pid, inode)


@pytest.mark.skipif(not os.path.isdir("/proc/self/fd"),
                    reason="needs /proc fd introspection")
def test_respawned_worker_does_not_inherit_listening_socket(tmp_path):
    """A worker forked after bind must not hold the listening fd.

    Warming before bind protects the initial fleet, but respawns
    (worker death mid-request) fork from a parent whose listening
    socket is open.  The daemon registers that fd for exclusion, so
    the replacement closes it at startup — otherwise the duplicate
    keeps the accept() endpoint alive past service shutdown.
    """
    svc = MeshService(f"unix:{tmp_path}/svc.sock", backend="processes",
                      n_ranks=2, work_fn=_echo_item, cost_fn=_unit_cost)
    thread = ServiceThread(svc)
    try:
        endpoint = thread.start()
        with ServiceClient(endpoint) as client:
            client.submit_packed(_buffers(1.0))
        assert svc._server is not None and svc._server.sockets
        inode = os.fstat(svc._server.sockets[0].fileno()).st_ino
        pool = svc._backend._pool
        assert pool is not None and pool.n_workers() >= 2
        # Sanity: warm workers forked before bind never saw the fd.
        for handle in pool._workers.values():
            assert not _fds_linked_to_socket(handle.proc.pid, inode)
        # The daemon registered the listening fd with the backend.
        assert pool.exclude_fds, "listening fd was not registered"
        # Positive control: a worker forked after bind WITHOUT the
        # exclusion inherits the listening socket — the hazard is real
        # and the /proc scan detects it.
        pool.exclude_fds = ()
        leaky = pool._spawn()
        time.sleep(0.2)  # let the child reach its recv loop
        assert _fds_linked_to_socket(leaky.proc.pid, inode), \
            "control worker should inherit the listening fd"
        # Restore the contract and respawn: the replacement closes the
        # fd at startup.
        pool.exclude_fds = tuple(svc._backend._exclude_fds)
        clean = pool._spawn()
        assert _wait_for_clean_fds(clean.proc.pid, inode) == []
        # The service still works with the extra workers around.
        with ServiceClient(endpoint) as client:
            _kind, blob = client.submit_packed(_buffers(2.0))
        result = serde.bytes_to_buffers(blob)
        np.testing.assert_allclose(result["y"], np.full(16, 4.0))
    finally:
        thread.stop()
