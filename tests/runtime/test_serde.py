"""Buffer serde round trips must be exact — the backend-parity contract
(`serial` == `threads` == `processes`) rests on bit-identical transport."""

import math

import numpy as np
import pytest

from repro.core.bl_pipeline import BoundaryLayerConfig
from repro.core.decouple import DecoupledSubdomain
from repro.delaunay.mesh import TriMesh
from repro.geometry.airfoils import naca0012, three_element_airfoil
from repro.geometry.pslg import PSLG
from repro.runtime import serde
from repro.sizing.functions import (
    CallableSizing,
    GradedDistanceSizing,
    RadialSizing,
    UniformSizing,
)


def random_ring(rng, n):
    """A random star-shaped simple polygon (CCW)."""
    angles = np.sort(rng.uniform(0.0, 2.0 * math.pi, size=n))
    radii = rng.uniform(0.5, 2.0, size=n)
    return np.column_stack([radii * np.cos(angles), radii * np.sin(angles)])


class TestSubdomainRoundTrip:
    def test_simple_exact(self):
        rng = np.random.default_rng(3)
        sub = DecoupledSubdomain(ring=random_ring(rng, 17), level=2,
                                 est_triangles=123.5)
        back = serde.unpack_subdomain(serde.pack_subdomain(sub))
        assert np.array_equal(back.ring, sub.ring)
        assert back.level == 2
        assert back.est_triangles == pytest.approx(123.5, abs=0.0)
        assert back.hole_rings == []
        assert back.holes == []

    def test_holes_exact(self):
        rng = np.random.default_rng(4)
        sub = DecoupledSubdomain(
            ring=random_ring(rng, 23) * 10.0,
            hole_rings=[random_ring(rng, 9), random_ring(rng, 12)],
            holes=[(0.25, -0.5), (1.0 / 3.0, 2.0 / 7.0)],
        )
        back = serde.unpack_subdomain(serde.pack_subdomain(sub))
        assert len(back.hole_rings) == 2
        for a, b in zip(back.hole_rings, sub.hole_rings):
            assert np.array_equal(a, b)
        assert back.holes == sub.holes  # tuples of exact floats

    def test_property_many_random(self):
        """Property-style sweep: random ring/hole/hole-count combinations
        survive the round trip bit-exactly."""
        rng = np.random.default_rng(5)
        for trial in range(25):
            n_holes = int(rng.integers(0, 4))
            sub = DecoupledSubdomain(
                ring=random_ring(rng, int(rng.integers(4, 40))) * 100.0,
                level=int(rng.integers(0, 7)),
                est_triangles=float(rng.uniform(0, 1e6)),
                hole_rings=[random_ring(rng, int(rng.integers(3, 12)))
                            for _ in range(n_holes)],
                holes=[tuple(rng.uniform(-1, 1, size=2))
                       for _ in range(n_holes)],
            )
            back = serde.unpack_subdomain(serde.pack_subdomain(sub))
            assert np.array_equal(back.ring, sub.ring)
            assert back.level == sub.level
            assert back.est_triangles == pytest.approx(sub.est_triangles,
                                                       abs=0.0)
            assert len(back.hole_rings) == n_holes
            for a, b in zip(back.hole_rings, sub.hole_rings):
                assert np.array_equal(a, b)
            assert all(
                ha == hb for ha, hb in zip(back.holes, sub.holes)
            )


class TestMeshRoundTrip:
    def test_exact(self):
        pts = np.asarray([[0.0, 0.0], [1.0, 0.0], [0.5, 1.0],
                          [1.5, 1.0]])
        tris = np.asarray([[0, 1, 2], [1, 3, 2]], dtype=np.int32)
        segs = np.asarray([[0, 1]], dtype=np.int32)
        mesh = TriMesh(pts, tris, segs)
        back = serde.unpack_mesh(serde.pack_mesh(mesh))
        assert np.array_equal(back.points, mesh.points)
        assert np.array_equal(back.triangles, mesh.triangles)
        assert np.array_equal(back.segments, mesh.segments)

    def test_empty_segments(self):
        mesh = TriMesh(np.asarray([[0.0, 0.0], [1.0, 0.0], [0.5, 1.0]]),
                       np.asarray([[0, 1, 2]], dtype=np.int32))
        back = serde.unpack_mesh(serde.pack_mesh(mesh))
        assert back.segments.shape == (0, 2)

    def test_pack_is_zero_copy(self):
        """pack/unpack must not copy the mesh arrays (buffer identity)."""
        mesh = TriMesh(np.asarray([[0.0, 0.0], [1.0, 0.0], [0.5, 1.0]]),
                       np.asarray([[0, 1, 2]], dtype=np.int32))
        buffers = serde.pack_mesh(mesh)
        assert buffers["points"] is mesh.points
        tr = buffers["triangles"]
        assert tr is mesh.triangles or tr.base is mesh.triangles
        back = serde.unpack_mesh(buffers)
        assert back.points is buffers["points"]


class TestSharedMemoryTransport:
    def test_round_trip_exact_and_zero_copy(self):
        rng = np.random.default_rng(7)
        buffers = {
            "points": rng.random((5000, 2)),
            "triangles": rng.integers(0, 5000, (9000, 3)).astype(np.int32),
            "segments": np.empty((0, 2), dtype=np.int32),
        }
        name, meta = serde.buffers_to_shm(buffers)
        out = serde.buffers_from_shm(name, meta)
        assert set(out) == set(buffers)
        for k in buffers:
            assert np.array_equal(out[k], buffers[k])
            assert out[k].dtype == buffers[k].dtype
            assert not out[k].flags.writeable
        # All views share one mapping: zero-copy attach.
        assert out["points"].base is not None

    def test_segment_freed_after_views_die(self):
        import gc
        import os

        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        name, meta = serde.buffers_to_shm(
            {"x": np.zeros((4096, 2), dtype=np.float64)})
        out = serde.buffers_from_shm(name, meta)
        # Attach unlinks the name immediately; the data stays readable
        # through the existing mapping.
        assert not os.path.exists(os.path.join("/dev/shm", name.lstrip("/")))
        assert float(out["x"].sum()) == 0.0
        del out
        gc.collect()

    def test_bytes_shm_counter(self):
        from repro.runtime.counters import use_counters

        with use_counters() as sink:
            name, meta = serde.buffers_to_shm(
                {"x": np.zeros(1024, dtype=np.float64)})
        serde.buffers_from_shm(name, meta)
        assert sink.events.get("serde.bytes_shm", 0) >= 8192

    def test_shm_timing_samples_recorded(self):
        """Each publish records a paired (nbytes, seconds) observation —
        the simulator's network-model fit data."""
        from repro.runtime.counters import use_counters

        with use_counters() as sink:
            name, meta = serde.buffers_to_shm(
                {"x": np.zeros(2048, dtype=np.float64)})
        serde.buffers_from_shm(name, meta)
        nbytes = sink.samples["serde.shm_nbytes"]
        seconds = sink.samples["serde.shm_seconds"]
        assert len(nbytes) == len(seconds) == 1
        assert nbytes[0] >= 2048 * 8
        assert seconds[0] >= 0.0


class TestWireEnvelope:
    """``buffers_to_wire``: inline below the threshold, shm above, and
    the consuming/discarding sides leave no segment behind."""

    def _buffers(self, n):
        return {"x": np.arange(n, dtype=np.float64)}

    def test_small_payload_inline(self):
        wire = serde.buffers_to_wire(self._buffers(8))
        assert wire[0] == "inline"
        out = serde.wire_to_buffers(wire)
        assert np.array_equal(out["x"], np.arange(8, dtype=np.float64))

    def test_large_payload_rides_shm(self):
        buffers = self._buffers(50_000)
        wire = serde.buffers_to_wire(buffers)
        assert wire[0] == "shm"
        out = serde.wire_to_buffers(wire)
        assert np.array_equal(out["x"], buffers["x"])

    def test_threshold_override(self):
        wire = serde.buffers_to_wire(self._buffers(8), min_bytes=1)
        assert wire[0] == "shm"
        serde.discard_wire(wire)
        wire = serde.buffers_to_wire(self._buffers(50_000),
                                     min_bytes=1 << 30)
        assert wire[0] == "inline"

    def test_wire_nbytes_both_kinds(self):
        buffers = self._buffers(1000)
        expected = serde.buffers_nbytes(buffers)
        assert serde.wire_nbytes(serde.buffers_to_wire(
            buffers, min_bytes=1 << 30)) == expected
        shm_wire = serde.buffers_to_wire(buffers, min_bytes=1)
        assert serde.wire_nbytes(shm_wire) == expected
        serde.discard_wire(shm_wire)

    def test_discard_frees_segment_and_is_idempotent(self):
        import os

        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        wire = serde.buffers_to_wire(self._buffers(4096), min_bytes=1)
        name = wire[1].lstrip("/")
        assert os.path.exists(os.path.join("/dev/shm", name))
        serde.discard_wire(wire)
        assert not os.path.exists(os.path.join("/dev/shm", name))
        serde.discard_wire(wire)  # second discard: tolerated no-op
        serde.discard_wire(("inline", self._buffers(4)))  # no-op too

    def test_unknown_kind_rejected(self):
        with pytest.raises(serde.SerdeError, match="wire"):
            serde.wire_to_buffers(("carrier-pigeon", "x", {}))


class TestPSLGRoundTrip:
    @pytest.mark.parametrize("pslg", [
        PSLG.from_loops([naca0012(41)], names=["naca0012"]),
        three_element_airfoil(n_points=21),
    ])
    def test_exact(self, pslg):
        back = serde.unpack_pslg(serde.pack_pslg(pslg))
        assert np.array_equal(back.points, pslg.points)
        assert len(back.loops) == len(pslg.loops)
        for a, b in zip(back.loops, pslg.loops):
            assert np.array_equal(a.indices, b.indices)
            assert a.name == b.name
            assert a.is_body == b.is_body


class TestSizingRoundTrip:
    def test_uniform(self):
        s = serde.unpack_sizing(serde.pack_sizing(UniformSizing(0.125)))
        assert isinstance(s, UniformSizing)
        assert s.area_at(3.0, -4.0) == pytest.approx(0.125, abs=0.0)

    def test_radial_with_inf_cap(self):
        src = RadialSizing((0.5, -0.25), h0=1e-3, grading=0.3,
                           h_max=math.inf)
        s = serde.unpack_sizing(serde.pack_sizing(src))
        assert isinstance(s, RadialSizing)
        for x, y in [(0.0, 0.0), (10.0, 5.0), (-3.0, 7.0)]:
            assert s.area_at(x, y) == pytest.approx(src.area_at(x, y),
                                                    abs=0.0)

    def test_graded_distance_identical_everywhere(self):
        rng = np.random.default_rng(6)
        src = GradedDistanceSizing(rng.uniform(size=(300, 2)), h0=2e-3,
                                   grading=0.35, h_max=1.5)
        s = serde.unpack_sizing(serde.pack_sizing(src))
        assert isinstance(s, GradedDistanceSizing)
        for x, y in rng.uniform(-20, 20, size=(50, 2)):
            assert s.area_at(x, y) == pytest.approx(src.area_at(x, y),
                                                    abs=0.0)

    def test_callable_rejected(self):
        with pytest.raises(serde.SerdeError, match="not serializable"):
            serde.pack_sizing(CallableSizing(lambda x, y: 1.0))


class TestBLConfigRoundTrip:
    def test_exact(self):
        cfg = BoundaryLayerConfig(first_spacing=3e-4, growth_ratio=1.17,
                                  max_layers=23, isotropy_factor=0.8,
                                  triangulation="structured")
        back = serde.unpack_bl_config(serde.pack_bl_config(cfg))
        assert back == cfg

    def test_growth_override_rejected(self):
        from repro.sizing.growth import GeometricGrowth

        cfg = BoundaryLayerConfig(growth=GeometricGrowth(1e-3, 1.2))
        with pytest.raises(serde.SerdeError, match="growth"):
            serde.pack_bl_config(cfg)


class TestHelpers:
    def test_nest_unnest(self):
        a = {"x": np.zeros(3), "y": np.ones(2)}
        b = {"z": np.arange(4)}
        payload = {**serde.nest("a.", a), **serde.nest("b.", b)}
        back = serde.unnest("a.", payload)
        assert sorted(back) == ["x", "y"]
        assert np.array_equal(back["y"], a["y"])
        with pytest.raises(serde.SerdeError):
            serde.unnest("missing.", payload)

    def test_is_buffers(self):
        assert serde.is_buffers({"a": np.zeros(1)})
        assert serde.is_buffers({})
        assert not serde.is_buffers({"a": [1, 2]})
        assert not serde.is_buffers([np.zeros(1)])
        assert not serde.is_buffers({1: np.zeros(1)})

    def test_buffers_nbytes(self):
        buffers = {"a": np.zeros(4, dtype=np.float64),
                   "b": np.zeros(4, dtype=np.int32)}
        assert serde.buffers_nbytes(buffers) == 4 * 8 + 4 * 4
