"""Tests for simulator tracing and Gantt rendering."""

import numpy as np
import pytest

from repro.runtime.simulator import NetworkModel, SimConfig, SimTask
from repro.runtime.trace import render_gantt, simulate_traced


def tasks(n=64, cost=0.5):
    return [SimTask(cost, 4096.0) for _ in range(n)]


class TestSimulateTraced:
    def test_intervals_cover_busy_time(self):
        tr = simulate_traced(tasks(), 4)
        per_rank = np.zeros(4)
        for iv in tr.intervals:
            assert iv.end > iv.start
            per_rank[iv.rank] += iv.end - iv.start
        np.testing.assert_allclose(per_rank, tr.result.busy, rtol=1e-12)

    def test_intervals_disjoint_per_rank(self):
        tr = simulate_traced(tasks(n=40), 4)
        by_rank = {}
        for iv in tr.intervals:
            by_rank.setdefault(iv.rank, []).append((iv.start, iv.end))
        for spans in by_rank.values():
            spans.sort()
            for (s0, e0), (s1, e1) in zip(spans, spans[1:]):
                assert s1 >= e0 - 1e-12

    def test_every_task_appears_once(self):
        tr = simulate_traced(tasks(n=50), 8)
        ids = sorted(iv.task_id for iv in tr.intervals)
        assert ids == list(range(50))

    def test_steals_recorded(self):
        rng = np.random.default_rng(0)
        skewed = [SimTask(float(c)) for c in rng.lognormal(0, 1.2, 300)]
        tr = simulate_traced(skewed, 16)
        assert len(tr.steal_times) == tr.result.n_steal_successes
        for t in tr.steal_times:
            assert 0 <= t <= tr.result.makespan

    def test_idle_fraction_tail(self):
        tr = simulate_traced(tasks(), 4)
        f = tr.idle_fraction_tail(0.2)
        assert 0.0 <= f <= 1.0

    def test_matches_untraced_result(self):
        from repro.runtime.simulator import simulate

        t = tasks(n=30)
        tr = simulate_traced(t, 4)
        plain = simulate(t, 4)
        assert tr.result.makespan == pytest.approx(plain.makespan)


class TestGantt:
    def test_render_shape(self):
        tr = simulate_traced(tasks(n=32), 4)
        txt = render_gantt(tr, width=40)
        lines = txt.splitlines()
        assert len(lines) == 5  # 4 ranks + summary
        for line in lines[:4]:
            assert line.startswith("r0")
            assert len(line.split("|")[1]) == 40
        assert "makespan" in lines[-1]

    def test_rank_cap(self):
        tr = simulate_traced(tasks(n=128), 64)
        txt = render_gantt(tr, width=30, max_ranks=8)
        assert "more ranks" in txt

    def test_busy_ranks_mostly_hash(self):
        tr = simulate_traced(tasks(n=64), 2)
        txt = render_gantt(tr, width=50)
        row0 = txt.splitlines()[0].split("|")[1]
        assert row0.count("#") > 45  # nearly fully busy
