"""Shared-memory hygiene: no orphaned segments, whatever the exit path.

Every shm segment the executor publishes (input payloads *and* result
meshes — both directions use the same wire envelope) must be unlinked by
exactly one consumer.  These tests force the threshold to zero so every
transfer rides shared memory, then scan ``/dev/shm`` for leaked
``psm_*`` segments after: a clean batch, a streamed session, a
SIGKILLed worker (the requeue path re-publishes the payload), an item
failure (the abort path discards undelivered wires), and pool shutdown.
"""

import contextlib
import os
import signal

import numpy as np
import pytest

from repro.lint import tsan
from repro.runtime import serde
from repro.runtime.executor import ExecutorError, ProcessesBackend

SHM_DIR = "/dev/shm"

pytestmark = pytest.mark.skipif(
    not os.path.isdir(SHM_DIR),
    reason="no /dev/shm to scan on this platform")


def _segments():
    """Names of live posix shared-memory segments (Python's psm_ pool)."""
    return {n for n in os.listdir(SHM_DIR) if n.startswith("psm_")}


def _suspended():
    if tsan.enabled():
        return tsan.suspend()
    return contextlib.nullcontext()


@pytest.fixture
def shm_everything(monkeypatch):
    """Force every payload/result through shared memory (threshold 0).

    The backend is constructed *inside* each test, after this fixture
    ran, so forked workers inherit the zeroed threshold.
    """
    monkeypatch.setattr(serde, "SHM_MIN_BYTES", 0)


def _double(payload):
    return {"x": payload["x"] * 2.0}


def _boom_on_flag(payload):
    if payload["flag"][0] > 0:
        raise ValueError("hygiene failure path")
    return {"flag": payload["flag"]}


def _kill_once_then_double(payload):
    marker = bytes(payload["marker"].astype(np.uint8)).decode()
    if payload["kill"][0] > 0 and not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return {"x": payload["x"] * 2.0}


class TestShmHygiene:
    def test_clean_batch_leaves_no_segments(self, shm_everything):
        before = _segments()
        backend = ProcessesBackend(persistent=True)
        try:
            with _suspended():
                out = backend.map_workitems(
                    _double, [{"x": np.full(64, float(i))}
                              for i in range(8)], n_ranks=3)
            assert len(out) == 8
            # Wires are consumed (attach+unlink) as they are delivered:
            # clean even before shutdown.
            assert _segments() <= before
        finally:
            backend.shutdown_pool()
        assert _segments() <= before

    def test_streamed_session_leaves_no_segments(self, shm_everything):
        before = _segments()
        backend = ProcessesBackend(persistent=True)
        try:
            with _suspended():
                session = backend.stream_workitems(_double, n_ranks=2)
                for i in range(6):
                    session.submit({"x": np.full(32, float(i))})
                session.results()
            assert _segments() <= before
        finally:
            backend.shutdown_pool()
        assert _segments() <= before

    def test_worker_death_leaks_nothing(self, shm_everything, tmp_path):
        """The killed worker held an attached input segment; the parent
        must discard the undelivered wire before re-publishing the
        requeued payload."""
        before = _segments()
        marker = str(tmp_path / "shm-kill-once")
        payloads = [
            {"x": np.full(64, float(i)),
             "kill": np.asarray([1.0 if i == 0 else 0.0]),
             "marker": np.frombuffer(marker.encode(),
                                     dtype=np.uint8).copy()}
            for i in range(6)
        ]
        backend = ProcessesBackend(persistent=True)
        try:
            with _suspended():
                out = backend.map_workitems(_kill_once_then_double,
                                            payloads, n_ranks=3)
            assert backend._pool.stats["respawns"] >= 1
            assert len(out) == 6
            assert _segments() <= before
        finally:
            backend.shutdown_pool()
        assert _segments() <= before

    def test_item_failure_abort_leaks_nothing(self, shm_everything):
        """The abort path quiesces in-flight items and discards their
        result wires; pending undelivered payload wires are freed."""
        before = _segments()
        payloads = [{"flag": np.asarray([0.0] * 32)} for _ in range(6)]
        payloads[2] = {"flag": np.asarray([1.0] * 32)}
        backend = ProcessesBackend(persistent=True)
        try:
            with _suspended(), pytest.raises(ExecutorError,
                                             match="work item 2"):
                backend.map_workitems(_boom_on_flag, payloads, n_ranks=2)
            assert _segments() <= before
        finally:
            backend.shutdown_pool()
        assert _segments() <= before

    def test_fork_per_call_path_leaks_nothing(self, shm_everything):
        """The legacy fork-per-call transport has the same contract."""
        before = _segments()
        backend = ProcessesBackend(persistent=False)
        with _suspended():
            out = backend.map_workitems(
                _double, [{"x": np.full(64, float(i))} for i in range(6)],
                n_ranks=2)
        assert len(out) == 6
        assert _segments() <= before
