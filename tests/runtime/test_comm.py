"""Tests for the in-process communicator and RMA window."""

import numpy as np
import pytest

from repro.runtime.comm import ANY_SOURCE, ANY_TAG, CommError, ThreadComm, run_spmd
from repro.runtime.rma import Window


class TestPointToPoint:
    def test_ring_pass(self):
        def fn(comm):
            nxt = (comm.rank + 1) % comm.size
            prv = (comm.rank - 1) % comm.size
            comm.send(comm.rank, nxt, tag=1)
            msg = comm.recv(source=prv, tag=1)
            return msg.payload

        out = run_spmd(4, fn)
        assert out == [3, 0, 1, 2]

    def test_tag_matching_out_of_order(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("a", 1, tag=5)
                comm.send("b", 1, tag=6)
            elif comm.rank == 1:
                # Receive tag 6 first: tag 5 must be stashed, not lost.
                m6 = comm.recv(source=0, tag=6)
                m5 = comm.recv(source=0, tag=5)
                return (m5.payload, m6.payload)
            return None

        out = run_spmd(2, fn)
        assert out[1] == ("a", "b")

    def test_any_source(self):
        def fn(comm):
            if comm.rank == 0:
                got = sorted(
                    comm.recv(source=ANY_SOURCE).payload
                    for _ in range(comm.size - 1)
                )
                return got
            comm.send(comm.rank * 10, 0)
            return None

        out = run_spmd(4, fn)
        assert out[0] == [10, 20, 30]

    def test_bad_dest(self):
        def fn(comm):
            comm.send(1, 99)

        with pytest.raises(CommError):
            run_spmd(2, fn)

    def test_iprobe(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("x", 1, tag=3)
                comm.barrier()
                return None
            comm.barrier()
            assert comm.iprobe(tag=3)
            assert not comm.iprobe(tag=4)
            return comm.recv(tag=3).payload

        out = run_spmd(2, fn)
        assert out[1] == "x"


class TestCollectives:
    def test_bcast(self):
        def fn(comm):
            data = {"k": 42} if comm.rank == 0 else None
            return comm.bcast(data, root=0)

        out = run_spmd(4, fn)
        assert all(o == {"k": 42} for o in out)

    def test_gather(self):
        def fn(comm):
            return comm.gather(comm.rank**2, root=0)

        out = run_spmd(4, fn)
        assert out[0] == [0, 1, 4, 9]
        assert out[1] is None

    def test_gather_numpy_coordinates(self):
        """The BL coordinate gather pattern: arrays of floats to root."""

        def fn(comm):
            coords = np.full((3, 2), float(comm.rank))
            got = comm.gather(coords, root=0)
            if comm.rank == 0:
                return np.vstack(got)
            return None

        out = run_spmd(3, fn)
        assert out[0].shape == (9, 2)
        assert out[0][0, 0] == 0.0 and out[0][-1, 0] == 2.0

    def test_scatter(self):
        def fn(comm):
            objs = [i * 100 for i in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(objs, root=0)

        assert run_spmd(4, fn) == [0, 100, 200, 300]

    def test_scatter_wrong_length(self):
        def fn(comm):
            objs = [1] if comm.rank == 0 else None
            return comm.scatter(objs, root=0)

        with pytest.raises(CommError):
            run_spmd(3, fn)

    def test_allreduce_sum(self):
        def fn(comm):
            return comm.allreduce(comm.rank + 1)

        assert run_spmd(4, fn) == [10, 10, 10, 10]

    def test_allreduce_max(self):
        def fn(comm):
            return comm.allreduce(comm.rank, op=max)

        assert run_spmd(5, fn) == [4] * 5

    def test_repeated_collectives(self):
        def fn(comm):
            total = 0
            for i in range(10):
                total += comm.allreduce(i)
            return total

        out = run_spmd(3, fn)
        assert all(o == sum(3 * i for i in range(10)) for o in out)


class TestSPMDHarness:
    def test_exception_propagates(self):
        def fn(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            comm.barrier()

        with pytest.raises(ValueError, match="boom"):
            run_spmd(3, fn)

    def test_single_rank(self):
        assert run_spmd(1, lambda c: c.bcast("only", 0)) == ["only"]

    def test_zero_ranks_invalid(self):
        with pytest.raises(ValueError):
            run_spmd(0, lambda c: None)


class TestWindow:
    def test_put_get(self):
        w = Window(4)
        w.put(3.5, 2)
        np.testing.assert_allclose(w.get(), [0, 0, 3.5, 0])
        np.testing.assert_allclose(w.get(2), [3.5])

    def test_put_many(self):
        w = Window(4)
        w.put_many(np.array([1.0, 2.0]), offset=1)
        np.testing.assert_allclose(w.get(), [0, 1, 2, 0])

    def test_accumulate_and_fetch(self):
        w = Window(1)
        w.accumulate(5.0, 0)
        old = w.fetch_and_op(-2.0, 0)
        assert old == 5.0
        assert w.get(0)[0] == 3.0

    def test_compare_and_swap(self):
        w = Window(1)
        assert w.compare_and_swap(0.0, 9.0, 0) == 0.0
        assert w.get(0)[0] == 9.0
        assert w.compare_and_swap(1.0, 5.0, 0) == 9.0
        assert w.get(0)[0] == 9.0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Window(0)

    def test_concurrent_accumulate(self):
        w = Window(1)

        def fn(comm):
            for _ in range(200):
                w.fetch_and_op(1.0, 0)

        run_spmd(4, fn)
        assert w.get(0)[0] == 800.0

    def test_workload_window_pattern(self):
        """The paper's pattern: each rank puts its load; a hungry rank
        gets the window and picks the most loaded."""
        w = Window(4)

        def fn(comm):
            w.put(float(comm.rank * 10), comm.rank)
            comm.barrier()
            loads = w.get()
            return int(loads.argmax())

        out = run_spmd(4, fn)
        assert out == [3, 3, 3, 3]
