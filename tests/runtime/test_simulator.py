"""Tests for the discrete-event cluster simulator."""

import numpy as np
import pytest

from repro.runtime.simulator import (
    SETUP_PHASES,
    NetworkModel,
    SimConfig,
    SimTask,
    calibrate_from_counters,
    fit_network_model,
    simulate,
    strong_scaling,
)


def uniform_tasks(n, cost=1.0, size=4096.0):
    return [SimTask(cost, size) for _ in range(n)]


class TestNetworkModel:
    def test_xfer(self):
        net = NetworkModel(latency=1e-6, bandwidth=1e9)
        assert net.xfer(0) == pytest.approx(1e-6)
        assert net.xfer(1e9) == pytest.approx(1.0 + 1e-6)

    def test_invalid(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth=0)


class TestSimulate:
    def test_single_rank_is_total_work(self):
        tasks = uniform_tasks(20, cost=0.5)
        res = simulate(tasks, 1)
        assert res.makespan == pytest.approx(10.0, rel=1e-6)
        assert res.n_steal_attempts == 0

    def test_perfect_split_two_ranks(self):
        tasks = uniform_tasks(16, cost=1.0)
        res = simulate(tasks, 2)
        # Nearly 2x: only distribution latency overhead.
        assert res.makespan == pytest.approx(8.0, rel=0.01)

    def test_speedup_monotone(self):
        tasks = uniform_tasks(512, cost=0.1)
        t_prev = None
        for p in (1, 2, 4, 8, 16):
            res = simulate(tasks, p)
            if t_prev is not None:
                assert res.makespan < t_prev
            t_prev = res.makespan

    def test_more_ranks_than_tasks(self):
        tasks = uniform_tasks(4, cost=1.0)
        res = simulate(tasks, 16)
        # Makespan is one task (plus comms): surplus ranks idle.
        assert res.makespan < 1.5

    def test_heterogeneous_tasks_balanced_by_stealing(self):
        rng = np.random.default_rng(0)
        tasks = [SimTask(float(c)) for c in rng.lognormal(0, 1, size=400)]
        total = sum(t.cost for t in tasks)
        res = simulate(tasks, 8)
        # Within 25% of the ideal split thanks to stealing.
        assert res.makespan < 1.25 * total / 8 + max(t.cost for t in tasks)

    def test_slow_network_hurts(self):
        tasks = uniform_tasks(256, cost=0.01, size=1e6)
        fast = simulate(tasks, 16, SimConfig(network=NetworkModel(2e-6, 7e9)))
        slow = simulate(tasks, 16, SimConfig(network=NetworkModel(1e-3, 1e7)))
        assert slow.makespan > fast.makespan

    def test_serial_setup_adds(self):
        tasks = uniform_tasks(16, cost=1.0)
        base = simulate(tasks, 4)
        withsetup = simulate(tasks, 4, SimConfig(serial_setup=5.0))
        assert withsetup.makespan == pytest.approx(base.makespan + 5.0,
                                                   rel=0.01)

    def test_no_tasks_raises(self):
        with pytest.raises(ValueError):
            simulate([], 4)

    def test_busy_conserves_work(self):
        tasks = uniform_tasks(100, cost=0.3)
        res = simulate(tasks, 8)
        assert res.busy.sum() == pytest.approx(30.0, rel=1e-9)

    def test_internal_efficiency_bounds(self):
        tasks = uniform_tasks(200, cost=0.2)
        res = simulate(tasks, 8)
        assert 0.5 < res.efficiency_internal <= 1.0


class TestStrongScaling:
    def test_table_shape(self):
        tasks = uniform_tasks(256, cost=0.5)
        table = strong_scaling(tasks, [1, 2, 4, 8])
        assert set(table) == {1, 2, 4, 8}
        assert table[1]["speedup"] == pytest.approx(1.0, rel=0.01)
        assert table[8]["speedup"] > 4.0
        for p in table:
            assert table[p]["efficiency"] <= 1.01

    def test_external_sequential_baseline(self):
        tasks = uniform_tasks(64, cost=1.0)
        # The parallel mesher does 2% more work than the best sequential
        # tool (decoupling overhead): sequential efficiency < 1 at P=1.
        table = strong_scaling(tasks, [1], t_sequential=64.0 / 1.02)
        assert table[1]["efficiency"] == pytest.approx(1 / 1.02, rel=1e-3)

    def test_efficiency_decays_with_scale(self):
        rng = np.random.default_rng(1)
        tasks = [SimTask(float(c), 2e5) for c in rng.lognormal(-1, 0.8, 2000)]
        table = strong_scaling(tasks, [4, 64])
        assert table[64]["efficiency"] < table[4]["efficiency"]


class TestDistributionAndFlags:
    def test_tree_distribute_conserves_tasks(self):
        from repro.runtime.simulator import _tree_distribute

        tasks = uniform_tasks(100, cost=1.0)
        net = NetworkModel(1e-6, 1e9)
        queues, ready = _tree_distribute(
            [SimTask(t.cost, t.size_bytes, i) for i, t in enumerate(tasks)],
            8, net)
        ids = sorted(t.task_id for q in queues for t in q)
        assert ids == list(range(100))
        assert ready[0] <= ready.max()
        assert np.all(ready >= 0)

    def test_tree_distribute_balances_cost(self):
        from repro.runtime.simulator import _tree_distribute

        rng = np.random.default_rng(0)
        tasks = [SimTask(float(c), 1e3, i)
                 for i, c in enumerate(rng.lognormal(0, 1, 256))]
        net = NetworkModel(1e-6, 1e9)
        queues, _ = _tree_distribute(tasks, 16, net)
        costs = np.array([sum(t.cost for t in q) for q in queues])
        assert costs.max() < 3.0 * costs.mean()

    def test_stealing_flag_off(self):
        rng = np.random.default_rng(1)
        tasks = [SimTask(float(c)) for c in rng.lognormal(0, 1.0, 200)]
        res_on = simulate(tasks, 16, SimConfig())
        res_off = simulate(tasks, 16, SimConfig(stealing=False))
        assert res_off.n_steal_attempts == 0
        assert res_on.makespan <= res_off.makespan + 1e-12
        # Work is conserved either way.
        assert res_on.busy.sum() == pytest.approx(res_off.busy.sum())

    def test_single_task_many_ranks(self):
        res = simulate([SimTask(5.0)], 32)
        assert res.makespan == pytest.approx(5.0, rel=0.01)


class TestFitNetworkModel:
    def test_recovers_synthetic_alpha_beta(self):
        lat, bw = 1e-5, 1e9
        x = np.array([1e4, 5e4, 1e5, 5e5, 1e6])
        y = lat + x / bw
        net = fit_network_model(x, y)
        assert net.latency == pytest.approx(lat, rel=1e-6, abs=1e-9)
        assert net.bandwidth == pytest.approx(bw, rel=1e-6)

    def test_too_few_samples_returns_default(self):
        default = NetworkModel(latency=3e-6, bandwidth=5e9)
        assert fit_network_model([], [], default=default) is default
        assert fit_network_model([100.0], [1e-4], default=default) is default
        # Two samples of the same size: the line is unconstrained.
        assert fit_network_model([100.0, 100.0], [1e-4, 2e-4],
                                 default=default) is default

    def test_negative_slope_keeps_default_bandwidth(self):
        """Noise-dominated data (bigger transfer measured faster) must
        not produce a negative bandwidth."""
        net = fit_network_model([1e3, 1e6], [1e-2, 1e-4])
        assert net.bandwidth == NetworkModel().bandwidth
        assert net.latency > 0.0

    def test_outlier_does_not_flip_the_fit(self):
        """The first shm create pays a warm-up penalty; one gross
        outlier must not corrupt the slope."""
        lat, bw = 1e-5, 1e9
        x = np.array([1e4, 2e4, 5e4, 1e5, 2e5, 5e5])
        y = lat + x / bw
        y[0] += 5e-2  # 50 ms warm-up spike on the smallest transfer
        net = fit_network_model(x, y)
        assert net.bandwidth == pytest.approx(bw, rel=0.05)

    def test_clamps(self):
        # Absurd slope -> bandwidth clamped to the floor, never below.
        net = fit_network_model([1.0, 2.0], [0.0, 1e3])
        assert net.bandwidth >= 1e6 - 1
        assert net.latency >= 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="differ in length"):
            fit_network_model([1.0, 2.0], [1e-4])


class _FakeSink:
    """Duck-typed Counters: just the fields calibration reads."""

    def __init__(self, samples, phases):
        self.samples = samples
        self.phases = phases


def _measured_sink(n_items=12):
    rng = np.random.default_rng(3)
    return _FakeSink(
        samples={
            "executor.item_seconds": list(rng.uniform(0.05, 0.4, n_items)),
            "executor.item_bytes": list(rng.uniform(2e4, 4e5, n_items)),
            "serde.shm_nbytes": [1e4, 1e5, 1e6],
            "serde.shm_seconds": [2e-5 + s / 2e9 for s in
                                  (1e4, 1e5, 1e6)],
        },
        phases={"boundary_layer": 0.8, "nearbody_setup": 0.1,
                "decoupling": 0.3, "refinement": 2.0, "merge": 0.2},
    )


class TestCalibrateFromCounters:
    def test_builds_tasks_and_config(self):
        tasks, config = calibrate_from_counters(_measured_sink())
        assert len(tasks) >= 12288 - 12
        assert all(t.cost > 0 for t in tasks)
        # Setup = the pre-refinement phases only.
        assert config.serial_setup == pytest.approx(0.8 + 0.1 + 0.3)
        assert set(SETUP_PHASES) == {"boundary_layer", "nearbody_setup",
                                     "decoupling"}
        # Network fitted from the shm samples, not the default.
        assert config.network.bandwidth == pytest.approx(2e9, rel=0.05)
        assert config.per_task_overhead == pytest.approx(1e-4)

    def test_jitter_is_bounded_and_deterministic(self):
        sink = _measured_sink()
        tasks_a, _ = calibrate_from_counters(sink, seed=7)
        tasks_b, _ = calibrate_from_counters(sink, seed=7)
        assert [t.cost for t in tasks_a] == [t.cost for t in tasks_b]
        base = sink.samples["executor.item_seconds"]
        n = len(base)
        for i, t in enumerate(tasks_a):
            ratio = t.cost / base[i % n]
            assert 0.8 <= ratio <= 1.25

    def test_explicit_network_and_overhead_override(self):
        net = NetworkModel(latency=9e-6, bandwidth=3e9)
        _, config = calibrate_from_counters(_measured_sink(), network=net,
                                            per_task_overhead=5e-4)
        assert config.network is net
        assert config.per_task_overhead == pytest.approx(5e-4)

    def test_no_executor_samples_raises(self):
        sink = _FakeSink(samples={}, phases={"boundary_layer": 1.0})
        with pytest.raises(ValueError, match="executor.item_seconds"):
            calibrate_from_counters(sink)

    def test_calibrated_run_scales_like_the_paper(self):
        """End-to-end: calibrated tasks + config through the simulator
        keep the Figs. 11-12 shape (monotone, high efficiency at low
        rank counts)."""
        tasks, config = calibrate_from_counters(_measured_sink(),
                                                replicate_to=2048)
        table = strong_scaling(tasks, [1, 4, 16, 64], config)
        s = {p: table[p]["speedup"] for p in (1, 4, 16, 64)}
        assert s[1] <= s[4] <= s[16] <= s[64]
        assert table[16]["efficiency"] > 0.8
