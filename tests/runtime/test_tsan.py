"""Tests for the runtime race sanitizer (:mod:`repro.lint.tsan`).

Covers the vector-clock/lockset machinery, each happens-before edge the
runtime emits (lock, message, barrier), the deliberately-racy fixture
that MUST be caught naming both access sites, and a work-stealing
DistributedWorker stress run that must come out clean.
"""

import os
import queue
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.lint import tsan
from repro.lint.tsan import Detector, RaceError, vc_join, vc_leq
from repro.runtime.comm import run_spmd
from repro.runtime.loadbalance import DistributedWorker, WorkItem
from repro.runtime.rma import Window


def run_threads(*fns):
    """Run ``fns`` concurrently and return per-thread exceptions.

    A start barrier keeps all thread lifetimes overlapping, so each gets
    a distinct ``threading.get_ident()`` (idents can be reused once a
    thread exits, which would blind the detector).
    """
    start = threading.Barrier(len(fns))
    errors = [None] * len(fns)

    def runner(i, fn):
        start.wait()
        try:
            fn()
        except BaseException as exc:  # noqa: BLE001 - surfaced to the test
            errors[i] = exc

    threads = [threading.Thread(target=runner, args=(i, fn))
               for i, fn in enumerate(fns)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return errors


class TestVectorClocks:
    def test_join_is_pointwise_max(self):
        assert vc_join({1: 3, 2: 1}, {1: 2, 3: 5}) == {1: 3, 2: 1, 3: 5}
        assert vc_join({}, {1: 1}) == {1: 1}

    def test_leq_partial_order(self):
        assert vc_leq({1: 1}, {1: 2})
        assert vc_leq({}, {1: 1})
        assert not vc_leq({1: 2}, {1: 1})
        # Incomparable clocks: neither direction holds (a true race shape).
        assert not vc_leq({1: 2, 2: 1}, {1: 1, 2: 2})
        assert not vc_leq({1: 1, 2: 2}, {1: 2, 2: 1})


class TestDetector:
    def test_unsynchronized_writes_race(self):
        det = Detector()
        errors = [e for e in run_threads(
            lambda: det.access("loc", True, site="site_a"),
            lambda: det.access("loc", True, site="site_b"),
        ) if e is not None]
        assert len(errors) == 1
        assert isinstance(errors[0], RaceError)
        msg = str(errors[0])
        assert "site_a" in msg and "site_b" in msg
        assert det.races == errors

    def test_write_read_conflict_races(self):
        det = Detector()
        errors = [e for e in run_threads(
            lambda: det.access("loc", True),
            lambda: det.access("loc", False),
        ) if e is not None]
        assert len(errors) == 1

    def test_concurrent_reads_are_fine(self):
        det = Detector()
        assert not any(run_threads(
            lambda: det.access("loc", False),
            lambda: det.access("loc", False),
        ))

    def test_common_lock_suppresses(self):
        det = Detector()
        lock = threading.Lock()

        def worker():
            with lock:
                det.acquire(lock)
                det.access("loc", True)
                det.release(lock)

        assert not any(run_threads(worker, worker))

    def test_lock_release_acquire_is_an_edge(self):
        # B's access happens OUTSIDE the lock, but after a critical
        # section that joined A's release clock — ordered, not racy.
        det = Detector()
        lock = threading.Lock()
        handoff = queue.Queue()

        def a():
            with lock:
                det.acquire(lock)
                det.access("loc", True)
                det.release(lock)
            handoff.put(True)

        def b():
            handoff.get()
            with lock:
                det.acquire(lock)
                det.release(lock)
            det.access("loc", True)

        assert not any(run_threads(a, b))

    def test_message_edge_orders(self):
        det = Detector()
        box = queue.Queue()

        def sender():
            det.access("loc", True)
            box.put(det.send())

        def receiver():
            det.recv(box.get())
            det.access("loc", True)

        assert not any(run_threads(sender, receiver))

    def test_barrier_edge_orders(self):
        det = Detector()
        bar = threading.Barrier(2)

        def a():
            det.access("loc", True)
            det.barrier_begin("bar")
            bar.wait()
            det.barrier_end("bar")

        def b():
            det.barrier_begin("bar")
            bar.wait()
            det.barrier_end("bar")
            det.access("loc", True)

        assert not any(run_threads(a, b))

    def test_double_claimed_workitem_detected(self):
        # The DistributedWorker marks claiming an item as a write to its
        # identity; a duplicated item claimed by two ranks is a race.
        with tsan.sanitize():
            errors = run_threads(
                lambda: tsan.note_access(("workitem", 7), True),
                lambda: tsan.note_access(("workitem", 7), True),
            )
        assert sum(isinstance(e, RaceError) for e in errors) == 1


class TestEnableDisable:
    def test_hooks_are_noops_when_disabled(self):
        assert tsan.get() is None or tsan.enabled()
        prev = tsan.get()
        tsan.disable()
        try:
            tsan.note_access(("x",), True)
            tsan.note_acquire(self)
            tsan.note_release(self)
            assert tsan.note_send() is None
            tsan.note_recv(None)
            assert tsan.status() == {"enabled": False}
        finally:
            if prev is not None:  # pragma: no cover - depends on env
                tsan._detector = prev

    def test_sanitize_scopes_and_restores(self):
        before = tsan.get()
        with tsan.sanitize() as det:
            assert tsan.get() is det
        assert tsan.get() is before

    def test_env_var_enables_at_import(self):
        code = ("import repro.lint.tsan as t, sys; "
                "sys.exit(0 if t.enabled() else 1)")
        env = dict(os.environ, REPRO_SANITIZE="1")
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        assert subprocess.run([sys.executable, "-c", code],
                              env=env).returncode == 0


# ----------------------------------------------------------------------
# The racy fixture: MPI-style local window access with no synchronization.
# ----------------------------------------------------------------------
def _racy_publisher(win: Window) -> None:
    win.local_store(1.0, 0)


def _racy_poller(win: Window) -> None:
    win.local_load(0)


class TestRacyFixture:
    def test_unsynchronized_local_access_is_caught(self):
        with tsan.sanitize() as det:
            win = Window(2)
            errors = [e for e in run_threads(
                lambda: _racy_publisher(win),
                lambda: _racy_poller(win),
            ) if e is not None]
        assert len(errors) == 1
        assert isinstance(errors[0], RaceError)
        msg = str(errors[0])
        # Both access sites are named, attributed to the fixture code
        # (this file), not to the runtime/instrumentation plumbing.
        assert "_racy_publisher" in msg and "_racy_poller" in msg
        assert "test_tsan" in msg
        assert det.races

    def test_locked_epochs_are_clean(self):
        # Same access pattern through the real RMA epochs: no race.
        with tsan.sanitize() as det:
            win = Window(2)
            errors = run_threads(
                lambda: win.put(1.0, 0),
                lambda: win.get(0),
            )
        assert not any(errors)
        assert det.status()["accesses_checked"] >= 2

    def test_message_ordered_local_access_is_clean(self):
        # local_store/local_load ARE legal when a message orders them —
        # the discipline MPI requires and the sanitizer verifies.
        with tsan.sanitize() as det:
            win = Window(2)
            results = run_spmd(2, lambda comm: _ordered_local(comm, win))
        assert results[1] == 1.0
        assert det.races == []


def _ordered_local(comm, win: Window):
    if comm.rank == 0:
        win.local_store(1.0, 0)
        comm.send(None, 1, tag=7)
        return None
    comm.recv(source=0, tag=7)
    return win.local_load(0)


class TestCollectivesUnderSanitizer:
    def test_all_collectives_clean(self):
        with tsan.sanitize() as det:
            def fn(comm):
                v = comm.bcast(42 if comm.rank == 0 else None, root=0)
                total = comm.allreduce(comm.rank)
                gathered = comm.gather(comm.rank, root=0)
                part = comm.scatter(
                    list(range(comm.size)) if comm.rank == 0 else None,
                    root=0)
                return v, total, gathered, part

            results = run_spmd(4, fn)
        assert det.races == []
        assert det.status()["hb_edges"] > 0
        for rank, (v, total, gathered, part) in enumerate(results):
            assert v == 42
            assert total == 6
            assert part == rank
        assert results[0][2] == [0, 1, 2, 3]


class TestWorkStealingStress:
    def test_steal_under_load_is_clean(self):
        n_ranks = 4
        seeds = [WorkItem(float(c), 1) for c in (13, 8, 5, 3, 2) * 4]

        def process(item):
            # Depth-1 spawning: busy ranks grow their queues, so steals
            # happen while claims and transfers are in flight.
            if item.payload > 0:
                spawned = [WorkItem(0.5, 0), WorkItem(0.25, 0)]
            else:
                spawned = []
            return item.cost, spawned

        with tsan.sanitize() as det:
            load_w = Window(n_ranks)
            counter_w = Window(1)
            counter_w.put(float(len(seeds)), 0)

            def fn(comm):
                worker = DistributedWorker(
                    comm, load_w, counter_w, process,
                    steal_threshold=0.5, poll_sleep=0.0002)
                if comm.rank == 0:
                    worker.seed(seeds)
                comm.barrier()
                worker.run()
                return worker.n_items_processed, worker.n_steals_successful

            results = run_spmd(n_ranks, fn)

        assert det.races == []
        processed = sum(r[0] for r in results)
        assert processed == len(seeds) * 3  # each seed spawns two children
        status = det.status()
        assert status["accesses_checked"] > processed
        assert status["threads_seen"] >= n_ranks
