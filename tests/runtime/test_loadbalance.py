"""Tests for the work queue and distributed work stealing."""

import numpy as np
import pytest

from repro.runtime.comm import run_spmd
from repro.runtime.loadbalance import DistributedWorker, WorkItem, WorkQueue
from repro.runtime.rma import Window


class TestWorkQueue:
    def test_largest_first(self):
        q = WorkQueue([WorkItem(1.0, "a"), WorkItem(5.0, "b"), WorkItem(3.0, "c")])
        assert q.pop_largest().payload == "b"
        assert q.pop_largest().payload == "c"
        assert q.pop_largest().payload == "a"

    def test_total_cost_tracked(self):
        q = WorkQueue()
        q.push(WorkItem(2.0, None))
        q.push(WorkItem(3.0, None))
        assert q.total_cost == pytest.approx(5.0)
        q.pop_largest()
        assert q.total_cost == pytest.approx(2.0)

    def test_pop_smallest_half(self):
        q = WorkQueue([WorkItem(c, c) for c in (8.0, 4.0, 2.0, 1.0, 1.0)])
        donated = q.pop_smallest_half()
        donated_cost = sum(w.cost for w in donated)
        assert donated_cost <= 8.0  # half of 16
        # Donated items are the small ones.
        assert all(w.cost <= 4.0 for w in donated)
        # Largest item stays home.
        assert q.pop_largest().cost == 8.0

    def test_pop_smallest_half_single_item(self):
        q = WorkQueue([WorkItem(5.0, None)])
        assert q.pop_smallest_half() == []

    def test_pop_smallest_half_empty(self):
        assert WorkQueue().pop_smallest_half() == []


def run_workers(n_ranks, all_items, process, steal_threshold=0.5):
    load_w = Window(n_ranks)
    counter_w = Window(1)
    counter_w.put(float(len(all_items)), 0)

    def fn(comm):
        worker = DistributedWorker(
            comm, load_w, counter_w, process,
            steal_threshold=steal_threshold,
        )
        if comm.rank == 0:
            worker.seed(all_items)
        comm.barrier()
        out = worker.run()
        return out, worker

    return run_spmd(n_ranks, fn)


class TestDistributedWorker:
    def test_all_items_processed_once(self):
        items = [WorkItem(float(i % 5 + 1), i) for i in range(40)]

        def process(item):
            return item.payload, []

        results = run_workers(4, items, process)
        done = sorted(x for out, _ in results for x in out)
        assert done == list(range(40))

    def test_stealing_spreads_work(self):
        import time

        items = [WorkItem(1.0, i) for i in range(64)]

        def process(item):
            time.sleep(0.002)  # give thieves time to ask
            return item.payload, []

        results = run_workers(4, items, process)
        counts = [w.n_items_processed for _, w in results]
        assert sum(counts) == 64
        # Everyone got something: the seed was all on rank 0.
        assert min(counts) > 0
        total_steals = sum(w.n_steals_successful for _, w in results)
        assert total_steals > 0

    def test_work_spawning_work(self):
        """Recursive decomposition pattern: items spawn children."""

        def process(item):
            depth, label = item.payload
            if depth > 0:
                kids = [
                    WorkItem(1.0, (depth - 1, label + (i,)))
                    for i in range(2)
                ]
                return None, kids
            return label, []

        root = [WorkItem(1.0, (3, ()))]
        results = run_workers(3, root, process)
        leaves = [x for out, _ in results for x in out if x is not None]
        assert len(leaves) == 8  # 2^3
        assert len(set(leaves)) == 8

    def test_single_rank(self):
        items = [WorkItem(1.0, i) for i in range(10)]

        def process(item):
            return item.payload, []

        results = run_workers(1, items, process)
        assert sorted(results[0][0]) == list(range(10))

    def test_largest_processed_first_locally(self):
        order = []
        items = [WorkItem(float(c), c) for c in (1, 9, 5, 7, 3)]

        def process(item):
            order.append(item.payload)
            return None, []

        run_workers(1, items, process)
        assert order == [9, 7, 5, 3, 1]
