"""Tests for the work queue and distributed work stealing."""

import multiprocessing as mp
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.comm import run_spmd
from repro.runtime.executor import LoadBoard, lpt_assignment
from repro.runtime.loadbalance import DistributedWorker, WorkItem, WorkQueue
from repro.runtime.rma import Window


def _ctx():
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


class TestWorkQueue:
    def test_largest_first(self):
        q = WorkQueue([WorkItem(1.0, "a"), WorkItem(5.0, "b"), WorkItem(3.0, "c")])
        assert q.pop_largest().payload == "b"
        assert q.pop_largest().payload == "c"
        assert q.pop_largest().payload == "a"

    def test_total_cost_tracked(self):
        q = WorkQueue()
        q.push(WorkItem(2.0, None))
        q.push(WorkItem(3.0, None))
        assert q.total_cost == pytest.approx(5.0)
        q.pop_largest()
        assert q.total_cost == pytest.approx(2.0)

    def test_pop_smallest_half(self):
        q = WorkQueue([WorkItem(c, c) for c in (8.0, 4.0, 2.0, 1.0, 1.0)])
        donated = q.pop_smallest_half()
        donated_cost = sum(w.cost for w in donated)
        assert donated_cost <= 8.0  # half of 16
        # Donated items are the small ones.
        assert all(w.cost <= 4.0 for w in donated)
        # Largest item stays home.
        assert q.pop_largest().cost == 8.0

    def test_pop_smallest_half_single_item(self):
        q = WorkQueue([WorkItem(5.0, None)])
        assert q.pop_smallest_half() == []

    def test_pop_smallest_half_empty(self):
        assert WorkQueue().pop_smallest_half() == []


def run_workers(n_ranks, all_items, process, steal_threshold=0.5):
    load_w = Window(n_ranks)
    counter_w = Window(1)
    counter_w.put(float(len(all_items)), 0)

    def fn(comm):
        worker = DistributedWorker(
            comm, load_w, counter_w, process,
            steal_threshold=steal_threshold,
        )
        if comm.rank == 0:
            worker.seed(all_items)
        comm.barrier()
        out = worker.run()
        return out, worker

    return run_spmd(n_ranks, fn)


class TestDistributedWorker:
    def test_all_items_processed_once(self):
        items = [WorkItem(float(i % 5 + 1), i) for i in range(40)]

        def process(item):
            return item.payload, []

        results = run_workers(4, items, process)
        done = sorted(x for out, _ in results for x in out)
        assert done == list(range(40))

    def test_stealing_spreads_work(self):
        import time

        items = [WorkItem(1.0, i) for i in range(64)]

        def process(item):
            time.sleep(0.002)  # give thieves time to ask
            return item.payload, []

        results = run_workers(4, items, process)
        counts = [w.n_items_processed for _, w in results]
        assert sum(counts) == 64
        # Everyone got something: the seed was all on rank 0.
        assert min(counts) > 0
        total_steals = sum(w.n_steals_successful for _, w in results)
        assert total_steals > 0

    def test_work_spawning_work(self):
        """Recursive decomposition pattern: items spawn children."""

        def process(item):
            depth, label = item.payload
            if depth > 0:
                kids = [
                    WorkItem(1.0, (depth - 1, label + (i,)))
                    for i in range(2)
                ]
                return None, kids
            return label, []

        root = [WorkItem(1.0, (3, ()))]
        results = run_workers(3, root, process)
        leaves = [x for out, _ in results for x in out if x is not None]
        assert len(leaves) == 8  # 2^3
        assert len(set(leaves)) == 8

    def test_single_rank(self):
        items = [WorkItem(1.0, i) for i in range(10)]

        def process(item):
            return item.payload, []

        results = run_workers(1, items, process)
        assert sorted(results[0][0]) == list(range(10))

    def test_largest_processed_first_locally(self):
        order = []
        items = [WorkItem(float(c), c) for c in (1, 9, 5, 7, 3)]

        def process(item):
            order.append(item.payload)
            return None, []

        run_workers(1, items, process)
        assert order == [9, 7, 5, 3, 1]


class TestLoadBoardProperties:
    """Property-based stress of the shared claim board.

    Hypothesis drives the *schedule*: which worker claims next is drawn
    per step, so own-queue drains, steals, and the fallback sweep
    interleave in every order the scheduler could produce.  Whatever the
    order: each item is claimed exactly once and the published remaining
    loads never go negative (they are clamped subtractions of a
    non-negative quantity).
    """

    @given(
        costs=st.lists(
            st.floats(min_value=0.0, max_value=100.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=24),
        n_workers=st.integers(min_value=1, max_value=6),
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_randomized_schedule_claims_each_item_once(self, costs,
                                                       n_workers, data):
        board = LoadBoard(_ctx(), costs, lpt_assignment(costs, n_workers))
        claimed = []
        stolen_count = 0
        active = set(range(n_workers))
        while active:
            w = data.draw(st.sampled_from(sorted(active)), label="worker")
            got = board.claim(w)
            loads = board.remaining_loads()
            assert all(x >= 0.0 for x in loads), \
                f"negative remaining load {loads}"
            if got is None:
                active.discard(w)
            else:
                item, was_steal = got
                claimed.append(item)
                stolen_count += bool(was_steal)
        assert sorted(claimed) == list(range(len(costs)))
        # Fully drained: only clamp/rounding residue may remain.
        tol = 1e-9 * max(1.0, sum(costs))
        assert all(x <= tol for x in board.remaining_loads())

    @given(
        costs=st.lists(
            st.floats(min_value=0.01, max_value=10.0,
                      allow_nan=False, allow_infinity=False),
            min_size=4, max_size=32),
        n_workers=st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=15, deadline=None)
    def test_concurrent_claimers_never_double_claim(self, costs, n_workers):
        """Real threads race on the board: the shared lock must make the
        exactly-once guarantee hold under genuine interleaving too."""
        board = LoadBoard(_ctx(), costs, lpt_assignment(costs, n_workers))
        per_worker = [[] for _ in range(n_workers)]
        violations = []

        def run(w):
            while True:
                got = board.claim(w)
                if any(x < 0.0 for x in board.remaining_loads()):
                    violations.append(board.remaining_loads())
                if got is None:
                    return
                per_worker[w].append(got[0])

        threads = [threading.Thread(target=run, args=(w,))
                   for w in range(n_workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not violations
        all_claimed = sorted(i for items in per_worker for i in items)
        assert all_claimed == list(range(len(costs)))
