"""Unit and end-to-end tests for the meshing service daemon.

Covers the wire frame codec, address parsing, the content-addressed
cache, request batching/dedup through a live daemon, error frames,
client disconnects, and the shutdown-mid-batch abort path through the
worker pool's epoch fence (the processes-backend test at the bottom).

Work functions are module-level so the processes backend's workers can
resolve them by import path (closures are rejected by design).
"""

import asyncio
import socket
import threading
import time

import numpy as np
import pytest

from repro.runtime import serde
from repro.runtime.client import ServiceClient, read_frame_blocking
from repro.runtime.counters import monotonic
from repro.runtime.service import (
    FRAME_HEAD,
    FRAME_MAGIC,
    FrameError,
    MeshCache,
    MeshService,
    ServiceError,
    ServiceThread,
    encode_frame,
    parse_address,
    percentile,
    read_frame,
)


def _buffers(tag, n=16):
    return {"x": np.full(n, float(tag)), "tag": np.asarray([float(tag)])}


_ECHO_CALLS = []
_SLOW_CALLS = []


def _echo_item(payload):
    _ECHO_CALLS.append(float(payload["tag"][0]))
    return {"y": np.asarray(payload["x"]) * 2.0, "tag": payload["tag"]}


def _slow_counted_item(payload):
    _SLOW_CALLS.append(float(payload["tag"][0]))
    time.sleep(float(payload["delay"][0]) if "delay" in payload else 0.3)
    return {"y": np.asarray(payload["x"]) + 1.0}


def _boom_item(payload):
    raise ValueError("boom in work item")


def _unit_cost(payload):
    return 1.0


def _start(tmp_path, **kw):
    kw.setdefault("backend", "serial")
    kw.setdefault("work_fn", _echo_item)
    kw.setdefault("cost_fn", _unit_cost)
    kw.setdefault("batch_window", 0.01)
    svc = MeshService(f"unix:{tmp_path}/svc.sock", **kw)
    thread = ServiceThread(svc)
    endpoint = thread.start()
    return svc, thread, endpoint


def _decode_frames(data, count):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return [await read_frame(reader) for _ in range(count)]

    return asyncio.run(go())


class TestFrameCodec:
    def test_round_trip_stream(self):
        wire = (encode_frame("mesh", b"abc") + encode_frame("ping")
                + encode_frame("stats", b"\x00" * 100))
        frames = _decode_frames(wire, 3)
        assert frames == [("mesh", b"abc"), ("ping", b""),
                          ("stats", b"\x00" * 100)]

    def test_bad_magic_rejected(self):
        wire = b"XXXX" + encode_frame("ping")[4:]
        with pytest.raises(FrameError, match="magic"):
            _decode_frames(wire, 1)

    def test_oversize_length_rejected_before_allocation(self):
        head = FRAME_HEAD.pack(FRAME_MAGIC, 4, 1 << 62)
        with pytest.raises(FrameError, match="over cap"):
            _decode_frames(head + b"mesh", 1)

    def test_kind_validation(self):
        with pytest.raises(FrameError):
            encode_frame("")
        with pytest.raises(FrameError):
            encode_frame("k" * 256)

    def test_truncated_stream_is_incomplete_read(self):
        wire = encode_frame("mesh", b"abcdef")[:-2]
        with pytest.raises(asyncio.IncompleteReadError):
            _decode_frames(wire, 1)


class TestAddressing:
    def test_unix_forms(self):
        assert parse_address("unix:/run/m.sock") == ("unix", "/run/m.sock")
        assert parse_address("/tmp/m.sock") == ("unix", "/tmp/m.sock")

    def test_tcp_forms(self):
        assert parse_address("tcp:127.0.0.1:7070") == \
            ("tcp", ("127.0.0.1", 7070))
        assert parse_address("localhost:0") == ("tcp", ("localhost", 0))
        assert parse_address("tcp::9000") == ("tcp", ("127.0.0.1", 9000))

    def test_unparseable(self):
        with pytest.raises(ServiceError, match="cannot parse"):
            parse_address("nonsense")


class TestPercentile:
    def test_empty(self):
        assert percentile([], 50.0) == 0.0

    def test_nearest_rank(self):
        vals = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(vals, 50.0) == 3.0
        assert percentile(vals, 99.0) == 5.0
        assert percentile(vals, 1.0) == 1.0


class TestMeshCache:
    def test_put_get_and_counters(self):
        cache = MeshCache(4)
        assert cache.get("a") is None
        cache.put("a", b"blob-a")
        assert cache.get("a") == b"blob-a"
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_respects_recency(self):
        cache = MeshCache(2)
        cache.put("a", b"A")
        cache.put("b", b"B")
        assert cache.get("a") == b"A"  # refresh a; b is now oldest
        cache.put("c", b"C")
        assert cache.get("b") is None
        assert cache.get("a") == b"A"
        assert cache.get("c") == b"C"
        assert cache.evictions == 1

    def test_get_buffers_zero_copy_readonly(self):
        cache = MeshCache(2)
        buffers = _buffers(3.0)
        blob = serde.buffers_to_bytes(buffers)
        cache.put("k", blob)
        views = cache.get_buffers("k")
        assert set(views) == {"x", "tag"}
        np.testing.assert_array_equal(views["x"], buffers["x"])
        assert not views["x"].flags.writeable
        assert cache.nbytes() == len(blob)


class TestServiceEndToEnd:
    def test_miss_then_hit_byte_identical(self, tmp_path):
        svc, thread, endpoint = _start(tmp_path)
        try:
            with ServiceClient(endpoint) as client:
                kind1, blob1 = client.submit_packed(_buffers(1.0))
                kind2, blob2 = client.submit_packed(_buffers(1.0))
            assert (kind1, kind2) == ("mesh-ok", "mesh-hit")
            assert blob1 == blob2
            out = serde.bytes_to_buffers(blob1)
            np.testing.assert_array_equal(out["y"], np.full(16, 2.0))
            stats = svc.stats()
            assert stats["requests"] == 2.0
            assert stats["cache_hits"] == 1.0
        finally:
            thread.stop()

    def test_tcp_ephemeral_port(self, tmp_path):
        svc = MeshService("tcp:127.0.0.1:0", backend="serial",
                          work_fn=_echo_item, cost_fn=_unit_cost)
        thread = ServiceThread(svc)
        endpoint = thread.start()
        try:
            assert endpoint.startswith("tcp:127.0.0.1:")
            assert not endpoint.endswith(":0")
            with ServiceClient(endpoint) as client:
                assert client.ping() >= 0.0
                kind, _blob = client.submit_packed(_buffers(9.0))
                assert kind == "mesh-ok"
        finally:
            thread.stop()

    def test_batching_window_groups_concurrent_misses(self, tmp_path):
        del _SLOW_CALLS[:]
        svc, thread, endpoint = _start(
            tmp_path, work_fn=_slow_counted_item, batch_window=0.4,
            max_batch=8)
        try:
            replies = {}

            def run(tag):
                with ServiceClient(endpoint) as client:
                    payload = _buffers(tag)
                    payload["delay"] = np.asarray([0.15])
                    replies[tag] = client.submit_packed(payload)[0]

            threads = [threading.Thread(target=run, args=(float(i),))
                       for i in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert sorted(replies) == [0.0, 1.0, 2.0]
            stats = svc.stats()
            assert stats["batches"] == 1.0
            assert stats["batch_size_max"] == 3.0
        finally:
            thread.stop()

    def test_identical_inflight_requests_deduplicate(self, tmp_path):
        del _SLOW_CALLS[:]
        svc, thread, endpoint = _start(
            tmp_path, work_fn=_slow_counted_item, batch_window=0.02)
        try:
            payload = _buffers(7.0)
            payload["delay"] = np.asarray([0.5])
            blobs = {}

            def run(label, delay):
                time.sleep(delay)
                with ServiceClient(endpoint) as client:
                    blobs[label] = client.submit_packed(payload)

            threads = [threading.Thread(target=run, args=("a", 0.0)),
                       threading.Thread(target=run, args=("b", 0.2))]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            # One execution served both clients (single-flight join).
            assert _SLOW_CALLS.count(7.0) == 1
            assert blobs["a"][1] == blobs["b"][1]
            stats = svc.stats()
            assert stats["requests"] == 2.0
            assert stats["dedup_joins"] == 1.0
        finally:
            thread.stop()

    def test_work_error_becomes_err_frame(self, tmp_path):
        svc, thread, endpoint = _start(tmp_path, work_fn=_boom_item)
        try:
            with ServiceClient(endpoint) as client:
                with pytest.raises(ServiceError, match="boom"):
                    client.submit_packed(_buffers(1.0))
                # The connection survives an err frame.
                assert client.ping() >= 0.0
            assert svc.stats()["errors"] >= 1.0
        finally:
            thread.stop()

    def test_unknown_kind_and_bad_payload_err_frames(self, tmp_path):
        svc, thread, endpoint = _start(tmp_path)
        try:
            raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            raw.connect(str(tmp_path / "svc.sock"))
            try:
                raw.sendall(encode_frame("bogus"))
                kind, payload = read_frame_blocking(raw)
                assert kind == "err"
                assert b"unknown request kind" in payload
                raw.sendall(encode_frame("mesh", b"not a serde stream"))
                kind, payload = read_frame_blocking(raw)
                assert kind == "err"
                assert b"bad request" in payload
            finally:
                raw.close()
        finally:
            thread.stop()

    def test_client_disconnect_mid_request_is_graceful(self, tmp_path):
        del _SLOW_CALLS[:]
        svc, thread, endpoint = _start(
            tmp_path, work_fn=_slow_counted_item, batch_window=0.02)
        try:
            payload = _buffers(5.0)
            payload["delay"] = np.asarray([0.5])
            raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            raw.connect(str(tmp_path / "svc.sock"))
            raw.sendall(encode_frame("mesh", serde.buffers_to_bytes(payload)))
            raw.close()  # vanish while the batch is in flight
            time.sleep(0.1)
            with ServiceClient(endpoint) as client:
                kind, blob = client.submit_packed(payload)
                assert kind in ("mesh-ok", "mesh-hit")
                out = serde.bytes_to_buffers(blob)
                np.testing.assert_array_equal(out["y"], payload["x"] + 1.0)
                # The abandoned request still ran once and fed the cache.
                kind2, _ = client.submit_packed(payload)
                assert kind2 == "mesh-hit"
            assert _SLOW_CALLS.count(5.0) == 1
            assert svc.stats()["requests"] == 3.0
        finally:
            thread.stop()

    def test_shutdown_fails_queued_requests_cleanly(self, tmp_path):
        svc, thread, endpoint = _start(
            tmp_path, work_fn=_slow_counted_item, batch_window=0.01,
            max_batch=1)
        try:
            outcome = {}

            def run(tag, delay):
                time.sleep(delay)
                try:
                    with ServiceClient(endpoint) as client:
                        payload = _buffers(tag)
                        payload["delay"] = np.asarray([0.6])
                        outcome[tag] = client.submit_packed(payload)[0]
                except ServiceError as exc:
                    outcome[tag] = f"error: {exc}"

            # First request dispatches alone (max_batch=1); the second
            # queues behind it and must be failed by shutdown.
            threads = [threading.Thread(target=run, args=(1.0, 0.0)),
                       threading.Thread(target=run, args=(2.0, 0.2))]
            for t in threads:
                t.start()
            time.sleep(0.4)
            thread.stop()
            for t in threads:
                t.join(timeout=30)
            assert outcome[1.0] == "mesh-ok"
            assert "shutting down" in outcome[2.0]
        finally:
            thread.stop()


def test_shutdown_aborts_inflight_batch_via_epoch_fence(tmp_path):
    """Service shutdown mid-batch must quiesce the pool through the
    epoch fence and return clean error frames to every pending client
    — not wait out the whole batch, not hang, not leak workers."""
    del _SLOW_CALLS[:]
    svc = MeshService(f"unix:{tmp_path}/svc.sock", backend="processes",
                      n_ranks=2, batch_window=0.05, max_batch=8,
                      work_fn=_slow_counted_item, cost_fn=_unit_cost)
    thread = ServiceThread(svc)
    endpoint = thread.start()
    errors = {}
    oks = {}

    def run(tag):
        try:
            with ServiceClient(endpoint) as client:
                payload = _buffers(tag)
                payload["delay"] = np.asarray([4.0])
                oks[tag] = client.submit_packed(payload)[0]
        except ServiceError as exc:
            errors[tag] = str(exc)

    clients = [threading.Thread(target=run, args=(float(i),))
               for i in range(4)]
    for t in clients:
        t.start()
    deadline = monotonic() + 20.0
    while svc.stats()["batches"] < 1.0 and monotonic() < deadline:
        time.sleep(0.02)
    time.sleep(0.3)  # let the pool actually dispatch the first items
    t0 = monotonic()
    thread.stop()
    stop_elapsed = monotonic() - t0
    for t in clients:
        t.join(timeout=30)
    # All four clients got error frames, not hung sockets; the two
    # undispatched items were dropped at the fence, so shutdown is
    # bounded by one in-flight item (4s), not the whole batch (8s).
    assert not oks
    assert sorted(errors) == [0.0, 1.0, 2.0, 3.0]
    assert all("abort" in msg or "shutting down" in msg
               for msg in errors.values())
    assert stop_elapsed < 7.0


def test_service_thread_lifecycle_guards(tmp_path):
    svc, thread, _endpoint = _start(tmp_path)
    with pytest.raises(ServiceError, match="already started"):
        thread.start()
    thread.stop()
    thread.stop()  # idempotent
