"""Concurrency/soak tests for the meshing service daemon.

N parallel clients hammer a live daemon with a mixed cached/uncached
workload of real mesh requests and assert:

* every served mesh is byte-identical to a direct ``generate_mesh``
  run of the same request (the service is a transport, not a mesher);
* the single-flight cache means each distinct request is meshed
  exactly once (``hits + dedup joins + distinct == requests``);
* a client disconnecting mid-request doesn't poison the daemon;
* with the processes backend and the shm threshold forced to zero, no
  ``psm_*`` segments remain in ``/dev/shm`` after shutdown (the PR 6
  hygiene scanner, applied to the service lifecycle).
"""

import contextlib
import os
import socket
import threading

import pytest

from tests.domains import small_bl

from repro.core.pipeline import MeshConfig, generate_mesh, pack_mesh_request
from repro.geometry.airfoils import naca4
from repro.geometry.pslg import PSLG
from repro.lint import tsan
from repro.runtime import serde
from repro.runtime.client import ServiceClient
from repro.runtime.service import MeshService, ServiceThread, encode_frame

SHM_DIR = "/dev/shm"
N_CLIENTS = 4
REQUESTS_PER_CLIENT = 6


def _segments():
    """Names of live posix shared-memory segments (Python's psm_ pool)."""
    return {n for n in os.listdir(SHM_DIR) if n.startswith("psm_")}


def _suspended():
    if tsan.enabled():
        return tsan.suspend()
    return contextlib.nullcontext()


@pytest.fixture
def shm_everything(monkeypatch):
    """Force every payload/result through shared memory (threshold 0),
    before the service forks its warm pool."""
    monkeypatch.setattr(serde, "SHM_MIN_BYTES", 0)


def _workload():
    """Three small distinct requests — the mixed cached/uncached set."""
    out = []
    for code, grading in (("0012", 0.3), ("0012", 0.35), ("2412", 0.35)):
        pslg = PSLG.from_loops([naca4(code, 21)], names=[f"naca{code}"])
        out.append((pslg, MeshConfig(bl=small_bl(max_layers=4),
                                     farfield_chords=5.0, grading=grading,
                                     target_subdomains=4)))
    return out


def _direct_bytes(workload):
    return [
        serde.buffers_to_bytes(serde.pack_mesh(
            generate_mesh(pslg, config, backend="serial").mesh))
        for pslg, config in workload
    ]


def _soak(endpoint, workload, direct, *,
          n_clients=N_CLIENTS, per_client=REQUESTS_PER_CLIENT):
    """Drive the daemon from ``n_clients`` threads; returns failures."""
    failures = []

    def client_loop(cid):
        try:
            with ServiceClient(endpoint) as client:
                for i in range(per_client):
                    j = (cid + i) % len(workload)
                    reply = client.submit(*workload[j])
                    if reply.raw != direct[j]:
                        failures.append((cid, i, "served bytes differ "
                                         "from direct generate_mesh"))
        except Exception as exc:  # noqa: BLE001 - collected for assert
            failures.append((cid, repr(exc)))

    threads = [threading.Thread(target=client_loop, args=(cid,))
               for cid in range(n_clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
    alive = [t for t in threads if t.is_alive()]
    if alive:
        failures.append(f"{len(alive)} client thread(s) hung")
    return failures


def test_parallel_clients_mixed_workload_serial(tmp_path):
    workload = _workload()
    direct = _direct_bytes(workload)
    service = MeshService(f"unix:{tmp_path}/soak.sock", backend="serial",
                          batch_window=0.02)
    thread = ServiceThread(service)
    endpoint = thread.start()
    try:
        failures = _soak(endpoint, workload, direct)
        assert not failures, failures
        stats = service.stats()
        total = float(N_CLIENTS * REQUESTS_PER_CLIENT)
        assert stats["requests"] == total
        # Single-flight + cache: each distinct request meshed once.
        assert stats["cache_hits"] + stats["dedup_joins"] == \
            total - len(workload)
        assert stats["latency_p50_s"] > 0.0
        assert stats["latency_p99_s"] >= stats["latency_p50_s"]
    finally:
        thread.stop()


@pytest.mark.skipif(not os.path.isdir(SHM_DIR),
                    reason="no /dev/shm to scan on this platform")
def test_soak_processes_backend_no_shm_leaks(tmp_path, shm_everything):
    """Full service lifecycle on the processes backend with every
    transfer riding shared memory: soak traffic, a mid-request client
    disconnect, graceful shutdown — and no leaked segments after."""
    before = _segments()
    workload = _workload()[:2]
    direct = _direct_bytes(workload)
    with _suspended():
        service = MeshService(f"unix:{tmp_path}/soak.sock",
                              backend="processes", n_ranks=2,
                              batch_window=0.05)
        thread = ServiceThread(service)
        endpoint = thread.start()
        try:
            # One client vanishes mid-request while the soak runs.
            raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            raw.connect(str(tmp_path / "soak.sock"))
            raw.sendall(encode_frame("mesh", serde.buffers_to_bytes(
                pack_mesh_request(*workload[0]))))
            raw.close()
            failures = _soak(endpoint, workload, direct,
                             n_clients=3, per_client=4)
            assert not failures, failures
            stats = service.stats()
            assert stats["requests"] >= 12.0
        finally:
            thread.stop()
    # The daemon owned its pool: workers are gone after shutdown ...
    assert service._backend._pool is None
    # ... and every shm wire was attached+unlinked by exactly one side.
    assert _segments() <= before


def test_soak_survives_reconnect_churn(tmp_path):
    """Fresh connection per request (the CLI submit pattern) under
    concurrency: connection setup/teardown must not leak state."""
    workload = _workload()[:1]
    direct = _direct_bytes(workload)
    service = MeshService(f"unix:{tmp_path}/churn.sock", backend="serial",
                          batch_window=0.01)
    thread = ServiceThread(service)
    endpoint = thread.start()
    try:
        failures = []

        def churn(cid):
            try:
                for _ in range(5):
                    with ServiceClient(endpoint) as client:
                        reply = client.submit(*workload[0])
                        if reply.raw != direct[0]:
                            failures.append((cid, "bytes differ"))
            except Exception as exc:  # noqa: BLE001
                failures.append((cid, repr(exc)))

        threads = [threading.Thread(target=churn, args=(cid,))
                   for cid in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert not failures, failures
        assert not any(t.is_alive() for t in threads)
        assert service.stats()["requests"] == 15.0
    finally:
        thread.stop()
