"""Adaptation loop: model problem exactness, error decrease, dispatch.

The shear-layer model problem has a closed-form solution, so the loop's
claims are directly measurable: the FEM solve converges to the exact
solution, each adaptation cycle reduces the L2 error (until the
eps-floor), and the executor-dispatched adapt step is byte-identical to
the in-process one.
"""

import numpy as np
import pytest

from repro.delaunay import refine_pslg
from repro.metric import MetricField
from repro.runtime import serde
from repro.solver.adapt import (
    AdaptLoopResult,
    ShearLayerProblem,
    adapt_loop,
    l2_error,
    solve_on_mesh,
)

UNIT_SQUARE = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
SQUARE_SEGS = np.array([[0, 1], [1, 2], [2, 3], [3, 0]])


def square_mesh(max_area=0.02):
    return refine_pslg(UNIT_SQUARE.copy(), SQUARE_SEGS.copy(),
                       max_area=max_area)


class TestModelProblem:
    def test_forcing_matches_numerical_laplacian(self):
        """f = -Lap(u) checked against central differences."""
        prob = ShearLayerProblem(delta=0.2, amplitude=0.1)
        rng = np.random.default_rng(0)
        x = rng.uniform(0.1, 0.9, 50)
        y = rng.uniform(0.1, 0.9, 50)
        h = 1e-5
        lap = (prob.exact(x + h, y) + prob.exact(x - h, y)
               + prob.exact(x, y + h) + prob.exact(x, y - h)
               - 4.0 * prob.exact(x, y)) / (h * h)
        np.testing.assert_allclose(prob.forcing(x, y), -lap,
                                   rtol=1e-4, atol=1e-4)

    def test_fem_solution_converges_to_exact(self):
        """Halving h reduces the L2 error (roughly O(h^2) for P1)."""
        prob = ShearLayerProblem(delta=0.3, amplitude=0.05)
        errs = []
        for area in (0.02, 0.005):
            mesh = square_mesh(area)
            u = solve_on_mesh(mesh, prob)
            errs.append(l2_error(mesh, u, prob))
        assert errs[1] < errs[0] / 2.5

    def test_l2_error_zero_for_exact_solution(self):
        prob = ShearLayerProblem()
        mesh = square_mesh()
        u = prob.exact(mesh.points[:, 0], mesh.points[:, 1])
        assert l2_error(mesh, u, prob) < 1e-12


class TestAdaptLoop:
    @pytest.fixture(scope="class")
    def loop_result(self):
        return adapt_loop(square_mesh(0.02), cycles=3, eps=2e-2,
                          h_min=5e-3, h_max=0.3,
                          problem=ShearLayerProblem())

    def test_error_drops_sharply(self, loop_result):
        first = loop_result.history[0].error
        assert loop_result.error < first / 10.0

    def test_history_records_every_cycle(self, loop_result):
        assert loop_result.history[0].cycle == 0
        assert loop_result.history[0].report is None
        for i, c in enumerate(loop_result.history):
            assert c.cycle == i
            if i > 0:
                assert c.report is not None
                assert c.report.splits + c.report.collapses > 0

    def test_final_mesh_valid(self, loop_result):
        mesh = loop_result.mesh
        assert mesh.is_conforming()
        assert np.all(mesh.areas() > 0)
        assert len(loop_result.solution) == mesh.n_points

    def test_to_dict_roundtrips_counters(self, loop_result):
        d = loop_result.to_dict()
        assert len(d["history"]) == len(loop_result.history)
        assert d["history"][1]["report"]["splits"] > 0

    def test_rejects_zero_cycles(self):
        with pytest.raises(ValueError):
            adapt_loop(square_mesh(), cycles=0)


class TestExecutorDispatch:
    def test_serial_backend_matches_inprocess(self):
        """Backend-dispatched adapt step == in-process, bit for bit."""
        mesh = square_mesh()
        r_local = adapt_loop(mesh, cycles=1, eps=3e-2, h_min=1e-2,
                             h_max=0.3, backend=None)
        r_exec = adapt_loop(mesh, cycles=1, eps=3e-2, h_min=1e-2,
                            h_max=0.3, backend="serial")
        h1 = serde.canonical_hash(serde.pack_mesh(r_local.mesh))
        h2 = serde.canonical_hash(serde.pack_mesh(r_exec.mesh))
        assert h1 == h2
        assert r_local.error == r_exec.error
