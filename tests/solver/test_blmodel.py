"""Tests for the boundary-layer model problem (manufactured solution)."""

import math

import numpy as np
import pytest

from repro.solver.blmodel import (
    exact_solution,
    isotropic_mesh,
    layered_mesh,
    solve_bl_model,
)


class TestMeshes:
    def test_layered_mesh_structure(self):
        mesh = layered_mesh(1e-4, nx=10)
        assert mesh.is_conforming()
        assert np.all(mesh.areas() > 0)
        # First layer height ~ sqrt(eps)/4 = 2.5e-3.
        ys = np.unique(mesh.points[:, 1])
        assert ys[1] == pytest.approx(2.5e-3)
        # Strongly anisotropic near the wall.
        assert mesh.aspect_ratios().max() > 10

    def test_layered_mesh_covers_square(self):
        mesh = layered_mesh(1e-4)
        assert np.abs(mesh.areas()).sum() == pytest.approx(1.0)

    def test_isotropic_mesh_size(self):
        mesh = isotropic_mesh(800)
        assert 300 <= mesh.n_points <= 3000
        assert np.abs(mesh.areas()).sum() == pytest.approx(1.0)


class TestSolve:
    def test_exact_on_boundary(self):
        mesh = layered_mesh(1e-4)
        res = solve_bl_model(mesh, 1e-4)
        exact = exact_solution(mesh.points, 1e-4)
        # Dirichlet data reproduced exactly on the boundary.
        from repro.solver.fem import boundary_nodes

        bn = boundary_nodes(mesh)
        assert res.l2_error < 0.05

    def test_error_decreases_with_refinement(self):
        e_coarse = solve_bl_model(layered_mesh(1e-4, nx=8), 1e-4).l2_error
        e_fine = solve_bl_model(layered_mesh(1e-4, nx=24,
                                             first=math.sqrt(1e-4) / 8),
                                1e-4).l2_error
        assert e_fine < e_coarse

    def test_validation(self):
        with pytest.raises(ValueError):
            solve_bl_model(layered_mesh(1e-4), eps=0.0)

    def test_anisotropic_wins_per_dof(self):
        """The paper's quantitative motivation: at equal DOF, the layered
        anisotropic mesh resolves the boundary layer far better than the
        isotropic quality mesh."""
        eps = 1e-4
        aniso = layered_mesh(eps, nx=20)
        res_a = solve_bl_model(aniso, eps)
        iso = isotropic_mesh(res_a.n_dof)
        res_i = solve_bl_model(iso, eps)
        # Comparable DOF budgets.
        assert 0.2 <= res_i.n_dof / res_a.n_dof <= 8.0
        # Anisotropic error is at least 3x smaller at comparable size.
        assert res_a.l2_error < res_i.l2_error / 3.0

    def test_isotropic_needs_many_more_dofs(self):
        """Matching the aniso accuracy isotropically costs a multiple in
        DOF — the Fig. 16 element-count mechanism."""
        eps = 4e-4
        res_a = solve_bl_model(layered_mesh(eps, nx=16), eps)
        # Find the isotropic size that reaches the aniso error.
        needed = None
        for target in (res_a.n_dof, 4 * res_a.n_dof, 16 * res_a.n_dof):
            res_i = solve_bl_model(isotropic_mesh(target), eps)
            if res_i.l2_error <= res_a.l2_error:
                needed = res_i.n_dof
                break
        if needed is None:
            needed = float("inf")
        assert needed >= 3 * res_a.n_dof
