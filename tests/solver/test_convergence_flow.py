"""Tests for iterative solvers and the potential-flow solver."""

import math

import numpy as np
import pytest
import scipy.sparse as sp

from repro.delaunay.refine import refine_pslg
from repro.solver.convergence import bicgstab, jacobi, pcg
from repro.solver.fem import apply_dirichlet, assemble_stiffness, boundary_nodes
from repro.solver.flow import solve_potential_flow


def laplace_system(max_area=0.01):
    pts = np.array([(0, 0), (1, 0), (1, 1), (0, 1)], dtype=float)
    segs = np.array([(0, 1), (1, 2), (2, 3), (3, 0)])
    mesh = refine_pslg(pts, segs, max_area=max_area)
    K = assemble_stiffness(mesh)
    bn = boundary_nodes(mesh)
    g = mesh.points[:, 0] ** 2 - mesh.points[:, 1] ** 2  # harmonic
    A, b = apply_dirichlet(K, np.zeros(mesh.n_points), bn, g[bn])
    return mesh, A, b, g


class TestIterativeSolvers:
    def setup_method(self):
        self.mesh, self.A, self.b, self.exact = laplace_system()

    def test_pcg_converges_to_exact(self):
        res = pcg(self.A, self.b, tol=1e-12)
        assert res.converged
        # x^2 - y^2 is harmonic but not in the P1 space: the discrete
        # solution carries O(h^2) discretisation error (~2e-3 here).
        np.testing.assert_allclose(res.x, self.exact, atol=1e-2)
        # Residual history is monotone-ish and hits the tolerance.
        assert res.residuals[-1] <= 1e-12
        assert res.iterations < self.mesh.n_points

    def test_jacobi_converges_slowly(self):
        res_j = jacobi(self.A, self.b, tol=1e-8, max_iter=50_000)
        res_c = pcg(self.A, self.b, tol=1e-8)
        assert res_j.converged
        assert res_j.iterations > res_c.iterations

    def test_jacobi_zero_diag_raises(self):
        A = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(ValueError):
            jacobi(A, np.ones(2))

    def test_bicgstab_nonsymmetric(self):
        rng = np.random.default_rng(0)
        n = 60
        A = sp.csr_matrix(np.eye(n) * 4 + rng.uniform(-0.5, 0.5, (n, n)))
        b = rng.uniform(size=n)
        res = bicgstab(A, b, tol=1e-10)
        assert res.converged
        np.testing.assert_allclose(A @ res.x, b, atol=1e-7)

    def test_history_tracks_budget(self):
        res = jacobi(self.A, self.b, tol=1e-30, max_iter=50)
        assert not res.converged
        assert len(res.residuals) == 50

    def test_iterations_scale_with_mesh_size(self):
        """The Fig. 16 mechanism: a bigger system needs more iterations
        to the same tolerance (for the same problem and solver)."""
        _, A1, b1, _ = laplace_system(max_area=0.02)
        _, A2, b2, _ = laplace_system(max_area=0.002)
        r1 = pcg(A1, b1, tol=1e-10)
        r2 = pcg(A2, b2, tol=1e-10)
        assert r2.iterations > 1.5 * r1.iterations


def airfoil_flow_mesh(n_surface=81, box=2.5, max_area=0.02):
    from repro.geometry.airfoils import naca0012

    af = naca0012(n_surface)
    corners = np.array(
        [(-box, -box), (box + 1, -box), (box + 1, box), (-box, box)])
    pts = np.vstack([af, corners])
    n = len(af)
    segs = np.array(
        [(i, (i + 1) % n) for i in range(n)]
        + [(n + i, n + (i + 1) % 4) for i in range(4)]
    )
    mesh = refine_pslg(pts, segs, holes=[(0.5, 0.0)], max_area=max_area,
                       min_edge_floor=1e-3)
    return mesh, af


class TestPotentialFlow:
    @classmethod
    def setup_class(cls):
        cls.mesh, cls.af = airfoil_flow_mesh()

    def test_zero_alpha_symmetric(self):
        res = solve_potential_flow(self.mesh, [self.af], u_inf=1.0,
                                   alpha_deg=0.0)
        # Symmetric section at zero incidence: negligible lift.
        assert abs(res.lift_coefficient()) < 0.1
        # Far from the body the speed returns to U_inf.
        cents = self.mesh.centroids()
        far = np.hypot(cents[:, 0] - 0.5, cents[:, 1]) > 2.0
        speeds = np.linalg.norm(res.velocity[far], axis=1)
        assert np.median(speeds) == pytest.approx(1.0, abs=0.15)

    def test_positive_alpha_gives_lift(self):
        res = solve_potential_flow(self.mesh, [self.af], u_inf=1.0,
                                   alpha_deg=5.0)
        assert res.lift_coefficient() > 0.1
        # Thin-airfoil theory: Cl ~ 2 pi alpha ~ 0.55 at 5 degrees.
        assert res.lift_coefficient() < 1.5

    def test_pressure_pattern_at_alpha(self):
        """Paper Fig. 14: high pressure underneath, low on top."""
        res = solve_potential_flow(self.mesh, [self.af], u_inf=1.0,
                                   alpha_deg=5.0)
        cents = self.mesh.centroids()
        near = (np.abs(cents[:, 0] - 0.4) < 0.3)
        above = near & (cents[:, 1] > 0.03) & (cents[:, 1] < 0.2)
        below = near & (cents[:, 1] < -0.03) & (cents[:, 1] > -0.2)
        assert res.cp[below].mean() > res.cp[above].mean()

    def test_stagnation_points_exist(self):
        res = solve_potential_flow(self.mesh, [self.af], u_inf=1.0,
                                   alpha_deg=5.0)
        stag = res.stagnation_elements(frac=0.25)
        assert len(stag) > 0
        # A stagnation element sits near the leading edge.
        cents = self.mesh.centroids()[stag]
        assert np.min(np.hypot(cents[:, 0], cents[:, 1])) < 0.2

    def test_mach_scaling(self):
        res = solve_potential_flow(self.mesh, [self.af], u_inf=1.0,
                                   alpha_deg=5.0, mach_inf=0.3)
        assert res.mach.max() > 0.3  # acceleration over the upper surface
        assert res.mach.min() >= 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            solve_potential_flow(self.mesh, [self.af], u_inf=0.0)
