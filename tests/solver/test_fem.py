"""Tests for the P1 FEM kernel: patch tests and manufactured solutions."""

import math

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.delaunay.refine import refine_pslg
from repro.solver.fem import (
    apply_dirichlet,
    assemble_convection,
    assemble_mass,
    assemble_stiffness,
    boundary_nodes,
    gradients,
)


def unit_square_mesh(max_area=0.01):
    pts = np.array([(0, 0), (1, 0), (1, 1), (0, 1)], dtype=float)
    segs = np.array([(0, 1), (1, 2), (2, 3), (3, 0)])
    return refine_pslg(pts, segs, max_area=max_area)


MESH = unit_square_mesh()


class TestGradients:
    def test_partition_of_unity(self):
        g, areas = gradients(MESH)
        # Hat-function gradients sum to zero on each element.
        np.testing.assert_allclose(g.sum(axis=1), 0.0, atol=1e-12)
        assert areas.sum() == pytest.approx(1.0)

    def test_linear_exactness(self):
        # grad of u(x,y) = 3x - 2y reproduced exactly elementwise.
        g, _ = gradients(MESH)
        u = 3 * MESH.points[:, 0] - 2 * MESH.points[:, 1]
        grad_u = np.einsum("tia,ti->ta", g, u[MESH.triangles])
        np.testing.assert_allclose(grad_u[:, 0], 3.0, atol=1e-9)
        np.testing.assert_allclose(grad_u[:, 1], -2.0, atol=1e-9)


class TestStiffness:
    def test_symmetry_and_nullspace(self):
        K = assemble_stiffness(MESH)
        assert abs(K - K.T).max() < 1e-12
        # Constants are in the null space.
        ones = np.ones(MESH.n_points)
        assert np.abs(K @ ones).max() < 1e-12

    def test_energy_of_linear_field(self):
        # ∫|grad u|^2 for u = x on the unit square is 1.
        K = assemble_stiffness(MESH)
        u = MESH.points[:, 0].copy()
        assert u @ (K @ u) == pytest.approx(1.0)

    def test_anisotropic_tensor(self):
        D = np.array([[10.0, 0.0], [0.0, 0.1]])
        K = assemble_stiffness(MESH, D)
        ux = MESH.points[:, 0].copy()
        uy = MESH.points[:, 1].copy()
        assert ux @ (K @ ux) == pytest.approx(10.0)
        assert uy @ (K @ uy) == pytest.approx(0.1)

    def test_callable_diffusivity(self):
        K = assemble_stiffness(MESH, lambda x, y: (1 + x) * np.eye(2))
        u = MESH.points[:, 0].copy()
        # ∫(1+x) dx dy over [0,1]^2 = 1.5 for u = x.
        assert u @ (K @ u) == pytest.approx(1.5, rel=1e-9)


class TestMass:
    def test_total_mass(self):
        M = assemble_mass(MESH)
        ones = np.ones(MESH.n_points)
        assert ones @ (M @ ones) == pytest.approx(1.0)

    def test_lumped_equals_consistent_row_sums(self):
        M = assemble_mass(MESH)
        L = assemble_mass(MESH, lumped=True)
        np.testing.assert_allclose(
            np.asarray(M.sum(axis=1)).ravel(), L.diagonal(), rtol=1e-12
        )

    def test_linear_integral(self):
        M = assemble_mass(MESH)
        x = MESH.points[:, 0]
        ones = np.ones(MESH.n_points)
        assert ones @ (M @ x) == pytest.approx(0.5, rel=1e-9)


class TestConvection:
    def test_skew_symmetric_core_on_linears(self):
        # ∫ phi_i (v.grad u) for u = x, v = (1,0): equals ∫ phi_i,
        # so the row sums against u=x give the domain area.
        C = assemble_convection(MESH, (1.0, 0.0), supg=False)
        u = MESH.points[:, 0].copy()
        ones = np.ones(MESH.n_points)
        assert ones @ (C @ u) == pytest.approx(1.0, rel=1e-9)

    def test_supg_adds_streamline_diffusion(self):
        C0 = assemble_convection(MESH, (1.0, 0.0), supg=False)
        C1 = assemble_convection(MESH, (1.0, 0.0), supg=True)
        u = MESH.points[:, 0].copy()
        # The SUPG term adds u-dependent positive definiteness along v.
        q0 = u @ (C0 @ u)
        q1 = u @ (C1 @ u)
        assert q1 > q0

    def test_callable_velocity(self):
        C = assemble_convection(MESH, lambda x, y: (y, -x), supg=False)
        assert C.shape == (MESH.n_points, MESH.n_points)


class TestDirichletAndSolve:
    def test_laplace_linear_exact(self):
        """Laplace with linear BCs reproduces the linear solution exactly."""
        K = assemble_stiffness(MESH)
        bn = boundary_nodes(MESH)
        g = 2 * MESH.points[:, 0] + MESH.points[:, 1]
        A, b = apply_dirichlet(K, np.zeros(MESH.n_points), bn, g[bn])
        u = spla.spsolve(A.tocsc(), b)
        np.testing.assert_allclose(u, g, atol=1e-9)

    def test_symmetry_preserved(self):
        K = assemble_stiffness(MESH)
        bn = boundary_nodes(MESH)
        A, _ = apply_dirichlet(K, np.zeros(MESH.n_points), bn, 0.0)
        assert abs(A - A.T).max() < 1e-12

    def test_poisson_manufactured_convergence(self):
        """-Δu = 2π² sin(πx)sin(πy): L2 error shrinks ~h² under refinement."""
        errors = []
        for max_area in (0.02, 0.005):
            mesh = unit_square_mesh(max_area)
            K = assemble_stiffness(mesh)
            M = assemble_mass(mesh)
            x, y = mesh.points[:, 0], mesh.points[:, 1]
            exact = np.sin(np.pi * x) * np.sin(np.pi * y)
            f = 2 * np.pi**2 * exact
            b = M @ f
            bn = boundary_nodes(mesh)
            A, bb = apply_dirichlet(K, b, bn, 0.0)
            u = spla.spsolve(A.tocsc(), bb)
            err = u - exact
            errors.append(math.sqrt(err @ (M @ err)))
        assert errors[1] < errors[0] / 2.5  # ~4x for h halving

    def test_boundary_nodes_predicate(self):
        left = boundary_nodes(MESH, lambda x, y: x == 0.0)
        assert len(left) > 0
        assert np.all(MESH.points[left, 0] == 0.0)
