"""Tests for the alternating digital tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.aabb import AABB, segment_extent_box
from repro.spatial.adt import ADT

coord = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


def box_strategy():
    return st.tuples(coord, coord, coord, coord).map(
        lambda t: AABB(min(t[0], t[2]), min(t[1], t[3]),
                       max(t[0], t[2]), max(t[1], t[3]))
    )


WORLD = AABB(0, 0, 100, 100)


class TestInsertQuery:
    def test_empty_query(self):
        t = ADT(WORLD)
        assert t.query(AABB(0, 0, 1, 1)) == []
        assert len(t) == 0

    def test_single_hit(self):
        t = ADT(WORLD)
        t.insert(AABB(10, 10, 20, 20), 7)
        assert t.query(AABB(15, 15, 30, 30)) == [7]
        assert t.query(AABB(30, 30, 40, 40)) == []

    def test_edge_touch_counts(self):
        t = ADT(WORLD)
        t.insert(AABB(10, 10, 20, 20), 1)
        assert t.query(AABB(20, 10, 30, 20)) == [1]
        assert t.query(AABB(20, 20, 30, 30)) == [1]  # corner touch

    def test_containment_counts(self):
        t = ADT(WORLD)
        t.insert(AABB(10, 10, 50, 50), 1)
        assert t.query(AABB(20, 20, 30, 30)) == [1]  # query inside stored
        t.insert(AABB(22, 22, 28, 28), 2)
        assert sorted(t.query(AABB(20, 20, 30, 30))) == [1, 2]

    def test_out_of_bounds_insert_raises(self):
        t = ADT(WORLD)
        with pytest.raises(ValueError):
            t.insert(AABB(-5, 0, 1, 1), 0)

    def test_degenerate_point_boxes(self):
        t = ADT(WORLD)
        for i in range(10):
            t.insert(AABB(5.0, 5.0, 5.0, 5.0), i)  # identical zero-area boxes
        assert sorted(t.query(AABB(5, 5, 5, 5))) == list(range(10))
        assert t.query(AABB(6, 6, 7, 7)) == []

    def test_from_boxes_classmethod(self):
        boxes = [AABB(i, i, i + 1, i + 1) for i in range(5)]
        t = ADT.from_boxes(boxes)
        assert len(t) == 5
        assert sorted(t.query(AABB(0.5, 0.5, 2.5, 2.5))) == [0, 1, 2]

    def test_from_boxes_empty_raises(self):
        with pytest.raises(ValueError):
            ADT.from_boxes([])


class TestAgainstBruteForce:
    @given(
        boxes=st.lists(box_strategy(), min_size=1, max_size=60),
        query=box_strategy(),
    )
    @settings(max_examples=150)
    def test_query_complete_and_sound(self, boxes, query):
        t = ADT(WORLD).build(boxes)
        got = sorted(t.query(query))
        expect = sorted(i for i, b in enumerate(boxes) if b.overlaps(query))
        assert got == expect

    @given(boxes=st.lists(box_strategy(), min_size=2, max_size=30))
    @settings(max_examples=60)
    def test_query_pairs_matches_bruteforce(self, boxes):
        t = ADT(WORLD).build(boxes)
        got = sorted(t.query_pairs())
        expect = sorted(
            (i, j)
            for i in range(len(boxes))
            for j in range(i + 1, len(boxes))
            if boxes[i].overlaps(boxes[j])
        )
        assert got == expect


class TestLogDepth:
    def test_depth_logarithmic_for_spread_boxes(self):
        rng = np.random.default_rng(0)
        n = 4096
        t = ADT(WORLD)
        for i in range(n):
            x, y = rng.uniform(0, 99, size=2)
            t.insert(AABB(x, y, x + 1, y + 1), i)
        # A digital tree over uniform data stays near-balanced: depth
        # should be O(log n) with a modest constant, far below n.
        assert t.depth() <= 4 * int(np.log2(n))

    def test_segment_extent_workflow(self):
        # The paper's usage: rays as segments -> extent boxes -> 4D points.
        rng = np.random.default_rng(1)
        segs = rng.uniform(10, 90, size=(200, 2, 2))
        boxes = [segment_extent_box(s[0], s[1]) for s in segs]
        t = ADT(WORLD).build(boxes)
        q = boxes[17]
        hits = t.query(q)
        assert 17 in hits
        for i in hits:
            assert boxes[i].overlaps(q)
