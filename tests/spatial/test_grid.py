"""Tests for the uniform bucket grid."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.aabb import AABB
from repro.spatial.grid import BucketGrid

WORLD = AABB(0, 0, 10, 10)
coord = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)


class TestBucketGrid:
    def test_empty_nearest(self):
        g = BucketGrid(WORLD)
        assert g.nearest(5, 5) is None

    def test_single_point(self):
        g = BucketGrid(WORLD)
        g.insert(3, 3, 42)
        assert g.nearest(9, 9) == 42
        assert len(g) == 1

    def test_nearest_exact_for_clear_winner(self):
        g = BucketGrid(WORLD, expected_points=100)
        g.insert(1, 1, 0)
        g.insert(9, 9, 1)
        assert g.nearest(2, 2) == 0
        assert g.nearest(8, 8) == 1

    def test_outside_points_clamped(self):
        g = BucketGrid(WORLD)
        g.insert(-5, -5, 0)  # clamped into corner bucket
        assert g.nearest(0, 0) == 0

    def test_points_in_box(self):
        g = BucketGrid(WORLD, expected_points=64)
        pts = np.array([[1, 1], [2, 2], [5, 5], [9, 9]], dtype=float)
        g.insert_many(pts)
        assert sorted(g.points_in_box(AABB(0, 0, 3, 3))) == [0, 1]
        assert g.points_in_box(AABB(4, 4, 6, 6)) == [2]
        assert g.points_in_box(AABB(6, 0, 8, 2)) == []

    @given(
        pts=st.lists(st.tuples(coord, coord), min_size=1, max_size=50),
        q=st.tuples(coord, coord),
    )
    @settings(max_examples=100)
    def test_nearest_is_near(self, pts, q):
        """The grid's 'nearest' must be within 2 rings of the true nearest,
        which for our ring search means: not farther than 3x the true
        nearest distance plus two bucket diagonals."""
        g = BucketGrid(WORLD, expected_points=len(pts))
        for i, (x, y) in enumerate(pts):
            g.insert(x, y, i)
        got = g.nearest(*q)
        assert got is not None
        d_got = np.hypot(pts[got][0] - q[0], pts[got][1] - q[1])
        d_true = min(np.hypot(x - q[0], y - q[1]) for x, y in pts)
        bucket_diag = np.hypot(WORLD.width / g.nx, WORLD.height / g.ny)
        assert d_got <= d_true + 2 * bucket_diag + 1e-9

    @given(pts=st.lists(st.tuples(coord, coord), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_points_in_box_matches_bruteforce(self, pts):
        g = BucketGrid(WORLD, expected_points=len(pts))
        for i, (x, y) in enumerate(pts):
            g.insert(x, y, i)
        box = AABB(2, 2, 7, 7)
        got = sorted(g.points_in_box(box))
        expect = sorted(i for i, (x, y) in enumerate(pts)
                        if box.contains_point((x, y)))
        assert got == expect
