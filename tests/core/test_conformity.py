"""Interface conformity of decoupled refinement (paper Section III).

The decoupling argument rests on a sharp guarantee: subdomains refined
*independently* still agree bit-for-bit along their shared borders — the
graded border point spacing ensures refinement never needs to split a
locked border segment, so every interface vertex and edge appears
identically (exact float equality, not within tolerance) on both sides.
These tests check that guarantee at the coordinate level, which is what
lets ``merge_meshes`` weld subdomain meshes without creating T-junctions.
"""

from collections import Counter

import numpy as np

from repro.core.decouple import decouple, initial_quadrants, refine_subdomain
from repro.delaunay.mesh import merge_meshes
from repro.geometry.aabb import AABB
from repro.sizing.functions import RadialSizing

INNER = AABB(-1, -1, 1, 1)
OUTER = AABB(-6, -6, 6, 6)


def _decoupled_meshes(target_count=8):
    sizing = RadialSizing((0, 0), h0=0.35, grading=0.35)
    quads = initial_quadrants(INNER, OUTER, sizing)
    subs = decouple(quads, sizing, target_count=target_count)
    return subs, [refine_subdomain(s, sizing) for s in subs]


def _point_key(p) -> bytes:
    # Exact binary representation: conformity means *identical* floats.
    return np.asarray(p, dtype=np.float64).tobytes()


def _boundary_edge_keys(mesh):
    """Boundary edges as direction-normalised exact coordinate pairs."""
    keys = []
    for u, v in mesh.boundary_edges():
        a, b = _point_key(mesh.points[u]), _point_key(mesh.points[v])
        keys.append((a, b) if a < b else (b, a))
    return keys


def _on_domain_boundary(p) -> bool:
    m = max(abs(p[0]), abs(p[1]))
    return m == 1.0 or m == 6.0  # exactly on the inner or outer ring


class TestInterfaceConformity:
    def test_interface_vertices_bit_identical(self):
        """Every refined submesh retains its decoupling-border vertices
        exactly; shared border points coincide bit-for-bit across the
        neighbouring submeshes."""
        subs, meshes = _decoupled_meshes()
        mesh_point_sets = [
            {_point_key(p) for p in m.points} for m in meshes
        ]
        ring_keys = [
            [_point_key(p) for p in s.ring] for s in subs
        ]
        for ring, pset in zip(ring_keys, mesh_point_sets):
            missing = [k for k in ring if k not in pset]
            assert not missing, (
                f"{len(missing)} locked border vertices lost by refinement"
            )
        # Adjacent subdomains share border vertices exactly.
        shared_any = 0
        for i in range(len(subs)):
            for j in range(i + 1, len(subs)):
                common = set(ring_keys[i]) & set(ring_keys[j])
                if common:
                    shared_any += 1
                    assert common <= mesh_point_sets[i]
                    assert common <= mesh_point_sets[j]
        assert shared_any > 0, "decomposition produced no interfaces"

    def test_interface_edges_match_pairwise(self):
        """Each refined submesh boundary edge is either a domain-boundary
        edge or appears in exactly one other submesh (same two exact
        coordinates) — no T-junctions, no hanging interface edges."""
        _subs, meshes = _decoupled_meshes()
        counts = Counter()
        for m in meshes:
            counts.update(_boundary_edge_keys(m))
        for (a, b), c in counts.items():
            pa = np.frombuffer(a, dtype=np.float64)
            pb = np.frombuffer(b, dtype=np.float64)
            if c == 1:
                assert _on_domain_boundary(pa) and _on_domain_boundary(pb), (
                    f"unmatched interface edge {pa}-{pb}"
                )
            else:
                assert c == 2, (
                    f"interface edge {pa}-{pb} shared by {c} subdomains"
                )

    def test_merge_welds_interfaces_exactly(self):
        """Welding on exact coordinates: the merged mesh has one vertex
        per distinct coordinate, every interface edge becomes an internal
        edge, and the merged boundary is exactly the domain boundary."""
        _subs, meshes = _decoupled_meshes()
        merged = merge_meshes(meshes)
        assert merged.is_conforming()
        distinct = {_point_key(p) for m in meshes for p in m.points}
        assert merged.n_points == len(distinct)

        counts = Counter()
        for m in meshes:
            counts.update(_boundary_edge_keys(m))
        domain_boundary = {k for k, c in counts.items() if c == 1}
        merged_boundary = set(_boundary_edge_keys(merged))
        assert merged_boundary == domain_boundary
