"""Golden regression: the NACA 0012 quickstart mesh vs the stored output.

``examples/output/naca0012.npz`` is the quickstart mesh checked in as a
golden artefact.  Re-meshing the same configuration must stay within a
few percent of it on the macro statistics — a drift gate for kernel,
refinement, or decoupling changes that accidentally alter the mesh (the
kernel itself is allowed to change insertion internals, so counts are
compared within tolerance, not bit-for-bit).
"""

from pathlib import Path

import numpy as np
import pytest

from repro import BoundaryLayerConfig, MeshConfig, PSLG, generate_mesh, naca0012
from repro.io.meshio import read_mesh_npz

GOLDEN = Path(__file__).resolve().parents[2] / "examples/output/naca0012.npz"


@pytest.fixture(scope="module")
def golden_mesh():
    return read_mesh_npz(GOLDEN)


@pytest.fixture(scope="module")
def quickstart_mesh():
    # Mirrors examples/quickstart.py exactly.
    pslg = PSLG.from_loops([naca0012(n_points=101)], names=["naca0012"])
    config = MeshConfig(
        bl=BoundaryLayerConfig(first_spacing=1e-3, growth_ratio=1.3,
                               max_layers=40),
        farfield_chords=40.0,
        target_subdomains=16,
    )
    return generate_mesh(pslg, config).mesh


class TestGoldenNaca0012:
    def test_counts_within_tolerance(self, golden_mesh, quickstart_mesh):
        assert quickstart_mesh.n_points == pytest.approx(
            golden_mesh.n_points, rel=0.05)
        assert quickstart_mesh.n_triangles == pytest.approx(
            golden_mesh.n_triangles, rel=0.05)

    def test_min_angle_within_tolerance(self, golden_mesh, quickstart_mesh):
        got = float(np.degrees(quickstart_mesh.min_angle()))
        want = float(np.degrees(golden_mesh.min_angle()))
        # The minimum angle is set by the BL slivers at the trailing-edge
        # cusp, which the BL generator controls deterministically.
        assert got == pytest.approx(want, rel=0.02)

    def test_structure_matches_golden(self, golden_mesh, quickstart_mesh):
        assert quickstart_mesh.is_conforming()
        # Total mesh area (the farfield box minus the airfoil) must agree
        # tightly — it is fixed by the geometry, not the triangulation.
        got = float(np.abs(quickstart_mesh.areas()).sum())
        want = float(np.abs(golden_mesh.areas()).sum())
        assert got == pytest.approx(want, rel=1e-6)
