"""Backend parity and serde round trips for metric-adaptation items.

The metric buffers travel over the wire in the compact representation;
serde round trips are exact, so the adapt work item must produce
byte-identical meshes on every backend — the same parity contract the
refinement work item answers to.
"""

import numpy as np
import pytest

from repro.core import pipeline
from repro.delaunay import refine_pslg
from repro.metric import MetricField
from repro.runtime import executor, serde

UNIT_SQUARE = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
SQUARE_SEGS = np.array([[0, 1], [1, 2], [2, 3], [3, 0]])


@pytest.fixture(scope="module")
def case():
    mesh = refine_pslg(UNIT_SQUARE.copy(), SQUARE_SEGS.copy(),
                       max_area=0.02)
    h = np.where(np.abs(mesh.points[:, 1] - 0.5) < 0.15, 0.04, 0.3)
    field = MetricField.from_sizes(mesh.points, h)
    return mesh, field


class TestMetricSerde:
    def test_roundtrip_exact(self, case):
        _, field = case
        out = serde.unpack_metric(serde.pack_metric(field))
        np.testing.assert_array_equal(out.points, field.points)
        np.testing.assert_array_equal(out.tensors, field.tensors)

    def test_canonical_hash_stable(self, case):
        _, field = case
        h1 = serde.canonical_hash(serde.pack_metric(field))
        h2 = serde.canonical_hash(serde.pack_metric(
            serde.unpack_metric(serde.pack_metric(field))))
        assert h1 == h2

    def test_wire_roundtrip(self, case):
        _, field = case
        blob = serde.buffers_to_bytes(serde.pack_metric(field))
        out = serde.unpack_metric(serde.bytes_to_buffers(blob))
        np.testing.assert_array_equal(out.tensors, field.tensors)


class TestAdaptWorkitem:
    def test_workitem_matches_direct_call(self, case):
        from repro.delaunay.adapt import adapt_mesh

        mesh, field = case
        payload = pipeline.pack_adapt_item(mesh, field, max_passes=2)
        out = pipeline.adapt_workitem(payload)
        got_mesh, got_report = pipeline.unpack_adapt_result(out)
        want_mesh, want_report = adapt_mesh(mesh, field, max_passes=2)
        assert (serde.canonical_hash(serde.pack_mesh(got_mesh))
                == serde.canonical_hash(serde.pack_mesh(want_mesh)))
        assert got_report.to_dict() == want_report.to_dict()

    def test_knobs_travel(self, case):
        mesh, field = case
        payload = pipeline.pack_adapt_item(
            mesh, field, holes=[(0.5, 0.5)], l_min=0.6, l_max=1.7,
            max_passes=1, smooth_iterations=2, protect_segments=True)
        np.testing.assert_allclose(payload["params"],
                                   [0.6, 1.7, 1.0, 2.0, 1.0])
        np.testing.assert_allclose(payload["holes"], [[0.5, 0.5]])

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_backend_parity(self, case, backend):
        mesh, field = case
        payload = pipeline.pack_adapt_item(mesh, field, max_passes=2)
        impl = executor.get_backend(backend)
        n_ranks = 2 if impl.parallel else 1
        (out,) = impl.map_workitems(pipeline.adapt_workitem, [payload],
                                    n_ranks=n_ranks)
        got, _ = pipeline.unpack_adapt_result(out)
        ref_out = pipeline.adapt_workitem(
            pipeline.pack_adapt_item(mesh, field, max_passes=2))
        ref, _ = pipeline.unpack_adapt_result(ref_out)
        assert (serde.canonical_hash(serde.pack_mesh(got))
                == serde.canonical_hash(serde.pack_mesh(ref)))
