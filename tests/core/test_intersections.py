"""Tests for ray intersection resolution (self and multi-element)."""

import math

import numpy as np
import pytest

from repro.core.intersections import (
    outer_border_segments,
    ray_segment,
    resolve_multi_element_intersections,
    resolve_self_intersections,
)
from repro.core.rays import Ray
from repro.geometry.primitives import segments_intersect


def make_ray(ox, oy, dx, dy, **kw):
    n = math.hypot(dx, dy)
    return Ray(origin=(ox, oy), direction=(dx / n, dy / n), **kw)


class TestSelfIntersections:
    def test_parallel_rays_untouched(self):
        rays = [make_ray(x, 0, 0, 1) for x in np.linspace(0, 1, 5)]
        n = resolve_self_intersections(rays, default_height=1.0)
        assert n == 0
        assert all(math.isinf(r.max_height) for r in rays)

    def test_crossing_pair_truncated(self):
        # Two rays leaning into each other: cross at x=0.5.
        r1 = make_ray(0, 0, 1, 1)
        r2 = make_ray(1, 0, -1, 1)
        n = resolve_self_intersections([r1, r2], default_height=2.0)
        assert n == 2
        # Crossing at (0.5, 0.5): distance sqrt(0.5); factor 0.5.
        assert r1.max_height == pytest.approx(0.5 * math.sqrt(0.5))
        assert r2.max_height == pytest.approx(0.5 * math.sqrt(0.5))

    def test_truncated_segments_no_longer_cross(self):
        rng = np.random.default_rng(0)
        # A concave "vee" surface: rays on both walls point inward.
        rays = []
        for t in np.linspace(0, 1, 12):
            rays.append(make_ray(-1 + t, 1 - t, 1, 1))   # left wall
        for t in np.linspace(0, 1, 12):
            rays.append(make_ray(t, t, -1, 1))            # right wall
        resolve_self_intersections(rays, default_height=1.5)
        segs = [ray_segment(r, 1.5) for r in rays]
        for i in range(len(segs)):
            for j in range(i + 1, len(segs)):
                if rays[i].origin == rays[j].origin:
                    continue
                assert not segments_intersect(
                    *segs[i], *segs[j], proper_only=True
                ), (i, j)

    def test_fan_rays_shared_origin_ignored(self):
        fan = [make_ray(0, 0, math.cos(a), math.sin(a))
               for a in np.linspace(0.2, math.pi - 0.2, 7)]
        n = resolve_self_intersections(fan, default_height=1.0)
        assert n == 0

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            resolve_self_intersections([make_ray(0, 0, 0, 1)], 1.0,
                                       truncation_factor=0.0)

    def test_empty(self):
        assert resolve_self_intersections([], 1.0) == 0


class TestOuterBorder:
    def test_square_ring(self):
        rays = [
            make_ray(0, 0, -1, -1),
            make_ray(1, 0, 1, -1),
            make_ray(1, 1, 1, 1),
            make_ray(0, 1, -1, 1),
        ]
        for r in rays:
            r.heights = [math.sqrt(2) * 0.5]
        segs = outer_border_segments(rays, default_height=10.0)
        assert len(segs) == 4


class TestMultiElement:
    def _two_columns(self, gap):
        """Two vertical 'surfaces' facing each other across a gap."""
        left = [make_ray(0, y, 1, 0, element=0) for y in np.linspace(0, 1, 6)]
        right = [make_ray(gap, y, -1, 0, element=1)
                 for y in np.linspace(0, 1, 6)]
        return left, right

    def test_far_apart_untouched(self):
        left, right = self._two_columns(gap=10.0)
        n = resolve_multi_element_intersections([left, right],
                                                default_height=1.0)
        assert n == 0

    def test_close_elements_truncate(self):
        left, right = self._two_columns(gap=1.0)
        n = resolve_multi_element_intersections([left, right],
                                                default_height=2.0)
        assert n > 0
        # Rays from the left column must stop before the right surface.
        for r in left:
            assert r.max_height <= 1.0

    def test_truncation_respects_other_border_not_just_surface(self):
        left, right = self._two_columns(gap=1.0)
        # Give the right column pre-existing heights: its border sits at
        # x = 1 - 0.3 = 0.7.
        for r in right:
            r.heights = [0.3]
        resolve_multi_element_intersections([left, right], default_height=2.0)
        for r in left[1:-1]:  # interior rays squarely face the border
            assert r.max_height <= 0.7 + 1e-9

    def test_single_element_noop(self):
        left, _ = self._two_columns(gap=1.0)
        n = resolve_multi_element_intersections([left], default_height=2.0)
        assert n == 0

    def test_invalid_factor(self):
        left, right = self._two_columns(gap=1.0)
        with pytest.raises(ValueError):
            resolve_multi_element_intersections(
                [left, right], 1.0, truncation_factor=2.0
            )
