"""Tests for the projection-based decomposition (Section II.D)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decompose import decompose, leaf_region_mask, triangulate_leaves
from repro.core.projection import dividing_path, project_onto_paraboloid, side_of_path
from repro.core.subdomain import Subdomain
from repro.delaunay.kernel import delaunay_mesh
from repro.delaunay.mesh import merge_meshes


def tri_keyset(mesh):
    return {
        tuple(sorted(np.round(mesh.points[list(t)], 12).ravel()))
        for t in mesh.triangles.tolist()
    }


class TestSubdomain:
    def test_sorted_orders(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 1, size=(50, 2))
        sub = Subdomain.from_points(pts)
        xs = pts[sub.x_order, 0]
        ys = pts[sub.y_order, 1]
        assert np.all(np.diff(xs) >= 0)
        assert np.all(np.diff(ys) >= 0)

    def test_bbox_constant_time_correct(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(-5, 7, size=(40, 2))
        sub = Subdomain.from_points(pts)
        box = sub.bbox()
        assert box.xmin == pts[:, 0].min()
        assert box.xmax == pts[:, 0].max()
        assert box.ymin == pts[:, 1].min()
        assert box.ymax == pts[:, 1].max()

    def test_cut_axis_splits_long_dimension(self):
        wide = Subdomain.from_points(
            np.column_stack([np.linspace(0, 10, 20), np.zeros(20)]))
        assert wide.cut_axis() == "y"  # vertical cut splits x
        tall = Subdomain.from_points(
            np.column_stack([np.zeros(20), np.linspace(0, 10, 20)]))
        assert tall.cut_axis() == "x"

    def test_median_vertex(self):
        pts = np.column_stack([np.arange(9.0), np.zeros(9)])
        sub = Subdomain.from_points(pts)
        med = sub.median_vertex("y")
        assert pts[med, 0] == 4.0

    def test_partition_preserves_sortedness_and_points(self):
        rng = np.random.default_rng(2)
        pts = rng.uniform(0, 1, size=(80, 2))
        sub = Subdomain.from_points(pts)
        axis = sub.cut_axis()
        med = sub.median_vertex(axis)
        hull = dividing_path(sub, axis, med)
        left, right = sub.partition(axis, med, hull)
        for child in (left, right):
            assert np.all(np.diff(child.coords[child.x_order, 0]) >= 0)
            assert np.all(np.diff(child.coords[child.y_order, 1]) >= 0)
            assert child.level == 1
        # Every original point in at least one child; hull in both.
        union = set(left.gid.tolist()) | set(right.gid.tolist())
        assert union == set(range(80))
        both = set(left.gid.tolist()) & set(right.gid.tolist())
        assert set(int(sub.gid[h]) for h in hull) <= both

    def test_hull_vertices_marked_boundary(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 1, size=(50, 2))
        sub = Subdomain.from_points(pts)
        axis = sub.cut_axis()
        med = sub.median_vertex(axis)
        hull = dividing_path(sub, axis, med)
        left, right = sub.partition(axis, med, hull)
        hull_gids = {int(sub.gid[h]) for h in hull}
        for child in (left, right):
            for i, g in enumerate(child.gid):
                if int(g) in hull_gids:
                    assert child.boundary[i]

    def test_unknown_mode(self):
        sub = Subdomain.from_points(np.random.default_rng(0).uniform(size=(9, 2)))
        with pytest.raises(ValueError):
            sub.partition("y", 0, np.array([0]), mode="bogus")


class TestProjection:
    def test_median_at_apex(self):
        pts = np.array([(0, 0), (1, 2), (-1, 3)], dtype=float)
        uv = project_onto_paraboloid(pts, "y", (0.0, 0.0))
        assert uv[0, 1] == 0.0  # the centre projects to v = 0
        assert np.all(uv[1:, 1] > 0)

    def test_u_is_cut_axis_coordinate(self):
        pts = np.array([(3, 7)], dtype=float)
        assert project_onto_paraboloid(pts, "y", (0, 0))[0, 0] == 7
        assert project_onto_paraboloid(pts, "x", (0, 0))[0, 0] == 3

    def test_path_edges_are_delaunay(self):
        for seed in range(5):
            rng = np.random.default_rng(seed)
            pts = rng.uniform(0, 1, size=(60, 2))
            sub = Subdomain.from_points(pts)
            axis = sub.cut_axis()
            med = sub.median_vertex(axis)
            hull = dividing_path(sub, axis, med)
            glob = delaunay_mesh(pts)
            edges = {tuple(sorted(e)) for e in glob.edges().tolist()}
            for a, b in zip(hull, hull[1:]):
                assert tuple(sorted((int(a), int(b)))) in edges

    def test_median_vertex_on_path(self):
        rng = np.random.default_rng(7)
        pts = rng.uniform(0, 1, size=(40, 2))
        sub = Subdomain.from_points(pts)
        axis = sub.cut_axis()
        med = sub.median_vertex(axis)
        hull = dividing_path(sub, axis, med)
        assert med in hull.tolist()

    def test_side_of_path_simple(self):
        path = np.array([(0, 0), (0, 1), (0, 2)], dtype=float)  # x=0 line
        assert side_of_path(path, "y", (-1.0, 1.0)) == 1   # left: smaller x
        assert side_of_path(path, "y", (1.0, 1.0)) == -1
        assert side_of_path(path, "y", (0.0, 1.5)) == 0

    def test_side_of_path_zigzag_covering_segment(self):
        # A zigzag where the nearest segment is NOT the covering one.
        path = np.array([(0, 0), (5, 1), (0, 2)], dtype=float)
        # Point at u=y=0.5 sits in strip of segment (0,0)-(5,1).
        assert side_of_path(path, "y", (1.0, 0.5)) == side_of_path(
            np.array([(0, 0), (5, 1)], dtype=float), "y", (1.0, 0.5)
        )


class TestDecompose:
    def test_termination_by_leaf_size(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 1, size=(500, 2))
        res = decompose(pts, leaf_size=50)
        assert all(len(l) <= 130 for l in res.leaves)  # ~2x slack + hull dup
        assert len(res.leaves) >= 8

    def test_termination_by_level(self):
        rng = np.random.default_rng(0)
        pts = rng.uniform(0, 1, size=(500, 2))
        res = decompose(pts, leaf_size=1, max_level=3)
        assert len(res.leaves) <= 8
        assert all(l.level <= 3 for l in res.leaves)

    def test_balance_reasonable(self):
        rng = np.random.default_rng(5)
        pts = rng.uniform(0, 1, size=(1000, 2))
        res = decompose(pts, leaf_size=80)
        assert res.balance() < 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            decompose(np.empty((0, 2)))

    @pytest.mark.parametrize("seed", range(4))
    def test_merged_equals_global_delaunay(self, seed):
        """The paper's core guarantee: independently triangulated leaves
        reassemble into the exact global Delaunay triangulation."""
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 1, size=(250, 2))
        res = decompose(pts, leaf_size=40)
        merged = merge_meshes(triangulate_leaves(res))
        glob = delaunay_mesh(pts)
        assert tri_keyset(merged) == tri_keyset(glob)
        assert merged.is_conforming()

    def test_anisotropic_cloud(self):
        """BL-like anisotropic point distribution: thin layered offsets."""
        xs = np.linspace(0, 1, 60)
        layers = [0.0, 1e-4, 2.5e-4, 5e-4, 1e-3, 2e-3]
        pts = np.array([(x, y) for x in xs for y in layers])
        res = decompose(pts, leaf_size=50)
        merged = merge_meshes(triangulate_leaves(res))
        glob = delaunay_mesh(pts)
        # Both cover the same area and are conforming & Delaunay.
        assert merged.is_conforming()
        assert abs(np.abs(merged.areas()).sum()
                   - np.abs(glob.areas()).sum()) < 1e-12
        assert merged.delaunay_violations(respect_segments=True) == 0

    def test_coordinate_mode_still_tiles(self):
        """The paper's Section III branch-free split: the merged mesh must
        remain a conforming triangulation of the full hull area (it may
        deviate from Delaunay near paths)."""
        rng = np.random.default_rng(11)
        pts = rng.uniform(0, 1, size=(250, 2))
        res = decompose(pts, leaf_size=40, partition_mode="coordinate")
        merged = merge_meshes(triangulate_leaves(res))
        glob = delaunay_mesh(pts)
        assert merged.is_conforming()

    def test_grid_degenerate(self):
        xs, ys = np.meshgrid(np.arange(10.0), np.arange(10.0))
        pts = np.column_stack([xs.ravel(), ys.ravel()])
        res = decompose(pts, leaf_size=30)
        merged = merge_meshes(triangulate_leaves(res))
        assert merged.is_conforming()
        assert np.abs(merged.areas()).sum() == pytest.approx(81.0)
