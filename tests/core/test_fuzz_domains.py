"""Geometry fuzz corpus through the invariant harness.

Runs the hard domains from :mod:`tests.domains` (cove, multi-element,
near-tangent gap) through the exact-Delaunay / orientation /
conformity checks — once directly via :func:`generate_mesh`, and once
through the service path, asserting the served bytes are identical to
the direct result (the service must be a transparent transport, never
a different mesher).
"""

import numpy as np
import pytest

from tests.domains import DOMAINS

from repro.core.pipeline import generate_mesh
from repro.delaunay.smooth import validate_mesh
from repro.runtime import serde
from repro.runtime.client import ServiceClient
from repro.runtime.service import MeshService, ServiceThread

DOMAIN_NAMES = sorted(DOMAINS)


@pytest.fixture(scope="module")
def direct_results():
    out = {}
    for name in DOMAIN_NAMES:
        pslg, config = DOMAINS[name]()
        out[name] = generate_mesh(pslg, config, backend="serial")
    return out


@pytest.mark.parametrize("name", DOMAIN_NAMES)
def test_domain_mesh_invariants(name, direct_results):
    pslg, _config = DOMAINS[name]()
    mesh = direct_results[name].mesh
    report = validate_mesh(mesh)
    assert report.ok, report.summary()
    assert report.inverted_triangles == 0
    assert report.zero_area_triangles == 0
    assert report.delaunay_violations == 0
    assert report.duplicate_points == 0
    # One outer boundary plus one loop per body.
    assert report.boundary_loops == len(pslg.body_loops) + 1
    assert report.total_area > 0.0


@pytest.mark.parametrize("name", DOMAIN_NAMES)
def test_domain_bl_stats_sane(name, direct_results):
    result = direct_results[name]
    assert int(result.stats["n_bl_triangles"]) > 0
    assert int(result.stats["n_subdomains"]) >= 1
    assert result.mesh.n_triangles > 0


def test_service_path_is_byte_identical_to_direct(tmp_path,
                                                  direct_results):
    service = MeshService(f"unix:{tmp_path}/fuzz.sock", backend="serial",
                          batch_window=0.01)
    thread = ServiceThread(service)
    endpoint = thread.start()
    try:
        with ServiceClient(endpoint) as client:
            for name in DOMAIN_NAMES:
                pslg, config = DOMAINS[name]()
                reply = client.submit(pslg, config)
                assert not reply.cached
                direct_bytes = serde.buffers_to_bytes(
                    serde.pack_mesh(direct_results[name].mesh))
                assert reply.raw == direct_bytes, name
                # And the served mesh passes the same invariants.
                assert validate_mesh(reply.mesh).ok, name
                again = client.submit(pslg, config)
                assert again.cached
                assert again.raw == direct_bytes
        stats = service.stats()
        assert stats["requests"] == 2.0 * len(DOMAIN_NAMES)
        assert stats["cache_hits"] == float(len(DOMAIN_NAMES))
    finally:
        thread.stop()


@pytest.mark.parametrize("name", DOMAIN_NAMES)
def test_domain_batch_strategy_differential(name, direct_results):
    """Batch insertion through the full pipeline: same invariant suite,
    macro statistics pinned to the scalar run.

    The meshes are not byte-identical — exact cocircular ties resolve by
    insertion order, which shifts individual Steiner points — but
    counts, quality and total area must agree tightly with scalar."""
    pslg, config = DOMAINS[name]()
    result = generate_mesh(pslg, config, backend="serial",
                           insert_strategy="batch")
    assert result.stats["insert_strategy"] == "batch"
    mesh = result.mesh
    report = validate_mesh(mesh)
    assert report.ok, report.summary()
    assert report.delaunay_violations == 0
    assert report.inverted_triangles == 0
    scalar_mesh = direct_results[name].mesh
    assert mesh.n_triangles == pytest.approx(scalar_mesh.n_triangles,
                                             rel=0.05)
    got = float(np.abs(mesh.areas()).sum())
    want = float(np.abs(scalar_mesh.areas()).sum())
    assert got == pytest.approx(want, rel=1e-6)


def test_domain_builders_are_pure():
    for name in DOMAIN_NAMES:
        pslg_a, config_a = DOMAINS[name]()
        pslg_b, config_b = DOMAINS[name]()
        assert pslg_a is not pslg_b
        np.testing.assert_array_equal(pslg_a.points, pslg_b.points)
        assert config_a == config_b
