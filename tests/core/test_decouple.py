"""Tests for graded Delaunay decoupling (Section II.E)."""

import math

import numpy as np
import pytest

from repro.core.decouple import (
    DecoupledSubdomain,
    decouple,
    decouple_stream,
    estimate_triangles,
    initial_quadrants,
    march_path,
    plus_split,
    refine_subdomain,
)
from repro.delaunay.mesh import merge_meshes
from repro.geometry.aabb import AABB
from repro.sizing.functions import (
    RadialSizing,
    UniformSizing,
    decoupling_edge_length,
)


class TestMarchPath:
    def test_uniform_spacing(self):
        s = UniformSizing(0.01)
        pts = march_path((0, 0), (1, 0), s)
        k = decoupling_edge_length(0.01)
        gaps = np.linalg.norm(np.diff(pts, axis=0), axis=1)
        assert np.allclose(pts[0], (0, 0)) and np.allclose(pts[-1], (1, 0))
        # All gaps strictly below 2k (the Delaunay-maintenance bound).
        assert gaps.max() < 2 * k
        # Interior gaps are the chosen step (1.8k) up to closure scaling.
        assert gaps[:-1].min() > 1.2 * k

    def test_graded_spacing_grows(self):
        s = RadialSizing((0, 0), h0=0.05, grading=1.0)
        pts = march_path((0.1, 0), (10, 0), s)
        gaps = np.linalg.norm(np.diff(pts, axis=0), axis=1)
        # Spacing grows toward the far field.
        assert gaps[-2] > 3 * gaps[0]
        # The D < 2 k_next rule everywhere.
        for (x0, y0), (x1, y1) in zip(pts[:-1], pts[1:]):
            k_next = decoupling_edge_length(s.area_at(x1, y1))
            d = math.hypot(x1 - x0, y1 - y0)
            assert d < 2 * k_next + 1e-12

    def test_shrinking_sizing_pulls_next_closer(self):
        # Marching toward finer sizing must still satisfy D < 2 k_next.
        s = RadialSizing((10, 0), h0=0.02, grading=0.8)  # fine near (10,0)
        pts = march_path((0, 0), (10, 0), s)
        for (x0, y0), (x1, y1) in zip(pts[:-1], pts[1:]):
            k_next = decoupling_edge_length(s.area_at(x1, y1))
            assert math.hypot(x1 - x0, y1 - y0) < 2 * k_next + 1e-12

    def test_short_path_two_points(self):
        s = UniformSizing(100.0)  # huge elements: one step covers it
        pts = march_path((0, 0), (1, 0), s)
        assert len(pts) == 2

    def test_validation(self):
        s = UniformSizing(1.0)
        with pytest.raises(ValueError):
            march_path((0, 0), (0, 0), s)
        with pytest.raises(ValueError):
            march_path((0, 0), (1, 0), s, step_factor=2.5)


class TestInitialQuadrants:
    def test_four_quadrants_cover_annulus(self):
        s = UniformSizing(0.5)
        inner = AABB(-1, -1, 1, 1)
        outer = AABB(-5, -5, 5, 5)
        quads = initial_quadrants(inner, outer, s)
        assert len(quads) == 4
        total = sum(q.area() for q in quads)
        assert total == pytest.approx(100 - 4)

    def test_shared_borders_identical(self):
        """Quadrant borders must share identical vertex coordinates — the
        decoupling conformity contract."""
        s = RadialSizing((0, 0), h0=0.3, grading=0.3)
        quads = initial_quadrants(AABB(-1, -1, 1, 1), AABB(-6, -6, 6, 6), s)
        vertex_sets = [set(map(tuple, q.ring)) for q in quads]
        shared_counts = 0
        for i in range(4):
            for j in range(i + 1, 4):
                shared = vertex_sets[i] & vertex_sets[j]
                if shared:
                    shared_counts += 1
                    assert len(shared) >= 2  # a whole marched path
        assert shared_counts >= 4  # each quadrant touches two neighbours

    def test_inner_not_contained_raises(self):
        s = UniformSizing(1.0)
        with pytest.raises(ValueError):
            initial_quadrants(AABB(-10, -10, 10, 10), AABB(-1, -1, 1, 1), s)

    def test_rings_ccw(self):
        from repro.geometry.primitives import polygon_is_ccw

        s = UniformSizing(0.5)
        quads = initial_quadrants(AABB(-1, -1, 1, 1), AABB(-4, -4, 4, 4), s)
        for q in quads:
            assert polygon_is_ccw(q.ring)


class TestPlusSplit:
    def test_four_children_tile_parent(self):
        s = UniformSizing(0.05)
        ring = march_path((0, 0), (1, 0), s)
        ring = np.vstack([
            ring[:-1],
            march_path((1, 0), (1, 1), s)[:-1],
            march_path((1, 1), (0, 1), s)[:-1],
            march_path((0, 1), (0, 0), s)[:-1],
        ])
        parent = DecoupledSubdomain(ring=ring)
        kids = plus_split(parent, s)
        assert len(kids) == 4
        assert sum(k.area() for k in kids) == pytest.approx(parent.area())
        for k in kids:
            assert k.level == 1

    def test_parent_border_untouched(self):
        """'+' splitting adds interior points only: every parent border
        vertex survives in exactly the children that touch it, and no new
        vertex appears on the parent border polyline."""
        s = UniformSizing(0.05)
        ring = np.vstack([
            march_path((0, 0), (1, 0), s)[:-1],
            march_path((1, 0), (1, 1), s)[:-1],
            march_path((1, 1), (0, 1), s)[:-1],
            march_path((0, 1), (0, 0), s)[:-1],
        ])
        parent = DecoupledSubdomain(ring=ring)
        parent_set = set(map(tuple, ring))
        kids = plus_split(parent, s)
        child_border_pts = set()
        for k in kids:
            child_border_pts |= set(map(tuple, k.ring))
        on_parent_sides = [
            p for p in child_border_pts
            if p[0] in (0.0, 1.0) or p[1] in (0.0, 1.0)
        ]
        for p in on_parent_sides:
            assert p in parent_set

    def test_too_coarse_raises(self):
        tiny = DecoupledSubdomain(
            ring=np.array([(0, 0), (1, 0), (1, 1), (0, 1)], dtype=float))
        with pytest.raises(ValueError):
            plus_split(tiny, UniformSizing(1.0))


class TestDecouple:
    def _quads(self, sizing):
        return initial_quadrants(AABB(-1, -1, 1, 1), AABB(-8, -8, 8, 8),
                                 sizing)

    def test_reaches_target_count(self):
        s = RadialSizing((0, 0), h0=0.4, grading=0.3)
        subs = decouple(self._quads(s), s, target_count=16)
        assert len(subs) >= 13  # some splits may be blocked by coarse rings

    def test_cost_balance(self):
        s = RadialSizing((0, 0), h0=0.4, grading=0.3)
        subs = decouple(self._quads(s), s, target_count=16)
        ests = [estimate_triangles(x, s) for x in subs]
        # Balanced within an order of magnitude (paper Fig. 10: "roughly
        # the same number of triangles").
        assert max(ests) / max(min(ests), 1.0) < 12.0

    def test_estimate_scales_with_area(self):
        s = UniformSizing(0.01)
        small = DecoupledSubdomain(
            ring=np.array([(0, 0), (1, 0), (1, 1), (0, 1)], dtype=float))
        big = DecoupledSubdomain(
            ring=np.array([(0, 0), (2, 0), (2, 2), (0, 2)], dtype=float))
        es, eb = estimate_triangles(small, s), estimate_triangles(big, s)
        assert eb == pytest.approx(4 * es, rel=0.15)

    def test_stream_yields_exact_decouple_order(self):
        """Parity-critical: the generator must produce the same
        subdomains in the same order as the barriered call — streamed
        submission order is what keeps parallel meshes byte-identical."""
        s = RadialSizing((0, 0), h0=0.4, grading=0.3)
        barriered = decouple(self._quads(s), s, target_count=16)
        streamed = list(decouple_stream(self._quads(s), s, target_count=16))
        assert len(streamed) == len(barriered)
        for a, b in zip(streamed, barriered):
            assert np.array_equal(a.ring, b.ring)
            assert a.level == b.level
            assert a.est_triangles == b.est_triangles

    def test_stream_is_incremental(self):
        """Subdomains come out while splitting is still in progress —
        the first yield must not wait for the full decomposition."""
        s = RadialSizing((0, 0), h0=0.4, grading=0.3)
        gen = decouple_stream(self._quads(s), s, target_count=16)
        first = next(gen)
        rest = list(gen)
        total = len(decouple(self._quads(s), s, target_count=16))
        assert 1 + len(rest) == total
        assert first.ring.shape[1] == 2

    def test_stream_below_target_passthrough(self):
        s = RadialSizing((0, 0), h0=0.4, grading=0.3)
        quads = self._quads(s)
        out = list(decouple_stream(quads, s, target_count=2))
        assert [id(x) for x in out] == [id(q) for q in quads]


class TestRefineConformity:
    def test_independent_refinement_conforms(self):
        """The headline decoupling property: refine each subdomain alone,
        merge, and the result is a conforming Delaunay-quality mesh with
        untouched shared borders."""
        s = RadialSizing((0, 0), h0=0.35, grading=0.35)
        quads = initial_quadrants(AABB(-1, -1, 1, 1), AABB(-6, -6, 6, 6), s)
        subs = decouple(quads, s, target_count=8)
        meshes = []
        for sub in subs:
            m = refine_subdomain(sub, s)
            assert m.n_triangles > 0
            meshes.append(m)
        merged = merge_meshes(meshes)
        assert merged.is_conforming()
        # Full annulus covered: no gaps or overlaps.
        total = sum(abs(m.areas()).sum() for m in meshes)
        assert total == pytest.approx(144 - 4, rel=1e-9)
        assert np.abs(merged.areas()).sum() == pytest.approx(144 - 4,
                                                             rel=1e-9)

    def test_quality_bound_met_interior(self):
        s = RadialSizing((0, 0), h0=0.35, grading=0.35)
        quads = initial_quadrants(AABB(-1, -1, 1, 1), AABB(-6, -6, 6, 6), s)
        sub = quads[0]
        m = refine_subdomain(sub, s)
        from repro.delaunay.refine import RUPPERT_BOUND

        ratios = m.radius_edge_ratios()
        # Locked borders may pin a few boundary triangles; the bulk must
        # meet Ruppert's bound.
        frac_ok = float((ratios <= RUPPERT_BOUND + 1e-9).mean())
        assert frac_ok > 0.95

    def test_area_bound_met(self):
        s = RadialSizing((0, 0), h0=0.35, grading=0.35)
        quads = initial_quadrants(AABB(-1, -1, 1, 1), AABB(-6, -6, 6, 6), s)
        m = refine_subdomain(quads[1], s)
        areas = np.abs(m.areas())
        cents = m.centroids()
        ok = sum(
            a <= s.area_at(cx, cy) * 1.001
            for a, (cx, cy) in zip(areas, cents)
        )
        assert ok / len(areas) > 0.98
