"""Tests for ray construction, large-angle refinement, and fans."""

import math

import numpy as np
import pytest

from repro.core.normals import VertexKind, loop_surface_vertices
from repro.core.rays import Ray, angle_between_rays, build_rays, refine_rays
from repro.geometry.airfoils import naca0012
from repro.geometry.pslg import PSLG


def surface(pts):
    p = PSLG.from_loops([np.asarray(pts, dtype=float)])
    return p, loop_surface_vertices(p, p.loops[0])


class TestBuildRays:
    def test_one_ray_per_vertex(self):
        _, sv = surface([(0, 0), (1, 0), (1, 1), (0, 1)])
        rays = build_rays(sv)
        assert len(rays) == 4
        for r, v in zip(rays, sv):
            assert r.origin == v.position
            assert r.direction == v.normal
            assert r.surface_spacing == pytest.approx(1.0)

    def test_point_at(self):
        r = Ray(origin=(1.0, 2.0), direction=(0.0, 1.0))
        assert r.point_at(3.0) == (1.0, 5.0)

    def test_tip_defaults_to_origin(self):
        r = Ray(origin=(1.0, 2.0), direction=(0.0, 1.0))
        assert r.tip() == (1.0, 2.0)
        r.heights = [0.5, 1.0]
        assert r.tip() == (1.0, 3.0)


class TestRefineRays:
    def test_no_refinement_when_smooth(self):
        # Regular 64-gon: adjacent normals differ by ~5.6 deg.
        theta = np.linspace(0, 2 * math.pi, 64, endpoint=False)
        _, sv = surface(np.column_stack([np.cos(theta), np.sin(theta)]))
        rays = refine_rays(sv, max_ray_angle=math.radians(20))
        assert len(rays) == 64

    def test_coarse_circle_gets_interpolated_rays(self):
        # 12-gon: vertex turns are 30 deg (below the 40-deg large-angle
        # threshold, so vertices stay SMOOTH) but adjacent normals still
        # differ by 30 deg > 20 deg: the smooth-curvature interpolation
        # path (leading-edge behaviour) triggers.
        theta = np.linspace(0, 2 * math.pi, 12, endpoint=False)
        _, sv = surface(np.column_stack([np.cos(theta), np.sin(theta)]))
        rays = refine_rays(sv, max_ray_angle=math.radians(20))
        # ceil(30/20)-1 = 1 extra ray per edge.
        assert len(rays) == 12 + 12
        interp = [r for r in rays if r.origin_kind == "interpolated"]
        assert len(interp) == 12
        # Interpolated origins lie between the vertices, off the vertex set.
        for r in interp:
            assert r.surface_index == -1

    def test_octagon_discontinuities_get_fans(self):
        # 45-deg turns exceed the large-angle threshold: the vertices are
        # slope discontinuities, so extra rays fan from the vertices
        # themselves rather than new surface points.
        theta = np.linspace(0, 2 * math.pi, 8, endpoint=False)
        _, sv = surface(np.column_stack([np.cos(theta), np.sin(theta)]))
        rays = refine_rays(sv, max_ray_angle=math.radians(20))
        assert len(rays) == 8 + 2 * 8
        assert all(r.origin_kind in ("vertex", "fan") for r in rays)

    def test_square_corner_fans(self):
        _, sv = surface([(0, 0), (4, 0), (4, 4), (0, 4)])
        rays = refine_rays(sv, max_ray_angle=math.radians(30))
        fans = [r for r in rays if r.origin_kind == "fan"]
        # Each 90-deg corner splits into two 45-deg vertex-normal gaps;
        # each gap needs ceil(45/30)-1 = 1 fan ray: 2 per corner.
        assert len(fans) == 8
        # Fan rays share their corner origin.
        for f in fans:
            assert f.origin in [v.position for v in sv]

    def test_fan_directions_interpolate(self):
        _, sv = surface([(0, 0), (4, 0), (4, 4), (0, 4)])
        rays = refine_rays(sv, max_ray_angle=math.radians(10))
        # Group by origin; within a corner's fan, directions rotate
        # monotonically (the "curving" property of paper Fig. 4).
        by_origin = {}
        for r in rays:
            by_origin.setdefault(r.origin, []).append(r)
        corner = by_origin[(4.0, 0.0)]
        assert len(corner) >= 4
        angles = [math.atan2(r.direction[1], r.direction[0]) for r in corner]
        # All directions within the corner's exterior wedge.
        for a in angles:
            assert -math.pi / 2 - 1e-9 <= a <= 0 + 1e-9

    def test_all_unit_directions(self):
        _, sv = surface(naca0012(61))
        rays = refine_rays(sv)
        for r in rays:
            assert math.hypot(*r.direction) == pytest.approx(1.0)

    def test_te_cusp_produces_fan(self):
        _, sv = surface(naca0012(121))
        rays = refine_rays(sv, max_ray_angle=math.radians(20))
        te = max((v.position for v in sv), key=lambda p: p[0])
        fan = [r for r in rays if r.origin == te]
        # The near-180-degree cusp demands a rich fan.
        assert len(fan) >= 5

    def test_adjacent_ray_angles_bounded(self):
        _, sv = surface(naca0012(61))
        max_angle = math.radians(20)
        rays = refine_rays(sv, max_ray_angle=max_angle)
        for r1, r2 in zip(rays, rays[1:]):
            assert angle_between_rays(r1, r2) <= max_angle + 1e-9

    def test_validation(self):
        _, sv = surface([(0, 0), (1, 0), (0, 1)])
        with pytest.raises(ValueError):
            refine_rays(sv, max_ray_angle=0.0)
        with pytest.raises(ValueError):
            refine_rays(sv[:2])
