"""Integration tests for the boundary-layer pipeline."""

import math

import numpy as np
import pytest

from repro.core.bl_pipeline import (
    BoundaryLayerConfig,
    generate_boundary_layer,
    interior_seed,
)
from repro.core.insertion import bl_point_cloud, insert_points
from repro.core.normals import loop_surface_vertices
from repro.core.rays import refine_rays
from repro.geometry.airfoils import naca0012, three_element_airfoil
from repro.geometry.pslg import PSLG
from repro.sizing.growth import GeometricGrowth


class TestInteriorSeed:
    def test_square(self):
        seed = interior_seed(np.array([(0, 0), (1, 0), (1, 1), (0, 1)],
                                      dtype=float))
        assert 0 < seed[0] < 1 and 0 < seed[1] < 1

    def test_concave(self):
        pts = np.array([(0, 0), (4, 0), (4, 1), (1, 1), (1, 3), (0, 3)],
                       dtype=float)
        x, y = interior_seed(pts)
        from repro.core.bl_pipeline import _point_in_polygon

        assert _point_in_polygon(x, y, pts)

    def test_airfoil(self):
        pts = naca0012(101)
        x, y = interior_seed(pts)
        from repro.core.bl_pipeline import _point_in_polygon

        assert _point_in_polygon(x, y, pts)


class TestInsertion:
    def _rays(self):
        p = PSLG.from_loops([naca0012(61)])
        sv = loop_surface_vertices(p, p.loops[0])
        return refine_rays(sv)

    def test_heights_monotone_and_capped(self):
        rays = self._rays()
        growth = GeometricGrowth(1e-3, 1.4)
        insert_points(rays, growth, max_layers=30)
        for r in rays:
            hs = r.heights
            assert all(b > a for a, b in zip(hs, hs[1:]))
            if hs:
                assert hs[-1] <= min(r.max_height, growth.height(30))

    def test_isotropy_termination(self):
        rays = self._rays()
        growth = GeometricGrowth(1e-3, 1.4)
        insert_points(rays, growth, max_layers=100)
        # Rays terminate when layer spacing reaches tangential spacing, so
        # the last layer spacing should be of the order of surface spacing.
        for r in rays:
            if len(r.heights) >= 2 and math.isinf(r.max_height):
                last_spacing = r.heights[-1] - r.heights[-2]
                assert last_spacing <= 3.0 * r.surface_spacing

    def test_max_height_respected(self):
        rays = self._rays()
        for r in rays:
            r.max_height = 0.01
        growth = GeometricGrowth(1e-3, 1.4)
        insert_points(rays, growth, max_layers=100)
        for r in rays:
            for h in r.heights:
                assert h <= 0.01

    def test_point_cloud_dedupes_fan_origins(self):
        rays = self._rays()
        growth = GeometricGrowth(1e-3, 1.4)
        insert_points(rays, growth, max_layers=10)
        cloud = bl_point_cloud(rays)
        assert len(np.unique(cloud, axis=0)) == len(cloud)

    def test_validation(self):
        rays = self._rays()
        growth = GeometricGrowth(1e-3, 1.4)
        with pytest.raises(ValueError):
            insert_points(rays, growth, isotropy_factor=0.0)
        with pytest.raises(ValueError):
            insert_points(rays, growth, max_layers=0)


class TestSingleElementBL:
    def test_naca0012_boundary_layer(self):
        p = PSLG.from_loops([naca0012(61)])
        cfg = BoundaryLayerConfig(first_spacing=2e-3, growth_ratio=1.4,
                                  max_layers=15)
        res = generate_boundary_layer(p, cfg)
        mesh = res.mesh
        assert mesh.n_triangles > 100
        assert mesh.is_conforming()
        # Anisotropic elements present: aspect ratios well above isotropic.
        assert mesh.aspect_ratios().max() > 5.0
        # No triangles inside the airfoil: total area is the annulus only.
        assert res.stats["n_points"] == len(res.points)
        # All triangles positively oriented.
        assert np.all(mesh.areas() > 0)

    def test_outer_border_is_simple(self):
        from repro.geometry.primitives import segments_intersect

        p = PSLG.from_loops([naca0012(61)])
        cfg = BoundaryLayerConfig(first_spacing=2e-3, growth_ratio=1.4,
                                  max_layers=15)
        res = generate_boundary_layer(p, cfg)
        ob = res.outer_borders[0]
        n = len(ob)
        segs = [(tuple(ob[i]), tuple(ob[(i + 1) % n])) for i in range(n)]
        for i in range(n):
            for j in range(i + 1, n):
                assert not segments_intersect(*segs[i], *segs[j],
                                              proper_only=True)

    def test_mesh_points_between_surface_and_border(self):
        p = PSLG.from_loops([naca0012(41)])
        cfg = BoundaryLayerConfig(first_spacing=5e-3, growth_ratio=1.5,
                                  max_layers=8)
        res = generate_boundary_layer(p, cfg)
        # BL thickness bounded by growth height: no point farther than
        # height(max_layers) from the surface.
        surf = res.surface_loops[0]
        growth = cfg.growth_function()
        limit = growth.height(cfg.max_layers) * 1.01
        for q in res.points:
            d = np.min(np.hypot(surf[:, 0] - q[0], surf[:, 1] - q[1]))
            assert d <= limit


class TestMultiElementBL:
    def test_three_element_runs_clean(self):
        pslg = three_element_airfoil(n_points=41)
        cfg = BoundaryLayerConfig(first_spacing=1.5e-3, growth_ratio=1.45,
                                  max_layers=12)
        res = generate_boundary_layer(pslg, cfg)
        assert len(res.element_rays) == 3
        assert res.mesh.n_triangles > 300
        assert res.mesh.is_conforming()
        # Multi-element clipping must have fired somewhere (slat/main and
        # main/flap gaps are tight) or at least self-intersections in coves.
        assert (res.stats["n_self_truncations"]
                + res.stats["n_multi_truncations"]) > 0

    def test_no_bl_point_inside_any_element(self):
        from repro.core.bl_pipeline import _point_in_polygon

        pslg = three_element_airfoil(n_points=41)
        cfg = BoundaryLayerConfig(first_spacing=1.5e-3, growth_ratio=1.45,
                                  max_layers=12)
        res = generate_boundary_layer(pslg, cfg)
        loops = [pslg.loop_points(lp) for lp in pslg.body_loops]
        # Only layer points (h > 0) are meaningful: ray origins lie exactly
        # ON the surface polygons where ray casting is ill-defined.
        for rays in res.element_rays:
            for r in rays:
                for h in r.heights:
                    q = r.point_at(h)
                    for loop_pts in loops:
                        assert not _point_in_polygon(q[0], q[1], loop_pts), (
                            q, r.origin)


class TestStructuredMode:
    def test_structured_pipeline_end_to_end(self):
        from repro.core.pipeline import MeshConfig, generate_mesh

        pslg = PSLG.from_loops([naca0012(41)])
        cfg = MeshConfig(
            bl=BoundaryLayerConfig(first_spacing=5e-3, growth_ratio=1.5,
                                   max_layers=8, triangulation="structured"),
            farfield_chords=8.0, target_subdomains=6,
        )
        res = generate_mesh(pslg, cfg)
        assert res.mesh.is_conforming()
        assert np.all(res.mesh.areas() > 0)

    def test_unknown_mode_rejected(self):
        pslg = PSLG.from_loops([naca0012(41)])
        cfg = BoundaryLayerConfig(triangulation="voronoi")
        with pytest.raises(ValueError):
            generate_boundary_layer(pslg, cfg)
