"""Tests for surface normals and vertex classification."""

import math

import numpy as np
import pytest

from repro.core.normals import VertexKind, loop_surface_vertices
from repro.geometry.airfoils import naca0012, blunt_trailing_edge
from repro.geometry.pslg import PSLG


def square_pslg():
    return PSLG.from_loops([np.array([(0, 0), (1, 0), (1, 1), (0, 1)],
                                     dtype=float)])


class TestSquare:
    def test_corner_normals_are_diagonal(self):
        p = square_pslg()
        sv = loop_surface_vertices(p, p.loops[0])
        assert len(sv) == 4
        # Corner (0,0): adjacent edge normals (0,-1) and (-1,0);
        # bisector = normalize(-1,-1).
        v00 = next(v for v in sv if v.position == (0.0, 0.0))
        assert v00.normal[0] == pytest.approx(-math.sqrt(0.5))
        assert v00.normal[1] == pytest.approx(-math.sqrt(0.5))

    def test_all_corners_90_degrees_convex(self):
        p = square_pslg()
        sv = loop_surface_vertices(p, p.loops[0])
        for v in sv:
            assert v.turn == pytest.approx(math.pi / 2)
            assert v.kind == VertexKind.LARGE_ANGLE  # 90 < cusp threshold

    def test_outward_normals_point_away(self):
        p = square_pslg()
        sv = loop_surface_vertices(p, p.loops[0])
        cx, cy = 0.5, 0.5
        for v in sv:
            dx, dy = v.position[0] - cx, v.position[1] - cy
            assert dx * v.normal[0] + dy * v.normal[1] > 0


class TestConcave:
    def test_reflex_corner_classified(self):
        # L-shape: vertex (1,1) is reflex.
        pts = np.array([(0, 0), (2, 0), (2, 1), (1, 1), (1, 2), (0, 2)],
                       dtype=float)
        p = PSLG.from_loops([pts])
        sv = loop_surface_vertices(p, p.loops[0])
        reflex = [v for v in sv if v.kind == VertexKind.CONCAVE]
        assert len(reflex) == 1
        assert reflex[0].position == (1.0, 1.0)
        assert reflex[0].turn == pytest.approx(-math.pi / 2)


class TestAirfoil:
    def test_naca0012_smooth_except_te(self):
        p = PSLG.from_loops([naca0012(201)])
        sv = loop_surface_vertices(p, p.loops[0])
        cusps = [v for v in sv if v.kind == VertexKind.CUSP]
        # The sharp trailing edge is the single cusp.
        assert len(cusps) == 1
        assert cusps[0].position[0] == pytest.approx(1.0, abs=1e-9)
        # Leading edge region is densely sampled: everything else smooth or
        # mildly large-angle.
        others = [v for v in sv if v.kind == VertexKind.CONCAVE]
        assert not others

    def test_te_cusp_normal_points_downstream(self):
        p = PSLG.from_loops([naca0012(201)])
        sv = loop_surface_vertices(p, p.loops[0])
        te = max(sv, key=lambda v: v.position[0])
        # At the trailing edge the bisector of upper/lower normals points
        # in +x (out of the cusp).
        assert te.normal[0] > 0.9

    def test_blunt_te_two_corners(self):
        coords = blunt_trailing_edge(naca0012(201), x_cut=0.9)
        p = PSLG.from_loops([coords])
        sv = loop_surface_vertices(p, p.loops[0])
        base = [v for v in sv if abs(v.position[0] - 0.9) < 1e-9]
        assert len(base) == 2
        for v in base:
            # Each base corner turns ~90 deg: a fan-worthy discontinuity.
            assert v.kind in (VertexKind.LARGE_ANGLE, VertexKind.CUSP)
            assert v.turn > math.radians(40)

    def test_unit_normals(self):
        p = PSLG.from_loops([naca0012(101)])
        sv = loop_surface_vertices(p, p.loops[0])
        for v in sv:
            assert math.hypot(*v.normal) == pytest.approx(1.0)

    def test_thresholds_validated(self):
        p = square_pslg()
        with pytest.raises(ValueError):
            loop_surface_vertices(p, p.loops[0], large_angle=0.0)
        with pytest.raises(ValueError):
            loop_surface_vertices(p, p.loops[0],
                                  large_angle=1.0, cusp_angle=0.5)
