"""Backend parity: every executor backend produces the identical mesh.

The subdomains are decoupled and the serde transport is bit-exact, so
``serial``, ``threads`` and ``processes`` must agree to the last bit —
not approximately.  Meshes are compared in canonical form (points sorted
lexicographically, triangle indices remapped and rotation-normalised) so
that merge order cannot mask or fake a difference.
"""

import contextlib

import numpy as np
import pytest

from repro.core.bl_pipeline import BoundaryLayerConfig
from repro.core.parallel_bl import parallel_bl_points
from repro.core.pipeline import MeshConfig, generate_mesh
from repro.geometry.airfoils import naca0012
from repro.geometry.pslg import PSLG
from repro.lint import tsan
from repro.runtime import serde

PARALLEL_BACKENDS = ["threads", "processes"]


def _maybe_suspend(name):
    """Processes runs fail fast under an ambient REPRO_SANITIZE=1."""
    if name == "processes" and tsan.enabled():
        return tsan.suspend()
    return contextlib.nullcontext()


def canonical(mesh):
    """Order-independent canonical form of a TriMesh.

    Returns (points, triangles, segments) with points sorted
    lexicographically, indices remapped, each triangle rotated so its
    smallest vertex leads (rotation preserves orientation), segment
    endpoint pairs sorted, and all rows sorted.
    """
    order = np.lexsort((mesh.points[:, 1], mesh.points[:, 0]))
    points = mesh.points[order]
    remap = np.empty(len(order), dtype=np.int64)
    remap[order] = np.arange(len(order))
    tris = remap[mesh.triangles]
    roll = np.argmin(tris, axis=1)
    tris = np.stack([
        tris[np.arange(len(tris)), (roll + k) % 3] for k in range(3)
    ], axis=1)
    tris = tris[np.lexsort((tris[:, 2], tris[:, 1], tris[:, 0]))]
    segs = np.sort(remap[mesh.segments], axis=1) if len(mesh.segments) \
        else np.empty((0, 2), dtype=np.int64)
    if len(segs):
        segs = segs[np.lexsort((segs[:, 1], segs[:, 0]))]
    return points, tris, segs


def assert_identical(mesh_a, mesh_b):
    pa, ta, sa = canonical(mesh_a)
    pb, tb, sb = canonical(mesh_b)
    assert np.array_equal(pa, pb), "point sets differ"
    assert np.array_equal(ta, tb), "triangle connectivity differs"
    assert np.array_equal(sa, sb), "segment sets differ"


class TestPipelineParity:
    @classmethod
    def setup_class(cls):
        cls.pslg = PSLG.from_loops([naca0012(41)])
        cls.config = MeshConfig(
            bl=BoundaryLayerConfig(first_spacing=2e-3, growth_ratio=1.4,
                                   max_layers=12),
            farfield_chords=10.0,
            target_subdomains=8,
        )
        cls.reference = generate_mesh(cls.pslg, cls.config,
                                      backend="serial")

    @pytest.mark.parametrize("name", PARALLEL_BACKENDS)
    def test_identical_mesh(self, name):
        result = generate_mesh(self.pslg, self.config, backend=name,
                               n_ranks=3)
        assert_identical(result.mesh, self.reference.mesh)

    def test_rank_count_does_not_matter(self):
        result = generate_mesh(self.pslg, self.config, backend="processes",
                               n_ranks=2)
        assert_identical(result.mesh, self.reference.mesh)

    def test_subdomains_survive_serde_round_trip(self):
        """Serde on the *real* pipeline subdomains, not synthetic rings."""
        for sub in self.reference.subdomains:
            back = serde.unpack_subdomain(serde.pack_subdomain(sub))
            assert np.array_equal(back.ring, sub.ring)
            assert back.level == sub.level
            for a, b in zip(back.hole_rings, sub.hole_rings):
                assert np.array_equal(a, b)
            assert all(ha == hb
                       for ha, hb in zip(back.holes, sub.holes))


class TestBoundaryLayerParity:
    @classmethod
    def setup_class(cls):
        cls.pslg = PSLG.from_loops([naca0012(61)])
        cls.config = BoundaryLayerConfig(first_spacing=1e-3,
                                         growth_ratio=1.3, max_layers=15)
        cls.ref_coords, cls.ref_stats = parallel_bl_points(
            cls.pslg, cls.config, n_ranks=3, backend="threads")

    @pytest.mark.parametrize("name", ["serial", "processes"])
    def test_identical_points(self, name):
        coords, stats = parallel_bl_points(self.pslg, self.config,
                                           n_ranks=3, backend=name)
        assert np.array_equal(coords, self.ref_coords)
        # The coordinates-only wire volume is backend-independent too.
        assert stats["gather_bytes"] == self.ref_stats["gather_bytes"]

    def test_rank_count_invariant(self):
        coords, _ = parallel_bl_points(self.pslg, self.config, n_ranks=5,
                                       backend="processes")
        assert np.array_equal(coords, self.ref_coords)


class TestStreamingParity:
    """Streamed dispatch is an execution-overlap optimisation, not a
    different algorithm: ``decouple_stream`` yields subdomains in
    exactly the order ``decouple`` returns them and submission order
    equals the barriered payload order, so the merged mesh must be
    *byte*-identical — raw array bytes, not just canonical form."""

    @classmethod
    def setup_class(cls):
        cls.pslg = PSLG.from_loops([naca0012(41)])
        cls.config = MeshConfig(
            bl=BoundaryLayerConfig(first_spacing=2e-3, growth_ratio=1.4,
                                   max_layers=12),
            farfield_chords=10.0,
            target_subdomains=8,
        )
        cls.barriered = generate_mesh(cls.pslg, cls.config,
                                      backend="serial", stream=False)

    def assert_bytes_identical(self, mesh):
        ref = self.barriered.mesh
        assert mesh.points.tobytes() == ref.points.tobytes()
        assert mesh.triangles.tobytes() == ref.triangles.tobytes()
        assert mesh.segments.tobytes() == ref.segments.tobytes()

    @pytest.mark.parametrize("name", ["serial"] + PARALLEL_BACKENDS)
    def test_streamed_equals_barriered(self, name):
        with _maybe_suspend(name):
            streamed = generate_mesh(self.pslg, self.config, backend=name,
                                     n_ranks=3, stream=True)
        self.assert_bytes_identical(streamed.mesh)
        # The streamed run discovered the same subdomain sequence.
        assert len(streamed.subdomains) == len(self.barriered.subdomains)
        for a, b in zip(streamed.subdomains, self.barriered.subdomains):
            assert np.array_equal(a.ring, b.ring)

    @pytest.mark.parametrize("name", PARALLEL_BACKENDS)
    def test_barriered_parallel_equals_barriered_serial(self, name):
        with _maybe_suspend(name):
            result = generate_mesh(self.pslg, self.config, backend=name,
                                   n_ranks=3, stream=False)
        self.assert_bytes_identical(result.mesh)

    def test_env_knob_matches_explicit_arg(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAM", "0")
        via_env = generate_mesh(self.pslg, self.config, backend="serial")
        self.assert_bytes_identical(via_env.mesh)
        monkeypatch.setenv("REPRO_STREAM", "1")
        via_env = generate_mesh(self.pslg, self.config, backend="serial")
        self.assert_bytes_identical(via_env.mesh)

    def test_streamed_threads_under_sanitizer(self):
        """REPRO_SANITIZE=1 threads: the race-instrumented runtime sees
        the streamed dispatch path and still produces the same bytes."""
        with tsan.sanitize() as det:
            streamed = generate_mesh(self.pslg, self.config,
                                     backend="threads", n_ranks=3,
                                     stream=True)
            races = det.races
        assert races == []
        self.assert_bytes_identical(streamed.mesh)
