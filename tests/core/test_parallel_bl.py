"""Tests for the distributed boundary-layer point computation (II.C)."""

import numpy as np
import pytest

from repro.core.bl_pipeline import BoundaryLayerConfig, generate_boundary_layer
from repro.core.parallel_bl import chunk_bounds, parallel_bl_points
from repro.geometry.airfoils import naca0012
from repro.geometry.pslg import PSLG


CFG = BoundaryLayerConfig(first_spacing=2e-3, growth_ratio=1.4,
                          max_layers=10)


class TestChunkBounds:
    def test_partition_covers_exactly(self):
        for n in (1, 7, 16, 100):
            for size in (1, 3, 8):
                spans = [chunk_bounds(n, size, r) for r in range(size)]
                assert spans[0][0] == 0
                assert spans[-1][1] == n
                for (a0, a1), (b0, b1) in zip(spans, spans[1:]):
                    assert a1 == b0

    def test_balanced(self):
        spans = [chunk_bounds(100, 7, r) for r in range(7)]
        sizes = [hi - lo for lo, hi in spans]
        assert max(sizes) - min(sizes) <= 1


class TestParallelBLPoints:
    def test_matches_sequential_point_set(self):
        """The SPMD chunked computation produces exactly the same point
        cloud as the sequential pipeline (the paper's implicit-ordering
        gather is lossless)."""
        pslg = PSLG.from_loops([naca0012(61)])
        seq = generate_boundary_layer(pslg, CFG)
        par_coords, stats = parallel_bl_points(pslg, CFG, n_ranks=4)

        seq_set = {tuple(np.round(p, 12)) for p in seq.points}
        par_set = {tuple(np.round(p, 12)) for p in par_coords}
        assert par_set == seq_set

    def test_rank_count_invariance(self):
        pslg = PSLG.from_loops([naca0012(41)])
        sets = []
        for n_ranks in (1, 2, 5):
            coords, _ = parallel_bl_points(pslg, CFG, n_ranks=n_ranks)
            sets.append({tuple(np.round(p, 12)) for p in coords})
        assert sets[0] == sets[1] == sets[2]

    def test_gather_is_coordinates_only(self):
        """Section II.C's communication claim: the gathered volume is
        16 bytes per point (two float64 coordinates), not a serialised
        object graph."""
        pslg = PSLG.from_loops([naca0012(61)])
        coords, stats = parallel_bl_points(pslg, CFG, n_ranks=4)
        assert stats["n_points"] > 200
        # Coordinates-only: 16 B/point plus tiny pickle overheads.
        assert stats["bytes_per_point"] < 24.0

    def test_coordinates_beat_object_payloads(self):
        """Quantify the optimisation: sending full per-point records
        would cost a large multiple of the coordinates-only payload."""
        from repro.runtime.comm import payload_nbytes

        coords = np.random.default_rng(0).uniform(size=(1000, 2))
        as_array = payload_nbytes(coords)
        as_records = payload_nbytes([
            {"x": float(x), "y": float(y), "proj": (float(x), float(y)),
             "id": i}
            for i, (x, y) in enumerate(coords)
        ])
        assert as_records > 3 * as_array


class TestMultiElementParallelBL:
    def test_three_element_matches_sequential(self):
        from repro.geometry.airfoils import three_element_airfoil

        pslg = three_element_airfoil(n_points=31)
        cfg = BoundaryLayerConfig(first_spacing=3e-3, growth_ratio=1.5,
                                  max_layers=6)
        # Sequential reference WITHOUT intersection resolution effects:
        # compare the parallel per-chunk ray/insertion stage against a
        # 1-rank run of the same SPMD code (resolution runs on the root
        # afterwards in both settings).
        solo, _ = parallel_bl_points(pslg, cfg, n_ranks=1)
        multi, stats = parallel_bl_points(pslg, cfg, n_ranks=5)
        a = {tuple(np.round(p, 12)) for p in solo}
        b = {tuple(np.round(p, 12)) for p in multi}
        assert a == b
        assert stats["bytes_per_point"] < 24.0
