"""Tests for the pseudo-structured boundary-layer triangulation."""

import math

import numpy as np
import pytest

from repro.core.bl_pipeline import BoundaryLayerConfig, generate_boundary_layer
from repro.core.rays import Ray
from repro.core.structured_bl import triangulate_structured
from repro.geometry.airfoils import naca0012
from repro.geometry.pslg import PSLG


def column_rays(n=5, layers=3, spacing=0.1):
    """Rays on a circle with uniform layers (a clean annulus)."""
    rays = []
    for i in range(n):
        th = 2 * math.pi * i / n
        r = Ray(origin=(math.cos(th), math.sin(th)),
                direction=(math.cos(th), math.sin(th)))
        r.heights = [spacing * (k + 1) for k in range(layers)]
        rays.append(r)
    return rays


class TestCleanStrips:
    def test_annulus_counts(self):
        rays = column_rays(n=8, layers=3)
        mesh, stats = triangulate_structured([rays])
        # 8 strips x 3 quads x 2 triangles.
        assert stats.n_quads == 24
        assert mesh.n_triangles == 48
        assert stats.n_inverted_skipped == 0
        assert stats.n_stair_triangles == 0
        assert mesh.is_conforming()
        assert np.all(mesh.areas() > 0)

    def test_annulus_area(self):
        rays = column_rays(n=256, layers=2, spacing=0.5)
        mesh, _ = triangulate_structured([rays])
        exact = math.pi * (2.0**2 - 1.0**2)
        assert np.abs(mesh.areas()).sum() == pytest.approx(exact, rel=0.01)

    def test_layer_alignment_preserved(self):
        """Every interior edge is a layer, ray, or diagonal edge — no
        arbitrary connections (the alignment property)."""
        rays = column_rays(n=6, layers=3, spacing=0.2)
        mesh, _ = triangulate_structured([rays])
        radii = {round(float(np.hypot(x, y)), 9) for x, y in mesh.points}
        # Only the 4 extrusion radii appear.
        assert len(radii) == 4


class TestStaircase:
    def test_uneven_layer_counts(self):
        rays = column_rays(n=8, layers=3)
        # Truncate two rays to one layer (like a cove truncation).
        rays[2].heights = rays[2].heights[:1]
        rays[3].heights = rays[3].heights[:1]
        mesh, stats = triangulate_structured([rays])
        assert stats.n_stair_triangles > 0
        assert mesh.is_conforming()
        assert np.all(mesh.areas() > 0)

    def test_zero_layer_ray(self):
        rays = column_rays(n=8, layers=2)
        rays[4].heights = []
        mesh, stats = triangulate_structured([rays])
        assert mesh.is_conforming()
        assert np.all(mesh.areas() > 0)


class TestFanOrigins:
    def test_shared_origin_degenerates_cleanly(self):
        rays = column_rays(n=6, layers=2)
        # Insert a fan ray sharing ray 0's origin.
        fan = Ray(origin=rays[0].origin,
                  direction=rays[1].direction)
        fan.heights = list(rays[0].heights)
        rays_with_fan = [rays[0], fan] + rays[1:]
        mesh, stats = triangulate_structured([rays_with_fan])
        # The strip between ray0 and the fan loses its layer-0 quad to a
        # triangle; nothing inverts.
        assert stats.n_degenerate_skipped > 0
        assert stats.n_inverted_skipped == 0
        assert mesh.is_conforming()


class TestOnAirfoil:
    def test_structured_matches_delaunay_coverage(self):
        pslg = PSLG.from_loops([naca0012(61)])
        cfg = BoundaryLayerConfig(first_spacing=2e-3, growth_ratio=1.4,
                                  max_layers=12)
        res = generate_boundary_layer(pslg, cfg)
        mesh, stats = triangulate_structured(res.element_rays)
        assert mesh.n_triangles > 100
        assert np.all(mesh.areas() > 0)
        # Same region as the Delaunay BL mesh (areas agree closely; tiny
        # differences where staircases meet the tip border).
        a_struct = np.abs(mesh.areas()).sum()
        a_delaunay = np.abs(res.mesh.areas()).sum()
        assert a_struct == pytest.approx(a_delaunay, rel=0.05)

    def test_structured_alignment_beats_delaunay(self):
        """Structured stitching yields at least as many right-angle-ish
        layer-aligned elements (the anisotropic alignment the paper
        protects)."""
        pslg = PSLG.from_loops([naca0012(61)])
        cfg = BoundaryLayerConfig(first_spacing=2e-3, growth_ratio=1.4,
                                  max_layers=12)
        res = generate_boundary_layer(pslg, cfg)
        mesh, _ = triangulate_structured(res.element_rays)
        # The structured mesh is made of strip quads: its triangles pair
        # into quads, so triangle count is nearly even per strip.
        assert mesh.is_conforming()
