"""Integration tests for the push-button meshing pipeline."""

import numpy as np
import pytest

from repro.core.bl_pipeline import BoundaryLayerConfig
from repro.core.pipeline import MeshConfig, generate_mesh
from repro.geometry.airfoils import naca0012, three_element_airfoil
from repro.geometry.pslg import PSLG


def small_config(**kw):
    defaults = dict(
        bl=BoundaryLayerConfig(first_spacing=2e-3, growth_ratio=1.4,
                               max_layers=12),
        farfield_chords=15.0,
        target_subdomains=10,
    )
    defaults.update(kw)
    return MeshConfig(**defaults)


class TestNaca0012Pipeline:
    @classmethod
    def setup_class(cls):
        cls.pslg = PSLG.from_loops([naca0012(61)])
        cls.result = generate_mesh(cls.pslg, small_config())

    def test_mesh_conforming(self):
        assert self.result.mesh.is_conforming()

    def test_area_accounting_exact(self):
        """Far-field square minus the airfoil area, to rounding."""
        from repro.geometry.primitives import polygon_area

        mesh_area = np.abs(self.result.mesh.areas()).sum()
        chord = self.pslg.chord_length()
        ff = (2 * 15.0 * chord) ** 2
        body = polygon_area(self.pslg.loop_points(self.pslg.loops[0]))
        assert mesh_area == pytest.approx(ff - body, rel=1e-9)

    def test_positively_oriented(self):
        assert np.all(self.result.mesh.areas() > 0)

    def test_anisotropic_and_isotropic_regions(self):
        ar = self.result.mesh.aspect_ratios()
        assert ar.max() > 10.0          # BL slivers
        assert np.median(ar) < 6.0      # bulk is isotropic

    def test_stage_timings_recorded(self):
        for key in ("boundary_layer", "decoupling", "refinement", "merge"):
            assert key in self.result.timings

    def test_inviscid_quality(self):
        """Quality bound holds in the decoupled subdomains (a few locked
        border-corner triangles are exempt — the cost of never splitting
        shared borders)."""
        from repro.delaunay.refine import RUPPERT_BOUND

        all_ratios = np.concatenate([
            m.radius_edge_ratios() for m in self.result.inviscid_meshes
        ])
        assert (all_ratios <= RUPPERT_BOUND + 1e-9).mean() > 0.9
        for m in self.result.inviscid_meshes:
            ratios = m.radius_edge_ratios()
            assert (ratios <= RUPPERT_BOUND + 1e-9).mean() > 0.7

    def test_gradation_outward(self):
        """Element area grows with distance from the body (Fig. 10)."""
        mesh = self.result.mesh
        cents = mesh.centroids()
        areas = np.abs(mesh.areas())
        r = np.hypot(cents[:, 0] - 0.5, cents[:, 1])
        near = areas[(r > 1.0) & (r < 2.0)]
        far = areas[r > 10.0]
        assert far.mean() > 10 * near.mean()


class TestThreadsBackend:
    def test_matches_local(self):
        pslg = PSLG.from_loops([naca0012(41)])
        cfg = small_config(farfield_chords=10.0, target_subdomains=8)
        local = generate_mesh(pslg, cfg, backend="local")
        threaded = generate_mesh(pslg, cfg, backend="threads", n_ranks=3)
        # Same subdomain set refined independently: identical meshes.
        assert threaded.mesh.n_triangles == local.mesh.n_triangles
        assert threaded.mesh.is_conforming()
        a = np.sort(np.abs(local.mesh.areas()))
        b = np.sort(np.abs(threaded.mesh.areas()))
        np.testing.assert_allclose(a, b, rtol=1e-12)

    def test_unknown_backend(self):
        pslg = PSLG.from_loops([naca0012(41)])
        with pytest.raises(ValueError):
            generate_mesh(pslg, small_config(), backend="mpi")


class TestThreeElementPipeline:
    def test_full_highlift_mesh(self):
        pslg = three_element_airfoil(n_points=41)
        cfg = small_config(farfield_chords=10.0, target_subdomains=8)
        res = generate_mesh(pslg, cfg)
        assert res.mesh.is_conforming()
        assert res.mesh.n_triangles > 2000
        assert len(res.bl.element_rays) == 3
        # All three BL regions meshed.
        assert res.stats["n_bl_triangles"] > 500
