"""Geometry fuzz corpus: hard domains for the invariant harness.

Each entry builds a small-but-nasty ``(PSLG, MeshConfig)`` pair sized
to mesh in well under a second, so the corpus can run through the
exact-Delaunay/orientation/conformity checks both directly and through
the service path without dominating the suite:

* ``cove`` — a NACA 4412 with a concave cove carved into the lower aft
  surface (re-entrant corners, the classic high-lift slat/main shape).
* ``multi-element`` — the synthetic three-element high-lift
  configuration (multiple bodies, coves, deflected elements, blunt
  flap TE).
* ``near-tangent-gap`` — a main airfoil with a small deflected flap
  whose leading edge sits a few hundredths of a chord away from the
  main's trailing edge, so boundary layers from both bodies nearly
  meet in the gap.

``DOMAINS`` maps name -> builder; builders are pure (fresh arrays per
call) so tests can mutate results freely.
"""

from __future__ import annotations

from repro.core.bl_pipeline import BoundaryLayerConfig
from repro.core.pipeline import MeshConfig
from repro.geometry.airfoils import (
    add_cove,
    naca4,
    three_element_airfoil,
    transform_coords,
)
from repro.geometry.pslg import PSLG

__all__ = [
    "DOMAINS",
    "cove_domain",
    "multi_element_domain",
    "near_tangent_gap_domain",
    "small_bl",
]


def small_bl(max_layers: int = 6,
             first_spacing: float = 2e-3) -> BoundaryLayerConfig:
    return BoundaryLayerConfig(first_spacing=first_spacing,
                               growth_ratio=1.4, max_layers=max_layers)


def cove_domain():
    """Single element with a concave lower-surface cove."""
    coords = add_cove(naca4("4412", 41), x_start=0.55, x_end=0.9, depth=0.5)
    pslg = PSLG.from_loops([coords], names=["cove4412"])
    config = MeshConfig(bl=small_bl(), farfield_chords=5.0,
                        target_subdomains=4)
    return pslg, config


def multi_element_domain():
    """Synthetic slat + main + flap high-lift configuration."""
    pslg = three_element_airfoil(n_points=31)
    config = MeshConfig(bl=small_bl(max_layers=4, first_spacing=1e-3),
                        farfield_chords=5.0, target_subdomains=4)
    return pslg, config


def near_tangent_gap_domain():
    """Two bodies separated by a ~0.02-chord near-tangent gap."""
    main = naca4("0012", 41)
    flap = transform_coords(naca4("0012", 31), scale=0.3,
                            rotate_deg=-12.0, translate=(1.02, -0.01))
    pslg = PSLG.from_loops([main, flap], names=["main", "flap"])
    # Keep the BL thin enough that the two stacks stay disjoint in the
    # gap: 3 layers at 1e-3 first spacing is ~0.0044 per side.
    config = MeshConfig(bl=small_bl(max_layers=3, first_spacing=1e-3),
                        farfield_chords=5.0, target_subdomains=4)
    return pslg, config


DOMAINS = {
    "cove": cove_domain,
    "multi-element": multi_element_domain,
    "near-tangent-gap": near_tangent_gap_domain,
}
