"""CLI contract tests: backend flag wiring, fail-fast errors, and the
serve/submit service subcommands."""

import json
import threading
import time

import pytest

from repro.cli import build_parser, build_serve_parser, build_submit_parser, main
from repro.runtime import executor


class TestBackendFlags:
    def test_choices_derived_from_registry(self):
        parser = build_parser()
        action = next(a for a in parser._actions if a.dest == "backend")
        assert list(action.choices) == executor.available_backends()

    def test_ranks_with_local_fails_fast(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["--naca", "0012", "--backend", "local", "--ranks", "4",
                  "-o", str(tmp_path / "m")])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "--ranks only applies to parallel backends" in err
        assert "processes" in err and "threads" in err

    def test_ranks_with_serial_alias_fails_fast(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--naca", "0012", "--backend", "serial", "--ranks", "2",
                  "-o", str(tmp_path / "m")])

    def test_sanitize_with_processes_fails_fast(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["--naca", "0012", "--backend", "processes", "--sanitize",
                  "-o", str(tmp_path / "m")])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "--sanitize instruments shared-memory backends only" in err
        assert "--backend threads" in err

    def test_unknown_backend_rejected_by_argparse(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--naca", "0012", "--backend", "mpi",
                  "-o", str(tmp_path / "m")])

    def test_env_backend_reported_in_summary(self, monkeypatch, capsys,
                                             tmp_path):
        """REPRO_BACKEND drives the run; summary reports the canonical
        name and rank count."""
        monkeypatch.setenv(executor.BACKEND_ENV, "local")
        rc = main(["--naca", "0012", "--surface-points", "31",
                   "--max-layers", "6", "--farfield-chords", "5",
                   "--subdomains", "4", "--stats-json",
                   "-o", str(tmp_path / "m")])
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["backend"] == "serial"
        assert summary["n_ranks"] == 4
        assert summary["n_triangles"] > 0


class TestAdaptFlags:
    def test_adapt_defaults_parse(self):
        parser = build_parser()
        args = parser.parse_args(["--naca", "0012", "-o", "m"])
        assert args.adapt is False
        assert args.adapt_cycles == 2
        assert args.adapt_eps == pytest.approx(1e-2)
        assert args.adapt_hmin is None and args.adapt_hmax is None

    def test_adapt_run_reports_counters(self, capsys, tmp_path):
        """One tiny adaptation cycle end to end: --stats-json carries
        the operation counters and the conformity trace."""
        rc = main(["--naca", "0012", "--surface-points", "31",
                   "--max-layers", "6", "--farfield-chords", "5",
                   "--subdomains", "4", "--adapt", "--adapt-cycles", "1",
                   "--adapt-eps", "0.1", "--adapt-hmin", "0.01",
                   "--adapt-hmax", "2.0", "--adapt-passes", "2",
                   "--stats-json", "-o", str(tmp_path / "m")])
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        adapt = summary["adapt"]
        assert adapt["cycles"] == 1
        assert adapt["splits"] + adapt["collapses"] + adapt["flips"] > 0
        assert 0.0 <= adapt["conformity"] <= 1.0
        report = adapt["reports"][0]
        assert report["conformity_after"] >= report["conformity_before"]


class TestServiceParsers:
    def test_serve_backend_choices_derived_from_registry(self):
        parser = build_serve_parser()
        action = next(a for a in parser._actions if a.dest == "backend")
        assert list(action.choices) == executor.available_backends()

    def test_serve_requires_an_address(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--backend", "serial"])
        assert exc.value.code == 2
        assert "--socket" in capsys.readouterr().err

    def test_serve_ranks_with_serial_fails_fast(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--socket", str(tmp_path / "s.sock"),
                  "--backend", "serial", "--ranks", "4"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "--ranks only applies to parallel backends" in err

    def test_submit_with_nothing_to_do_fails_fast(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["submit", "--socket", str(tmp_path / "s.sock")])
        assert exc.value.code == 2
        assert "nothing to do" in capsys.readouterr().err

    def test_submit_geometry_requires_output(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["submit", "--socket", str(tmp_path / "s.sock"),
                  "--naca", "0012"])
        assert exc.value.code == 2
        assert "-o/--output is required" in capsys.readouterr().err

    def test_submit_geometry_flags_match_legacy_parser(self):
        """The submit subcommand reuses the legacy geometry/mesh flags,
        so scripted invocations can switch paths without rewrites."""
        legacy = {a.dest for a in build_parser()._actions}
        submit = {a.dest for a in build_submit_parser()._actions}
        for dest in ("naca", "naca5", "joukowski", "flat_plate", "cylinder",
                     "three_element", "poly", "surface_points",
                     "first_spacing", "growth_ratio", "max_layers",
                     "farfield_chords", "grading", "subdomains"):
            assert dest in legacy and dest in submit, dest


class TestServeSubmitEndToEnd:
    @staticmethod
    def _json_tail(out):
        """Parse the JSON summary, skipping the serve thread's startup
        banner captured on the same stream."""
        return json.loads(out[out.index("{"):])

    def _serve_in_thread(self, sock_path):
        rc = {}

        def run():
            rc["value"] = main(["serve", "--socket", str(sock_path),
                                "--backend", "serial",
                                "--batch-window", "0.005"])

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        deadline = time.monotonic() + 30.0
        while not sock_path.exists():
            if time.monotonic() > deadline:
                raise TimeoutError("service socket never appeared")
            time.sleep(0.02)
        return thread, rc

    def test_serve_submit_shutdown_round_trip(self, capsys, tmp_path):
        sock = tmp_path / "svc.sock"
        thread, rc = self._serve_in_thread(sock)
        try:
            code = main(["submit", "--socket", str(sock), "--ping",
                         "--naca", "0012", "--surface-points", "31",
                         "--max-layers", "6", "--farfield-chords", "5",
                         "--subdomains", "4", "--stats-json",
                         "-o", str(tmp_path / "m")])
            assert code == 0
            first = self._json_tail(capsys.readouterr().out)
            assert first["ping_rtt_s"] >= 0.0
            assert first["cached"] is False
            assert first["n_triangles"] > 0
            assert (tmp_path / "m.node").exists() or first["outputs"]

            code = main(["submit", "--socket", str(sock),
                         "--naca", "0012", "--surface-points", "31",
                         "--max-layers", "6", "--farfield-chords", "5",
                         "--subdomains", "4", "--server-stats",
                         "--stats-json", "-o", str(tmp_path / "m2")])
            assert code == 0
            second = self._json_tail(capsys.readouterr().out)
            assert second["cached"] is True
            assert second["key"] == first["key"]
            assert second["server"]["requests"] == 2.0
            assert second["server"]["cache_hits"] == 1.0
        finally:
            assert main(["submit", "--socket", str(sock),
                         "--shutdown"]) == 0
            thread.join(timeout=60)
        assert not thread.is_alive()
        assert rc.get("value") == 0
        assert "service shut down" in capsys.readouterr().out
