"""CLI contract tests: backend flag wiring and fail-fast errors."""

import json

import pytest

from repro.cli import build_parser, main
from repro.runtime import executor


class TestBackendFlags:
    def test_choices_derived_from_registry(self):
        parser = build_parser()
        action = next(a for a in parser._actions if a.dest == "backend")
        assert list(action.choices) == executor.available_backends()

    def test_ranks_with_local_fails_fast(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["--naca", "0012", "--backend", "local", "--ranks", "4",
                  "-o", str(tmp_path / "m")])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "--ranks only applies to parallel backends" in err
        assert "processes" in err and "threads" in err

    def test_ranks_with_serial_alias_fails_fast(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--naca", "0012", "--backend", "serial", "--ranks", "2",
                  "-o", str(tmp_path / "m")])

    def test_sanitize_with_processes_fails_fast(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["--naca", "0012", "--backend", "processes", "--sanitize",
                  "-o", str(tmp_path / "m")])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "--sanitize instruments shared-memory backends only" in err
        assert "--backend threads" in err

    def test_unknown_backend_rejected_by_argparse(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--naca", "0012", "--backend", "mpi",
                  "-o", str(tmp_path / "m")])

    def test_env_backend_reported_in_summary(self, monkeypatch, capsys,
                                             tmp_path):
        """REPRO_BACKEND drives the run; summary reports the canonical
        name and rank count."""
        monkeypatch.setenv(executor.BACKEND_ENV, "local")
        rc = main(["--naca", "0012", "--surface-points", "31",
                   "--max-layers", "6", "--farfield-chords", "5",
                   "--subdomains", "4", "--stats-json",
                   "-o", str(tmp_path / "m")])
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["backend"] == "serial"
        assert summary["n_ranks"] == 4
        assert summary["n_triangles"] > 0
