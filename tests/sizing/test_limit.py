"""Hamilton-Jacobi gradient limiter: exactness, idempotence, sharing.

``limit_field`` is the shared gradation core — the scalar sizing path
uses it directly and :meth:`repro.metric.MetricField.limit_gradation`
funnels its per-vertex minimum spacing through it — so its fixed-point
properties are checked on explicit graphs where the answer is known in
closed form.
"""

import numpy as np
import pytest

from repro.sizing.limit import (GradientLimitedSizing, limit_field,
                                limit_sizing_on_mesh)


def path_graph(n, length=1.0):
    edges = np.column_stack([np.arange(n - 1), np.arange(1, n)])
    lengths = np.full(n - 1, length)
    return edges, lengths


class TestLimitField:
    def test_spike_relaxes_linearly(self):
        """A single small value propagates as h0 + g * distance."""
        edges, lengths = path_graph(6)
        values = np.array([0.1, 9.0, 9.0, 9.0, 9.0, 9.0])
        out = limit_field(edges, lengths, values, 0.5)
        np.testing.assert_allclose(
            out, [0.1, 0.6, 1.1, 1.6, 2.1, 2.6], rtol=1e-12)

    def test_never_increases_values(self):
        rng = np.random.default_rng(0)
        edges, lengths = path_graph(50, 0.3)
        values = rng.uniform(0.1, 5.0, 50)
        out = limit_field(edges, lengths, values, 0.4)
        assert np.all(out <= values + 1e-15)

    def test_idempotent(self):
        rng = np.random.default_rng(1)
        edges, lengths = path_graph(40, 0.2)
        values = rng.uniform(0.1, 5.0, 40)
        once = limit_field(edges, lengths, values, 0.3)
        twice = limit_field(edges, lengths, once, 0.3)
        np.testing.assert_array_equal(once, twice)

    def test_slope_bound_holds_on_every_edge(self):
        rng = np.random.default_rng(2)
        n = 60
        pts = rng.uniform(size=(n, 2))
        edges = np.unique(np.sort(
            rng.integers(0, n, size=(300, 2)), axis=1), axis=0)
        edges = edges[edges[:, 0] != edges[:, 1]]
        lengths = np.linalg.norm(pts[edges[:, 1]] - pts[edges[:, 0]],
                                 axis=1)
        keep = lengths > 0
        edges, lengths = edges[keep], lengths[keep]
        values = rng.uniform(0.01, 10.0, n)
        g = 0.25
        out = limit_field(edges, lengths, values, g)
        dh = np.abs(out[edges[:, 1]] - out[edges[:, 0]])
        assert np.all(dh <= g * lengths + 1e-9)

    def test_zero_slope_floods_minimum(self):
        edges, lengths = path_graph(5)
        values = np.array([3.0, 1.0, 4.0, 0.5, 2.0])
        out = limit_field(edges, lengths, values, 0.0)
        np.testing.assert_allclose(out, 0.5)

    def test_active_mask_ignores_inactive_sources(self):
        edges, lengths = path_graph(4)
        values = np.array([1e-9, 5.0, 5.0, 5.0])
        active = np.array([False, True, True, True])
        out = limit_field(edges, lengths, values, 0.5, active=active)
        # The tiny first value is not a source; it only receives.
        np.testing.assert_allclose(out[1:], 5.0)
        assert out[0] == pytest.approx(5.5)

    def test_rejects_bad_input(self):
        edges, lengths = path_graph(3)
        with pytest.raises(ValueError):
            limit_field(edges, lengths, np.ones(3), -1.0)
        with pytest.raises(ValueError):
            limit_field(edges, np.zeros(2), np.ones(3), 0.5)


class TestMeshAndWrapper:
    def test_limit_sizing_on_mesh(self):
        from repro.delaunay import refine_pslg

        pts = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
        segs = np.array([[0, 1], [1, 2], [2, 3], [3, 0]])
        mesh = refine_pslg(pts, segs, max_area=0.02)
        h = np.full(mesh.n_points, 1.0)
        h[0] = 0.01
        out = limit_sizing_on_mesh(mesh, h, 0.3)
        edges = mesh.edges()
        lengths = np.linalg.norm(
            mesh.points[edges[:, 1]] - mesh.points[edges[:, 0]], axis=1)
        dh = np.abs(out[edges[:, 1]] - out[edges[:, 0]])
        assert np.all(dh <= 0.3 * lengths + 1e-9)

    def test_gradient_limited_sizing_grades_discontinuity(self):
        fn = lambda x, y: 0.0004 if x < 0.5 else 0.04
        sizing = GradientLimitedSizing(fn, (0.0, 0.0, 1.0, 1.0),
                                       slope=0.2, nx=33)
        # Directly right of the jump the limited h must still be close
        # to the small-side h, not the raw large value.
        h_small = sizing.edge_length_at(0.49, 0.5)
        h_mid = sizing.edge_length_at(0.55, 0.5)
        assert h_mid <= h_small + 0.2 * 0.08

    def test_metric_gradation_shares_scalar_core(self):
        """Scalar limiter == metric limiter on isotropic tensors."""
        from repro.metric import MetricField

        rng = np.random.default_rng(3)
        n = 30
        pts = rng.uniform(size=(n, 2))
        h = rng.uniform(0.05, 1.0, n)
        edges = np.unique(np.sort(
            rng.integers(0, n, size=(120, 2)), axis=1), axis=0)
        edges = edges[edges[:, 0] != edges[:, 1]]
        lengths = np.linalg.norm(pts[edges[:, 1]] - pts[edges[:, 0]],
                                 axis=1)
        keep = lengths > 0
        edges, lengths = edges[keep], lengths[keep]

        scalar = limit_field(edges, lengths, h, 0.3)
        f = MetricField.from_sizes(pts, h).limit_gradation(edges,
                                                           grading=0.3)
        hs, _ = f.sizes()
        np.testing.assert_allclose(hs, scalar, rtol=1e-9)
