"""Tests for boundary-layer growth functions."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sizing.growth import AdaptiveGrowth, GeometricGrowth, PolynomialGrowth


class TestGeometric:
    def test_heights(self):
        g = GeometricGrowth(0.1, ratio=2.0)
        assert g.height(0) == 0.0
        assert g.height(1) == pytest.approx(0.1)
        assert g.height(2) == pytest.approx(0.3)
        assert g.height(3) == pytest.approx(0.7)

    def test_spacing_matches_height_diff(self):
        g = GeometricGrowth(0.05, ratio=1.3)
        for k in range(1, 20):
            assert g.spacing(k) == pytest.approx(g.height(k) - g.height(k - 1))

    def test_ratio_one_uniform(self):
        g = GeometricGrowth(0.2, ratio=1.0)
        assert g.height(5) == pytest.approx(1.0)
        assert g.spacing(3) == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            GeometricGrowth(0.0)
        with pytest.raises(ValueError):
            GeometricGrowth(0.1, ratio=0.9)
        with pytest.raises(ValueError):
            GeometricGrowth(0.1).spacing(0)
        with pytest.raises(ValueError):
            GeometricGrowth(0.1).height(-1)

    def test_layers_to_height(self):
        g = GeometricGrowth(0.1, ratio=2.0)
        assert g.layers_to_height(0.7) == 3
        assert g.layers_to_height(0.71) == 4

    @given(
        d0=st.floats(min_value=1e-6, max_value=1.0),
        r=st.floats(min_value=1.0, max_value=2.0),
        k=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=100)
    def test_monotone_increasing(self, d0, r, k):
        g = GeometricGrowth(d0, ratio=r)
        assert g.height(k + 1) > g.height(k)
        assert g.spacing(k + 1) >= g.spacing(k)


class TestPolynomial:
    def test_quadratic(self):
        g = PolynomialGrowth(0.1, exponent=2.0)
        assert g.height(3) == pytest.approx(0.9)
        assert g.spacing(3) == pytest.approx(0.9 - 0.4)

    def test_linear_is_uniform(self):
        g = PolynomialGrowth(0.1, exponent=1.0)
        for k in range(1, 10):
            assert g.spacing(k) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            PolynomialGrowth(0.1, exponent=0.5)


class TestAdaptive:
    def test_caps_spacing(self):
        g = AdaptiveGrowth(0.1, ratio=2.0, max_spacing=0.5)
        spacings = [g.spacing(k) for k in range(1, 10)]
        assert spacings[0] == pytest.approx(0.1)
        assert max(spacings) == pytest.approx(0.5)
        # Once capped, spacing stays at the cap.
        assert spacings[-1] == pytest.approx(0.5)

    def test_height_is_cumulative_spacing(self):
        g = AdaptiveGrowth(0.1, ratio=1.5, max_spacing=0.3)
        total = 0.0
        for k in range(1, 30):
            total += g.spacing(k)
            assert g.height(k) == pytest.approx(total)

    def test_uncapped_matches_geometric(self):
        a = AdaptiveGrowth(0.1, ratio=1.2)
        geo = GeometricGrowth(0.1, ratio=1.2)
        for k in range(0, 25):
            assert a.height(k) == pytest.approx(geo.height(k))

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveGrowth(0.1, max_spacing=0.05)

    def test_height_random_access(self):
        g = AdaptiveGrowth(0.1, ratio=1.3, max_spacing=1.0)
        h10 = g.height(10)
        assert g.height(5) < h10  # lazy cache supports out-of-order access
        assert g.height(10) == h10


class TestTanh:
    def test_endpoints(self):
        from repro.sizing.growth import TanhGrowth

        g = TanhGrowth(0.5, 25, beta=2.5)
        assert g.height(0) == 0.0
        assert g.height(25) == pytest.approx(0.5)

    def test_wall_clustering(self):
        from repro.sizing.growth import TanhGrowth

        g = TanhGrowth(1.0, 30, beta=3.0)
        # First spacing far below uniform; last spacing above uniform.
        uniform = 1.0 / 30
        assert g.spacing(1) < uniform / 3
        assert g.spacing(30) > uniform

    def test_spacings_monotone_increasing(self):
        from repro.sizing.growth import TanhGrowth

        g = TanhGrowth(0.2, 40, beta=2.0)
        spacings = [g.spacing(k) for k in range(1, 41)]
        assert all(b >= a for a, b in zip(spacings, spacings[1:]))

    def test_stronger_beta_clusters_harder(self):
        from repro.sizing.growth import TanhGrowth

        weak = TanhGrowth(1.0, 20, beta=1.5)
        strong = TanhGrowth(1.0, 20, beta=4.0)
        assert strong.first_spacing < weak.first_spacing

    def test_extension_beyond_n_layers_uniform(self):
        from repro.sizing.growth import TanhGrowth

        g = TanhGrowth(0.3, 10, beta=2.0)
        last = g.height(10) - g.height(9)
        assert g.height(12) == pytest.approx(0.3 + 2 * last)

    def test_validation(self):
        from repro.sizing.growth import TanhGrowth

        with pytest.raises(ValueError):
            TanhGrowth(0.0, 10)
        with pytest.raises(ValueError):
            TanhGrowth(1.0, 0)
        with pytest.raises(ValueError):
            TanhGrowth(1.0, 10, beta=1.0)

    def test_usable_in_bl_pipeline(self):
        from repro.core.bl_pipeline import (
            BoundaryLayerConfig,
            generate_boundary_layer,
        )
        from repro.geometry.airfoils import naca0012
        from repro.geometry.pslg import PSLG
        from repro.sizing.growth import TanhGrowth

        pslg = PSLG.from_loops([naca0012(41)])
        cfg = BoundaryLayerConfig(
            growth=TanhGrowth(0.05, 12, beta=2.5), max_layers=12,
        )
        res = generate_boundary_layer(pslg, cfg)
        assert res.mesh.n_triangles > 100
        assert res.mesh.is_conforming()
