"""Tests for sizing functions and the decoupling edge-length formula."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sizing.functions import (
    CallableSizing,
    GradedDistanceSizing,
    RadialSizing,
    UniformSizing,
    decoupling_edge_length,
)


class TestDecouplingEdgeLength:
    def test_formula(self):
        # k = 1/2 sqrt(A / sqrt 2)
        a = 2.0
        assert decoupling_edge_length(a) == pytest.approx(
            0.5 * math.sqrt(2.0 / math.sqrt(2.0))
        )

    def test_invalid(self):
        with pytest.raises(ValueError):
            decoupling_edge_length(0.0)

    @given(st.floats(min_value=1e-12, max_value=1e12))
    def test_monotone_in_area(self, a):
        assert decoupling_edge_length(2 * a) > decoupling_edge_length(a)

    @given(st.floats(min_value=1e-6, max_value=1e6))
    def test_triangle_with_edge_2k_satisfies_area(self, a):
        """An equilateral triangle with edge 2k has area <= A: the
        conservative guarantee behind the decoupling path spacing."""
        k = decoupling_edge_length(a)
        area_equilateral = math.sqrt(3) / 4 * (2 * k) ** 2
        assert area_equilateral <= a


class TestUniform:
    def test_constant(self):
        s = UniformSizing(0.5)
        assert s.area_at(0, 0) == 0.5
        assert s.area_at(100, -3) == 0.5
        assert s(1, 1) == 0.5

    def test_invalid(self):
        with pytest.raises(ValueError):
            UniformSizing(-1.0)


class TestGradedDistance:
    def setup_method(self):
        theta = np.linspace(0, 2 * np.pi, 200, endpoint=False)
        self.circle = np.column_stack([np.cos(theta), np.sin(theta)])
        self.s = GradedDistanceSizing(self.circle, h0=0.01, grading=0.3)

    def test_distance_on_surface_zero(self):
        assert self.s.distance_to_surface(1.0, 0.0) == pytest.approx(0.0, abs=1e-12)

    def test_distance_far(self):
        d = self.s.distance_to_surface(10.0, 0.0)
        assert d == pytest.approx(9.0, abs=0.05)

    def test_edge_grows_with_distance(self):
        h_near = self.s.edge_length_at(1.05, 0.0)
        h_far = self.s.edge_length_at(5.0, 0.0)
        assert h_near < h_far
        assert h_near == pytest.approx(0.01 + 0.3 * 0.05, abs=0.01)

    def test_area_consistent_with_edge(self):
        h = self.s.edge_length_at(3.0, 0.0)
        assert self.s.area_at(3.0, 0.0) == pytest.approx(
            math.sqrt(3) / 4 * h * h
        )

    def test_h_max_cap(self):
        s = GradedDistanceSizing(self.circle, h0=0.01, grading=1.0, h_max=0.5)
        assert s.edge_length_at(100.0, 0.0) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            GradedDistanceSizing(np.empty((0, 2)), h0=0.1)
        with pytest.raises(ValueError):
            GradedDistanceSizing(self.circle, h0=-0.1)

    @given(
        x=st.floats(min_value=-40, max_value=40),
        y=st.floats(min_value=-40, max_value=40),
    )
    @settings(max_examples=100)
    def test_coarse_acceleration_accurate(self, x, y):
        """The decimated-cloud fast path must agree with brute force."""
        exact = float(np.min(np.hypot(self.circle[:, 0] - x,
                                      self.circle[:, 1] - y)))
        got = self.s.distance_to_surface(x, y)
        assert got == pytest.approx(exact, rel=0.05, abs=0.05)


class TestRadial:
    def test_gradation(self):
        s = RadialSizing((0, 0), h0=0.1, grading=0.5)
        assert s.edge_length_at(0, 0) == pytest.approx(0.1)
        assert s.edge_length_at(2, 0) == pytest.approx(1.1)
        assert s.area_at(2, 0) > s.area_at(0, 0)


class TestCallable:
    def test_wraps(self):
        s = CallableSizing(lambda x, y: 1.0 + x * x)
        assert s.area_at(2, 0) == 5.0

    def test_nonpositive_rejected(self):
        s = CallableSizing(lambda x, y: -1.0)
        with pytest.raises(ValueError):
            s.area_at(0, 0)
