"""Tests for anisotropy metrics and mesh reports."""

import math

import numpy as np
import pytest

from repro.analysis.metrics import (
    alignment_to_surface,
    element_directions,
    histogram,
    size_profile,
)
from repro.analysis.report import mesh_report
from repro.delaunay.mesh import TriMesh


def stretched_strip(n=20, height=0.01):
    """A horizontal strip of thin elements stretched along x."""
    pts = []
    for i in range(n + 1):
        pts.append((i / n, 0.0))
        pts.append((i / n, height))
    tris = []
    for i in range(n):
        a, b = 2 * i, 2 * i + 1
        c, d = 2 * i + 2, 2 * i + 3
        tris.append((a, c, b))
        tris.append((b, c, d))
    return TriMesh(np.asarray(pts, dtype=float), np.asarray(tris))


class TestElementDirections:
    def test_stretched_elements_point_along_x(self):
        mesh = stretched_strip()
        dirs, ratio = element_directions(mesh)
        assert np.all(ratio > 3.0)
        assert np.all(np.abs(dirs[:, 0]) > 0.99)

    def test_equilateral_isotropic(self):
        h = math.sqrt(3) / 2
        mesh = TriMesh(np.array([(0, 0), (1, 0), (0.5, h)]),
                       np.array([(0, 1, 2)]))
        _, ratio = element_directions(mesh)
        assert ratio[0] == pytest.approx(1.0, abs=1e-9)

    def test_vertical_stretch(self):
        mesh = TriMesh(
            np.array([(0, 0), (0.01, 0), (0.005, 1.0)]),
            np.array([(0, 1, 2)]),
        )
        dirs, ratio = element_directions(mesh)
        assert ratio[0] > 10
        assert abs(dirs[0, 1]) > 0.99


class TestAlignment:
    def test_strip_aligned_with_horizontal_surface(self):
        mesh = stretched_strip()
        surface = np.array([(0, -0.1), (1, -0.1), (1, -0.2), (0, -0.2)])
        scores = alignment_to_surface(mesh, surface)
        assert len(scores) == mesh.n_triangles
        assert np.median(scores) > 0.95

    def test_misaligned_detected(self):
        mesh = stretched_strip()
        # A tall thin wall to the right: its long VERTICAL side is nearest
        # to every strip element, so the x-stretched elements score as
        # orthogonal to the local surface tangent.
        surface = np.array([(2.0, -50.0), (2.1, -50.0),
                            (2.1, 50.0), (2.0, 50.0)])
        scores = alignment_to_surface(mesh, surface)
        assert np.median(scores) < 0.2

    def test_no_stretched_elements(self):
        h = math.sqrt(3) / 2
        mesh = TriMesh(np.array([(0, 0), (1, 0), (0.5, h)]),
                       np.array([(0, 1, 2)]))
        scores = alignment_to_surface(
            mesh, np.array([(0, 0), (1, 0), (1, 1)]))
        assert len(scores) == 0

    def test_bl_mesh_aligns_with_airfoil(self):
        from repro.core.bl_pipeline import (
            BoundaryLayerConfig,
            generate_boundary_layer,
        )
        from repro.geometry.airfoils import naca0012
        from repro.geometry.pslg import PSLG

        pslg = PSLG.from_loops([naca0012(61)])
        res = generate_boundary_layer(
            pslg, BoundaryLayerConfig(first_spacing=1e-3, growth_ratio=1.3,
                                      max_layers=15))
        scores = alignment_to_surface(res.mesh, naca0012(61), min_ratio=5.0)
        assert len(scores) > 20
        # The paper's protected property: BL elements align with the wall.
        assert np.median(scores) > 0.9


class TestSizeProfile:
    def test_graded_mesh_profile_increases(self):
        from repro.delaunay.refine import refine_pslg
        from repro.sizing.functions import RadialSizing

        s = RadialSizing((0, 0), h0=0.05, grading=0.5, h_max=2.0)
        pts = np.array([(-5, -5), (5, -5), (5, 5), (-5, 5)], dtype=float)
        segs = np.array([(0, 1), (1, 2), (2, 3), (3, 0)])
        mesh = refine_pslg(pts, segs, area_fn=s.area_at)
        prof = size_profile(mesh, np.array([(0.0, 0.0)]),
                            bins=[0.0, 1.0, 2.5, 5.0])
        assert len(prof) == 3
        assert prof[0]["mean_area"] < prof[-1]["mean_area"]


class TestHistogramAndReport:
    def test_histogram_text(self):
        txt = histogram(np.random.default_rng(0).normal(size=500),
                        bins=5, label="demo")
        assert "demo (n=500)" in txt
        assert txt.count("\n") == 5

    def test_histogram_empty(self):
        assert "(no data)" in histogram(np.array([np.nan]), label="x")

    def test_mesh_report_runs(self):
        from repro.delaunay.refine import refine_pslg

        pts = np.array([(0, 0), (1, 0), (1, 1), (0, 1)], dtype=float)
        segs = np.array([(0, 1), (1, 2), (2, 3), (3, 0)])
        mesh = refine_pslg(pts, segs, max_area=0.05)
        txt = mesh_report(mesh, surface=np.array([(0.5, 0.0)]))
        assert "[OK]" in txt
        assert "quality:" in txt
