"""Quality-in-the-metric measures: unit-band conformity of edges."""

import numpy as np
import pytest

from repro.analysis import metric_conformity, metric_edge_lengths
from repro.delaunay import adapt_mesh, refine_pslg
from repro.delaunay.adapt import HIGH_BAND, LOW_BAND
from repro.metric import MetricField

UNIT_SQUARE = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
SQUARE_SEGS = np.array([[0, 1], [1, 2], [2, 3], [3, 0]])


@pytest.fixture(scope="module")
def mesh():
    return refine_pslg(UNIT_SQUARE.copy(), SQUARE_SEGS.copy(),
                       max_area=0.01)


class TestMetricEdgeLengths:
    def test_counts_unique_edges(self, mesh):
        field = MetricField.uniform(mesh.points, 0.1)
        lengths = metric_edge_lengths(mesh, field)
        t = mesh.triangles
        n_edges = len(np.unique(np.sort(np.concatenate(
            [t[:, [0, 1]], t[:, [1, 2]], t[:, [2, 0]]]), axis=1), axis=0))
        assert len(lengths) == n_edges
        assert np.all(lengths > 0)

    def test_matched_metric_gives_unit_lengths(self, mesh):
        """Metric h == actual edge length -> metric lengths near 1."""
        t = mesh.triangles
        edges = np.unique(np.sort(np.concatenate(
            [t[:, [0, 1]], t[:, [1, 2]], t[:, [2, 0]]]), axis=1), axis=0)
        ls = np.linalg.norm(mesh.points[edges[:, 1]]
                            - mesh.points[edges[:, 0]], axis=1)
        h = np.full(mesh.n_points, np.median(ls))
        field = MetricField.from_sizes(mesh.points, h)
        lengths = metric_edge_lengths(mesh, field)
        assert np.median(lengths) == pytest.approx(1.0, rel=0.15)


class TestMetricConformity:
    def test_band_defaults(self):
        assert LOW_BAND == pytest.approx(1.0 / np.sqrt(2.0))
        assert HIGH_BAND == pytest.approx(np.sqrt(2.0))

    def test_conformity_in_unit_interval(self, mesh):
        field = MetricField.uniform(mesh.points, 0.05)
        c = metric_conformity(mesh, field)
        assert 0.0 <= c <= 1.0

    def test_adaptation_raises_conformity(self, mesh):
        h = np.where(np.abs(mesh.points[:, 1] - 0.5) < 0.2, 0.05, 0.25)
        field = MetricField.from_sizes(mesh.points, h)
        before = metric_conformity(mesh, field)
        adapted, _ = adapt_mesh(mesh, field, max_passes=3)
        after = metric_conformity(adapted, field)
        assert after > before
        assert after > 0.75

    def test_custom_band(self, mesh):
        field = MetricField.uniform(mesh.points, 0.1)
        wide = metric_conformity(mesh, field, l_min=1e-6, l_max=1e6)
        assert wide == 1.0
