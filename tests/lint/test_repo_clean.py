"""The repository's own tree must lint clean — the CI gate, as a test.

If this fails, either new code violated an invariant (fix the code) or a
rule grew a false positive (fix the rule, or pragma the line with a
one-line justification).  R1–R12 all run here, so every dataflow rule
is exercised against the full production tree on every test run.
"""

from pathlib import Path

import json

from repro.lint import load_baseline, run_lint, rule_ids
from repro.lint.__main__ import main as lint_main

REPO = Path(__file__).resolve().parents[2]


def test_rule_catalog_is_r1_through_r12():
    assert set(rule_ids()) == {f"R{i}" for i in range(1, 13)}


def test_src_lints_clean():
    findings, n_files = run_lint([str(REPO / "src")])
    assert n_files > 50  # the scan actually covered the tree
    assert findings == [], "\n" + "\n".join(f.format_text() for f in findings)


def test_tests_lint_clean():
    findings, _ = run_lint([str(REPO / "tests")])
    assert findings == [], "\n" + "\n".join(f.format_text() for f in findings)


def test_examples_and_benchmarks_lint_clean():
    findings, n_files = run_lint([str(REPO / "examples"),
                                  str(REPO / "benchmarks")])
    assert n_files > 5
    errors = [f for f in findings if f.severity == "error"]
    assert errors == [], "\n" + "\n".join(f.format_text() for f in errors)


def test_baseline_file_is_valid_and_current():
    """The committed baseline parses, and no entry is vacuous.

    Every baselined key must correspond to a finding the current tree
    still produces — otherwise the debt was paid and the entry must go.
    """
    path = REPO / "lint-baseline.json"
    baseline = load_baseline(path)
    findings, _ = run_lint([str(REPO / "src"), str(REPO / "tests"),
                            str(REPO / "benchmarks"),
                            str(REPO / "examples")])
    # Compare on repo-relative paths, as CI records them.
    live = {(f.rule, str(Path(f.path).relative_to(REPO))
             if Path(f.path).is_absolute() else f.path,
             f.line, f.message)
            for f in findings}
    stale = baseline - live
    assert not stale, f"baseline entries no longer needed: {stale}"


def test_cli_json_output(capsys):
    rc = lint_main([str(REPO / "src" / "repro" / "lint"), "--format=json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert payload["n_findings"] == 0
    assert payload["files_scanned"] >= 4
    assert {r["id"] for r in payload["rules"]} >= set(rule_ids())


def test_cli_sarif_output(capsys):
    rc = lint_main([str(REPO / "src" / "repro" / "lint"),
                    "--format=sarif"])
    doc = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert doc["version"] == "2.1.0"
    assert doc["runs"][0]["results"] == []


def test_cli_exit_codes(tmp_path, capsys):
    bad = tmp_path / "repro" / "delaunay" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import random\n")
    assert lint_main([str(bad)]) == 1
    assert lint_main([str(bad), "--select", "R5"]) == 0  # other rule only
    assert lint_main([str(bad), "--select", "NOPE"]) == 2
    broken = tmp_path / "broken.py"
    broken.write_text("def broken(:\n")
    assert lint_main([str(broken)]) == 2  # unparseable = internal, not "1"
    capsys.readouterr()  # drain
