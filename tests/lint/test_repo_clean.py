"""The repository's own tree must lint clean — the CI gate, as a test.

If this fails, either new code violated an invariant (fix the code) or a
rule grew a false positive (fix the rule, or pragma the line with a
one-line justification).
"""

from pathlib import Path

import json

from repro.lint import run_lint
from repro.lint.__main__ import main as lint_main

REPO = Path(__file__).resolve().parents[2]


def test_src_lints_clean():
    findings, n_files = run_lint([str(REPO / "src")])
    assert n_files > 50  # the scan actually covered the tree
    assert findings == [], "\n" + "\n".join(f.format_text() for f in findings)


def test_tests_lint_clean():
    findings, _ = run_lint([str(REPO / "tests")])
    assert findings == [], "\n" + "\n".join(f.format_text() for f in findings)


def test_cli_json_output(capsys):
    rc = lint_main([str(REPO / "src" / "repro" / "lint"), "--format=json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert payload["n_findings"] == 0
    assert payload["files_scanned"] >= 4
    assert {r["id"] for r in payload["rules"]} >= {"R1", "R2", "R3",
                                                   "R4", "R5", "R6"}


def test_cli_exit_codes(tmp_path, capsys):
    bad = tmp_path / "repro" / "delaunay" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import random\n")
    assert lint_main([str(bad)]) == 1
    assert lint_main([str(bad), "--select", "R5"]) == 0  # other rule only
    assert lint_main([str(bad), "--select", "NOPE"]) == 2
    capsys.readouterr()  # drain
