"""Each lint rule fires on the pattern it guards against — and only there.

The bad snippets below are miniatures of real defect classes the rules
exist to block (R3's ``import random`` is literally what the Delaunay
kernel used to do), placed under fake ``repro/...`` paths so the rule
scoping logic is exercised too.
"""

import textwrap

from repro.lint import run_lint
from repro.lint.engine import parse_pragmas
from repro.lint.rules import ALL_RULES, rule_ids


def lint_snippet(tmp_path, relpath, source):
    f = tmp_path / relpath
    f.parent.mkdir(parents=True, exist_ok=True)
    f.write_text(textwrap.dedent(source))
    findings, n_files = run_lint([str(f)])
    assert n_files == 1
    return findings


def rules_hit(findings):
    return {f.rule for f in findings}


class TestRuleCatalog:
    def test_ids_unique_and_documented(self):
        ids = rule_ids()
        assert len(ids) == len(set(ids))
        for r in ALL_RULES:
            assert r.id and r.title and r.invariant


class TestR1DetSign:
    BAD = """
        def orient(ax, ay, bx, by, cx, cy):
            det = (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
            if det > 0.0:
                return 1
            return -1
    """

    def test_raw_determinant_sign_flagged(self, tmp_path):
        findings = lint_snippet(tmp_path, "repro/delaunay/bad.py", self.BAD)
        assert "R1" in rules_hit(findings)

    def test_predicates_module_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "repro/geometry/predicates.py", self.BAD)
        assert "R1" not in rules_hit(findings)

    def test_magnitude_use_not_flagged(self, tmp_path):
        ok = """
            def area2(ax, ay, bx, by, cx, cy):
                return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
        """
        findings = lint_snippet(tmp_path, "repro/delaunay/ok.py", ok)
        assert "R1" not in rules_hit(findings)


class TestR2FloatEq:
    def test_float_literal_equality_flagged(self, tmp_path):
        bad = """
            def f(x):
                return x == 0.0
        """
        findings = lint_snippet(tmp_path, "repro/geometry/bad.py", bad)
        assert "R2" in rules_hit(findings)

    def test_out_of_scope_package_ignored(self, tmp_path):
        ok = """
            def f(x):
                return x == 0.0
        """
        findings = lint_snippet(tmp_path, "repro/runtime/ok.py", ok)
        assert "R2" not in rules_hit(findings)

    def test_int_equality_not_flagged(self, tmp_path):
        ok = """
            def f(x):
                return x == 0
        """
        findings = lint_snippet(tmp_path, "repro/geometry/ok.py", ok)
        assert "R2" not in rules_hit(findings)


class TestR3Rng:
    def test_stdlib_random_import_flagged(self, tmp_path):
        # The original kernel.py defect: hidden global RNG state shared
        # by concurrently running kernels.
        bad = """
            import random

            def jitter():
                return random.random()
        """
        findings = lint_snippet(tmp_path, "repro/delaunay/bad.py", bad)
        assert "R3" in rules_hit(findings)

    def test_unseeded_np_random_flagged(self, tmp_path):
        bad = """
            import numpy as np

            def shuffle(x):
                np.random.shuffle(x)
        """
        findings = lint_snippet(tmp_path, "repro/delaunay/bad2.py", bad)
        assert "R3" in rules_hit(findings)

    def test_seeded_generator_allowed(self, tmp_path):
        ok = """
            import numpy as np

            def rng(seed):
                return np.random.default_rng(seed)
        """
        findings = lint_snippet(tmp_path, "repro/delaunay/ok.py", ok)
        assert "R3" not in rules_hit(findings)


class TestR4SetIter:
    def test_set_iteration_flagged(self, tmp_path):
        bad = """
            def emit(out):
                pending = {3, 1, 2}
                for x in pending:
                    out.append(x)
        """
        findings = lint_snippet(tmp_path, "repro/core/bad.py", bad)
        assert "R4" in rules_hit(findings)

    def test_sorted_iteration_allowed(self, tmp_path):
        ok = """
            def emit(out):
                pending = {3, 1, 2}
                for x in sorted(pending):
                    out.append(x)
        """
        findings = lint_snippet(tmp_path, "repro/core/ok.py", ok)
        assert "R4" not in rules_hit(findings)


class TestR5WallClock:
    def test_perf_counter_flagged(self, tmp_path):
        bad = """
            import time

            def stamp():
                return time.perf_counter()
        """
        findings = lint_snippet(tmp_path, "repro/core/bad.py", bad)
        assert "R5" in rules_hit(findings)

    def test_counters_module_exempt(self, tmp_path):
        ok = """
            import time

            def stamp():
                return time.perf_counter()
        """
        findings = lint_snippet(tmp_path, "repro/runtime/counters.py", ok)
        assert "R5" not in rules_hit(findings)


class TestR6Lockset:
    def test_unlocked_guarded_access_flagged(self, tmp_path):
        bad = """
            class W:
                def peek(self):
                    return self._data[0]
        """
        findings = lint_snippet(tmp_path, "repro/runtime/bad.py", bad)
        assert "R6" in rules_hit(findings)

    def test_locked_access_allowed(self, tmp_path):
        ok = """
            class W:
                def peek(self):
                    with self._lock:
                        return self._data[0]
        """
        findings = lint_snippet(tmp_path, "repro/runtime/ok.py", ok)
        assert "R6" not in rules_hit(findings)

    def test_init_exempt(self, tmp_path):
        ok = """
            import numpy as np

            class W:
                def __init__(self, n):
                    self._data = np.zeros(n)
        """
        findings = lint_snippet(tmp_path, "repro/runtime/ok2.py", ok)
        assert "R6" not in rules_hit(findings)


class TestR7BufferCopy:
    def test_loop_over_buffer_in_to_mesh_flagged(self, tmp_path):
        bad = """
            def to_mesh(self):
                out = []
                for t in self.tri_v:
                    out.append(tuple(t))
                return out
        """
        findings = lint_snippet(tmp_path, "repro/delaunay/bad.py", bad)
        assert "R7" in rules_hit(findings)

    def test_comprehension_in_pack_flagged(self, tmp_path):
        bad = """
            def pack_mesh(mesh):
                return {"points": [tuple(p) for p in mesh.points]}
        """
        findings = lint_snippet(tmp_path, "repro/runtime/bad.py", bad)
        assert "R7" in rules_hit(findings)

    def test_non_buffer_loop_allowed(self, tmp_path):
        ok = """
            def to_mesh(self):
                segs = [(u, v) for u, v in self.constraints]
                return segs
        """
        findings = lint_snippet(tmp_path, "repro/delaunay/ok.py", ok)
        assert "R7" not in rules_hit(findings)

    def test_buffer_loop_outside_scope_allowed(self, tmp_path):
        ok = """
            def render(mesh):
                for p in mesh.points:
                    print(p)
        """
        findings = lint_snippet(tmp_path, "repro/io/ok.py", ok)
        assert "R7" not in rules_hit(findings)

    def test_seeded_fault_in_batch_path_fires(self, tmp_path):
        # Seeded regression: de-vectorising a cavity-engine batch helper
        # back into a per-triangle Python loop over the SoA buffers must
        # trip R7 (this is exactly the loop walk_batch/carve_batch
        # replaced with one predicate call per level).
        bad = """
            def carve_batch(tri, t0s, qxy):
                out = []
                for row in tri.tri_v:
                    out.append(int(row[0]))
                return out
        """
        findings = lint_snippet(tmp_path, "repro/delaunay/cavity.py", bad)
        assert "R7" in rules_hit(findings)

    def test_batch_prefix_comprehension_fires(self, tmp_path):
        bad = """
            def batch_locate(tri, qxy):
                return [p for p in tri.pts]
        """
        findings = lint_snippet(tmp_path, "repro/delaunay/cavity.py", bad)
        assert "R7" in rules_hit(findings)

    def test_smoothing_loop_over_points_flagged(self, tmp_path):
        # The smoothers are contractually vectorised: a per-vertex
        # Python loop over the point buffer inside laplacian_smooth
        # (or metric_smooth) is a de-vectorisation regression.
        bad = """
            def laplacian_smooth(mesh):
                out = []
                for p in mesh.points:
                    out.append((p[0], p[1]))
                return out
        """
        findings = lint_snippet(tmp_path, "repro/delaunay/smooth.py", bad)
        assert "R7" in rules_hit(findings)

    def test_metric_smooth_comprehension_flagged(self, tmp_path):
        bad = """
            def metric_smooth(mesh, field):
                return [tuple(p) for p in mesh.points]
        """
        findings = lint_snippet(tmp_path, "repro/delaunay/smooth.py", bad)
        assert "R7" in rules_hit(findings)

    def test_batch_loop_over_cavity_sets_allowed(self, tmp_path):
        # Per-candidate control flow over cavity *sets* (not buffers) is
        # the legitimate scalar part of the batch path.
        ok = """
            def insert_batch(tri, cavities):
                claimed = set()
                for cav in cavities:
                    claimed |= cav
                return claimed
        """
        findings = lint_snippet(tmp_path, "repro/delaunay/cavity.py", ok)
        assert "R7" not in rules_hit(findings)


class TestPragmas:
    def test_justified_pragma_suppresses(self, tmp_path):
        src = """
            import random  # lint: disable=R3 -- fixture needs the stdlib API
        """
        findings = lint_snippet(tmp_path, "repro/delaunay/x.py", src)
        assert rules_hit(findings) == set()

    def test_bare_pragma_is_p0(self, tmp_path):
        src = """
            import random  # lint: disable=R3
        """
        findings = lint_snippet(tmp_path, "repro/delaunay/x.py", src)
        assert "P0" in rules_hit(findings)

    def test_unknown_rule_pragma_is_p0(self, tmp_path):
        src = """
            x = 1  # lint: disable=R99 -- no such rule
        """
        findings = lint_snippet(tmp_path, "repro/delaunay/x.py", src)
        assert "P0" in rules_hit(findings)

    def test_stale_pragma_is_p1(self, tmp_path):
        src = """
            x = 1  # lint: disable=R3 -- nothing here needs this
        """
        findings = lint_snippet(tmp_path, "repro/delaunay/x.py", src)
        assert "P1" in rules_hit(findings)

    def test_pragma_in_string_literal_ignored(self, tmp_path):
        # Only real comment tokens count; documentation that *mentions*
        # the pragma syntax must not suppress or go stale.
        src = '''
            DOC = "# lint: disable=R3 -- this is data, not a pragma"
        '''
        findings = lint_snippet(tmp_path, "repro/delaunay/x.py", src)
        assert rules_hit(findings) == set()

    def test_parse_pragmas_multi_rule(self):
        src = "x = 1  # lint: disable=R2, R4 -- both needed\n"
        pragmas = parse_pragmas(src)
        assert pragmas[1].rules == ("R2", "R4")
        assert pragmas[1].justification
        assert not pragmas[1].bare
