"""Unit tests for the CFG builder and the gen/kill solver.

These pin the graph shapes the dataflow rules depend on: exception
edges land on handlers, finally suites intercept every leaving route,
loops have back edges, and dominators match hand-computed sets.
"""

import ast
import textwrap

from repro.lint import dataflow
from repro.lint.cfg import EXC, FLOW, build_cfg


def cfg_of(source, name=None):
    tree = ast.parse(textwrap.dedent(source))
    if name is None:
        return build_cfg(tree)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node.name == name:
            return build_cfg(node)
    raise AssertionError(f"no function {name}")


def node_at(cfg, lineno):
    for n in cfg.stmt_nodes():
        if getattr(n.stmt, "lineno", None) == lineno:
            return n
    raise AssertionError(f"no node at line {lineno}")


def edges(cfg, src):
    return {(dst, kind) for dst, kind in cfg.nodes[src].succ}


class TestStraightLine:
    def test_linear_flow_reaches_exit(self):
        cfg = cfg_of("""
            def f():
                a = 1
                b = a
        """, "f")
        n_a = node_at(cfg, 3)
        n_b = node_at(cfg, 4)
        assert (n_b.idx, FLOW) in edges(cfg, n_a.idx)
        assert (cfg.exit, FLOW) in edges(cfg, n_b.idx)

    def test_pure_assignment_has_no_exc_edge(self):
        cfg = cfg_of("""
            def f():
                a = 1
        """, "f")
        kinds = {k for _dst, k in cfg.nodes[node_at(cfg, 3).idx].succ}
        assert kinds == {FLOW}

    def test_call_statement_has_raise_edge(self):
        cfg = cfg_of("""
            def f():
                g()
        """, "f")
        assert (cfg.raise_exit, EXC) in edges(cfg, node_at(cfg, 3).idx)

    def test_return_routes_to_exit(self):
        cfg = cfg_of("""
            def f():
                return 1
                a = 2
        """, "f")
        assert (cfg.exit, FLOW) in edges(cfg, node_at(cfg, 3).idx)
        # the dead statement gets no inbound flow edge
        assert not cfg.nodes[node_at(cfg, 4).idx].pred


class TestBranchesAndLoops:
    def test_if_without_else_falls_through(self):
        cfg = cfg_of("""
            def f(c):
                if c:
                    a = 1
                b = 2
        """, "f")
        n_if, n_a, n_b = (node_at(cfg, ln) for ln in (3, 4, 5))
        assert (n_a.idx, FLOW) in edges(cfg, n_if.idx)
        assert (n_b.idx, FLOW) in edges(cfg, n_if.idx)
        assert (n_b.idx, FLOW) in edges(cfg, n_a.idx)

    def test_while_back_edge_and_break(self):
        cfg = cfg_of("""
            def f():
                while True:
                    if g():
                        break
                    h()
        """, "f")
        n_while = node_at(cfg, 3)
        n_break = node_at(cfg, 5)
        n_h = node_at(cfg, 6)
        assert (n_while.idx, FLOW) in edges(cfg, n_h.idx)
        assert (cfg.exit, FLOW) in edges(cfg, n_break.idx)
        # while True: no fall-through exit from the header
        assert (cfg.exit, FLOW) not in edges(cfg, n_while.idx)

    def test_for_loop_exit_via_header(self):
        cfg = cfg_of("""
            def f(xs):
                for x in xs:
                    g(x)
                done()
        """, "f")
        n_for = node_at(cfg, 3)
        n_done = node_at(cfg, 5)
        assert (n_done.idx, FLOW) in edges(cfg, n_for.idx)


class TestExceptions:
    def test_exception_lands_on_handler(self):
        cfg = cfg_of("""
            def f():
                try:
                    g()
                except ValueError:
                    h()
        """, "f")
        n_g = node_at(cfg, 4)
        n_h = node_at(cfg, 6)
        assert (n_h.idx, EXC) in edges(cfg, n_g.idx)
        # non-catch-all: can still escape the function
        assert (cfg.raise_exit, EXC) in edges(cfg, n_g.idx)

    def test_catch_all_suppresses_escape(self):
        cfg = cfg_of("""
            def f():
                try:
                    g()
                except BaseException:
                    h()
        """, "f")
        n_g = node_at(cfg, 4)
        assert (cfg.raise_exit, EXC) not in edges(cfg, n_g.idx)

    def test_finally_intercepts_exception_and_normal_paths(self):
        cfg = cfg_of("""
            def f():
                try:
                    g()
                finally:
                    cleanup()
        """, "f")
        n_g = node_at(cfg, 4)
        n_fin = node_at(cfg, 6)
        assert (n_fin.idx, EXC) in edges(cfg, n_g.idx)
        assert (n_fin.idx, FLOW) in edges(cfg, n_g.idx)
        # finally forwards the escaping exception outward
        assert (cfg.raise_exit, EXC) in edges(cfg, n_fin.idx)
        assert (cfg.exit, FLOW) in edges(cfg, n_fin.idx)

    def test_return_in_try_routes_through_finally(self):
        cfg = cfg_of("""
            def f():
                try:
                    return g()
                finally:
                    cleanup()
        """, "f")
        n_ret = node_at(cfg, 4)
        n_fin = node_at(cfg, 6)
        assert (n_fin.idx, FLOW) in edges(cfg, n_ret.idx)
        assert (cfg.exit, FLOW) in edges(cfg, n_fin.idx)


class TestDominators:
    def test_fence_dominates_consumption(self):
        cfg = cfg_of("""
            def f(msg):
                epoch = msg[0]
                if epoch != current():
                    return None
                consume(msg)
                return True
        """, "f")
        dom = cfg.dominators()
        n_if = node_at(cfg, 4)
        n_consume = node_at(cfg, 6)
        assert n_if.idx in dom[n_consume.idx]

    def test_branch_does_not_dominate_join(self):
        cfg = cfg_of("""
            def f(c):
                if c:
                    a = 1
                else:
                    a = 2
                join()
        """, "f")
        dom = cfg.dominators()
        n_a1 = node_at(cfg, 4)
        n_join = node_at(cfg, 7)
        assert n_a1.idx not in dom[n_join.idx]
        assert node_at(cfg, 3).idx in dom[n_join.idx]


class TestSolver:
    def test_fact_reaches_exit_without_kill(self):
        cfg = cfg_of("""
            def f():
                w = acquire()
                other()
        """, "f")
        n_acq = node_at(cfg, 3)
        in_sets = dataflow.solve(cfg, {n_acq.idx: {0}}, {})
        live_exit, live_raise = dataflow.live_at(cfg, in_sets)
        assert 0 in live_exit
        assert 0 in live_raise  # other() can raise with the fact live

    def test_kill_on_all_paths_clears_exit(self):
        cfg = cfg_of("""
            def f():
                w = acquire()
                release(w)
        """, "f")
        n_acq = node_at(cfg, 3)
        n_rel = node_at(cfg, 4)
        in_sets = dataflow.solve(cfg, {n_acq.idx: {0}}, {n_rel.idx: {0}})
        live_exit, live_raise = dataflow.live_at(cfg, in_sets)
        assert 0 not in live_exit
        # release is atomic: its own raise edge does not leak the fact
        assert 0 not in live_raise

    def test_exc_edge_drops_gen_but_not_prior_facts(self):
        cfg = cfg_of("""
            def f():
                w = acquire()
        """, "f")
        n_acq = node_at(cfg, 3)
        in_sets = dataflow.solve(cfg, {n_acq.idx: {0}}, {})
        # the acquire's own failure produced nothing: not live at RAISE
        assert 0 not in in_sets[cfg.raise_exit]
        assert 0 in in_sets[cfg.exit]
