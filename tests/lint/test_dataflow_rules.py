"""Seeded-fault tests for the dataflow rules (R8–R12).

Each bad snippet injects the exact defect class its rule guards —
an shm leak on a raise edge, a blocking recv in an async handler, a
float32 buffer literal, an un-fenced pool-result read, an unpaired
counter sample — and the test asserts the finding lands with the right
rule id, file and line.  Each good twin is the PR 6–7 production shape
and must stay finding-free.
"""

import json
import subprocess
import sys
import textwrap

from repro.lint import run_lint
from repro.lint.engine import LintRunner
from repro.lint.rules import ALL_RULES, rule_ids
from repro.lint.sarif import format_sarif


def lint_snippet(tmp_path, relpath, source):
    f = tmp_path / relpath
    f.parent.mkdir(parents=True, exist_ok=True)
    f.write_text(textwrap.dedent(source))
    findings, n_files = run_lint([str(f)])
    assert n_files == 1
    return findings


def only(findings, rule):
    return [f for f in findings if f.rule == rule]


def rules_hit(findings):
    return {f.rule for f in findings}


# ----------------------------------------------------------------------
# R8 — shm/wire lifetime
# ----------------------------------------------------------------------
class TestR8Lifetime:
    LEAK_ON_RAISE = """
        from repro.runtime import serde

        def ship(result_q, result, sink):
            wire = serde.buffers_to_wire(result)
            snapshot = sink.snapshot()
            result_q.put((wire, snapshot))
    """

    def test_leak_on_raise_edge_flagged_at_acquire_line(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "repro/runtime/bad_ship.py", self.LEAK_ON_RAISE)
        hits = only(findings, "R8")
        assert len(hits) == 1
        assert hits[0].line == 5  # the buffers_to_wire call
        assert "exception path" in hits[0].message

    def test_guarded_error_edge_is_clean(self, tmp_path):
        good = """
            from repro.runtime import serde

            def ship(result_q, result, sink):
                wire = serde.buffers_to_wire(result)
                try:
                    snapshot = sink.snapshot()
                    result_q.put((wire, snapshot))
                except BaseException:
                    serde.discard_wire(wire)
                    raise
        """
        findings = lint_snippet(tmp_path, "repro/runtime/good_ship.py", good)
        assert not only(findings, "R8")

    def test_leak_on_early_return_path(self, tmp_path):
        bad = """
            from repro.runtime import serde

            def maybe(buffers, flag):
                name, meta = serde.buffers_to_shm(buffers)
                if flag:
                    return None
                return serde.buffers_from_shm(name, meta)
        """
        findings = lint_snippet(tmp_path, "repro/runtime/bad_ret.py", bad)
        hits = only(findings, "R8")
        assert len(hits) == 1
        assert hits[0].line == 5
        assert "normal exit path" in hits[0].message

    def test_returning_the_value_is_clean(self, tmp_path):
        good = """
            from repro.runtime import serde

            def pack(buffers):
                wire = serde.buffers_to_wire(buffers)
                return wire
        """
        findings = lint_snippet(tmp_path, "repro/runtime/good_ret.py", good)
        assert not only(findings, "R8")

    def test_release_in_finally_covers_all_paths(self, tmp_path):
        good = """
            from repro.runtime import serde

            def robust(buffers, sink):
                wire = serde.buffers_to_wire(buffers)
                try:
                    sink.consume()
                finally:
                    serde.discard_wire(wire)
        """
        findings = lint_snippet(tmp_path, "repro/runtime/good_fin.py", good)
        assert not only(findings, "R8")

    def test_bare_expression_acquire_flagged(self, tmp_path):
        bad = """
            from repro.runtime import serde

            def drop(buffers):
                serde.buffers_to_shm(buffers)
        """
        findings = lint_snippet(tmp_path, "repro/runtime/bad_drop.py", bad)
        hits = only(findings, "R8")
        assert len(hits) == 1
        assert "dropped on the spot" in hits[0].message

    def test_shipping_via_queue_is_clean(self, tmp_path):
        good = """
            from repro.runtime import serde

            def ship(result_q, result):
                wire = serde.buffers_to_wire(result)
                result_q.put(("ok", wire))
        """
        findings = lint_snippet(tmp_path, "repro/runtime/good_q.py", good)
        assert not only(findings, "R8")

    def test_serde_module_itself_exempt(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "repro/runtime/serde.py", self.LEAK_ON_RAISE)
        assert not only(findings, "R8")


# ----------------------------------------------------------------------
# R9 — blocking calls in async bodies
# ----------------------------------------------------------------------
class TestR9AsyncBlocking:
    def test_blocking_recv_in_async_handler(self, tmp_path):
        bad = """
            async def handle(conn):
                payload = conn.recv(4096)
                return payload
        """
        findings = lint_snippet(tmp_path, "repro/runtime/bad_async.py", bad)
        hits = only(findings, "R9")
        assert len(hits) == 1
        assert hits[0].line == 3
        assert "recv" in hits[0].message

    def test_time_sleep_and_open_flagged(self, tmp_path):
        bad = """
            import time

            async def handler(path):
                time.sleep(0.5)
                with open(path) as fh:
                    return fh.read()
        """
        findings = lint_snippet(tmp_path, "repro/runtime/bad_sleep.py", bad)
        assert len(only(findings, "R9")) == 2

    def test_offloaded_shape_is_clean(self, tmp_path):
        good = """
            async def handler(loop, pool, items):
                return await loop.run_in_executor(
                    None, pool.map_workitems, items)
        """
        findings = lint_snippet(tmp_path, "repro/runtime/good_async.py", good)
        assert not only(findings, "R9")

    def test_awaited_recv_is_async_library_and_clean(self, tmp_path):
        good = """
            async def handler(ws):
                return await ws.recv()
        """
        findings = lint_snippet(tmp_path, "repro/runtime/good_await.py", good)
        assert not only(findings, "R9")

    def test_sync_function_not_in_scope(self, tmp_path):
        good = """
            def pump(conn):
                return conn.recv(4096)
        """
        findings = lint_snippet(tmp_path, "repro/runtime/good_sync.py", good)
        assert not only(findings, "R9")


# ----------------------------------------------------------------------
# R10 — serde buffer contract
# ----------------------------------------------------------------------
class TestR10SerdeContract:
    def test_float32_buffer_literal_flagged(self, tmp_path):
        bad = """
            import numpy as np

            def pack_mesh(pts):
                return {"pts": np.asarray(pts, dtype=np.float32)}
        """
        findings = lint_snippet(tmp_path, "repro/runtime/bad_pack.py", bad)
        hits = only(findings, "R10")
        assert len(hits) == 1
        assert hits[0].line == 5
        assert "float32" in hits[0].message

    def test_astype_narrowing_flagged(self, tmp_path):
        bad = """
            def unpack_mesh(buffers):
                return buffers["pts"].astype("float32")
        """
        findings = lint_snippet(tmp_path, "repro/runtime/bad_astype.py", bad)
        assert len(only(findings, "R10")) == 1

    def test_contract_dtypes_clean(self, tmp_path):
        good = """
            import numpy as np

            def pack_mesh(pts, tris):
                return {
                    "pts": np.asarray(pts, dtype=np.float64),
                    "tri_v": np.asarray(tris, dtype=np.int32),
                    "flags": np.zeros(4, dtype=np.uint8),
                }
        """
        findings = lint_snippet(tmp_path, "repro/runtime/good_pack.py", good)
        assert not only(findings, "R10")

    def test_bad_key_naming_flagged(self, tmp_path):
        bad = """
            import numpy as np

            def pack_mesh(pts):
                return {"Pts-XY": np.asarray(pts, dtype=np.float64)}
        """
        findings = lint_snippet(tmp_path, "repro/runtime/bad_key.py", bad)
        hits = only(findings, "R10")
        assert len(hits) == 1
        assert "snake_case" in hits[0].message

    def test_outside_factory_functions_not_in_scope(self, tmp_path):
        good = """
            import numpy as np

            def render_preview(pts):
                return np.asarray(pts, dtype=np.float32)
        """
        findings = lint_snippet(tmp_path, "repro/runtime/good_other.py", good)
        assert not only(findings, "R10")


# ----------------------------------------------------------------------
# R11 — epoch fence + protocol orderings
# ----------------------------------------------------------------------
class TestR11EpochFence:
    UNFENCED = """
        from repro.runtime import serde

        class PoolStream:
            def __init__(self):
                self._epoch = 0
                self._out = {}

            def _handle(self, msg):
                idx, wire = msg[3], msg[4]
                self._out[idx] = serde.wire_to_buffers(wire)
    """

    def test_unfenced_pool_result_read_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "repro/runtime/bad_fence.py", self.UNFENCED)
        hits = only(findings, "R11")
        assert len(hits) == 1
        assert hits[0].line == 11
        assert "epoch fence" in hits[0].message

    def test_fenced_read_is_clean(self, tmp_path):
        good = """
            from repro.runtime import serde

            class PoolStream:
                def __init__(self):
                    self._epoch = 0
                    self._out = {}

                def _handle(self, msg):
                    epoch, idx, wire = msg[2], msg[3], msg[4]
                    if epoch != self._epoch:
                        serde.discard_wire(wire)
                        return
                    self._out[idx] = serde.wire_to_buffers(wire)
        """
        findings = lint_snippet(tmp_path, "repro/runtime/good_fence.py", good)
        assert not only(findings, "R11")

    def test_classes_without_epochs_exempt(self, tmp_path):
        good = """
            from repro.runtime import serde

            class ForkPerCall:
                def collect(self, name, meta):
                    return serde.buffers_from_shm(name, meta)
        """
        findings = lint_snippet(tmp_path, "repro/runtime/good_legacy.py", good)
        assert not only(findings, "R11")

    def test_shutdown_before_abort_flagged(self, tmp_path):
        bad = """
            async def shutdown(self):
                stop = getattr(self._backend, "shutdown_pool", None)
                if stop is not None:
                    stop()
                quiesce = getattr(self._backend, "request_abort", None)
                if quiesce is not None:
                    quiesce()
        """
        findings = lint_snippet(tmp_path, "repro/runtime/bad_order.py", bad)
        hits = only(findings, "R11")
        assert len(hits) == 1
        assert "abort" in hits[0].message

    def test_bind_before_warm_flagged(self, tmp_path):
        bad = """
            import asyncio

            async def start(self, path):
                self._server = await asyncio.start_unix_server(
                    self._on_conn, path=path)
                warm = getattr(self._backend, "warm_pool", None)
                if warm is not None:
                    warm(self.n_ranks)
        """
        findings = lint_snippet(tmp_path, "repro/runtime/bad_warm.py", bad)
        hits = only(findings, "R11")
        assert len(hits) == 1
        assert "fd" in hits[0].message

    def test_correct_orderings_clean(self, tmp_path):
        good = """
            import asyncio

            async def start(self, path):
                warm = getattr(self._backend, "warm_pool", None)
                if warm is not None:
                    warm(self.n_ranks)
                self._server = await asyncio.start_unix_server(
                    self._on_conn, path=path)

            async def shutdown(self):
                quiesce = getattr(self._backend, "request_abort", None)
                if quiesce is not None:
                    quiesce()
                stop = getattr(self._backend, "shutdown_pool", None)
                if stop is not None:
                    stop()
        """
        findings = lint_snippet(tmp_path, "repro/runtime/good_order.py", good)
        assert not only(findings, "R11")


# ----------------------------------------------------------------------
# R12 — paired counter samples
# ----------------------------------------------------------------------
class TestR12CounterPairs:
    def test_unpaired_sample_flagged(self, tmp_path):
        bad = """
            def transport(sink, nbytes):
                sink.observe("serde.shm_nbytes", float(nbytes))
        """
        findings = lint_snippet(tmp_path, "repro/runtime/bad_pair.py", bad)
        hits = only(findings, "R12")
        assert len(hits) == 1
        assert hits[0].line == 3
        assert "serde.shm_seconds" in hits[0].message

    def test_paired_samples_clean(self, tmp_path):
        good = """
            def transport(sink, nbytes, seconds):
                sink.observe("serde.shm_nbytes", float(nbytes))
                sink.observe("serde.shm_seconds", seconds)
        """
        findings = lint_snippet(tmp_path, "repro/runtime/good_pair.py", good)
        assert not only(findings, "R12")

    def test_unrelated_streams_not_paired(self, tmp_path):
        good = """
            def record(sink, depth):
                sink.observe("kernel.cavity_depth", depth)
        """
        findings = lint_snippet(tmp_path, "repro/runtime/good_single.py", good)
        assert not only(findings, "R12")


# ----------------------------------------------------------------------
# Engine features: severity map, baseline, SARIF, exit codes, pragmas
# ----------------------------------------------------------------------
class TestSeverityMap:
    BAD_ASYNC = """
        async def handler(conn):
            return conn.recv(4096)
    """

    def test_tests_tree_exempt_from_async_rule(self, tmp_path):
        f = tmp_path / "tests" / "helper_async.py"
        f.parent.mkdir(parents=True)
        f.write_text(textwrap.dedent(self.BAD_ASYNC))
        findings, _ = run_lint([str(f)])
        assert "R9" not in rules_hit(findings)

    def test_same_code_fails_outside_tests_tree(self, tmp_path):
        f = tmp_path / "repro" / "runtime" / "helper_async.py"
        f.parent.mkdir(parents=True)
        f.write_text(textwrap.dedent(self.BAD_ASYNC))
        findings, _ = run_lint([str(f)])
        assert "R9" in rules_hit(findings)

    def test_warn_severity_does_not_gate(self, tmp_path):
        runner = LintRunner(ALL_RULES,
                            severity_map={"pkg": {"R9": "warn"}})
        f = tmp_path / "pkg" / "helper_async.py"
        f.parent.mkdir(parents=True)
        f.write_text(textwrap.dedent(self.BAD_ASYNC))
        findings = runner.run_file(f)
        assert [x.severity for x in findings if x.rule == "R9"] == ["warn"]


class TestCLI:
    def run_cli(self, *args):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", *args],
            capture_output=True, text=True)
        return proc

    def test_exit_zero_on_clean_file(self, tmp_path):
        f = tmp_path / "ok.py"
        f.write_text("x = 1\n")
        assert self.run_cli(str(f)).returncode == 0

    def test_exit_one_on_findings(self, tmp_path):
        f = tmp_path / "repro" / "runtime" / "bad.py"
        f.parent.mkdir(parents=True)
        f.write_text(textwrap.dedent(TestSeverityMap.BAD_ASYNC))
        assert self.run_cli(str(f)).returncode == 1

    def test_exit_two_on_unparseable(self, tmp_path):
        f = tmp_path / "broken.py"
        f.write_text("def broken(:\n")
        assert self.run_cli(str(f)).returncode == 2

    def test_exit_two_on_unknown_select(self):
        assert self.run_cli("--select", "NOPE", ".").returncode == 2

    def test_findings_sorted_for_stable_diffs(self, tmp_path):
        pkg = tmp_path / "repro" / "runtime"
        pkg.mkdir(parents=True)
        (pkg / "b_bad.py").write_text(
            textwrap.dedent(TestSeverityMap.BAD_ASYNC))
        (pkg / "a_bad.py").write_text(
            textwrap.dedent(TestSeverityMap.BAD_ASYNC))
        out = self.run_cli(str(tmp_path), "--format", "json")
        data = json.loads(out.stdout)
        locs = [(f["path"], f["line"], f["rule"])
                for f in data["findings"]]
        assert locs == sorted(locs)

    def test_baseline_roundtrip(self, tmp_path):
        f = tmp_path / "repro" / "runtime" / "bad.py"
        f.parent.mkdir(parents=True)
        f.write_text(textwrap.dedent(TestSeverityMap.BAD_ASYNC))
        base = tmp_path / "baseline.json"
        wrote = self.run_cli(str(f), "--write-baseline", str(base))
        assert wrote.returncode == 0
        data = json.loads(base.read_text())
        assert data["entries"], "baseline must record the finding"
        # With the baseline applied the same tree is green.
        again = self.run_cli(str(f), "--baseline", str(base))
        assert again.returncode == 0
        assert "baselined" in again.stdout

    def test_sarif_output_shape(self, tmp_path):
        f = tmp_path / "repro" / "runtime" / "bad.py"
        f.parent.mkdir(parents=True)
        f.write_text(textwrap.dedent(TestSeverityMap.BAD_ASYNC))
        out = self.run_cli(str(f), "--format", "sarif")
        doc = json.loads(out.stdout)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids_in_doc = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert set(rule_ids()) <= rule_ids_in_doc
        res = run["results"][0]
        assert res["ruleId"] == "R9"
        assert res["level"] == "error"
        loc = res["locations"][0]["physicalLocation"]
        assert loc["region"]["startLine"] == 3


class TestPragmaCatalog:
    def test_select_does_not_misread_known_pragmas(self, tmp_path):
        # A pragma naming an unselected-but-real rule is neither
        # "unknown" (P0) nor "stale" (P1) when that rule didn't run.
        src = textwrap.dedent("""
            import numpy as np

            def f(x):
                return np.random.shuffle(x)  # lint: disable=R3 -- test shim
        """)
        f = tmp_path / "repro" / "runtime" / "shim.py"
        f.parent.mkdir(parents=True)
        f.write_text(src)
        selected = [r for r in ALL_RULES if r.id == "R4"]
        runner = LintRunner(selected, catalog=rule_ids())
        findings = runner.run_file(f)
        assert "P0" not in rules_hit(findings)
        assert "P1" not in rules_hit(findings)

    def test_internal_rule_crash_becomes_e9(self, tmp_path):
        class Kaboom:
            id = "RX"
            title = "explodes"
            invariant = "none"

            def applies(self, ctx):
                return True

            def check(self, ctx):
                raise RuntimeError("boom")

        f = tmp_path / "ok.py"
        f.write_text("x = 1\n")
        findings = LintRunner([Kaboom()]).run_file(f)
        assert [x.rule for x in findings] == ["E9"]
        assert "RX" in findings[0].message


class TestSarifFormatter:
    def test_empty_findings_still_valid(self):
        doc = json.loads(format_sarif([], ALL_RULES))
        assert doc["runs"][0]["results"] == []
