#!/usr/bin/env python
"""Strong-scaling study on the simulated cluster (paper Figs. 11-12).

Measures real per-subdomain meshing costs from a decomposed/decoupled
run, then replays them on the discrete-event cluster simulator (alpha-beta
Infiniband network model, tree distribution, RMA-window work stealing)
for 1..256 ranks, printing the speedup/efficiency series of Figs. 11-12.

Run:  python examples/scaling_study.py
"""

import time

import numpy as np

from repro import BoundaryLayerConfig, MeshConfig, PSLG, generate_mesh, naca0012
from repro.core.decouple import estimate_triangles
from repro.runtime.simulator import NetworkModel, SimConfig, SimTask, strong_scaling
from repro.sizing.functions import GradedDistanceSizing


def measure_subdomain_costs() -> tuple[list[SimTask], float]:
    """Mesh a real case and time every subdomain refinement."""
    from repro.core.decouple import refine_subdomain

    pslg = PSLG.from_loops([naca0012(81)])
    config = MeshConfig(
        bl=BoundaryLayerConfig(first_spacing=1e-3, growth_ratio=1.3,
                               max_layers=30),
        farfield_chords=30.0,
        target_subdomains=48,
    )
    result = generate_mesh(pslg, config)
    sizing = GradedDistanceSizing(
        np.vstack(result.bl.outer_borders),
        h0=result.stats["h0"], grading=config.grading,
        h_max=config.h_max_chords * result.stats["chord"],
    )
    tasks = []
    t_total = result.timings["refinement"] + result.timings["boundary_layer"]
    for sub, mesh in zip(result.subdomains, result.inviscid_meshes[0:]):
        t0 = time.perf_counter()
        refine_subdomain(sub, sizing)
        dt = time.perf_counter() - t0
        # Payload: border vertices only (inviscid subdomains ship borders).
        tasks.append(SimTask(cost=dt, size_bytes=16.0 * len(sub.ring)))
    # The BL subdomains: model as tasks proportional to their points.
    bl_cost = result.timings["boundary_layer"]
    n_bl_tasks = max(8, len(tasks) // 4)
    for _ in range(n_bl_tasks):
        tasks.append(SimTask(cost=bl_cost / n_bl_tasks, size_bytes=64e3))
    return tasks, t_total


def main() -> None:
    print("measuring real per-subdomain costs ...")
    tasks, t_seq = measure_subdomain_costs()
    total = sum(t.cost for t in tasks)
    print(f"  {len(tasks)} tasks, total work {total:.2f}s "
          f"(costs from the live kernel)")

    # Scale the task population up to cluster size (the paper's fixed mesh
    # of 1.7e8 triangles is ~3 orders larger than a laptop run): replicate
    # the measured cost distribution.
    rng = np.random.default_rng(0)
    factor = 8192 // len(tasks) + 1
    big = [
        SimTask(cost=float(t.cost * rng.uniform(0.8, 1.25)),
                size_bytes=t.size_bytes)
        for _ in range(factor) for t in tasks
    ]
    total = sum(t.cost for t in big)
    print(f"  replicated to {len(big)} tasks, total {total:.1f}s\n")

    cfg = SimConfig(
        network=NetworkModel(latency=2e-6, bandwidth=7e9),  # 4X FDR IB
        serial_setup=0.002 * total,   # input read + initial quadrants
        per_task_overhead=1e-4,
    )
    table = strong_scaling(
        big, [1, 2, 4, 8, 16, 32, 64, 128, 256], cfg,
        t_sequential=total / 1.02,   # best sequential tool does 2% less work
    )
    print(f"{'ranks':>6} {'speedup':>9} {'efficiency':>11} {'steals':>7}")
    for p, row in table.items():
        print(f"{p:>6} {row['speedup']:>9.1f} {row['efficiency']:>10.0%} "
              f"{int(row['steals']):>7}")
    print("\npaper (Figs. 11-12): speedup ~102 @128, ~180 @256; "
          "efficiency ~80% @128, ~70% @256")


if __name__ == "__main__":
    main()
