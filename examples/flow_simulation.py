#!/usr/bin/env python
"""Flow solution and convergence study on generated meshes (Figs. 14-16).

1. Generates the hybrid anisotropic mesh for a NACA 0012 at alpha = 5 deg
   and solves potential flow (M_inf = 0.3): pressure pattern, stagnation
   points, lift — the qualitative content of paper Figs. 14-15.
2. Builds an *isotropic* mesh of the same geometry/sizing (the paper's
   Triangle -q comparison mesh) and compares element counts and the
   iterations an identical solver needs to converge to 1e-12 — Fig. 16.

Run:  python examples/flow_simulation.py
"""

import numpy as np

from repro import (
    BoundaryLayerConfig,
    MeshConfig,
    PSLG,
    generate_mesh,
    naca0012,
    refine_pslg,
)
from repro.solver.convergence import pcg
from repro.solver.fem import apply_dirichlet, assemble_stiffness, boundary_nodes
from repro.solver.flow import solve_potential_flow


def flow_study() -> None:
    print("=== potential flow on the hybrid anisotropic mesh ===")
    pslg = PSLG.from_loops([naca0012(81)])
    config = MeshConfig(
        bl=BoundaryLayerConfig(first_spacing=2e-3, growth_ratio=1.35,
                               max_layers=20),
        farfield_chords=10.0,
        target_subdomains=12,
    )
    result = generate_mesh(pslg, config)
    mesh = result.mesh
    body = pslg.loop_points(pslg.loops[0])
    res = solve_potential_flow(mesh, [body], u_inf=1.0, alpha_deg=5.0,
                               mach_inf=0.3)

    cents = mesh.centroids()
    near = np.abs(cents[:, 0] - 0.4) < 0.3
    above = near & (cents[:, 1] > 0.03) & (cents[:, 1] < 0.25)
    below = near & (cents[:, 1] < -0.03) & (cents[:, 1] > -0.25)
    print(f"mesh: {mesh.n_triangles} triangles")
    print(f"Cl              : {res.lift_coefficient():+.3f} "
          "(thin airfoil theory ~ +0.54 at 5 deg)")
    print(f"Cp below / above: {res.cp[below].mean():+.3f} / "
          f"{res.cp[above].mean():+.3f}  (high pressure underneath -> lift)")
    print(f"peak local Mach : {res.mach.max():.3f} (M_inf = 0.3, "
          "accelerated over the upper surface)")
    stag = res.stagnation_elements(frac=0.2)
    le = cents[stag][np.argmin(np.hypot(*(cents[stag] - [0, 0]).T))]
    print(f"stagnation point near leading edge at ({le[0]:+.3f}, {le[1]:+.3f})")


def convergence_study() -> None:
    print("\n=== Fig. 16: anisotropic vs isotropic convergence ===")
    pslg = PSLG.from_loops([naca0012(61)])
    first_spacing = 1e-3
    config = MeshConfig(
        bl=BoundaryLayerConfig(first_spacing=first_spacing,
                               growth_ratio=1.35, max_layers=24),
        farfield_chords=6.0,
        target_subdomains=8,
    )
    aniso = generate_mesh(pslg, config).mesh

    # Isotropic comparison mesh: same surface distribution and the same
    # gradation toward the far field, but the *wall-normal* resolution the
    # BL provides anisotropically must now be met with isotropic triangles
    # of edge length = the first-layer spacing.  This is exactly why the
    # paper's isotropic mesh carries 14x the elements.
    af = naca0012(61)
    half = 6.0
    box = np.array([(0.5 - half, -half), (0.5 + half, -half),
                    (0.5 + half, half), (0.5 - half, half)])
    pts = np.vstack([af, box])
    n = len(af)
    segs = np.array([(i, (i + 1) % n) for i in range(n)]
                    + [(n + i, n + (i + 1) % 4) for i in range(4)])
    from repro.sizing.functions import GradedDistanceSizing

    iso_sizing = GradedDistanceSizing(af, h0=first_spacing, grading=0.35,
                                      h_max=4.0)
    iso = refine_pslg(pts, segs, holes=[(0.5, 0.0)],
                      area_fn=iso_sizing.area_at,
                      min_edge_floor=first_spacing / 8)

    def solve(mesh, label):
        # Conservation of mass for irrotational incompressible flow IS the
        # streamfunction Laplace problem — the paper's Fig. 16 quantity.
        K = assemble_stiffness(mesh)
        bn = boundary_nodes(mesh)
        g = mesh.points[:, 1]  # freestream streamfunction Dirichlet data
        A, b = apply_dirichlet(K, np.zeros(mesh.n_points), bn, g[bn])
        r = pcg(A, b, tol=1e-12, max_iter=200_000)
        work = r.iterations * A.nnz
        print(f"  {label:<12} {mesh.n_triangles:>8} triangles -> "
              f"{r.iterations:>6} iterations to 1e-12, "
              f"work ~{work:.2e} flops")
        return r, work

    (ra, wa) = solve(aniso, "anisotropic")
    (ri, wi) = solve(iso, "isotropic")
    print(f"  element ratio  : {iso.n_triangles / aniso.n_triangles:.1f}x "
          "(paper: 14.8x)")
    print(f"  iteration ratio: {ri.iterations / max(ra.iterations, 1):.2f}x "
          "(paper: ~2x)")
    print(f"  work ratio     : {wi / max(wa, 1):.1f}x "
          "(total effort to drive the residual to 1e-12)")


if __name__ == "__main__":
    flow_study()
    convergence_study()
