#!/usr/bin/env python
"""Multi-element high-lift meshing: the paper's 30p30n scenario (Fig. 13).

Meshes a synthetic three-element configuration (slat + main + flap) and
reports the special-case machinery the complex geometry exercises:

* cusp and large-angle fans at the trailing edges,
* ray self-intersections resolved inside the coves,
* multi-element intersections resolved in the slat/main and main/flap gaps,
* boundary-layer height variation (the smooth isotropic hand-off, Fig. 5).

Run:  python examples/highlift_multi_element.py
"""

import math
from pathlib import Path

import numpy as np

from repro import BoundaryLayerConfig, MeshConfig, generate_mesh
from repro.core.normals import VertexKind, loop_surface_vertices
from repro.geometry.airfoils import three_element_airfoil
from repro.io.meshio import write_mesh_ascii


def main() -> None:
    pslg = three_element_airfoil(n_points=81)
    print("elements:", ", ".join(lp.name for lp in pslg.loops))

    # Classify the surface before meshing: where will fans appear?
    for loop in pslg.body_loops:
        sv = loop_surface_vertices(pslg, loop)
        kinds = {}
        for v in sv:
            kinds[v.kind] = kinds.get(v.kind, 0) + 1
        summary = ", ".join(f"{k.value}: {n}" for k, n in sorted(
            kinds.items(), key=lambda kv: kv[0].value))
        worst = max(sv, key=lambda v: abs(v.turn))
        print(f"  {loop.name:<5} -> {summary}; sharpest turn "
              f"{math.degrees(worst.turn):+.0f} deg at x={worst.position[0]:.3f}")

    config = MeshConfig(
        bl=BoundaryLayerConfig(
            first_spacing=8e-4,
            growth_ratio=1.25,
            max_layers=40,
            truncation_factor=0.5,
        ),
        farfield_chords=30.0,
        target_subdomains=24,
    )
    result = generate_mesh(pslg, config)

    s = result.stats
    print(f"\nboundary layer: {int(s['bl_n_rays'])} rays, "
          f"{int(s['bl_n_points'])} points")
    print(f"  self-intersection truncations : {int(s['bl_n_self_truncations'])}")
    print(f"  multi-element truncations     : {int(s['bl_n_multi_truncations'])}")
    print(f"  border untangle shrinks       : {int(s['bl_n_border_shrinks'])}")

    # BL height variation along the main element (Fig. 5 behaviour).
    main_rays = result.bl.element_rays[1]
    heights = [r.heights[-1] if r.heights else 0.0 for r in main_rays]
    print(f"\nmain-element BL height: min {min(heights):.4f}, "
          f"max {max(heights):.4f} (varies to hand off smoothly)")

    mesh = result.mesh
    print(f"\nfinal mesh: {mesh.n_triangles} triangles, "
          f"conforming={mesh.is_conforming()}")
    ar = mesh.aspect_ratios()
    print(f"  max aspect ratio {ar.max():.0f}; "
          f"{(ar > 10).sum()} strongly anisotropic elements")

    out = Path(__file__).parent / "output" / "highlift"
    out.parent.mkdir(exist_ok=True)
    node, ele = write_mesh_ascii(out, mesh)
    print(f"\nwrote {node}\nwrote {ele}")


if __name__ == "__main__":
    main()
