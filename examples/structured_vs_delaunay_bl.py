#!/usr/bin/env python
"""Structured vs. Delaunay boundary-layer triangulation + runtime Gantt.

Compares the two BL triangulation modes (the paper's "pseudo-structured"
extrusion pattern vs. constrained Delaunay of the same point cloud) with
the anisotropy metrics of :mod:`repro.analysis`, and finishes with an
execution-timeline view of a simulated 16-rank meshing run.

Run:  python examples/structured_vs_delaunay_bl.py
"""

import numpy as np

from repro.analysis.metrics import alignment_to_surface, element_directions
from repro.core.bl_pipeline import BoundaryLayerConfig, generate_boundary_layer
from repro.core.structured_bl import triangulate_structured
from repro.geometry.airfoils import naca0012
from repro.geometry.pslg import PSLG


def compare_bl_modes() -> None:
    surface = naca0012(101)
    pslg = PSLG.from_loops([surface])
    cfg = BoundaryLayerConfig(first_spacing=1e-3, growth_ratio=1.3,
                              max_layers=25)
    res = generate_boundary_layer(pslg, cfg)
    delaunay_mesh = res.mesh
    structured_mesh, stats = triangulate_structured(res.element_rays)

    print("=== boundary-layer triangulation modes ===")
    print(f"{'':<22}{'delaunay':>12}{'structured':>12}")
    print(f"{'triangles':<22}{delaunay_mesh.n_triangles:>12}"
          f"{structured_mesh.n_triangles:>12}")
    for label, mesh in (("delaunay", delaunay_mesh),
                        ("structured", structured_mesh)):
        _, ratio = element_directions(mesh)
        finite = ratio[np.isfinite(ratio)]
        scores = alignment_to_surface(mesh, surface, min_ratio=5.0)
        print(f"{label:>10}: stretched elements {len(scores)}, "
              f"median stretch {np.median(finite):.1f}, "
              f"surface alignment |cos| median "
              f"{np.median(scores) if len(scores) else float('nan'):.3f}")
    print(f"structured stitching: {stats.n_quads} quads, "
          f"{stats.n_stair_triangles} staircase triangles, "
          f"{stats.n_inverted_skipped} inverted skipped")


def show_gantt() -> None:
    from repro.runtime.simulator import NetworkModel, SimConfig, SimTask
    from repro.runtime.trace import render_gantt, simulate_traced

    print("\n=== simulated 16-rank meshing timeline ===")
    rng = np.random.default_rng(0)
    tasks = [SimTask(float(c), 5e4) for c in rng.lognormal(-2.5, 1.0, 400)]
    trace = simulate_traced(tasks, 16,
                            SimConfig(network=NetworkModel(2e-6, 7e9)))
    print(render_gantt(trace, width=64, max_ranks=16))
    print(f"idle fraction over the final 10%: "
          f"{trace.idle_fraction_tail(0.1):.0%} "
          "(largest-first queueing keeps the tail busy)")


if __name__ == "__main__":
    compare_bl_modes()
    show_gantt()
