#!/usr/bin/env python
"""Quickstart: push-button hybrid mesh around a NACA 0012 (paper Fig. 2).

Generates the anisotropic boundary layer + graded isotropic inviscid
region, prints the mesh statistics, and writes Triangle-format output
next to this script.

Run:  python examples/quickstart.py
"""

from pathlib import Path

import numpy as np

from repro import (
    BoundaryLayerConfig,
    MeshConfig,
    PSLG,
    generate_mesh,
    naca0012,
)
from repro.io.meshio import write_mesh_ascii, write_mesh_npz


def main() -> None:
    # 1. Geometry: the NACA 0012 surface as a planar straight-line graph.
    pslg = PSLG.from_loops([naca0012(n_points=101)], names=["naca0012"])
    print(f"geometry: {pslg} (chord = {pslg.chord_length():.3f})")

    # 2. Push-button configuration: wall spacing, growth ratio, far field.
    config = MeshConfig(
        bl=BoundaryLayerConfig(
            first_spacing=1e-3,   # first-layer wall distance (chords)
            growth_ratio=1.3,     # geometric growth (Garimella & Shephard)
            max_layers=40,
        ),
        farfield_chords=40.0,     # paper: 30-50 chords
        target_subdomains=16,     # decoupled inviscid subdomains
    )

    # 3. Generate.
    result = generate_mesh(pslg, config)
    mesh = result.mesh

    print(f"\nmesh: {mesh.n_triangles} triangles / {mesh.n_points} points")
    print(f"  boundary layer : {int(result.stats['n_bl_triangles'])} triangles")
    print(f"  subdomains     : {int(result.stats['n_subdomains'])}")
    print(f"  conforming     : {mesh.is_conforming()}")
    ar = mesh.aspect_ratios()
    print(f"  aspect ratio   : max {ar.max():.0f} (anisotropic BL), "
          f"median {np.median(ar):.2f} (isotropic bulk)")
    for stage, seconds in result.timings.items():
        print(f"  {stage:<15}: {seconds:.2f}s")

    # 4. Write Triangle-format and binary output.
    out = Path(__file__).parent / "output" / "naca0012"
    out.parent.mkdir(exist_ok=True)
    node, ele = write_mesh_ascii(out, mesh)
    npz = write_mesh_npz(out.with_suffix(".npz"), mesh)
    print(f"\nwrote {node}\nwrote {ele}\nwrote {npz}")


if __name__ == "__main__":
    main()
