"""Uniform bucket grid for nearest-point and point-location acceleration.

The incremental Delaunay kernel needs a good starting triangle for its
walking point location.  A uniform grid over recently inserted vertices
gives an expected-O(1) "find a vertex near (x, y)" primitive, which keeps
walks short even when insertion order is adversarial.  The grid is also
used by the sizing machinery for distance-to-geometry estimates.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Tuple

import numpy as np

from ..geometry.aabb import AABB

__all__ = ["BucketGrid"]


class BucketGrid:
    """Uniform grid of buckets over an :class:`AABB`.

    Points are ``(x, y)`` with integer payloads.  Points outside the bounds
    are clamped into the border buckets (the structure is an accelerator,
    never an oracle, so clamping is safe).
    """

    def __init__(self, bounds: AABB, target_per_bucket: float = 4.0,
                 expected_points: int = 64) -> None:
        self.bounds = bounds
        n_buckets = max(1, int(expected_points / max(target_per_bucket, 1e-9)))
        aspect = max(bounds.width, 1e-300) / max(bounds.height, 1e-300)
        self.nx = max(1, int(round(math.sqrt(n_buckets * aspect))))
        self.ny = max(1, int(round(n_buckets / self.nx)))
        self._cells: List[List[Tuple[float, float, int]]] = [
            [] for _ in range(self.nx * self.ny)
        ]
        # First payload per cell (-1 when empty), kept as a flat array
        # so bulk consumers (the batch walk seeder) can gather thousands
        # of first_in_cell answers in one indexing expression.
        self._heads = np.full(self.nx * self.ny, -1, dtype=np.int64)
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def _cell_index(self, x: float, y: float) -> int:
        w = self.bounds.width or 1.0
        h = self.bounds.height or 1.0
        ix = int((x - self.bounds.xmin) / w * self.nx)
        iy = int((y - self.bounds.ymin) / h * self.ny)
        ix = min(max(ix, 0), self.nx - 1)
        iy = min(max(iy, 0), self.ny - 1)
        return iy * self.nx + ix

    def insert(self, x: float, y: float, payload: int) -> None:
        c = self._cell_index(x, y)
        self._cells[c].append((x, y, payload))
        if self._heads[c] < 0:
            self._heads[c] = payload
        self._n += 1

    def insert_many(self, pts: np.ndarray, payloads: Optional[Iterable[int]] = None
                    ) -> None:
        """Bulk insert: vectorized binning, then one C-level extend per
        occupied cell (the kernel rebuilds its locator grid from snapshots,
        so build cost matters more than single-point insert cost)."""
        pts = np.asarray(pts, dtype=np.float64)
        if len(pts) == 0:
            return
        w = self.bounds.width or 1.0
        h = self.bounds.height or 1.0
        # Same expression order as _cell_index so bulk and scalar binning
        # agree bit-for-bit.
        ix = ((pts[:, 0] - self.bounds.xmin) / w * self.nx).astype(np.int64)
        iy = ((pts[:, 1] - self.bounds.ymin) / h * self.ny).astype(np.int64)
        np.clip(ix, 0, self.nx - 1, out=ix)
        np.clip(iy, 0, self.ny - 1, out=iy)
        cells = iy * self.nx + ix
        if payloads is None:
            ids = np.arange(len(pts), dtype=np.int64)
        else:
            ids = np.asarray(list(payloads), dtype=np.int64)
        order = np.argsort(cells, kind="stable")
        cells_sorted = cells[order]
        bounds = np.flatnonzero(np.diff(cells_sorted)) + 1
        starts = np.concatenate(([0], bounds))
        ends = np.concatenate((bounds, [len(cells_sorted)]))
        xs = pts[order, 0].tolist()
        ys = pts[order, 1].tolist()
        pids = ids[order].tolist()
        cell_lists = self._cells
        for s, e, c in zip(starts.tolist(), ends.tolist(),
                           cells_sorted[starts].tolist()):
            cell_lists[c].extend(zip(xs[s:e], ys[s:e], pids[s:e]))
        # The stable argsort keeps insertion order within a cell, so
        # pids[starts] is the first point this bulk adds to each cell.
        occupied = cells_sorted[starts]
        cur = self._heads[occupied]
        self._heads[occupied] = np.where(cur >= 0, cur,
                                         ids[order][starts])
        self._n += len(pts)

    def cell_ids(self, pts: np.ndarray) -> np.ndarray:
        """Vectorised bucket index per query point (``(n, 2)`` input).

        Bit-identical to :meth:`_cell_index` (same expression order as
        :meth:`insert_many`); out-of-bounds queries clamp into the
        border buckets.  The Delaunay batch-insertion strategy uses the
        bucket id as its independence partition: one candidate per
        bucket per sub-batch.
        """
        pts = np.asarray(pts, dtype=np.float64)
        w = self.bounds.width or 1.0
        h = self.bounds.height or 1.0
        ix = ((pts[:, 0] - self.bounds.xmin) / w * self.nx).astype(np.int64)
        iy = ((pts[:, 1] - self.bounds.ymin) / h * self.ny).astype(np.int64)
        np.clip(ix, 0, self.nx - 1, out=ix)
        np.clip(iy, 0, self.ny - 1, out=iy)
        return iy * self.nx + ix

    def first_in_cell(self, cell: int) -> int:
        """Payload of the first point stored in ``cell``, or ``-1``.

        O(1) walk-seed query: any stored point in the query's own
        bucket is within one bucket diagonal, which is all a walk seed
        needs (``nearest`` pays a ring scan for precision the walk
        doesn't use).
        """
        return int(self._heads[cell])

    def head_payloads(self) -> np.ndarray:
        """Flat ``nx * ny`` array of :meth:`first_in_cell` answers
        (-1 for empty cells).  Shared, not a copy — callers must not
        write to it."""
        return self._heads

    def nearest(self, x: float, y: float) -> Optional[int]:
        """Payload of an *approximately* nearest stored point, or ``None``.

        Searches the query's bucket ring by ring; the first ring that
        contains any point is scanned exactly, plus one more ring to bound
        the error (a point in the next ring can be closer than a point in
        the first non-empty ring, but not beyond it).
        """
        if self._n == 0:
            return None
        w = self.bounds.width or 1.0
        h = self.bounds.height or 1.0
        ix = min(max(int((x - self.bounds.xmin) / w * self.nx), 0), self.nx - 1)
        iy = min(max(int((y - self.bounds.ymin) / h * self.ny), 0), self.ny - 1)

        best: Optional[int] = None
        best_d2 = math.inf
        max_ring = max(self.nx, self.ny)
        found_ring: Optional[int] = None
        for ring in range(max_ring + 1):
            if found_ring is not None and ring > found_ring + 1:
                break
            hit_any = False
            for cx, cy in self._ring_cells(ix, iy, ring):
                for px, py, pid in self._cells[cy * self.nx + cx]:
                    hit_any = True
                    d2 = (px - x) ** 2 + (py - y) ** 2
                    if d2 < best_d2:
                        best_d2 = d2
                        best = pid
            if hit_any and found_ring is None:
                found_ring = ring
        return best

    def _ring_cells(self, ix: int, iy: int, ring: int):
        if ring == 0:
            yield ix, iy
            return
        x0, x1 = ix - ring, ix + ring
        y0, y1 = iy - ring, iy + ring
        for cx in range(max(x0, 0), min(x1, self.nx - 1) + 1):
            if 0 <= y0 < self.ny:
                yield cx, y0
            if 0 <= y1 < self.ny and y1 != y0:
                yield cx, y1
        for cy in range(max(y0 + 1, 0), min(y1 - 1, self.ny - 1) + 1):
            if 0 <= x0 < self.nx:
                yield x0, cy
            if 0 <= x1 < self.nx and x1 != x0:
                yield x1, cy

    def points_in_box(self, box: AABB) -> List[int]:
        """Payloads of all stored points inside the closed ``box``."""
        w = self.bounds.width or 1.0
        h = self.bounds.height or 1.0
        ix0 = min(max(int((box.xmin - self.bounds.xmin) / w * self.nx), 0),
                  self.nx - 1)
        ix1 = min(max(int((box.xmax - self.bounds.xmin) / w * self.nx), 0),
                  self.nx - 1)
        iy0 = min(max(int((box.ymin - self.bounds.ymin) / h * self.ny), 0),
                  self.ny - 1)
        iy1 = min(max(int((box.ymax - self.bounds.ymin) / h * self.ny), 0),
                  self.ny - 1)
        out: List[int] = []
        for cy in range(iy0, iy1 + 1):
            for cx in range(ix0, ix1 + 1):
                for px, py, pid in self._cells[cy * self.nx + cx]:
                    if box.contains_point((px, py)):
                        out.append(pid)
        return out
