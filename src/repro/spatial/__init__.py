"""Spatial search substrate: alternating digital tree and bucket grid."""

from .adt import ADT
from .grid import BucketGrid

__all__ = ["ADT", "BucketGrid"]
