"""Alternating Digital Tree (ADT) for geometric intersection searching.

Implements the data structure of Bonet & Peraire, "An Alternating Digital
Tree (ADT) Algorithm for 3D Geometric Searching and Intersection Problems"
(1991), in the two-dimensional specialisation the paper uses (Section II.B):

* a 2D segment's *extent box* ``(xmin, ymin, xmax, ymax)`` is treated as a
  **point in 4D**;
* the tree is a binary digital tree that cycles through the 4 coordinates
  level by level, halving the coordinate's range at each level (a digital,
  i.e. *fixed*, subdivision — the split position depends on the level, not
  on the stored points);
* an overlap query for a box ``q`` becomes a 4D axis-aligned range query:
  stored box ``b`` overlaps ``q`` iff
  ``b.xmin <= q.xmax, b.ymin <= q.ymax, b.xmax >= q.xmin, b.ymax >= q.ymin``
  i.e. the 4D point of ``b`` lies in the hyper-region
  ``[lo_x, q.xmax] x [lo_y, q.ymax] x [q.xmin, hi_x] x [q.ymin, hi_y]``.

Each node stores one 4D point plus the hyper-rectangle its subtree is
confined to, so whole subtrees are pruned when their region misses the
query region — giving O(log n) behaviour for well-distributed boxes,
matching the paper's cost claims ("a line segment's extent box ... can be
tested ... in log(n) time", "checking for intersections between n rays'
extent boxes ... in n*log(n) time").
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..geometry.aabb import AABB

__all__ = ["ADT"]

_DIM = 4


class _Node:
    __slots__ = ("point", "payload", "left", "right")

    def __init__(self, point: np.ndarray, payload: int) -> None:
        self.point = point
        self.payload = payload
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None


class ADT:
    """Alternating digital tree over 2D extent boxes lifted to 4D points.

    Parameters
    ----------
    bounds:
        The 2D :class:`AABB` that encloses every box ever inserted.  The 4D
        root region is derived from it.  Inserting a box outside ``bounds``
        raises :class:`ValueError` (a digital tree's subdivision is fixed in
        advance, so the global extent must be known up front).

    Notes
    -----
    Payloads are integer ids supplied by the caller (typically indices into
    a ray or border-segment array), following the paper's usage where the
    tree answers "which other rays have a potential intersection".
    """

    def __init__(self, bounds: AABB) -> None:
        # 4D root region: each 2D coordinate range appears twice
        # (once for the min corner, once for the max corner).
        self._lo = np.array(
            [bounds.xmin, bounds.ymin, bounds.xmin, bounds.ymin], dtype=np.float64
        )
        self._hi = np.array(
            [bounds.xmax, bounds.ymax, bounds.xmax, bounds.ymax], dtype=np.float64
        )
        if np.any(self._lo > self._hi):
            raise ValueError("inverted bounds")
        self._root: Optional[_Node] = None
        self._size = 0
        self.bounds = bounds

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, box: AABB, payload: int) -> None:
        """Insert one extent box with an integer payload id."""
        p = np.array(box.as_4d_point(), dtype=np.float64)
        if np.any(p < self._lo) or np.any(p > self._hi):
            raise ValueError(f"box {box} outside ADT bounds {self.bounds}")
        node = _Node(p, payload)
        self._size += 1
        if self._root is None:
            self._root = node
            return

        lo = self._lo.copy()
        hi = self._hi.copy()
        cur = self._root
        depth = 0
        while True:
            axis = depth % _DIM
            mid = 0.5 * (lo[axis] + hi[axis])
            # Left subtree owns [lo, mid), right owns [mid, hi].  Points
            # exactly at mid go right so the recursion always terminates
            # even with many identical coordinates.
            if p[axis] < mid:
                if cur.left is None:
                    cur.left = node
                    return
                cur = cur.left
                hi[axis] = mid
            else:
                if cur.right is None:
                    cur.right = node
                    return
                cur = cur.right
                lo[axis] = mid
            depth += 1

    def build(self, boxes: Sequence[AABB], payloads: Optional[Sequence[int]] = None
              ) -> "ADT":
        """Bulk-insert ``boxes`` (payload defaults to the index). Returns self."""
        if payloads is None:
            payloads = range(len(boxes))
        for box, pid in zip(boxes, payloads):
            self.insert(box, pid)
        return self

    @classmethod
    def from_boxes(cls, boxes: Sequence[AABB]) -> "ADT":
        """Construct with bounds inferred from the boxes themselves."""
        if not boxes:
            raise ValueError("cannot infer bounds from zero boxes")
        bounds = boxes[0]
        for b in boxes[1:]:
            bounds = bounds.union(b)
        return cls(bounds).build(boxes)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, box: AABB) -> List[int]:
        """Payload ids of every stored box whose extent overlaps ``box``.

        Overlap is closed (boxes sharing only an edge or corner count), in
        keeping with the conservative pruning role the structure plays: a
        false positive costs one exact geometric test; a false negative
        would lose an intersection.
        """
        if self._root is None:
            return []
        # 4D query region for "stored box overlaps query box".
        qlo = np.array(
            [-np.inf, -np.inf, box.xmin, box.ymin], dtype=np.float64
        )
        qhi = np.array(
            [box.xmax, box.ymax, np.inf, np.inf], dtype=np.float64
        )
        out: List[int] = []
        # Iterative DFS with explicit (node, lo, hi, depth) stack.
        stack: List[Tuple[_Node, np.ndarray, np.ndarray, int]] = [
            (self._root, self._lo.copy(), self._hi.copy(), 0)
        ]
        while stack:
            node, lo, hi, depth = stack.pop()
            p = node.point
            if np.all(p >= qlo) and np.all(p <= qhi):
                out.append(node.payload)
            axis = depth % _DIM
            mid = 0.5 * (lo[axis] + hi[axis])
            if node.left is not None and qlo[axis] < mid:
                child_hi = hi.copy()
                child_hi[axis] = mid
                # Prune: subtree region [lo, child_hi] must meet [qlo, qhi].
                if np.all(lo <= qhi) and np.all(child_hi >= qlo):
                    stack.append((node.left, lo.copy(), child_hi, depth + 1))
            if node.right is not None and qhi[axis] >= mid:
                child_lo = lo.copy()
                child_lo[axis] = mid
                if np.all(child_lo <= qhi) and np.all(hi >= qlo):
                    stack.append((node.right, child_lo, hi.copy(), depth + 1))
        return out

    def query_pairs(self) -> List[Tuple[int, int]]:
        """All unordered payload pairs with overlapping extent boxes.

        This is the self-intersection pattern of Section II.B: every ray's
        extent box is both stored in the tree and queried against it.  Each
        overlapping pair is reported once with ``payload_a < payload_b``.
        """
        pairs: List[Tuple[int, int]] = []
        for node, box in self._iter_nodes_boxes():
            for other in self.query(box):
                if other > node:
                    pairs.append((node, other))
        return pairs

    def _iter_nodes_boxes(self):
        stack = [self._root] if self._root is not None else []
        while stack:
            n = stack.pop()
            p = n.point
            yield n.payload, AABB(p[0], p[1], p[2], p[3])
            if n.left is not None:
                stack.append(n.left)
            if n.right is not None:
                stack.append(n.right)

    # ------------------------------------------------------------------
    # Introspection (for tests / balance diagnostics)
    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Maximum node depth (root = 0); -1 for an empty tree."""
        best = -1
        stack = [(self._root, 0)] if self._root is not None else []
        while stack:
            n, d = stack.pop()
            best = max(best, d)
            if n.left is not None:
                stack.append((n.left, d + 1))
            if n.right is not None:
                stack.append((n.right, d + 1))
        return best
