"""Boundary-layer growth functions (normal spacing along extrusion rays).

Following Garimella & Shephard (paper ref. [1], Section II.A), a growth
function prescribes the wall-normal distance of the k-th boundary-layer
point along a ray.  Two classic families are provided — *geometric* and
*polynomial* — plus an *adaptive* variant that blends a geometric start
into a capped spacing, for complex geometries.

All growth functions share the interface:

* ``height(k)``   — cumulative offset of the k-th layer (k = 1, 2, ...),
* ``spacing(k)``  — thickness of layer k (``height(k) - height(k-1)``),
* ``first_spacing`` attribute — the wall spacing (CFD's y-plus control).

Layer indices start at 1; ``height(0) == 0`` (the wall).
"""

from __future__ import annotations

import math
from typing import Protocol

__all__ = [
    "GrowthFunction",
    "GeometricGrowth",
    "PolynomialGrowth",
    "AdaptiveGrowth",
    "TanhGrowth",
]


class GrowthFunction(Protocol):
    first_spacing: float

    def height(self, k: int) -> float: ...

    def spacing(self, k: int) -> float: ...


class _Base:
    first_spacing: float

    def spacing(self, k: int) -> float:
        if k < 1:
            raise ValueError("layer index starts at 1")
        return self.height(k) - self.height(k - 1)

    def layers_to_height(self, target: float, max_layers: int = 10_000) -> int:
        """Smallest k with ``height(k) >= target`` (capped)."""
        for k in range(1, max_layers + 1):
            if self.height(k) >= target:
                return k
        return max_layers


class GeometricGrowth(_Base):
    """Geometric progression: spacing(k) = delta0 * ratio**(k-1).

    ``height(k) = delta0 * (ratio**k - 1) / (ratio - 1)`` for ratio != 1.
    The aerospace workhorse: a wall spacing of 1e-3..1e-6 chord and a
    ratio of 1.1-1.3.
    """

    def __init__(self, first_spacing: float, ratio: float = 1.2) -> None:
        if first_spacing <= 0:
            raise ValueError("first_spacing must be positive")
        if ratio < 1.0:
            raise ValueError("ratio must be >= 1 (shrinking layers stack up)")
        self.first_spacing = float(first_spacing)
        self.ratio = float(ratio)

    def height(self, k: int) -> float:
        if k < 0:
            raise ValueError("negative layer index")
        if k == 0:
            return 0.0
        if self.ratio == 1.0:
            return self.first_spacing * k
        return self.first_spacing * (self.ratio**k - 1.0) / (self.ratio - 1.0)

    def spacing(self, k: int) -> float:
        # Closed form (exactly monotone); the generic height difference
        # would wobble in the last ulp.
        if k < 1:
            raise ValueError("layer index starts at 1")
        return self.first_spacing * self.ratio ** (k - 1)


class PolynomialGrowth(_Base):
    """Polynomial height: height(k) = delta0 * k**exponent.

    ``exponent = 1`` is uniform spacing; ``exponent = 2`` quadratic
    clustering at the wall.
    """

    def __init__(self, first_spacing: float, exponent: float = 2.0) -> None:
        if first_spacing <= 0:
            raise ValueError("first_spacing must be positive")
        if exponent < 1.0:
            raise ValueError("exponent < 1 makes spacing decrease unboundedly")
        self.first_spacing = float(first_spacing)
        self.exponent = float(exponent)

    def height(self, k: int) -> float:
        if k < 0:
            raise ValueError("negative layer index")
        return self.first_spacing * float(k) ** self.exponent


class AdaptiveGrowth(_Base):
    """Geometric growth with a spacing cap (Garimella-style adaptivity).

    Grows geometrically until the layer thickness reaches ``max_spacing``,
    then continues uniformly — keeping the outermost boundary-layer
    elements from overshooting the local isotropic size, which smooths the
    hand-off to the inviscid region (paper Fig. 5).
    """

    def __init__(self, first_spacing: float, ratio: float = 1.2,
                 max_spacing: float = math.inf) -> None:
        if first_spacing <= 0:
            raise ValueError("first_spacing must be positive")
        if ratio < 1.0:
            raise ValueError("ratio must be >= 1")
        if max_spacing < first_spacing:
            raise ValueError("max_spacing below first_spacing")
        self.first_spacing = float(first_spacing)
        self.ratio = float(ratio)
        self.max_spacing = float(max_spacing)
        self._heights = [0.0]  # lazily extended cumulative sums

    def spacing(self, k: int) -> float:
        if k < 1:
            raise ValueError("layer index starts at 1")
        return min(self.first_spacing * self.ratio ** (k - 1), self.max_spacing)

    def height(self, k: int) -> float:
        if k < 0:
            raise ValueError("negative layer index")
        while len(self._heights) <= k:
            j = len(self._heights)
            self._heights.append(self._heights[-1] + self.spacing(j))
        return self._heights[k]


class TanhGrowth(_Base):
    """Hyperbolic-tangent point clustering over a fixed total height.

    The classic one-sided Vinokur/tanh stretching used by structured CFD
    grid generators: ``n_layers`` points distributed over ``total_height``
    with wall clustering controlled by ``beta`` > 1 (larger = stronger
    clustering).  Unlike the open-ended geometric law, the BL height is
    prescribed and the distribution interpolates between wall spacing and
    outer spacing smoothly — useful when the user targets a known
    physical boundary-layer thickness.
    """

    def __init__(self, total_height: float, n_layers: int,
                 beta: float = 2.0) -> None:
        if total_height <= 0:
            raise ValueError("total_height must be positive")
        if n_layers < 1:
            raise ValueError("need at least one layer")
        if beta <= 1.0:
            raise ValueError("beta must exceed 1")
        self.total_height = float(total_height)
        self.n_layers = int(n_layers)
        self.beta = float(beta)
        self.first_spacing = self.height(1)

    def height(self, k: int) -> float:
        if k < 0:
            raise ValueError("negative layer index")
        if k == 0:
            return 0.0
        if k > self.n_layers:
            # Continue uniformly with the outermost spacing beyond the
            # prescribed height (callers cap with max_layers anyway).
            last = (self.height(self.n_layers)
                    - self.height(self.n_layers - 1)
                    if self.n_layers > 1 else self.total_height)
            return self.total_height + (k - self.n_layers) * last
        b = self.beta
        eta = k / self.n_layers
        num = math.tanh(b * (eta - 1.0)) + math.tanh(b)
        return self.total_height * num / math.tanh(b)
