"""Sizing functions (element area fields) and boundary-layer growth laws."""

from .functions import (
    CallableSizing,
    GradedDistanceSizing,
    RadialSizing,
    SizingFunction,
    UniformSizing,
    decoupling_edge_length,
)
from .growth import (
    AdaptiveGrowth,
    GeometricGrowth,
    GrowthFunction,
    PolynomialGrowth,
    TanhGrowth,
)

__all__ = [
    "AdaptiveGrowth",
    "CallableSizing",
    "GeometricGrowth",
    "GradedDistanceSizing",
    "GrowthFunction",
    "PolynomialGrowth",
    "RadialSizing",
    "SizingFunction",
    "TanhGrowth",
    "UniformSizing",
    "decoupling_edge_length",
]
