"""Gradient-limited sizing fields (Hamilton-Jacobi limiter).

A sizing function handed to the mesher by a user (or recovered from a
solution, see :mod:`repro.metric`) can vary arbitrarily fast — a spike of
small target size next to a plateau of large size makes Ruppert
refinement thrash and produces abrupt element-size jumps.  pymesh2D's
``hfun_util``/``hjac_util`` pair solves this with a Hamilton-Jacobi
limiter: replace the raw field ``h`` by the largest field ``h*`` with

    h*(x) <= h(y) + g * d(x, y)        for all x, y,

i.e. the viscosity solution of ``|grad h*| <= g`` below the input data.
On a discrete vertex set connected by edges the exact solution is a
shortest-path relaxation:

    h*(v) = min_u ( h(u) + g * dist_graph(u, v) ),

which :func:`limit_field` computes with a Dijkstra sweep (deterministic,
one pass, exact fixed point — no iteration-count tuning).  The same core
is the *scalar specialization* of the metric gradation limiter
(:meth:`repro.metric.MetricField.limit_gradation` limits the per-vertex
minimum metric size through exactly this function before rescaling the
tensors), so scalar and anisotropic sizing share one gradation
guarantee.

:class:`GradientLimitedSizing` wraps an arbitrary user sizing function:
it samples the raw field on a background grid, limits it there, and
answers queries by bilinear interpolation — guaranteeing graded spacing
for *any* input, including discontinuous ones.
"""

from __future__ import annotations

import heapq
import math
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["limit_field", "limit_sizing_on_mesh", "GradientLimitedSizing"]


def limit_field(
    edges: np.ndarray,
    lengths: np.ndarray,
    values: np.ndarray,
    slope: float,
    *,
    active: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Largest field ``h* <= values`` with ``|grad h*| <= slope`` on a graph.

    Parameters
    ----------
    edges:
        ``(m, 2)`` int vertex index pairs (undirected).
    lengths:
        ``(m,)`` positive edge lengths.
    values:
        ``(n,)`` raw field samples (the upper bound).
    slope:
        Maximum growth rate ``g`` of the limited field per unit length;
        ``0`` collapses the field to its global minimum on each
        connected component.
    active:
        Optional boolean mask of vertices whose values act as sources;
        inactive vertices still receive limited values but their own
        (possibly garbage) input is ignored.

    Returns the limited field (a fresh array; the input is not written).
    The relaxation is a plain Dijkstra over the graph metric, so the
    result is the exact fixed point and the pop order — hence the
    output — is deterministic (ties broken by vertex index).
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    lengths = np.asarray(lengths, dtype=np.float64).reshape(-1)
    values = np.asarray(values, dtype=np.float64).reshape(-1)
    if len(edges) != len(lengths):
        raise ValueError("edges and lengths disagree on edge count")
    if np.any(lengths <= 0):
        raise ValueError("edge lengths must be positive")
    if slope < 0:
        raise ValueError("slope must be non-negative")
    n = len(values)
    out = values.copy()
    if active is not None:
        out = np.where(np.asarray(active, dtype=bool), out, np.inf)
    if n == 0 or len(edges) == 0:
        return np.minimum(out, values) if active is None else out

    # CSR adjacency (vectorised build): both directions of every edge.
    src = np.concatenate([edges[:, 0], edges[:, 1]])
    dst = np.concatenate([edges[:, 1], edges[:, 0]])
    wgt = np.concatenate([lengths, lengths])
    order = np.argsort(src, kind="stable")
    src, dst, wgt = src[order], dst[order], wgt[order]
    starts = np.searchsorted(src, np.arange(n + 1))

    heap = [(float(out[v]), v) for v in range(n) if np.isfinite(out[v])]
    heapq.heapify(heap)
    settled = np.zeros(n, dtype=bool)
    while heap:
        d, v = heapq.heappop(heap)
        if settled[v] or d > out[v]:
            continue
        settled[v] = True
        for j in range(starts[v], starts[v + 1]):
            u = int(dst[j])
            cand = d + slope * float(wgt[j])
            if cand < out[u]:
                out[u] = cand
                heapq.heappush(heap, (cand, u))
    if active is not None:
        # Isolated inactive vertices: nothing to relax from; keep input.
        missing = ~np.isfinite(out)
        out[missing] = values[missing]
    return out


def limit_sizing_on_mesh(mesh, h: np.ndarray, slope: float) -> np.ndarray:
    """Limit a per-vertex edge-length field over a mesh's edge graph."""
    edges = mesh.edges()
    pts = mesh.points
    lengths = np.linalg.norm(pts[edges[:, 1]] - pts[edges[:, 0]], axis=1)
    return limit_field(edges, lengths, h, slope)


class GradientLimitedSizing:
    """Graded sizing from an arbitrary (even discontinuous) user field.

    The raw field — any ``f(x, y) -> area`` callable or an object with
    ``area_at`` — is sampled on an ``nx x ny`` background grid over
    ``bounds``, converted to edge lengths (``h = sqrt(4 A / sqrt(3))``,
    the equilateral inverse of the area convention used across
    :mod:`repro.sizing`), gradient-limited over the 8-connected grid
    graph, and served back through bilinear interpolation.  Whatever the
    input does, the output satisfies ``|grad h| <= slope`` along grid
    edges — the property Ruppert refinement needs to terminate without
    size thrash.
    """

    def __init__(self, fn, bounds: Tuple[float, float, float, float],
                 *, slope: float = 0.3, nx: int = 64,
                 ny: Optional[int] = None) -> None:
        if nx < 2 or (ny is not None and ny < 2):
            raise ValueError("grid must be at least 2x2")
        if slope < 0:
            raise ValueError("slope must be non-negative")
        xmin, ymin, xmax, ymax = (float(b) for b in bounds)
        if not (xmax > xmin and ymax > ymin):
            raise ValueError("bounds must span a positive area")
        ny = nx if ny is None else ny
        self.bounds = (xmin, ymin, xmax, ymax)
        self.slope = float(slope)
        xs = np.linspace(xmin, xmax, nx)
        ys = np.linspace(ymin, ymax, ny)
        area_at = getattr(fn, "area_at", fn)
        raw = np.empty((ny, nx))
        for j, y in enumerate(ys):
            for i, x in enumerate(xs):
                a = float(area_at(x, y))
                if a <= 0:
                    raise ValueError(
                        f"sizing function returned non-positive area {a}")
                raw[j, i] = a
        h = np.sqrt(4.0 * raw / math.sqrt(3.0))  # area -> edge length

        # 8-connected grid graph (vectorised construction).
        idx = np.arange(nx * ny).reshape(ny, nx)
        pairs = []
        lens = []
        dx = (xmax - xmin) / (nx - 1)
        dy = (ymax - ymin) / (ny - 1)
        diag = math.hypot(dx, dy)
        pairs.append(np.column_stack([idx[:, :-1].ravel(),
                                      idx[:, 1:].ravel()]))
        lens.append(np.full(ny * (nx - 1), dx))
        pairs.append(np.column_stack([idx[:-1, :].ravel(),
                                      idx[1:, :].ravel()]))
        lens.append(np.full((ny - 1) * nx, dy))
        pairs.append(np.column_stack([idx[:-1, :-1].ravel(),
                                      idx[1:, 1:].ravel()]))
        lens.append(np.full((ny - 1) * (nx - 1), diag))
        pairs.append(np.column_stack([idx[:-1, 1:].ravel(),
                                      idx[1:, :-1].ravel()]))
        lens.append(np.full((ny - 1) * (nx - 1), diag))
        limited = limit_field(np.vstack(pairs), np.concatenate(lens),
                              h.ravel(), self.slope)
        self._h = limited.reshape(ny, nx)
        self._xs = xs
        self._ys = ys

    def edge_length_at(self, x: float, y: float) -> float:
        xs, ys, h = self._xs, self._ys, self._h
        i = int(np.clip(np.searchsorted(xs, x) - 1, 0, len(xs) - 2))
        j = int(np.clip(np.searchsorted(ys, y) - 1, 0, len(ys) - 2))
        tx = (x - xs[i]) / (xs[i + 1] - xs[i])
        ty = (y - ys[j]) / (ys[j + 1] - ys[j])
        tx = min(max(tx, 0.0), 1.0)
        ty = min(max(ty, 0.0), 1.0)
        return float(
            h[j, i] * (1 - tx) * (1 - ty)
            + h[j, i + 1] * tx * (1 - ty)
            + h[j + 1, i] * (1 - tx) * ty
            + h[j + 1, i + 1] * tx * ty
        )

    def area_at(self, x: float, y: float) -> float:
        h = self.edge_length_at(x, y)
        return math.sqrt(3.0) / 4.0 * h * h

    def __call__(self, x: float, y: float) -> float:
        return self.area_at(x, y)
