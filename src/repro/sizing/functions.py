"""Sizing functions: target element *area* as a function of position.

The paper (Section II.E) drives both the inviscid-region Delaunay
refinement ("Triangle's ability to use a user-defined area constraint")
and the graded decoupling paths from a single sizing function, so that
element size grows smoothly "based on distance from the initial geometry
towards the far-field".  This module provides that function family plus
the decoupling edge length of Eq. (1):

    k = (1/2) * sqrt(A / sqrt(2))

where ``A`` is the desired element area at the evaluation point — the
conservative edge length such that Ruppert refinement with bound sqrt(2)
and area bound ``A`` will never need to split a border edge of length
2k or shorter.
"""

from __future__ import annotations

import math
from typing import Callable, Protocol, Sequence, Tuple

import numpy as np

__all__ = [
    "SizingFunction",
    "UniformSizing",
    "GradedDistanceSizing",
    "RadialSizing",
    "CallableSizing",
    "decoupling_edge_length",
]


class SizingFunction(Protocol):
    """Protocol: ``area_at(x, y)`` returns the max triangle area there."""

    def area_at(self, x: float, y: float) -> float: ...


def decoupling_edge_length(area: float) -> float:
    """Eq. (1): k = 1/2 * sqrt(A / sqrt(2)).

    The length scale used when marching vertices along decoupling paths;
    spacing D is kept within [2k/sqrt(3), 2k) so that border edges satisfy
    both Ruppert's circumradius-to-shortest-edge bound sqrt(2) and the
    local area bound when the neighbouring subdomains are refined
    independently.
    """
    if area <= 0:
        raise ValueError("area must be positive")
    return 0.5 * math.sqrt(area / math.sqrt(2.0))


class UniformSizing:
    """Constant maximum area everywhere."""

    def __init__(self, area: float) -> None:
        if area <= 0:
            raise ValueError("area must be positive")
        self.area = float(area)

    def area_at(self, x: float, y: float) -> float:
        return self.area

    def __call__(self, x: float, y: float) -> float:
        return self.area_at(x, y)


class GradedDistanceSizing:
    """Geometry-distance graded sizing (the paper's inviscid gradation).

    Element *edge length* grows linearly with distance to the body:
    ``h(d) = h0 + grading * d``, capped at ``h_max``; area is the area of
    an equilateral triangle with that edge: ``A = sqrt(3)/4 * h^2``.
    Distance is measured to a sample of body surface points (supplied as
    an ``(n, 2)`` array), queried through a vectorised min-distance — the
    dominant cost pattern is thousands of queries against a fixed point
    cloud, so the implementation stores the cloud contiguously.

    Parameters
    ----------
    surface_points:
        Points sampling the geometry (airfoil surface or BL outer border).
    h0:
        Edge length at the surface.
    grading:
        Growth rate of edge length per unit distance (dimensionless);
        values in [0.1, 0.5] give the smooth gradations of paper Fig. 10.
    h_max:
        Optional cap on edge length (far-field size).
    """

    def __init__(self, surface_points: np.ndarray, h0: float,
                 grading: float = 0.3, h_max: float = math.inf) -> None:
        pts = np.ascontiguousarray(np.asarray(surface_points, np.float64))
        if pts.ndim != 2 or pts.shape[1] != 2 or len(pts) == 0:
            raise ValueError("surface_points must be a nonempty (n, 2) array")
        if h0 <= 0 or grading < 0 or h_max <= 0:
            raise ValueError("h0, h_max must be > 0 and grading >= 0")
        self._pts = pts
        self.h0 = float(h0)
        self.grading = float(grading)
        self.h_max = float(h_max)
        # Coarse acceleration: keep a decimated cloud for the far field and
        # the exact covering radius ("pad") of the decimation — the largest
        # distance from any surface point to its nearest coarse sample.
        step = max(1, len(pts) // 256)
        self._coarse = pts[::step]
        if step == 1:
            self._coarse_pad = 0.0
        else:
            worst = 0.0
            for lo in range(0, len(pts), 4096):  # chunked: bounded memory
                chunk = pts[lo:lo + 4096]
                d2 = ((chunk[:, None, :] - self._coarse[None, :, :]) ** 2
                      ).sum(axis=2)
                worst = max(worst, float(d2.min(axis=1).max()))
            self._coarse_pad = math.sqrt(worst)

    def distance_to_surface(self, x: float, y: float) -> float:
        dc = float(np.min(np.hypot(self._coarse[:, 0] - x,
                                   self._coarse[:, 1] - y)))
        if dc > 20.0 * self._coarse_pad:
            # Far away: exact distance lies in [dc - pad, dc]; return the
            # midpoint (relative error < 3% out here, where the sizing
            # gradient is shallow anyway).
            return max(dc - 0.5 * self._coarse_pad, 0.0)
        return float(np.min(np.hypot(self._pts[:, 0] - x, self._pts[:, 1] - y)))

    def edge_length_at(self, x: float, y: float) -> float:
        d = self.distance_to_surface(x, y)
        return min(self.h0 + self.grading * d, self.h_max)

    def area_at(self, x: float, y: float) -> float:
        h = self.edge_length_at(x, y)
        return math.sqrt(3.0) / 4.0 * h * h

    def __call__(self, x: float, y: float) -> float:
        return self.area_at(x, y)


class RadialSizing:
    """Sizing graded with distance from a centre point (analytic, cheap).

    Useful for tests and for the decoupling unit experiments where an
    exactly known analytic gradation is wanted.
    """

    def __init__(self, center: Tuple[float, float], h0: float,
                 grading: float = 0.3, h_max: float = math.inf) -> None:
        if h0 <= 0 or grading < 0:
            raise ValueError("h0 must be > 0 and grading >= 0")
        self.center = (float(center[0]), float(center[1]))
        self.h0 = float(h0)
        self.grading = float(grading)
        self.h_max = float(h_max)

    def edge_length_at(self, x: float, y: float) -> float:
        d = math.hypot(x - self.center[0], y - self.center[1])
        return min(self.h0 + self.grading * d, self.h_max)

    def area_at(self, x: float, y: float) -> float:
        h = self.edge_length_at(x, y)
        return math.sqrt(3.0) / 4.0 * h * h

    def __call__(self, x: float, y: float) -> float:
        return self.area_at(x, y)


class CallableSizing:
    """Adapt a plain ``f(x, y) -> area`` callable to the protocol."""

    def __init__(self, fn: Callable[[float, float], float]) -> None:
        self._fn = fn

    def area_at(self, x: float, y: float) -> float:
        a = float(self._fn(x, y))
        if a <= 0:
            raise ValueError(f"sizing function returned non-positive area {a}")
        return a

    def __call__(self, x: float, y: float) -> float:
        return self.area_at(x, y)
