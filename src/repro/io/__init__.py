"""Mesh and PSLG input/output."""

from .meshio import (
    read_ele,
    read_mesh_ascii,
    read_mesh_npz,
    read_node,
    read_poly,
    read_vtk,
    write_ele,
    write_mesh_ascii,
    write_mesh_npz,
    write_node,
    write_poly,
    write_vtk,
)

__all__ = [
    "read_ele",
    "read_mesh_ascii",
    "read_mesh_npz",
    "read_node",
    "read_poly",
    "read_vtk",
    "write_ele",
    "write_mesh_ascii",
    "write_mesh_npz",
    "write_node",
    "write_poly",
    "write_vtk",
]
