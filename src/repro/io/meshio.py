"""Mesh and PSLG I/O: Triangle-compatible ASCII and binary NPZ.

Section IV discusses output cost: writing the 172M-triangle mesh as ASCII
takes 9 minutes, "if a flow solver can ... read from a binary file, the
writing time will be less."  Both paths are provided (and benchmarked in
E12): Shewchuk-Triangle ``.node``/``.ele``/``.poly`` text files for
interoperability, and NumPy ``.npz`` for speed.
"""

from __future__ import annotations

import io
import os
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from ..delaunay.mesh import TriMesh
from ..geometry.pslg import PSLG, Loop

__all__ = [
    "write_node",
    "read_node",
    "write_ele",
    "read_ele",
    "write_mesh_ascii",
    "read_mesh_ascii",
    "write_mesh_npz",
    "read_mesh_npz",
    "write_poly",
    "read_poly",
    "write_vtk",
    "read_vtk",
]

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# Triangle-format ASCII (.node / .ele / .poly)
# ----------------------------------------------------------------------
def write_node(path: PathLike, points: np.ndarray) -> None:
    """Write a Triangle ``.node`` file (1-based indices, no attributes)."""
    points = np.asarray(points, dtype=np.float64)
    with open(path, "w") as f:
        f.write(f"{len(points)} 2 0 0\n")
        # repr of a Python float round-trips exactly (shortest repr).
        lines = [
            f"{i + 1} {float(x)!r} {float(y)!r}\n"
            for i, (x, y) in enumerate(points)
        ]
        f.writelines(lines)


def read_node(path: PathLike) -> np.ndarray:
    with open(path) as f:
        header = f.readline().split()
        n = int(header[0])
        dim = int(header[1])
        if dim != 2:
            raise ValueError("only 2D .node files supported")
        pts = np.empty((n, 2), dtype=np.float64)
        for _ in range(n):
            parts = f.readline().split()
            if not parts:
                raise ValueError("truncated .node file")
            idx = int(parts[0]) - 1
            pts[idx] = (float(parts[1]), float(parts[2]))
    return pts


def write_ele(path: PathLike, triangles: np.ndarray) -> None:
    """Write a Triangle ``.ele`` file (1-based indices)."""
    triangles = np.asarray(triangles, dtype=np.int64)
    with open(path, "w") as f:
        f.write(f"{len(triangles)} 3 0\n")
        lines = [
            f"{i + 1} {a + 1} {b + 1} {c + 1}\n"
            for i, (a, b, c) in enumerate(triangles)
        ]
        f.writelines(lines)


def read_ele(path: PathLike) -> np.ndarray:
    with open(path) as f:
        header = f.readline().split()
        n = int(header[0])
        tris = np.empty((n, 3), dtype=np.int32)
        for _ in range(n):
            parts = f.readline().split()
            if not parts:
                raise ValueError("truncated .ele file")
            idx = int(parts[0]) - 1
            tris[idx] = (int(parts[1]) - 1, int(parts[2]) - 1,
                         int(parts[3]) - 1)
    return tris


def write_mesh_ascii(basepath: PathLike, mesh: TriMesh) -> Tuple[Path, Path]:
    """Write ``<base>.node`` + ``<base>.ele``; returns the two paths."""
    base = Path(basepath)
    node = base.with_suffix(".node")
    ele = base.with_suffix(".ele")
    write_node(node, mesh.points)
    write_ele(ele, mesh.triangles)
    return node, ele


def read_mesh_ascii(basepath: PathLike) -> TriMesh:
    base = Path(basepath)
    pts = read_node(base.with_suffix(".node"))
    tris = read_ele(base.with_suffix(".ele"))
    return TriMesh(pts, tris)


# ----------------------------------------------------------------------
# Binary NPZ
# ----------------------------------------------------------------------
def write_mesh_npz(path: PathLike, mesh: TriMesh) -> Path:
    path = Path(path)
    np.savez(
        path,
        points=mesh.points,
        triangles=mesh.triangles,
        segments=mesh.segments,
    )
    return path if path.suffix == ".npz" else path.with_suffix(
        path.suffix + ".npz")


def read_mesh_npz(path: PathLike) -> TriMesh:
    with np.load(path) as data:
        return TriMesh(data["points"], data["triangles"], data["segments"])


# ----------------------------------------------------------------------
# PSLG (.poly)
# ----------------------------------------------------------------------
def write_poly(path: PathLike, pslg: PSLG,
               holes: Optional[np.ndarray] = None,
               markers: Optional[np.ndarray] = None) -> None:
    """Write a Triangle ``.poly`` file for the PSLG (with hole points).

    ``markers`` optionally attaches one integer boundary marker per
    segment (Triangle's boundary-marker column).
    """
    segs = pslg.all_segments()
    holes = np.asarray(holes if holes is not None else np.empty((0, 2)))
    if markers is not None:
        markers = np.asarray(markers, dtype=np.int64)
        if len(markers) != len(segs):
            raise ValueError(
                f"got {len(markers)} segment markers for {len(segs)} segments")
    with open(path, "w") as f:
        f.write(f"{pslg.n_points} 2 0 0\n")
        for i, (x, y) in enumerate(pslg.points):
            f.write(f"{i + 1} {float(x)!r} {float(y)!r}\n")
        f.write(f"{len(segs)} {0 if markers is None else 1}\n")
        for i, (u, v) in enumerate(segs):
            tail = "" if markers is None else f" {markers[i]}"
            f.write(f"{i + 1} {u + 1} {v + 1}{tail}\n")
        f.write(f"{len(holes)}\n")
        for i, (x, y) in enumerate(holes):
            f.write(f"{i + 1} {float(x)!r} {float(y)!r}\n")


def read_poly(path: PathLike, *, with_markers: bool = False):
    """Read a ``.poly`` file; loops are reconstructed from the segments.

    Returns ``(pslg, holes)`` — or ``(pslg, holes, markers)`` when
    ``with_markers`` is true (``markers`` is ``None`` for files without a
    boundary-marker column; order follows ``pslg.all_segments()``).
    Segments must form disjoint closed loops (the format this package
    writes).
    """
    with open(path) as f:
        header = f.readline().split()
        if len(header) < 2:
            raise ValueError(f"{path}: malformed .poly header {header!r}")
        n, dim = int(header[0]), int(header[1])
        if dim != 2:
            raise ValueError("only 2D .poly supported")
        pts = np.empty((n, 2), dtype=np.float64)
        for _ in range(n):
            parts = f.readline().split()
            if len(parts) < 3:
                raise ValueError(f"{path}: truncated .poly vertex section")
            pts[int(parts[0]) - 1] = (float(parts[1]), float(parts[2]))
        seg_header = f.readline().split()
        if not seg_header:
            raise ValueError(f"{path}: missing .poly segment header")
        m = int(seg_header[0])
        has_markers = len(seg_header) > 1 and int(seg_header[1]) > 0
        nxt = {}
        marker_of = {}
        for _ in range(m):
            parts = f.readline().split()
            if len(parts) < 3:
                raise ValueError(f"{path}: truncated .poly segment section")
            u, v = int(parts[1]) - 1, int(parts[2]) - 1
            nxt[u] = v
            if has_markers:
                marker_of[(u, v)] = int(parts[3])
        hole_header = f.readline().split()
        if not hole_header:
            raise ValueError(f"{path}: missing .poly hole header")
        k = int(hole_header[0])
        holes = np.empty((k, 2), dtype=np.float64)
        for i in range(k):
            parts = f.readline().split()
            if len(parts) < 3:
                raise ValueError(f"{path}: truncated .poly hole section")
            holes[int(parts[0]) - 1] = (float(parts[1]), float(parts[2]))
    # Walk the successor map into loops.
    loops = []
    remaining = dict(nxt)
    while remaining:
        start = next(iter(remaining))
        loop = [start]
        cur = remaining.pop(start)
        while cur != start:
            loop.append(cur)
            cur = remaining.pop(cur)
        loops.append(Loop(np.asarray(loop)))
    pslg = PSLG(pts, loops)
    if not with_markers:
        return pslg, holes
    markers = None
    if has_markers:
        markers = np.asarray(
            [marker_of[(int(u), int(v))] for u, v in pslg.all_segments()],
            dtype=np.int64)
    return pslg, holes, markers


# ----------------------------------------------------------------------
# VTK legacy (visualisation interop)
# ----------------------------------------------------------------------
def write_vtk(path: PathLike, mesh: TriMesh,
              cell_data: Optional[dict] = None,
              point_data: Optional[dict] = None) -> Path:
    """Write a legacy ASCII VTK file (UNSTRUCTURED_GRID of triangles).

    ``cell_data``/``point_data`` map field names to 1D arrays (per
    triangle / per vertex) — e.g. the Cp and Mach fields of Figs. 14-15.
    """
    path = Path(path)
    m = mesh.n_triangles
    with open(path, "w") as f:
        f.write("# vtk DataFile Version 3.0\n")
        f.write("repro mesh\nASCII\nDATASET UNSTRUCTURED_GRID\n")
        f.write(f"POINTS {mesh.n_points} double\n")
        for x, y in mesh.points:
            f.write(f"{float(x)!r} {float(y)!r} 0.0\n")
        f.write(f"CELLS {m} {4 * m}\n")
        for a, b, c in mesh.triangles:
            f.write(f"3 {a} {b} {c}\n")
        f.write(f"CELL_TYPES {m}\n")
        f.write("5\n" * m)  # VTK_TRIANGLE
        if cell_data:
            f.write(f"CELL_DATA {m}\n")
            for name, values in cell_data.items():
                values = np.asarray(values, dtype=np.float64)
                if len(values) != m:
                    raise ValueError(f"cell field {name!r} has wrong length")
                f.write(f"SCALARS {name} double 1\nLOOKUP_TABLE default\n")
                f.writelines(f"{float(v)!r}\n" for v in values)
        if point_data:
            f.write(f"POINT_DATA {mesh.n_points}\n")
            for name, values in point_data.items():
                values = np.asarray(values, dtype=np.float64)
                if len(values) != mesh.n_points:
                    raise ValueError(f"point field {name!r} has wrong length")
                f.write(f"SCALARS {name} double 1\nLOOKUP_TABLE default\n")
                f.writelines(f"{float(v)!r}\n" for v in values)
    return path


def _vtk_tokens(f) -> list:
    """All whitespace-separated tokens after the 2-line VTK preamble."""
    magic = f.readline()
    if not magic.startswith("# vtk DataFile"):
        raise ValueError(f"not a legacy VTK file (bad magic {magic!r})")
    f.readline()  # free-form title
    return f.read().split()


def read_vtk(path: PathLike) -> Tuple[TriMesh, dict, dict]:
    """Read a legacy ASCII VTK triangle mesh written by :func:`write_vtk`.

    Returns ``(mesh, cell_data, point_data)``; the data dicts map scalar
    field names to float64 arrays (empty when the file carries none).
    The z coordinate is dropped.  Raises ``ValueError`` on non-ASCII
    files, non-triangle cells, or truncated sections.
    """
    with open(path) as f:
        toks = _vtk_tokens(f)
    it = iter(toks)

    def need(what: str) -> str:
        try:
            return next(it)
        except StopIteration:
            raise ValueError(f"{path}: truncated VTK file (expected {what})")

    def expect(token: str) -> None:
        got = need(token)
        if got.upper() != token:
            raise ValueError(f"{path}: expected {token}, got {got!r}")

    fmt = need("ASCII")
    if fmt.upper() != "ASCII":
        raise ValueError(f"{path}: only ASCII VTK supported, got {fmt!r}")
    expect("DATASET")
    kind = need("dataset type")
    if kind.upper() != "UNSTRUCTURED_GRID":
        raise ValueError(
            f"{path}: only UNSTRUCTURED_GRID supported, got {kind!r}")

    expect("POINTS")
    n_pts = int(need("point count"))
    need("point dtype")
    pts = np.empty((n_pts, 2), dtype=np.float64)
    for i in range(n_pts):
        x, y = float(need("x")), float(need("y"))
        need("z")  # planar meshes: z is dropped
        pts[i] = (x, y)

    expect("CELLS")
    n_cells = int(need("cell count"))
    need("cell list size")
    tris = np.empty((n_cells, 3), dtype=np.int32)
    for i in range(n_cells):
        sz = int(need("cell size"))
        if sz != 3:
            raise ValueError(
                f"{path}: cell {i} has {sz} vertices; only triangles "
                "are supported")
        tris[i] = (int(need("a")), int(need("b")), int(need("c")))

    expect("CELL_TYPES")
    if int(need("cell type count")) != n_cells:
        raise ValueError(f"{path}: CELL_TYPES count mismatch")
    for i in range(n_cells):
        ct = int(need("cell type"))
        if ct != 5:  # VTK_TRIANGLE
            raise ValueError(
                f"{path}: cell {i} has VTK type {ct}; only triangles (5) "
                "are supported")

    cell_data: dict = {}
    point_data: dict = {}
    target, count = None, 0
    while True:
        try:
            tok = next(it)
        except StopIteration:
            break
        up = tok.upper()
        if up == "CELL_DATA":
            target, count = cell_data, int(need("cell data count"))
        elif up == "POINT_DATA":
            target, count = point_data, int(need("point data count"))
        elif up == "SCALARS":
            if target is None:
                raise ValueError(
                    f"{path}: SCALARS before CELL_DATA/POINT_DATA")
            name = need("field name")
            need("field dtype")
            tok2 = need("LOOKUP_TABLE")  # optional component count first
            if tok2.upper() != "LOOKUP_TABLE":
                expect("LOOKUP_TABLE")
            need("table name")
            target[name] = np.asarray(
                [float(need(f"value of {name}")) for _ in range(count)])
        else:
            raise ValueError(f"{path}: unsupported VTK section {tok!r}")

    return TriMesh(pts, tris), cell_data, point_data
