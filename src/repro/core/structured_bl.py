"""Pseudo-structured boundary-layer triangulation (the extrusion pattern).

The paper calls the boundary layer "pseudo-structured": points come from
a structured extrusion (rays x layers) even though the final mesh is
unstructured triangles.  The default pipeline triangulates the BL cloud
with constrained Delaunay (which the parallel decomposition operates on);
this module provides the *direct* structured alternative — stitching quad
strips between consecutive rays and splitting each quad along its shorter
diagonal — matching the semi-structured construction of Aubry et al.
(paper ref. [9]) that the extrusion implies:

* identical layer counts -> clean quad strips;
* differing layer counts (truncated rays, isotropy hand-off) -> the tall
  ray's extra points fan onto the short ray's tip (the "staircase");
* fan rays at a cusp share their origin -> the first quad degenerates to
  a triangle automatically.

The structured mode preserves the layer alignment exactly (every interior
edge is either along a layer or along a ray/diagonal), which is the
property the paper protects by refusing arbitrary dividing paths in the
decomposition.  Inverted quads (possible where truncation pinches the
layer in a concave cove) are dropped and reported, so callers can fall
back to the Delaunay mode when the count is nonzero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..delaunay.mesh import TriMesh
from ..geometry.predicates import orient2d
from .rays import Ray

__all__ = ["StructuredBLStats", "triangulate_structured"]


@dataclass
class StructuredBLStats:
    n_quads: int = 0
    n_stair_triangles: int = 0
    n_degenerate_skipped: int = 0
    n_inverted_skipped: int = 0


def _ray_points(ray: Ray) -> List[Tuple[float, float]]:
    return [ray.origin] + [ray.point_at(h) for h in ray.heights]


def triangulate_structured(
    element_rays: Sequence[Sequence[Ray]],
) -> Tuple[TriMesh, StructuredBLStats]:
    """Stitch the boundary layers of all elements into one TriMesh.

    Rays must be in surface order per element (as produced by
    :func:`repro.core.rays.refine_rays`); each element's ray ring is
    closed (last ray stitches back to the first).
    """
    coord_id: Dict[Tuple[float, float], int] = {}
    pts: List[Tuple[float, float]] = []
    tris: List[Tuple[int, int, int]] = []
    stats = StructuredBLStats()

    def vid(p: Tuple[float, float]) -> int:
        i = coord_id.get(p)
        if i is None:
            i = len(pts)
            coord_id[p] = i
            pts.append(p)
        return i

    def emit(a, b, c) -> None:
        """Append triangle (a, b, c) if it is strictly CCW."""
        if a == b or b == c or a == c:
            stats.n_degenerate_skipped += 1
            return
        o = orient2d(a, b, c)
        if o > 0:
            tris.append((vid(a), vid(b), vid(c)))
        elif o < 0:
            stats.n_inverted_skipped += 1
        else:
            stats.n_degenerate_skipped += 1

    for rays in element_rays:
        n = len(rays)
        for i in range(n):
            left = _ray_points(rays[i])
            right = _ray_points(rays[(i + 1) % n])
            common = min(len(left), len(right))
            # Quad strip over the shared layers.
            for j in range(common - 1):
                a = left[j]
                b = left[j + 1]
                c = right[j + 1]
                d = right[j]
                # Split along the shorter diagonal for better shapes.
                dac = (a[0] - c[0]) ** 2 + (a[1] - c[1]) ** 2
                dbd = (b[0] - d[0]) ** 2 + (b[1] - d[1]) ** 2
                if dac <= dbd:
                    emit(a, b, c)
                    emit(a, c, d)
                else:
                    emit(a, b, d)
                    emit(b, c, d)
                stats.n_quads += 1
            # Staircase: fan the taller ray's extra points onto the
            # shorter ray's tip.
            if len(left) > common:
                anchor = right[common - 1]
                for j in range(common - 1, len(left) - 1):
                    emit(left[j], left[j + 1], anchor)
                    stats.n_stair_triangles += 1
            elif len(right) > common:
                anchor = left[common - 1]
                for j in range(common - 1, len(right) - 1):
                    emit(anchor, right[j + 1], right[j])
                    stats.n_stair_triangles += 1

    mesh = TriMesh(
        np.asarray(pts, dtype=np.float64),
        np.asarray(tris, dtype=np.int32) if tris else
        np.empty((0, 3), dtype=np.int32),
    )
    return mesh, stats
