"""Subdomain container for the projection-based decomposition (Section III).

A :class:`Subdomain` owns a contiguous coordinate array plus *maintained*
x-sorted and y-sorted index orders, giving the paper's O(1) bounding box
and O(1) median lookup, and linear-time sortedness-preserving partition.
The implementation mirrors the paper's memory tricks:

* the partition walks each sorted order once and splits it with boolean
  masks (no comparisons re-done downstream, no re-sorting);
* the left child *reuses* the parent's arrays where possible (the paper
  reuses the original subdomain's storage for the left subdomain);
* hull (dividing-path) vertices are duplicated into both children and
  flagged ``boundary`` so the "no internal vertices" termination criterion
  can be evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..geometry.aabb import AABB

__all__ = ["Subdomain"]


@dataclass
class Subdomain:
    """A set of vertices under decomposition.

    Attributes
    ----------
    coords:
        ``(n, 2)`` float64 vertex coordinates (local storage).
    gid:
        ``(n,)`` global vertex ids (into the original point cloud).
    x_order / y_order:
        Index arrays into ``coords`` sorted lexicographically by (x, y)
        and (y, x) respectively.
    boundary:
        ``(n,)`` bool; True for vertices on a dividing path (or marked by
        the caller as domain boundary).
    level:
        Recursion depth (root = 0).
    path_edges:
        Constrained dividing-path edges as local index pairs, accumulated
        from every split that created this subdomain.
    """

    coords: np.ndarray
    gid: np.ndarray
    x_order: np.ndarray
    y_order: np.ndarray
    boundary: np.ndarray
    level: int = 0
    path_edges: List[Tuple[int, int]] = field(default_factory=list)
    # Half-region constraints accumulated from ancestor splits: each entry
    # is (path polyline coords ordered along the cut axis, cut axis,
    # keep_sign) — a triangle belongs to this subdomain's region iff its
    # centroid lies on the keep_sign side of every ancestor path.
    regions: List[Tuple[np.ndarray, str, int]] = field(default_factory=list)

    # ------------------------------------------------------------------
    @classmethod
    def from_points(cls, points: np.ndarray,
                    gid: Optional[np.ndarray] = None,
                    boundary: Optional[np.ndarray] = None) -> "Subdomain":
        points = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError("points must be (n, 2)")
        n = len(points)
        if gid is None:
            gid = np.arange(n, dtype=np.int64)
        if boundary is None:
            boundary = np.zeros(n, dtype=bool)
        x_order = np.lexsort((points[:, 1], points[:, 0]))
        y_order = np.lexsort((points[:, 0], points[:, 1]))
        return cls(points, np.asarray(gid, dtype=np.int64), x_order, y_order,
                   np.asarray(boundary, dtype=bool))

    def __len__(self) -> int:
        return len(self.coords)

    # ------------------------------------------------------------------
    # O(1) queries via the sorted orders
    # ------------------------------------------------------------------
    def bbox(self) -> AABB:
        """Bounding box in O(1) from the ends of the sorted orders."""
        if len(self) == 0:
            raise ValueError("empty subdomain")
        xs, ys = self.coords[:, 0], self.coords[:, 1]
        return AABB(
            float(xs[self.x_order[0]]), float(ys[self.y_order[0]]),
            float(xs[self.x_order[-1]]), float(ys[self.y_order[-1]]),
        )

    def cut_axis(self) -> str:
        """Axis the median line is parallel to: the paper cuts with a line
        parallel to the *shortest* bbox edge, splitting the long dimension
        (avoids long skinny subdomains that are expensive to triangulate).

        Returns ``"y"`` for a vertical median line (splits x) or ``"x"``
        for a horizontal one (splits y).
        """
        box = self.bbox()
        return "y" if box.width >= box.height else "x"

    def median_vertex(self, axis: str) -> int:
        """Local index of the median vertex along the primary axis in O(1).

        ``axis`` is the *cut* axis; the primary axis is the other one.
        """
        order = self.x_order if axis == "y" else self.y_order
        return int(order[len(order) // 2])

    def has_internal_vertices(self) -> bool:
        return bool((~self.boundary).any())

    # ------------------------------------------------------------------
    # Partition (linear time, sortedness preserved)
    # ------------------------------------------------------------------
    def partition(self, axis: str, median_local: int,
                  hull_local: np.ndarray, *,
                  mode: str = "path") -> Tuple["Subdomain", "Subdomain"]:
        """Split into (left/below, right/above) children about the median,
        duplicating the dividing-path (``hull_local``) vertices into both.

        ``mode="path"`` (default) assigns every vertex by which side of
        the dividing path it lies on — the assignment Blelloch's theorem
        needs for the merged leaf triangulations to equal the global
        Delaunay triangulation exactly.  ``mode="coordinate"`` reproduces
        the paper's Section III optimisation (branch-free median-coordinate
        split of the sorted arrays); it is faster but near the path a
        vertex can land on the wrong side, in which case the merged mesh
        is still a valid conforming triangulation of the same points but
        may deviate from Delaunay in a band around the path (see the
        decomposition ablation benchmark).

        Path vertices become ``boundary`` in both children, and the new
        dividing-path edges (consecutive hull pairs) are appended to each
        child's ``path_edges``; surviving parent path edges are forwarded
        to whichever child holds both endpoints.
        """
        coords = self.coords
        hull_mask = np.zeros(len(coords), dtype=bool)
        hull_mask[hull_local] = True

        if mode == "coordinate":
            prim = 0 if axis == "y" else 1
            sec = 1 - prim
            key = coords[:, prim]
            sec_key = coords[:, sec]
            mk, msk = key[median_local], sec_key[median_local]
            # "Less than the median vertex" in lexicographic (primary,
            # secondary) order so duplicated primary coordinates split
            # deterministically; >= goes right (paper Section III).
            less = (key < mk) | ((key == mk) & (sec_key < msk))
            left_keep = less | hull_mask
            right_keep = (~less) | hull_mask
        elif mode == "path":
            from .projection import side_of_path  # local: avoid cycle

            path_coords = coords[hull_local]
            left_sign_ = 1 if axis == "y" else -1
            sides = np.zeros(len(coords), dtype=np.int8)
            for i in range(len(coords)):
                if hull_mask[i]:
                    continue
                sides[i] = side_of_path(path_coords, axis, coords[i])
            left_keep = hull_mask | (sides * left_sign_ > 0)
            right_keep = hull_mask | (sides * left_sign_ < 0)
            # Degenerate on-path non-hull points go to both sides.
            on_path = ~hull_mask & (sides == 0)
            left_keep |= on_path
            right_keep |= on_path
        else:
            raise ValueError(f"unknown partition mode: {mode}")

        left = self._make_child(left_keep, hull_mask)
        right = self._make_child(right_keep, hull_mask)

        # Distribute parent's surviving path edges and add the new path.
        path_coords = np.ascontiguousarray(coords[hull_local])
        # Orientation convention: the path runs in +u direction (+y for a
        # vertical cut, +x for a horizontal one).  "Left of the directed
        # path" (orient2d > 0) is smaller x for a vertical cut — the left
        # child — but LARGER y for a horizontal cut — the right child.
        left_sign = 1 if axis == "y" else -1
        for child, sign in ((left, left_sign), (right, -left_sign)):
            local_of = {int(g): i for i, g in enumerate(child.gid)}
            for (u, v) in self.path_edges:
                gu, gv = int(self.gid[u]), int(self.gid[v])
                if gu in local_of and gv in local_of:
                    child.path_edges.append((local_of[gu], local_of[gv]))
            for a, b in zip(hull_local, hull_local[1:]):
                ga, gb = int(self.gid[a]), int(self.gid[b])
                child.path_edges.append((local_of[ga], local_of[gb]))
            child.regions = list(self.regions)
            child.regions.append((path_coords, axis, sign))
        return left, right

    def _make_child(self, keep: np.ndarray, hull_mask: np.ndarray
                    ) -> "Subdomain":
        idx = np.flatnonzero(keep)
        remap = np.full(len(self.coords), -1, dtype=np.int64)
        remap[idx] = np.arange(len(idx))
        # Filter the sorted orders with one masked pass each: the result
        # stays sorted (stable subsequence of a sorted sequence).
        x_order = remap[self.x_order[keep[self.x_order]]]
        y_order = remap[self.y_order[keep[self.y_order]]]
        return Subdomain(
            coords=np.ascontiguousarray(self.coords[idx]),
            gid=self.gid[idx].copy(),
            x_order=x_order,
            y_order=y_order,
            boundary=(self.boundary | hull_mask)[idx],
            level=self.level + 1,
        )
