"""The push-button mesher: geometry in, hybrid anisotropic mesh out.

Composes every stage of the paper's Section II in order:

1. anisotropic boundary layers (extrusion rays, fans, intersection
   resolution, growth-function insertion, BL triangulation);
2. a graded near-body subdomain between the BL outer borders and the
   near-body box;
3. graded Delaunay decoupling of the inviscid far field into the four
   quadrants and their '+'-split descendants;
4. independent Ruppert refinement of every decoupled subdomain,
   dispatched through the pluggable executor layer
   (:mod:`repro.runtime.executor`): sequential (``backend="local"``),
   the SPMD threads runtime with RMA-window work stealing
   (``backend="threads"``), or GIL-free multiprocessing workers
   (``backend="processes"``);
5. merge into one conforming mesh.

"The user only needs to provide the input configuration and wait for the
output without any human intervention."
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..delaunay.cavity import INSERT_ENV, resolve_strategy_name
from ..delaunay.mesh import TriMesh, merge_meshes
from ..delaunay.refine import RUPPERT_BOUND
from ..geometry.aabb import AABB
from ..geometry.pslg import PSLG
from ..runtime import executor
from ..runtime import serde
from ..runtime.counters import timed
from ..sizing.functions import GradedDistanceSizing
from .bl_pipeline import (
    BoundaryLayerConfig,
    BoundaryLayerResult,
    generate_boundary_layer,
    interior_seed,
)
from .decouple import (
    DecoupledSubdomain,
    decouple_stream,
    estimate_triangles,
    initial_quadrants,
    march_path,
    refine_subdomain,
    ring_from_parts,
)

__all__ = [
    "MeshConfig",
    "MeshResult",
    "generate_mesh",
    "STREAM_ENV",
    "pack_mesh_request",
    "unpack_mesh_request",
    "request_cost",
    "mesh_workitem",
    "pack_adapt_item",
    "adapt_workitem",
    "unpack_adapt_result",
]

#: ``REPRO_STREAM=0`` disables streamed decompose->refine dispatch and
#: restores the barriered two-stage flow (decouple fully, then refine).
STREAM_ENV = "REPRO_STREAM"


def _stream_enabled(stream: Optional[bool]) -> bool:
    if stream is not None:
        return bool(stream)
    return os.environ.get(STREAM_ENV, "1") != "0"


@dataclass
class MeshConfig:
    """Push-button inputs: geometry handling plus BL parameters."""

    bl: BoundaryLayerConfig = field(default_factory=BoundaryLayerConfig)
    #: far-field extent in chord lengths (paper: 30-50).
    farfield_chords: float = 40.0
    #: isotropic surface edge length at the BL outer border; ``None``
    #: derives it from the BL tip spacing (smooth hand-off, Fig. 5).
    h0: Optional[float] = None
    #: sizing gradation rate toward the far field.
    grading: float = 0.35
    #: cap on far-field edge length in chords; ``None`` = uncapped.
    h_max_chords: Optional[float] = 4.0
    #: near-body box margin around the BL, in chords.
    nearbody_margin_chords: float = 0.75
    #: number of decoupled inviscid subdomains to generate.
    target_subdomains: int = 16
    quality_bound: float = RUPPERT_BOUND
    max_steiner: int = 2_000_000


@dataclass
class MeshResult:
    mesh: TriMesh
    bl: BoundaryLayerResult
    nearbody_mesh: TriMesh
    inviscid_meshes: List[TriMesh]
    subdomains: List[DecoupledSubdomain]
    timings: Dict[str, float]
    #: numeric run statistics plus the resolved ``insert_strategy`` name.
    stats: Dict[str, object]


def _median_spacing(border: np.ndarray) -> float:
    d = np.linalg.norm(np.diff(np.vstack([border, border[:1]]), axis=0),
                       axis=1)
    return float(np.median(d))


def generate_mesh(
    pslg: PSLG,
    config: Optional[MeshConfig] = None,
    *,
    backend: Optional[str] = None,
    n_ranks: int = 4,
    stream: Optional[bool] = None,
    insert_strategy: Optional[str] = None,
) -> MeshResult:
    """Generate the full hybrid mesh for ``pslg`` (all body loops).

    ``backend`` selects the refinement executor (any name from
    :func:`repro.runtime.executor.available_backends`); ``None`` falls
    back to the ``REPRO_BACKEND`` environment variable, then ``local``.
    Every backend produces the identical mesh — the subdomains are
    decoupled, so execution order cannot change the result.

    ``stream`` (default on; ``REPRO_STREAM=0`` disables) feeds work to
    the executor as it is discovered: the near-body subdomain is
    submitted before decoupling starts and each decoupled subdomain the
    moment it is final, so pool workers refine while the parent is
    still splitting — the paper's overlap of decomposition with
    refinement.  Submission order equals the barriered payload order,
    so the merged mesh is byte-identical either way.

    ``insert_strategy`` picks the Delaunay cavity-engine insertion
    strategy (any name from
    :func:`repro.delaunay.available_strategies`); ``None`` falls back
    to ``REPRO_INSERT``, then ``scalar``.  An explicit choice is
    exported through the environment for the duration of the run so
    worker processes triangulate with the same strategy.
    """
    strategy = resolve_strategy_name(insert_strategy)
    if insert_strategy is None:
        return _generate_mesh_impl(pslg, config, backend, n_ranks, stream,
                                   strategy)
    prev = os.environ.get(INSERT_ENV)
    os.environ[INSERT_ENV] = strategy
    try:
        return _generate_mesh_impl(pslg, config, backend, n_ranks, stream,
                                   strategy)
    finally:
        if prev is None:
            os.environ.pop(INSERT_ENV, None)
        else:
            os.environ[INSERT_ENV] = prev


def _generate_mesh_impl(
    pslg: PSLG,
    config: Optional[MeshConfig],
    backend: Optional[str],
    n_ranks: int,
    stream: Optional[bool],
    insert_strategy: str,
) -> MeshResult:
    config = config or MeshConfig()
    backend_impl = executor.get_backend(
        executor.resolve_backend_name(backend))
    timings: Dict[str, float] = {}
    chord = pslg.chord_length()

    # ------------------------------------------------------------------
    # 1. Boundary layers.
    # ------------------------------------------------------------------
    with timed("boundary_layer") as tm:
        bl = generate_boundary_layer(pslg, config.bl)
    timings["boundary_layer"] = tm.elapsed

    # ------------------------------------------------------------------
    # 2. Sizing function from the BL outer borders.
    # ------------------------------------------------------------------
    borders = np.vstack(bl.outer_borders)
    h0 = config.h0 or max(
        float(np.median([_median_spacing(ob) for ob in bl.outer_borders])),
        1e-6,
    )
    h_max = (config.h_max_chords * chord
             if config.h_max_chords is not None else math.inf)
    sizing = GradedDistanceSizing(borders, h0=h0, grading=config.grading,
                                  h_max=h_max)

    # ------------------------------------------------------------------
    # 3. Near-body subdomain: graded box around the BL.
    # ------------------------------------------------------------------
    with timed("nearbody_setup") as tm:
        margin = config.nearbody_margin_chords * chord
        nb_box = AABB.of_points(borders).expanded(margin)
        corners = [
            (nb_box.xmin, nb_box.ymin), (nb_box.xmax, nb_box.ymin),
            (nb_box.xmax, nb_box.ymax), (nb_box.xmin, nb_box.ymax),
        ]
        nb_ring_parts = [
            march_path(corners[i], corners[(i + 1) % 4], sizing)
            for i in range(4)
        ]
        nb_ring = ring_from_parts(nb_ring_parts)
        nearbody = DecoupledSubdomain(
            ring=nb_ring,
            hole_rings=[np.asarray(ob) for ob in bl.outer_borders],
            holes=[interior_seed(np.asarray(ob)) for ob in bl.outer_borders],
        )
    timings["nearbody_setup"] = tm.elapsed

    # ------------------------------------------------------------------
    # 4. Decouple the far field.
    # ------------------------------------------------------------------
    cx, cy = nb_box.center
    half = config.farfield_chords * chord
    ff_box = AABB(cx - half, cy - half, cx + half, cy + half)
    quads = initial_quadrants(nb_box, ff_box, sizing)
    target = max(config.target_subdomains - 1, 4)

    # ------------------------------------------------------------------
    # 4+5. Decouple the far field and refine everything (near-body +
    #    inviscid subdomains) through the executor layer: each work item
    #    is one serde-packed subdomain, each result one packed mesh,
    #    ordered like the inputs.  Streamed dispatch (default) submits
    #    the near-body subdomain before decoupling starts and every
    #    decoupled subdomain as it is produced; barriered dispatch
    #    (``REPRO_STREAM=0``) decouples fully, then maps.  Submission
    #    order is identical, so the merge below cannot tell them apart.
    # ------------------------------------------------------------------
    def _cost(s: DecoupledSubdomain) -> float:
        return (s.est_triangles if s.est_triangles > 0.0
                else max(estimate_triangles(s, sizing), 1.0))

    def _payload(s: DecoupledSubdomain) -> serde.Buffers:
        return _pack_refine_item(s, sizing, config.quality_bound,
                                 config.max_steiner)

    if _stream_enabled(stream):
        # Note: under streaming, ``refinement`` wall time spans the
        # whole overlapped region (it contains ``decoupling``).
        with timed("refinement") as tm_refine:
            session = backend_impl.stream_workitems(_refine_workitem,
                                                    n_ranks=n_ranks)
            session.submit(_payload(nearbody), cost=_cost(nearbody))
            subdomains: List[DecoupledSubdomain] = []
            with timed("decoupling") as tm_decouple:
                for s in decouple_stream(quads, sizing, target_count=target):
                    subdomains.append(s)
                    session.submit(_payload(s), cost=_cost(s))
            packed = session.results()
            meshes = [serde.unpack_mesh(b) for b in packed]
        work = [nearbody] + subdomains
    else:
        with timed("decoupling") as tm_decouple:
            subdomains = list(decouple_stream(quads, sizing,
                                              target_count=target))
        work = [nearbody] + subdomains
        with timed("refinement") as tm_refine:
            payloads = [_payload(s) for s in work]
            costs = [_cost(s) for s in work]
            packed = backend_impl.map_workitems(_refine_workitem, payloads,
                                                costs=costs, n_ranks=n_ranks)
            meshes = [serde.unpack_mesh(b) for b in packed]
    timings["decoupling"] = tm_decouple.elapsed
    timings["refinement"] = tm_refine.elapsed

    # ------------------------------------------------------------------
    # 6. Merge.
    # ------------------------------------------------------------------
    with timed("merge") as tm:
        merged = merge_meshes([bl.mesh] + meshes)
    timings["merge"] = tm.elapsed

    stats = {
        "n_triangles": float(merged.n_triangles),
        "n_points": float(merged.n_points),
        "n_bl_triangles": float(bl.mesh.n_triangles),
        "n_subdomains": float(len(work)),
        "h0": h0,
        "chord": chord,
        "insert_strategy": insert_strategy,
        **{f"bl_{k}": v for k, v in bl.stats.items()},
    }
    return MeshResult(
        mesh=merged,
        bl=bl,
        nearbody_mesh=meshes[0],
        inviscid_meshes=meshes[1:],
        subdomains=list(subdomains),
        timings=timings,
        stats=stats,
    )


def _pack_refine_item(sub: DecoupledSubdomain, sizing,
                      quality_bound: float,
                      max_steiner: int) -> serde.Buffers:
    """One refinement work item as a flat buffer dict (process-safe)."""
    payload = serde.nest("sub.", serde.pack_subdomain(sub))
    payload.update(serde.nest("sizing.", serde.pack_sizing(sizing)))
    payload["params"] = np.asarray([quality_bound, float(max_steiner)],
                                   dtype=np.float64)
    return payload


def _refine_workitem(payload: serde.Buffers) -> serde.Buffers:
    """Executor work function: refine one packed subdomain.

    Module-level by contract — the processes backend resolves it by
    import path in worker processes; the serde round trip is exact, so
    every backend produces bit-identical meshes.
    """
    sub = serde.unpack_subdomain(serde.unnest("sub.", payload))
    sizing = serde.unpack_sizing(serde.unnest("sizing.", payload))
    quality_bound, max_steiner = (float(x) for x in payload["params"])
    mesh = refine_subdomain(sub, sizing, quality_bound=quality_bound,
                            max_steiner=int(max_steiner))
    return serde.pack_mesh(mesh)


# ----------------------------------------------------------------------
# Whole-request work items (the meshing service's unit of batching)
# ----------------------------------------------------------------------
def pack_mesh_request(pslg: PSLG,
                      config: Optional[MeshConfig] = None) -> serde.Buffers:
    """Flatten one complete ``generate_mesh`` input into a buffer dict.

    The dict carries *everything* that determines the output mesh —
    PSLG geometry plus the full (BL-nested) :class:`MeshConfig` — and
    nothing that does not (backend, rank count and streaming mode are
    transport knobs; backend parity guarantees they cannot change the
    result).  Its :func:`repro.runtime.serde.canonical_hash` is therefore
    a sound content address for the service's mesh cache.
    """
    payload = serde.nest("pslg.", serde.pack_pslg(pslg))
    payload.update(serde.nest("config.",
                              serde.pack_mesh_config(config or MeshConfig())))
    return payload


def unpack_mesh_request(payload: serde.Buffers):
    """Inverse of :func:`pack_mesh_request` -> ``(pslg, config)``."""
    pslg = serde.unpack_pslg(serde.unnest("pslg.", payload))
    config = serde.unpack_mesh_config(serde.unnest("config.", payload))
    return pslg, config


def request_cost(payload: serde.Buffers) -> float:
    """Largest-first scheduling weight for one packed mesh request.

    Surface point count times subdomain count tracks total refinement
    work well enough to keep a batch's big request off the critical
    path; exactness does not matter, monotonicity does.
    """
    n_points = float(len(payload["pslg.points"]))
    params = payload["config.params"]
    target = float(params[list(serde._MESH_FIELDS).index(
        "target_subdomains")])
    return max(n_points * max(target, 1.0), 1.0)


def mesh_workitem(payload: serde.Buffers) -> serde.Buffers:
    """Executor work function: run one *whole* mesh request.

    The meshing service batches concurrent client requests through a
    single ``map_workitems`` dispatch with this function, so each pool
    worker owns one request end to end.  Refinement inside the worker
    runs on the serial backend — the parallelism axis here is *across*
    requests, and a nested process pool inside a pool worker would
    oversubscribe the machine.
    """
    pslg, config = unpack_mesh_request(payload)
    result = generate_mesh(pslg, config, backend="serial")
    return serde.pack_mesh(result.mesh)


# ----------------------------------------------------------------------
# Metric adaptation work items
# ----------------------------------------------------------------------
def pack_adapt_item(mesh: TriMesh, metric_field, *,
                    holes=(), l_min: Optional[float] = None,
                    l_max: Optional[float] = None,
                    max_passes: int = 3,
                    smooth_iterations: int = 1,
                    protect_segments: bool = False) -> serde.Buffers:
    """One metric-adaptation work item as a flat buffer dict."""
    from ..delaunay.adapt import HIGH_BAND, LOW_BAND

    payload = serde.nest("mesh.", serde.pack_mesh(mesh))
    payload.update(serde.nest("metric.", serde.pack_metric(metric_field)))
    holes_arr = (np.asarray(holes, dtype=np.float64).reshape(-1, 2)
                 if len(holes) else np.empty((0, 2), dtype=np.float64))
    payload["holes"] = holes_arr
    payload["params"] = np.asarray(
        [LOW_BAND if l_min is None else float(l_min),
         HIGH_BAND if l_max is None else float(l_max),
         float(max_passes), float(smooth_iterations),
         1.0 if protect_segments else 0.0],
        dtype=np.float64)
    return payload


def adapt_workitem(payload: serde.Buffers) -> serde.Buffers:
    """Executor work function: adapt one packed mesh to a packed metric.

    Module-level by contract (processes backend resolves it by import
    path).  Returns the adapted mesh plus the flat operation counters
    from :class:`repro.delaunay.AdaptReport`, nested under ``report.``.
    """
    from ..delaunay.adapt import adapt_mesh

    mesh = serde.unpack_mesh(serde.unnest("mesh.", payload))
    metric_field = serde.unpack_metric(serde.unnest("metric.", payload))
    l_min, l_max, max_passes, smooth_iters, protect = (
        float(x) for x in payload["params"])
    holes = [tuple(h) for h in payload["holes"]]
    new_mesh, report = adapt_mesh(
        mesh, metric_field,
        holes=holes,
        l_min=l_min,
        l_max=l_max,
        max_passes=int(max_passes),
        smooth_iterations=int(smooth_iters),
        protect_segments=bool(protect),
    )
    out = serde.nest("mesh.", serde.pack_mesh(new_mesh))
    out["report.counters"] = np.asarray(
        [report.passes, report.splits, report.collapses, report.flips,
         report.smooth_moves], dtype=np.int32)
    out["report.conformity"] = np.asarray(
        [report.conformity_before, report.conformity_after],
        dtype=np.float64)
    out["report.trace"] = np.asarray(report.conformity_trace,
                                     dtype=np.float64)
    return out


def unpack_adapt_result(out: serde.Buffers):
    """Inverse of :func:`adapt_workitem`'s output -> ``(mesh, report)``."""
    from ..delaunay.adapt import AdaptReport

    mesh = serde.unpack_mesh(serde.unnest("mesh.", out))
    c = out["report.counters"]
    conf = out["report.conformity"]
    report = AdaptReport(
        passes=int(c[0]), splits=int(c[1]), collapses=int(c[2]),
        flips=int(c[3]), smooth_moves=int(c[4]),
        conformity_before=float(conf[0]), conformity_after=float(conf[1]),
        conformity_trace=[float(x) for x in out["report.trace"]],
    )
    return mesh, report
