"""Anisotropic boundary-layer generation pipeline (Sections II.A-II.D).

Per body loop: surface normals -> refined rays (fans at cusps) ->
intersection resolution (self, then multi-element) -> growth-function
point insertion with isotropy termination -> tip-border simplification ->
constrained Delaunay triangulation of the boundary-layer annulus.

The output bundles everything downstream stages need: the per-element ray
sets (the parallel decomposition partitions their points), the outer
borders (the inviscid region's inner boundaries), and the BL mesh itself.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..delaunay.constrained import carve, triangulate_pslg
from ..delaunay.mesh import TriMesh
from ..geometry.aabb import segment_extent_box
from ..geometry.predicates import orient2d
from ..geometry.primitives import segments_intersect
from ..geometry.pslg import PSLG
from ..runtime.counters import phase
from ..sizing.functions import SizingFunction
from ..sizing.growth import GeometricGrowth, GrowthFunction
from ..spatial.adt import ADT
from .insertion import insert_points
from .intersections import (
    resolve_multi_element_intersections,
    resolve_self_intersections,
)
from .normals import loop_surface_vertices
from .rays import Ray, refine_rays

__all__ = ["BoundaryLayerConfig", "BoundaryLayerResult", "generate_boundary_layer",
           "interior_seed"]


@dataclass
class BoundaryLayerConfig:
    """User-facing boundary-layer parameters (the push-button inputs)."""

    first_spacing: float = 1e-3
    growth_ratio: float = 1.3
    max_layers: int = 60
    max_height: float = math.inf
    large_angle_deg: float = 40.0
    cusp_angle_deg: float = 100.0
    max_ray_angle_deg: float = 20.0
    isotropy_factor: float = 1.0
    truncation_factor: float = 0.5
    growth: Optional[GrowthFunction] = None  # overrides first_spacing/ratio
    #: "delaunay" (default: CDT of the BL cloud, the mode the parallel
    #: decomposition operates on) or "structured" (direct quad-strip
    #: stitching, see repro.core.structured_bl).
    triangulation: str = "delaunay"

    def growth_function(self) -> GrowthFunction:
        if self.growth is not None:
            return self.growth
        return GeometricGrowth(self.first_spacing, self.growth_ratio)


@dataclass
class BoundaryLayerResult:
    element_rays: List[List[Ray]]
    points: np.ndarray
    mesh: TriMesh
    outer_borders: List[np.ndarray]          # per element, closed (m, 2)
    surface_loops: List[np.ndarray]          # per element, closed (m, 2)
    stats: Dict[str, float] = field(default_factory=dict)


def interior_seed(loop_pts: np.ndarray) -> Tuple[float, float]:
    """A point strictly inside a simple CCW polygon.

    Probes inward offsets of edge midpoints, verified by ray-casting
    point-in-polygon; robust for concave (cove) outlines where the
    centroid may fall outside.
    """
    n = len(loop_pts)
    per = np.linalg.norm(np.diff(np.vstack([loop_pts, loop_pts[:1]]),
                                 axis=0), axis=1)
    for i in range(n):
        a = loop_pts[i]
        b = loop_pts[(i + 1) % n]
        ex, ey = b[0] - a[0], b[1] - a[1]
        elen = math.hypot(ex, ey)
        if elen == 0:
            continue
        # Inward normal of a CCW loop is the LEFT perpendicular.
        nx, ny = -ey / elen, ex / elen
        mx, my = 0.5 * (a[0] + b[0]), 0.5 * (a[1] + b[1])
        for scale in (0.3, 0.1, 0.03, 0.01):
            px, py = mx + nx * scale * elen, my + ny * scale * elen
            if _point_in_polygon(px, py, loop_pts):
                return (px, py)
    raise ValueError("could not find an interior seed (degenerate loop?)")


def _point_in_polygon(x: float, y: float, poly: np.ndarray) -> bool:
    """Even-odd ray casting (horizontal ray to +inf), vectorised."""
    poly = np.asarray(poly, dtype=np.float64)
    xi, yi = poly[:, 0], poly[:, 1]
    xj, yj = np.roll(xi, 1), np.roll(yi, 1)
    straddle = (yi > y) != (yj > y)
    if not straddle.any():
        return False
    with np.errstate(divide="ignore", invalid="ignore"):
        x_cross = xi + (y - yi) / (yj - yi) * (xj - xi)
    hits = straddle & (x < x_cross)
    return bool(hits.sum() & 1)


def _dedupe_ring(points: List[tuple]) -> List[tuple]:
    """Drop consecutive duplicates (including the wrap-around pair)."""
    out: List[tuple] = []
    for p in points:
        if not out or p != out[-1]:
            out.append(p)
    if len(out) > 1 and out[0] == out[-1]:
        out.pop()
    return out


def _border_rings(element_rays: Sequence[Sequence[Ray]]
                  ) -> List[List[Tuple[tuple, int]]]:
    """Per element: deduped ring of (tip point, ray index)."""
    rings = []
    for rays in element_rays:
        ring: List[Tuple[tuple, int]] = []
        for idx, r in enumerate(rays):
            tip = r.tip()
            if not ring or tip != ring[-1][0]:
                ring.append((tip, idx))
        if len(ring) > 1 and ring[0][0] == ring[-1][0]:
            ring.pop()
        rings.append(ring)
    return rings


def _simplify_borders(element_rays: Sequence[List[Ray]], *,
                      max_passes: int = 40) -> int:
    """Shrink rays until no two outer-border segments properly cross.

    Truncation can leave tip borders that still cross (their own element's
    or another's).  Each pass finds crossings with an ADT over all border
    segments and pops the last layer point of every ray bounding a
    crossing segment.  Returns the number of layer points removed.
    """
    removed = 0
    for _ in range(max_passes):
        rings = _border_rings(element_rays)
        segs: List[Tuple[tuple, tuple]] = []
        owners: List[Tuple[int, int, int]] = []  # (element, ray_i, ray_j)
        for el, ring in enumerate(rings):
            m = len(ring)
            if m < 2:
                continue
            for i in range(m):
                (p0, r0), (p1, r1) = ring[i], ring[(i + 1) % m]
                segs.append((p0, p1))
                owners.append((el, r0, r1))
        # Surface segments participate as immovable obstacles: a border
        # segment must not cross any element's body either.
        for el, rays in enumerate(element_rays):
            ring_pts = _dedupe_ring([r.origin for r in rays])
            m = len(ring_pts)
            for i in range(m):
                segs.append((ring_pts[i], ring_pts[(i + 1) % m]))
                owners.append((el, -1, -1))
        if not segs:
            return removed
        boxes = [segment_extent_box(a, b) for a, b in segs]
        bounds = boxes[0]
        for b in boxes[1:]:
            bounds = bounds.union(b)
        tree = ADT(bounds.expanded(1e-12 + 1e-9 * max(bounds.width,
                                                      bounds.height)))
        tree.build(boxes)
        guilty: set = set()
        for i, (a1, b1) in enumerate(segs):
            for j in tree.query(boxes[i]):
                if j <= i:
                    continue
                a2, b2 = segs[j]
                if segments_intersect(a1, b1, a2, b2, proper_only=True):
                    guilty.add(i)
                    guilty.add(j)
        if not guilty:
            return removed
        shrunk = set()
        progress = False
        # Deterministic shrink order (lint R4): the set's hash order would
        # let PYTHONHASHSEED pick which ray loses a layer first.
        for g in sorted(guilty):
            el, r0, r1 = owners[g]
            if r0 < 0:
                continue  # surface segments are immovable
            for ridx in (r0, r1):
                key = (el, ridx)
                if key in shrunk:
                    continue
                ray = element_rays[el][ridx]
                if ray.heights:
                    ray.heights.pop()
                    ray.max_height = (ray.heights[-1] if ray.heights else 0.0)
                    removed += 1
                    progress = True
                    shrunk.add(key)
        if not progress:
            break
    # One final check: if crossings persist, the geometry is unusable.
    rings = _border_rings(element_rays)
    raise RuntimeError(
        "could not untangle boundary-layer borders after shrinking; "
        f"rings sizes={[len(r) for r in rings]}"
    )


def generate_boundary_layer(
    pslg: PSLG,
    config: Optional[BoundaryLayerConfig] = None,
    *,
    sizing: Optional[SizingFunction] = None,
) -> BoundaryLayerResult:
    """Run the full anisotropic boundary-layer stage on all body loops."""
    config = config or BoundaryLayerConfig()
    growth = config.growth_function()
    default_height = min(growth.height(config.max_layers), config.max_height)

    # Sub-phases feed --profile and the simulator's serial-setup
    # breakdown (the BL stage is the paper's dominant sequential cost).
    element_rays: List[List[Ray]] = []
    with phase("bl.rays"):
        for el, loop in enumerate(pslg.body_loops):
            sv = loop_surface_vertices(
                pslg, loop,
                large_angle=math.radians(config.large_angle_deg),
                cusp_angle=math.radians(config.cusp_angle_deg),
            )
            rays = refine_rays(
                sv, element=el,
                max_ray_angle=math.radians(config.max_ray_angle_deg),
            )
            element_rays.append(rays)

    with phase("bl.intersections"):
        n_self = 0
        for rays in element_rays:
            n_self += resolve_self_intersections(
                rays, default_height,
                truncation_factor=config.truncation_factor,
            )
        n_multi = 0
        if len(element_rays) > 1:
            n_multi = resolve_multi_element_intersections(
                element_rays, default_height,
                truncation_factor=config.truncation_factor,
            )

    with phase("bl.insert_points"):
        n_points = 0
        for rays in element_rays:
            n_points += insert_points(
                rays, growth,
                sizing=sizing,
                isotropy_factor=config.isotropy_factor,
                max_layers=config.max_layers,
                max_height=config.max_height,
            )
        n_shrunk = _simplify_borders(element_rays)

    # ------------------------------------------------------------------
    # Assemble the PSLG of the boundary-layer annuli and triangulate.
    # ------------------------------------------------------------------
    coord_id: Dict[tuple, int] = {}
    pts: List[tuple] = []

    def vid(p: tuple) -> int:
        i = coord_id.get(p)
        if i is None:
            i = len(pts)
            coord_id[p] = i
            pts.append(p)
        return i

    segments: List[Tuple[int, int]] = []
    surface_loops: List[np.ndarray] = []
    outer_borders: List[np.ndarray] = []
    holes: List[Tuple[float, float]] = []

    for el, rays in enumerate(element_rays):
        surf_ring = _dedupe_ring([r.origin for r in rays])
        outer_ring = _dedupe_ring([r.tip() for r in rays])
        surface_loops.append(np.asarray(surf_ring, dtype=np.float64))
        outer_borders.append(np.asarray(outer_ring, dtype=np.float64))
        for ring in (surf_ring, outer_ring):
            ids = [vid(p) for p in ring]
            m = len(ids)
            for i in range(m):
                u, v = ids[i], ids[(i + 1) % m]
                if u != v:
                    segments.append((u, v))
        holes.append(interior_seed(np.asarray(surf_ring)))
        # Interior layer points.
        for r in rays:
            for h in r.heights:
                vid(r.point_at(h))

    with phase("bl.triangulate"):
        if config.triangulation == "structured":
            from .structured_bl import triangulate_structured

            mesh, struct_stats = triangulate_structured(element_rays)
        elif config.triangulation == "delaunay":
            tri = triangulate_pslg(
                np.asarray(pts, dtype=np.float64),
                np.asarray(segments, dtype=np.int64),
            )
            mask = carve(tri, holes)
            mesh = tri.to_mesh(keep_mask=mask)
        else:
            raise ValueError(
                f"unknown BL triangulation mode: {config.triangulation!r}")

    return BoundaryLayerResult(
        element_rays=element_rays,
        points=np.asarray(pts, dtype=np.float64),
        mesh=mesh,
        outer_borders=outer_borders,
        surface_loops=surface_loops,
        stats={
            "n_rays": float(sum(len(r) for r in element_rays)),
            "n_points": float(len(pts)),
            "n_self_truncations": float(n_self),
            "n_multi_truncations": float(n_multi),
            "n_border_shrinks": float(n_shrunk),
            "n_triangles": float(mesh.n_triangles),
        },
    )
