"""Graded Delaunay decoupling of the inviscid region (Section II.E).

The far field (30-50 chord lengths of exponentially growing element area)
is split into subdomains whose *shared borders are pre-discretised* so
finely that independent Ruppert refinement of each subdomain never needs
to touch them — the Linardakis–Chrisochoides decoupling contract.  Border
vertex spacing follows the paper's Eq. (1): at a vertex with target
element area ``A``, the decoupling edge length is ``k = 1/2 sqrt(A/sqrt 2)``
and the next vertex is placed ``D in [2k/sqrt(3), 2k)`` away, moved closer
if ``D >= 2 k_next``.

Structure:

* :func:`march_path` — the graded vertex-insertion march along a segment;
* :func:`initial_quadrants` — the four quadrants around the near-body box
  (paper Fig. 9), all borders discretised once and *shared by reference*;
* :func:`decouple` — recursive '+'-shaped splitting, largest estimated
  triangle count first, never adding points to a subdomain's outer border
  (so no communication between owners would be needed);
* :func:`refine_subdomain` — independent Ruppert refinement with locked
  borders;
* :class:`DecoupledSubdomain` — a CCW ring of border vertices ("the
  vertices are stored in counter-clockwise order, so constructing the
  border is done by iterating over the vertices in order").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..delaunay.mesh import TriMesh
from ..delaunay.refine import RUPPERT_BOUND, Refiner
from ..delaunay.constrained import triangulate_pslg
from ..geometry.aabb import AABB
from ..geometry.predicates import exact_eq
from ..geometry.primitives import polygon_area
from ..sizing.functions import SizingFunction, decoupling_edge_length

__all__ = [
    "DecoupledSubdomain",
    "march_path",
    "ring_from_parts",
    "initial_quadrants",
    "decouple",
    "decouple_stream",
    "refine_subdomain",
    "estimate_triangles",
]


@dataclass
class DecoupledSubdomain:
    """A convex-ish inviscid subdomain: a CCW ring of border vertices.

    ``holes``/``hole_rings`` are used only by the near-body subdomain
    (the region between the boundary-layer outer borders and the
    near-body box).
    """

    ring: np.ndarray
    level: int = 0
    est_triangles: float = 0.0
    hole_rings: List[np.ndarray] = field(default_factory=list)
    holes: List[Tuple[float, float]] = field(default_factory=list)

    def area(self) -> float:
        a = polygon_area(self.ring)
        for hr in self.hole_rings:
            a -= abs(polygon_area(hr))
        return a

    def centroid(self) -> Tuple[float, float]:
        c = self.ring.mean(axis=0)
        return (float(c[0]), float(c[1]))


def march_path(
    p0: Tuple[float, float],
    p1: Tuple[float, float],
    sizing: SizingFunction,
    *,
    step_factor: float = 1.8,
) -> np.ndarray:
    """Graded vertex march from ``p0`` to ``p1`` (both included).

    Implements Section II.E: starting at ``v_current`` with
    ``k_current = k(A(v_current))``, the next vertex is placed
    ``D = step_factor * k_current`` ahead (``step_factor`` must lie in
    [2/sqrt(3), 2)) and pulled closer while ``D >= 2 k_next``; interior
    vertices are finally rescaled along the segment so the last step ends
    exactly on ``p1`` without compressing any gap below ``2k/sqrt(3)``
    locally (the rescale factor is bounded by one step over the total).
    """
    lo = 2.0 / math.sqrt(3.0)
    if not lo <= step_factor < 2.0:
        raise ValueError(f"step_factor must be in [2/sqrt(3), 2), got {step_factor}")
    p0 = (float(p0[0]), float(p0[1]))
    p1 = (float(p1[0]), float(p1[1]))
    dx, dy = p1[0] - p0[0], p1[1] - p0[1]
    total = math.hypot(dx, dy)
    if exact_eq(total, 0.0):
        raise ValueError("degenerate path")
    ux, uy = dx / total, dy / total

    ts = [0.0]
    d = total  # overwritten unless the first step already overshoots
    while True:
        x, y = p0[0] + ux * ts[-1], p0[1] + uy * ts[-1]
        k_cur = decoupling_edge_length(sizing.area_at(x, y))
        d = step_factor * k_cur
        # Enforce D < 2 k_next by stepping back toward the current vertex
        # until the next vertex's k admits the spacing.
        for _ in range(64):
            nx, ny = x + ux * d, y + uy * d
            k_next = decoupling_edge_length(sizing.area_at(nx, ny))
            if d < 2.0 * k_next:
                break
            d *= 0.8
        if ts[-1] + d >= total:
            break
        ts.append(ts[-1] + d)
        if len(ts) > 10_000_000:
            raise RuntimeError("march did not terminate (sizing too fine?)")

    # Close the march on p1.  The forward march guarantees D < 2k for all
    # interior edges; the *final* edge to p1 may still violate the bound
    # when the sizing shrinks toward p1 (e.g. approaching the body).  Fix
    # with a backward march from p1 until the junction gap satisfies the
    # bound at both of its endpoints; the junction edge may end up shorter
    # than 2k/sqrt(3), which only over-refines locally.
    bs = [total]
    guard = 0
    while True:
        guard += 1
        if guard > 10_000_000:
            raise RuntimeError("backward march did not terminate")
        gap = bs[-1] - ts[-1]
        xf, yf = p0[0] + ux * ts[-1], p0[1] + uy * ts[-1]
        xb, yb = p0[0] + ux * bs[-1], p0[1] + uy * bs[-1]
        k_fw = decoupling_edge_length(sizing.area_at(xf, yf))
        k_bw = decoupling_edge_length(sizing.area_at(xb, yb))
        if gap < 2.0 * min(k_fw, k_bw):
            break
        d_b = step_factor * k_bw
        for _ in range(64):
            px, py = xb - ux * d_b, yb - uy * d_b
            k_prev = decoupling_edge_length(sizing.area_at(px, py))
            if d_b < 2.0 * k_prev:
                break
            d_b *= 0.8
        if bs[-1] - d_b <= ts[-1]:
            break  # would cross the forward front: accept the gap
        bs.append(bs[-1] - d_b)

    ts = ts + bs[::-1]
    pts = [(p0[0] + ux * t, p0[1] + uy * t) for t in ts[:-1]]
    pts.append(p1)
    return np.asarray(pts, dtype=np.float64)


def ring_from_parts(parts: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate polyline parts (each ordered) into a closed CCW ring,
    dropping the duplicated junction vertices."""
    out: List[Tuple[float, float]] = []
    for part in parts:
        for p in part:
            tp = (float(p[0]), float(p[1]))
            if not out or tp != out[-1]:
                out.append(tp)
    if len(out) > 1 and out[0] == out[-1]:
        out.pop()
    ring = np.asarray(out, dtype=np.float64)
    if polygon_area(ring) < 0:
        ring = ring[::-1].copy()
    return ring


def initial_quadrants(
    inner_box: AABB,
    outer_box: AABB,
    sizing: SizingFunction,
    *,
    step_factor: float = 1.8,
) -> List[DecoupledSubdomain]:
    """The four initial decoupled quadrants around the near-body box.

    Decoupling paths run from each inner-box corner to the matching
    outer-box corner (toward the far field), then the far-field border is
    marched "around the outer border" — every shared polyline is
    discretised exactly once and reused by both neighbours, which is what
    makes the subdomain borders consistent without communication.
    """
    if not outer_box.contains_box(inner_box):
        raise ValueError("outer box must contain inner box")
    I = [
        (inner_box.xmin, inner_box.ymin), (inner_box.xmax, inner_box.ymin),
        (inner_box.xmax, inner_box.ymax), (inner_box.xmin, inner_box.ymax),
    ]
    O = [
        (outer_box.xmin, outer_box.ymin), (outer_box.xmax, outer_box.ymin),
        (outer_box.xmax, outer_box.ymax), (outer_box.xmin, outer_box.ymax),
    ]
    diag = [march_path(I[c], O[c], sizing, step_factor=step_factor)
            for c in range(4)]
    outer = [march_path(O[c], O[(c + 1) % 4], sizing, step_factor=step_factor)
             for c in range(4)]
    inner = [march_path(I[c], I[(c + 1) % 4], sizing, step_factor=step_factor)
             for c in range(4)]

    quads: List[DecoupledSubdomain] = []
    for c in range(4):
        n = (c + 1) % 4
        ring = ring_from_parts([
            diag[c],                      # inner corner -> outer corner
            outer[c],                     # along the far field
            diag[n][::-1],                # back inward
            inner[c][::-1],               # along the near-body box (reversed)
        ])
        quads.append(DecoupledSubdomain(ring=ring, level=0))
    return quads


def estimate_triangles(sub: DecoupledSubdomain, sizing: SizingFunction,
                       *, n_samples: int = 64, seed: int = 0) -> float:
    """Estimated triangle count: subdomain area over mean element area.

    Element area is taken as half the sizing bound (Ruppert refinement
    with an area bound ``A`` produces triangles with typical area ~``A/2``);
    the constant cancels in load balancing but keeps absolute estimates
    honest for the cost model.
    """
    from .bl_pipeline import _point_in_polygon

    area = abs(sub.area())
    box = AABB.of_points(sub.ring)
    rng = np.random.default_rng(seed)
    vals: List[float] = []
    tries = 0
    while len(vals) < n_samples and tries < 50 * n_samples:
        tries += 1
        x = rng.uniform(box.xmin, box.xmax)
        y = rng.uniform(box.ymin, box.ymax)
        if _point_in_polygon(x, y, sub.ring):
            vals.append(sizing.area_at(x, y))
    if not vals:
        vals = [sizing.area_at(*sub.centroid())]
    mean_elem = 0.5 * float(np.mean(vals))
    return area / mean_elem


def _arc_positions(ring: np.ndarray) -> np.ndarray:
    d = np.linalg.norm(np.diff(np.vstack([ring, ring[:1]]), axis=0), axis=1)
    return np.concatenate([[0.0], np.cumsum(d)])


def plus_split(sub: DecoupledSubdomain, sizing: SizingFunction,
               *, step_factor: float = 1.8) -> List[DecoupledSubdomain]:
    """Split a subdomain into four with a '+'-shaped interior path.

    A new point is created at the subdomain centre and four graded paths
    connect it to *existing* border vertices nearest to the four quarter
    positions of the border arc — new points are only inserted in the
    interior, leaving every shared border untouched (Section II.E).
    """
    ring = sub.ring
    n = len(ring)
    if n < 8:
        raise ValueError("ring too coarse to split")
    arc = _arc_positions(ring)
    total = arc[-1]
    center = ring.mean(axis=0)
    anchors: List[int] = []
    for q in range(4):
        target = (q + 0.5) * total / 4.0
        i = int(np.argmin(np.abs(arc[:-1] - target)))
        if i in anchors:
            i = (i + 1) % n
        anchors.append(i)
    anchors = sorted(set(anchors))
    if len(anchors) < 4:
        raise ValueError("could not pick 4 distinct anchors")

    paths = [march_path((center[0], center[1]), tuple(ring[a]), sizing,
                        step_factor=step_factor)
             for a in anchors]
    children: List[DecoupledSubdomain] = []
    for q in range(4):
        a0, a1 = anchors[q], anchors[(q + 1) % 4]
        if a1 > a0:
            slice_pts = ring[a0:a1 + 1]
        else:
            slice_pts = np.vstack([ring[a0:], ring[:a1 + 1]])
        child_ring = ring_from_parts([
            slice_pts,
            paths[(q + 1) % 4][::-1],   # border anchor a1 -> centre
            paths[q],                   # centre -> anchor a0
        ])
        children.append(DecoupledSubdomain(ring=child_ring,
                                           level=sub.level + 1))
    return children


def decouple_stream(
    subdomains: Sequence[DecoupledSubdomain],
    sizing: SizingFunction,
    *,
    target_count: int,
    min_ring: int = 8,
    step_factor: float = 1.8,
):
    """Generator form of :func:`decouple` for streamed dispatch.

    Yields each subdomain the moment it can no longer change — a
    subdomain too coarse to split (or holding hole rings) is final as
    soon as the splitter pops it, so a streaming executor can start
    refining it while the remaining splits are still running.  The
    overall yield order is *exactly* the list :func:`decouple` returns
    (finalised subdomains in pop order, then the heap's residual array
    order), which keeps streamed and barriered merges byte-identical.
    """
    import heapq

    if target_count < len(subdomains):
        yield from subdomains
        return
    heap = []
    counter = 0
    for s in subdomains:
        if exact_eq(s.est_triangles, 0.0):
            s.est_triangles = estimate_triangles(s, sizing)
        heapq.heappush(heap, (-s.est_triangles, counter, s))
        counter += 1
    n_done = 0
    while heap and len(heap) + n_done < target_count:
        _, _, sub = heapq.heappop(heap)
        if len(sub.ring) < min_ring or sub.hole_rings:
            n_done += 1
            yield sub
            continue
        try:
            kids = plus_split(sub, sizing, step_factor=step_factor)
        except ValueError:
            n_done += 1
            yield sub
            continue
        for k in kids:
            k.est_triangles = estimate_triangles(k, sizing)
            heapq.heappush(heap, (-k.est_triangles, counter, k))
            counter += 1
    for _, _, s in heap:
        yield s


def decouple(
    subdomains: Sequence[DecoupledSubdomain],
    sizing: SizingFunction,
    *,
    target_count: int,
    min_ring: int = 8,
    step_factor: float = 1.8,
) -> List[DecoupledSubdomain]:
    """Recursively '+'-split until ``target_count`` subdomains exist.

    The subdomain with the largest estimated triangle count splits first
    (cost-balanced decoupling, paper Fig. 10: "each subdomain has roughly
    the same number of triangles").  Subdomains whose ring is too coarse
    to split are left alone.
    """
    return list(decouple_stream(subdomains, sizing,
                                target_count=target_count,
                                min_ring=min_ring,
                                step_factor=step_factor))


def refine_subdomain(
    sub: DecoupledSubdomain,
    sizing: SizingFunction,
    *,
    quality_bound: float = RUPPERT_BOUND,
    max_steiner: int = 2_000_000,
) -> TriMesh:
    """Independently Ruppert-refine one decoupled subdomain.

    Border segments are locked (never split): the decoupling sized them so
    refinement terminates without touching them, keeping neighbouring
    subdomain meshes conforming with zero communication.
    """
    parts = [sub.ring] + sub.hole_rings
    pts: List[Tuple[float, float]] = []
    segs: List[Tuple[int, int]] = []
    for part in parts:
        base = len(pts)
        m = len(part)
        pts.extend((float(x), float(y)) for x, y in part)
        segs.extend((base + i, base + (i + 1) % m) for i in range(m))
    tri = triangulate_pslg(np.asarray(pts), np.asarray(segs, dtype=np.int64))
    refiner = Refiner(
        tri,
        holes=sub.holes,
        quality_bound=quality_bound,
        area_fn=lambda x, y: sizing.area_at(x, y),
        lock_segments=True,
        max_steiner=max_steiner,
    )
    refiner.refine()
    return refiner.to_mesh()
