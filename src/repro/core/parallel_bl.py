"""Distributed boundary-layer point computation (Section II.C).

"This process is done in parallel where each process has a portion of the
surface vertices (with the first and last vertex of a process' subset of
the surface duplicated) and computes the normal at the vertex to create
the corresponding ray. ... The points are then gathered at the root
process ... Since the points are locally stored contiguously and the
ordering is implicitly known by each process due to the structured
configuration, only the coordinates need to be communicated to the root."

This module runs the per-vertex stages (normals, ray refinement, growth
insertion) chunked over any executor backend:

1. the input PSLG and config are made available to every worker (by
   reference on the in-process backends, as serde buffer dicts on the
   processes backend);
2. every rank takes a contiguous chunk of each loop's vertices, extended
   by ONE overlap vertex on each side (so turn angles and the
   vertex-pair refinement of Section II.B are computable locally);
3. ranks compute rays and layer heights for their chunk;
4. the root gathers **coordinate arrays only** (float64 ``(n, 2)``), and
   because chunk order is implicit, reassembly is concatenation.

The ``threads`` backend runs the historical SPMD path (explicit
``gather`` on the communicator, byte-accounted); ``serial`` and
``processes`` dispatch one work item per chunk through
:mod:`repro.runtime.executor` — the result coordinate buffers are the
only payload that crosses worker boundaries either way.

Ray-to-ray intersection resolution needs global geometry, so — as in the
paper, where it precedes point insertion — it runs on the root on the
gathered ray set.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..geometry.pslg import PSLG
from ..runtime import executor, serde
from ..runtime.comm import ThreadComm, run_spmd
from .bl_pipeline import BoundaryLayerConfig
from .normals import loop_surface_vertices
from .rays import Ray, refine_rays

__all__ = ["parallel_bl_points", "chunk_bounds"]


def chunk_bounds(n: int, size: int, rank: int) -> Tuple[int, int]:
    """Contiguous [lo, hi) chunk of ``n`` items for ``rank`` of ``size``."""
    base = n // size
    rem = n % size
    lo = rank * base + min(rank, rem)
    hi = lo + base + (1 if rank < rem else 0)
    return lo, hi


def _local_rays(pslg: PSLG, config: BoundaryLayerConfig, rank: int,
                size: int) -> List[Tuple[int, int, Ray]]:
    """Rays owned by ``rank``: (element, owner order key, ray)."""
    out: List[Tuple[int, int, Ray]] = []
    for el, loop in enumerate(pslg.body_loops):
        sv = loop_surface_vertices(
            pslg, loop,
            large_angle=math.radians(config.large_angle_deg),
            cusp_angle=math.radians(config.cusp_angle_deg),
        )
        n = len(sv)
        lo, hi = chunk_bounds(n, size, rank)
        if hi <= lo:
            continue
        # One-vertex overlap on each side: refine_rays for the pair
        # (v_i, v_{i+1}) is owned by the rank that owns v_i, and needs
        # v_{i+1}; classification of v_i needs v_{i-1} — both supplied by
        # loop_surface_vertices above (it sees the whole loop; only the
        # RAY work is divided, mirroring the paper's duplicated endpoint
        # vertices).
        wrapped = [sv[(i) % n] for i in range(lo, hi + 1)]
        rays = refine_rays(
            wrapped, element=el,
            max_ray_angle=math.radians(config.max_ray_angle_deg),
            closed=False,
        )
        # refine_rays on the open chain emits the base ray of every input
        # vertex plus pair fills; drop the base ray of the final overlap
        # vertex (owned by the next rank).  Only the LAST such ray: with a
        # single rank the overlap vertex IS the first vertex again, whose
        # own base ray must survive.
        last_pos = wrapped[-1].position
        for k in range(len(rays) - 1, -1, -1):
            if rays[k].origin == last_pos and rays[k].origin_kind == "vertex":
                rays.pop(k)
                break
        # Pair-fill rays between the last owned vertex and the overlap
        # vertex stay with this rank (the paper's convention: the forward
        # neighbour's ray pair belongs to the current vertex).
        for k, r in enumerate(rays):
            out.append((el, lo * 10_000 + k, r))
    return out


def _chunk_coords(pslg: PSLG, config: BoundaryLayerConfig, rank: int,
                  size: int) -> np.ndarray:
    """All BL points of one chunk as a contiguous ``(n, 2)`` array."""
    from .insertion import insert_points

    owned = _local_rays(pslg, config, rank, size)
    rays = [r for _, _, r in owned]
    insert_points(
        rays, config.growth_function(),
        isotropy_factor=config.isotropy_factor,
        max_layers=config.max_layers,
        max_height=config.max_height,
    )
    # Coordinates-only payload: one contiguous float64 array.
    coords: List[Tuple[float, float]] = []
    for r in rays:
        coords.append(r.origin)
        coords.extend(r.point_at(h) for h in r.heights)
    return np.asarray(coords, dtype=np.float64).reshape(-1, 2)


def _bl_chunk_workitem(payload: serde.Buffers) -> serde.Buffers:
    """Executor work function: BL points for one vertex chunk.

    Module-level by contract (the processes backend imports it by path);
    the result is the coordinates-only buffer the paper's gather ships.
    """
    pslg = serde.unpack_pslg(serde.unnest("pslg.", payload))
    config = serde.unpack_bl_config(serde.unnest("blcfg.", payload))
    rank, size = (int(x) for x in payload["chunk"])
    return {"coords": _chunk_coords(pslg, config, rank, size)}


def parallel_bl_points(
    pslg: PSLG,
    config: Optional[BoundaryLayerConfig] = None,
    *,
    n_ranks: int = 4,
    backend: Optional[str] = None,
) -> Tuple[np.ndarray, Dict[str, float]]:
    """Compute all BL layer points in parallel; returns (coords, stats).

    The returned array contains every ray origin and layer point in rank/
    chunk order — identical for every backend and rank count.  ``stats``
    reports the gathered byte volume — the quantity the paper's
    coordinates-only optimisation minimises.  ``backend`` accepts any
    executor registry name; ``None`` falls back to ``REPRO_BACKEND``,
    then ``threads`` (the SPMD path with explicit communicator gather).
    """
    config = config or BoundaryLayerConfig()
    backend_name = executor.canonical_backend_name(
        executor.resolve_backend_name(backend, default="threads"))
    if backend_name == "threads":
        return _parallel_bl_points_spmd(pslg, config, n_ranks)

    payload_base = serde.nest("pslg.", serde.pack_pslg(pslg))
    payload_base.update(serde.nest("blcfg.", serde.pack_bl_config(config)))
    payloads = [
        {**payload_base,
         "chunk": np.asarray([rank, n_ranks], dtype=np.int32)}
        for rank in range(n_ranks)
    ]
    results = executor.get_backend(backend_name).map_workitems(
        _bl_chunk_workitem, payloads, n_ranks=n_ranks)
    chunks = [r["coords"] for r in results]
    coords = np.vstack([c for c in chunks if len(c)])
    # The wire payload is the same coordinates-only volume the SPMD
    # gather accounts: one (n, 2) float64 buffer per non-root chunk
    # (the root's own chunk never crosses a boundary in a gather).
    total_bytes = sum(int(c.nbytes) for c in chunks[1:])
    stats = {
        "n_points": float(len(coords)),
        "gather_bytes": float(total_bytes),
        "bytes_per_point": float(total_bytes) / max(len(coords), 1),
    }
    return coords, stats


def _parallel_bl_points_spmd(
    pslg: PSLG,
    config: BoundaryLayerConfig,
    n_ranks: int,
) -> Tuple[np.ndarray, Dict[str, float]]:
    """The SPMD threads path: explicit communicator gather on the root."""

    def fn(comm: ThreadComm):
        payload = _chunk_coords(pslg, config, comm.rank, comm.size)
        gathered = comm.gather(payload, root=0)
        comm.barrier()
        if comm.rank == 0:
            total_bytes = comm.total_bytes_sent()
            return np.vstack([g for g in gathered if len(g)]), total_bytes
        return None

    results = run_spmd(n_ranks, fn)
    coords, total_bytes = results[0]
    stats = {
        "n_points": float(len(coords)),
        "gather_bytes": float(total_bytes),
        "bytes_per_point": float(total_bytes) / max(len(coords), 1),
    }
    return coords, stats
