"""Surface normals and turn-angle classification at PSLG vertices.

Section II.A of the paper: every vertex of the discretised surface emits a
ray along its outward normal (Fig. 2).  The vertex normal is the
normalised bisector of the two adjacent edge normals.  Where the surface
slope changes rapidly (leading edge) or is discontinuous (trailing-edge
cusp, blunt-base corners), the angle between neighbouring normals grows
and triggers the refinement of Section II.B — classified here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import List

import numpy as np

from ..geometry.pslg import PSLG, Loop
from ..geometry.primitives import normalize, perp_right, signed_turn_angle

__all__ = ["VertexKind", "SurfaceVertex", "loop_surface_vertices"]


class VertexKind(Enum):
    """Classification of a surface vertex by its exterior turn angle."""

    SMOOTH = "smooth"          # |turn| below the large-angle threshold
    LARGE_ANGLE = "large"      # convex turn large enough to need ray fans
    CUSP = "cusp"              # near-reversal (trailing-edge cusp)
    CONCAVE = "concave"        # reflex corner (cove) — self-intersection risk


@dataclass
class SurfaceVertex:
    """A PSLG surface vertex with its differential data.

    Attributes
    ----------
    index:
        Global PSLG vertex index.
    position:
        ``(x, y)``.
    normal:
        Outward unit normal (bisector of adjacent edge normals).
    turn:
        Exterior turn angle in radians at the vertex: positive where the
        surface turns *convex* (away from the body), negative at reflex
        (concave) corners.  A straight surface has turn 0; a trailing-edge
        cusp approaches pi.
    kind:
        :class:`VertexKind` classification.
    edge_length_before / edge_length_after:
        Lengths of the incident surface edges (used to size fans and the
        isotropy hand-off).
    """

    index: int
    position: tuple
    normal: tuple
    turn: float
    kind: VertexKind
    edge_length_before: float
    edge_length_after: float


def loop_surface_vertices(
    pslg: PSLG,
    loop: Loop,
    *,
    large_angle: float = math.radians(40.0),
    cusp_angle: float = math.radians(100.0),
) -> List[SurfaceVertex]:
    """Compute normals and classifications for every vertex of ``loop``.

    ``large_angle`` is the threshold above which the convex turn triggers
    refining rays; ``cusp_angle`` the threshold for full fans (Fig. 4).
    For a CCW body loop the outward normal of edge ``t`` is the right
    perpendicular of its tangent.
    """
    if not 0 < large_angle <= cusp_angle < math.pi:
        raise ValueError("need 0 < large_angle <= cusp_angle < pi")
    pts = pslg.loop_points(loop)
    tangents = pslg.loop_edge_tangents(loop)
    lengths = pslg.loop_edge_lengths(loop)
    n = len(pts)
    out: List[SurfaceVertex] = []
    for i in range(n):
        t_in = tangents[(i - 1) % n]   # edge arriving at vertex i
        t_out = tangents[i]            # edge leaving vertex i
        n_in = perp_right(t_in)
        n_out = perp_right(t_out)
        # Exterior turn: for a CCW loop (interior on the left), a convex
        # corner turns the tangent counter-clockwise (left), giving a
        # positive signed angle; reflex (concave) corners turn right.
        turn = signed_turn_angle(t_in, t_out)
        bx, by = n_in[0] + n_out[0], n_in[1] + n_out[1]
        if math.hypot(bx, by) < 1e-12:
            # Opposite edge normals (perfect cusp): bisector undefined;
            # use the direction opposite the mean tangent.
            bx, by = -(t_in[0] + t_out[0]), -(t_in[1] + t_out[1])
            if math.hypot(bx, by) < 1e-12:
                # Doubled-back zero-width sliver: fall back to n_in.
                bx, by = n_in
        normal = normalize((bx, by))

        if turn <= -large_angle:
            kind = VertexKind.CONCAVE
        elif turn >= cusp_angle:
            kind = VertexKind.CUSP
        elif turn >= large_angle:
            kind = VertexKind.LARGE_ANGLE
        else:
            kind = VertexKind.SMOOTH
        out.append(
            SurfaceVertex(
                index=int(loop.indices[i]),
                position=(float(pts[i, 0]), float(pts[i, 1])),
                normal=normal,
                turn=float(turn),
                kind=kind,
                edge_length_before=float(lengths[(i - 1) % n]),
                edge_length_after=float(lengths[i]),
            )
        )
    return out
