"""Boundary-layer point insertion along rays (Section II.C).

With intersections resolved, each ray receives points at the heights of
its growth function, stopping at the first of:

* the ray's ``max_height`` (set by intersection truncation),
* the **isotropy condition** — when the layer thickness reaches the local
  tangential spacing, further anisotropic layers would be thicker than
  wide; stopping there makes the outermost BL triangles isotropic and
  hands off smoothly to the graded inviscid region (Fig. 5),
* the configured number of layers / total height cap.

The points are stored per ray as heights (the coordinates are implied by
origin + h * direction) — this is what makes the paper's communication
trick possible: "only the coordinates need to be communicated to the
root", and in our runtime the gather sends plain float arrays.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from ..sizing.functions import SizingFunction
from ..sizing.growth import GrowthFunction
from .rays import Ray

__all__ = ["insert_points", "bl_point_cloud"]


def insert_points(
    rays: Sequence[Ray],
    growth: GrowthFunction,
    *,
    sizing: Optional[SizingFunction] = None,
    isotropy_factor: float = 1.0,
    max_layers: int = 200,
    max_height: float = math.inf,
) -> int:
    """Fill ``ray.heights`` for every ray; returns total points inserted.

    ``sizing`` supplies the local isotropic edge length target: the
    stopping rule is ``spacing(k) >= isotropy_factor * h_iso`` where
    ``h_iso = sqrt(4 * area / sqrt(3))`` (edge of the equilateral triangle
    with the sizing function's area).  Without a sizing function the
    tangential ray spacing (``ray.surface_spacing``) is the target: stop
    when the layers become as thick as the surface elements are wide.
    """
    if isotropy_factor <= 0:
        raise ValueError("isotropy_factor must be positive")
    if max_layers < 1:
        raise ValueError("need at least one layer")
    total = 0
    for ray in rays:
        ray.heights = []
        for k in range(1, max_layers + 1):
            h = growth.height(k)
            if h > ray.max_height or h > max_height:
                break
            x, y = ray.point_at(h)
            if sizing is not None:
                area = sizing.area_at(x, y)
                h_iso = math.sqrt(4.0 * area / math.sqrt(3.0))
            else:
                h_iso = ray.surface_spacing if ray.surface_spacing > 0 else math.inf
            spacing = growth.spacing(k)
            if spacing >= isotropy_factor * h_iso and k > 1:
                break
            ray.heights.append(h)
        total += len(ray.heights)
    return total


def bl_point_cloud(rays: Sequence[Ray]) -> np.ndarray:
    """All boundary-layer points (ray origins first, then layer points).

    Origins of fan rays coincide; duplicates are removed while keeping
    the first occurrence, so the surface polyline vertices stay in order
    at the front of the array (the property the decomposition and the
    root-gather rely on).
    """
    pts: List[tuple] = []
    seen = set()
    for ray in rays:
        key = ray.origin
        if key not in seen:
            seen.add(key)
            pts.append(ray.origin)
    for ray in rays:
        for h in ray.heights:
            p = ray.point_at(h)
            if p not in seen:
                seen.add(p)
                pts.append(p)
    return np.asarray(pts, dtype=np.float64)
