"""Paraboloid projection and dividing-path extraction (Section II.D).

The Blelloch et al. projection-based decomposition exploits the duality
between the 2D Delaunay triangulation and the 3D lower convex hull of the
lifted points z = |p|^2: the Delaunay edges crossed by a median line are
exactly the edges of the 2D lower convex hull of the points *projected
onto a paraboloid centred at the median vertex and flattened onto the
vertical plane perpendicular to the cut axis* (paper Fig. 6b; proof in
Kadow's thesis).

Concretely, for a vertical median line through ``m = (mx, my)`` (cut axis
``"y"``), each point ``p`` maps to::

    u = p.y                     (coordinate along the line)
    v = (p.x - mx)^2 + (p.y - my)^2   (squared distance to the centre)

and the lower hull of the ``(u, v)`` set — computable in linear time from
the maintained y-sorted order with the monotone chain — is the dividing
path.  (Centring at the median vertex only adds a function *linear in u*
plus a constant to the canonical lift, which leaves hull membership
unchanged but keeps the numbers small — the paper's stated reason for
storing projected coordinates inside the Vertex objects.)
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..delaunay.hull import lower_hull_sorted
from .subdomain import Subdomain

__all__ = ["project_onto_paraboloid", "dividing_path", "side_of_path"]


def side_of_path(path: np.ndarray, axis: str, point) -> int:
    """Orientation sign of ``point`` against a u-monotone dividing path.

    ``path`` is the ``(k, 2)`` polyline ordered along the cut axis
    (+y for ``axis="y"``, +x for ``axis="x"``).  The sign is the robust
    orientation against the path segment *nearest* to the point among
    those whose u-range covers the point's u (weakly monotone runs — a
    path edge parallel to the median line — make the covering segment
    ambiguous; the covering strip's segment gives the correct side for a
    monotone chain).  +1 means left of the directed path (smaller x for a
    vertical cut, larger y for a horizontal one); 0 means exactly on it.
    """
    from ..geometry.predicates import orient2d

    if len(path) < 2:
        return 0
    u = point[1] if axis == "y" else point[0]
    us = path[:, 1] if axis == "y" else path[:, 0]
    # Covering segment: within the strip u in [us[j], us[j+1]] the chain
    # is exactly that segment, so the orientation against it is the side.
    j = int(np.searchsorted(us, u, side="right")) - 1
    j = min(max(j, 0), len(path) - 2)
    return orient2d(path[j], path[j + 1], point)


def project_onto_paraboloid(coords: np.ndarray, axis: str,
                            center: Tuple[float, float]) -> np.ndarray:
    """Flattened paraboloid coordinates ``(u, v)`` for every point.

    ``axis`` is the cut axis: ``"y"`` (vertical median line) keeps u = y;
    ``"x"`` keeps u = x.
    """
    coords = np.asarray(coords, dtype=np.float64)
    dx = coords[:, 0] - center[0]
    dy = coords[:, 1] - center[1]
    v = dx * dx + dy * dy
    u = coords[:, 1] if axis == "y" else coords[:, 0]
    return np.column_stack([u, v])


def dividing_path(sub: Subdomain, axis: str, median_local: int) -> np.ndarray:
    """Local indices of the dividing-path vertices, ordered along the line.

    Consecutive pairs are Delaunay edges of the subdomain's point set
    (and, by the decomposition invariant, of the original full set).
    The median vertex itself always lies on the path: it projects to the
    paraboloid's apex ``(u_m, 0)``, the unique minimum of ``v``.
    """
    center = (float(sub.coords[median_local, 0]),
              float(sub.coords[median_local, 1]))
    uv = project_onto_paraboloid(sub.coords, axis, center)
    order = sub.y_order if axis == "y" else sub.x_order
    # The maintained order is sorted by u (with ties broken by the other
    # coordinate, not by v). Fix tie runs so the sweep sees lexicographic
    # (u, v) order, preserving the linear-time bound for distinct u.
    order = _fix_tie_runs(uv, np.asarray(order))
    hull = lower_hull_sorted(uv, order)
    return np.asarray(hull, dtype=np.int64)


def _fix_tie_runs(uv: np.ndarray, order: np.ndarray) -> np.ndarray:
    """Re-sort runs of equal u by v (runs are rare and short)."""
    u = uv[order, 0]
    out = order.copy()
    n = len(order)
    i = 0
    while i < n:
        j = i + 1
        while j < n and u[j] == u[i]:
            j += 1
        if j - i > 1:
            run = out[i:j]
            out[i:j] = run[np.argsort(uv[run, 1], kind="stable")]
        i = j
    return out
