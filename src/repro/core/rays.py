"""Extrusion rays: creation, large-angle refinement, cusp and blunt-TE fans.

Section II.A-II.B: each surface vertex is the origin of a ray along its
normal.  Where the angle between *neighbouring* rays is too large the
spacing between corresponding layer points would grow too fast, causing
interpolation error in the PDE solve; the fix is

* **between two vertices** (large angle between their normals): insert new
  uniformly spaced surface points on the connecting edge, with normals
  linearly interpolated between the two original normals;
* **at a cusp** (trailing edge, blunt-base corner): emit a *fan* of rays
  that all share the cusp vertex as origin, directions linearly
  interpolated — "the fan of rays will curve inward towards the cusp
  point" (Fig. 4): interpolating (rather than bisecting) makes consecutive
  fan rays bend progressively toward the wake direction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..geometry.primitives import distance, normalize, slerp_unit
from .normals import SurfaceVertex, VertexKind

__all__ = ["Ray", "build_rays", "refine_rays", "angle_between_rays"]


@dataclass
class Ray:
    """One extrusion ray.

    ``max_height`` is the allowed extrusion distance (``inf`` until
    intersection resolution clips it).  ``origin_kind`` records why the
    ray exists (plain vertex, interpolated large-angle ray, fan member).
    """

    origin: tuple
    direction: tuple
    element: int = 0
    surface_index: int = -1           # PSLG vertex index (-1 for inserted)
    origin_kind: str = "vertex"       # vertex | interpolated | fan
    max_height: float = math.inf
    surface_spacing: float = 0.0      # local tangential spacing (isotropy)
    heights: List[float] = field(default_factory=list)  # filled by insertion

    def point_at(self, h: float) -> tuple:
        return (
            self.origin[0] + h * self.direction[0],
            self.origin[1] + h * self.direction[1],
        )

    def tip(self) -> tuple:
        """Endpoint of the ray at its last inserted height (or origin)."""
        return self.point_at(self.heights[-1]) if self.heights else self.origin


def angle_between_rays(r1: Ray, r2: Ray) -> float:
    from ..geometry.primitives import angle_between

    return angle_between(r1.direction, r2.direction)


def build_rays(vertices: Sequence[SurfaceVertex], element: int = 0) -> List[Ray]:
    """One ray per surface vertex along its outward normal."""
    rays = []
    for v in vertices:
        rays.append(
            Ray(
                origin=v.position,
                direction=v.normal,
                element=element,
                surface_index=v.index,
                surface_spacing=0.5 * (v.edge_length_before + v.edge_length_after),
            )
        )
    return rays


def refine_rays(
    vertices: Sequence[SurfaceVertex],
    element: int = 0,
    *,
    max_ray_angle: float = math.radians(20.0),
    closed: bool = True,
) -> List[Ray]:
    """Build the refined ray set for one closed surface loop.

    For every pair of consecutive vertices whose normals differ by more
    than ``max_ray_angle``, new interpolated rays are added: at a cusp or
    blunt corner the fan shares the corner vertex as origin; otherwise new
    origins are spaced uniformly along the surface edge between the two
    vertices (linear interpolation of both position and normal, Section
    II.B).  Concave vertices get no extra rays — their treatment is the
    intersection clipping of :mod:`repro.core.intersections`.
    """
    if not 0 < max_ray_angle < math.pi:
        raise ValueError("max_ray_angle must be in (0, pi)")
    n = len(vertices)
    if n < (3 if closed else 2):
        raise ValueError("need at least 3 surface vertices (2 for a chain)")
    rays: List[Ray] = []
    for i, v in enumerate(vertices):
        # 1. The vertex's own ray — for cusps this is the central fan ray.
        base = Ray(
            origin=v.position,
            direction=v.normal,
            element=element,
            surface_index=v.index,
            origin_kind="vertex",
            surface_spacing=0.5 * (v.edge_length_before + v.edge_length_after),
        )
        # 2. Fan around a cusp/large-angle vertex: rays at the SAME origin
        # interpolating from the incoming edge normal to the vertex normal
        # and on to the outgoing edge normal.  We realise this by fanning
        # between the previous vertex's normal direction and this one (and
        # symmetric on the far side) — equivalently, handle each
        # consecutive PAIR below and fan at the shared origin when the
        # vertex is a cusp.
        rays.append(base)

        if not closed and i == n - 1:
            break  # open chain: no wrap-around pair
        w = vertices[(i + 1) % n]
        ang = _angle(v.normal, w.normal)
        if ang <= max_ray_angle:
            continue
        n_extra = int(math.ceil(ang / max_ray_angle)) - 1
        fan_at_v = v.kind in (VertexKind.CUSP, VertexKind.LARGE_ANGLE)
        fan_at_w = w.kind in (VertexKind.CUSP, VertexKind.LARGE_ANGLE)
        for j in range(1, n_extra + 1):
            t = j / (n_extra + 1)
            # Constant-angular-rate interpolation: uniform fan spacing
            # even across a near-reversal trailing-edge cusp.
            direction = slerp_unit(v.normal, w.normal, t)
            if fan_at_v and not fan_at_w:
                origin, kind, sidx = v.position, "fan", v.index
            elif fan_at_w and not fan_at_v:
                origin, kind, sidx = w.position, "fan", w.index
            elif fan_at_v and fan_at_w:
                # Split the fan between the two corners (blunt TE base).
                if t < 0.5:
                    origin, kind, sidx = v.position, "fan", v.index
                else:
                    origin, kind, sidx = w.position, "fan", w.index
            else:
                # Smooth-but-curved region (leading edge): interpolate new
                # surface origins along the edge v -> w.
                origin = (
                    v.position[0] + t * (w.position[0] - v.position[0]),
                    v.position[1] + t * (w.position[1] - v.position[1]),
                )
                kind, sidx = "interpolated", -1
            rays.append(
                Ray(
                    origin=origin,
                    direction=direction,
                    element=element,
                    surface_index=sidx,
                    origin_kind=kind,
                    surface_spacing=(
                        v.edge_length_after / (n_extra + 1)
                        if kind == "interpolated"
                        else min(v.edge_length_after, v.edge_length_before)
                    ),
                )
            )
    return rays


def _angle(u, v) -> float:
    from ..geometry.primitives import angle_between

    return angle_between(u, v)
