"""Ray intersection resolution: self- and multi-element (Section II.B).

After ray refinement, extrusion rays may cross — inside a concave cove
(self-intersection, Fig. 13b-c) or against a neighbouring element's
boundary layer (multi-element intersection, Fig. 13d).  An intersecting
pair would produce tangled, inverted boundary-layer elements, so each
offending ray is *truncated*: "the ray will only have points inserted up
to the intersection point."

Pruning hierarchy (exactly the paper's):

1. **AABB stage** — for multi-element checks, candidate rays are kept only
   if they intersect the axis-aligned bounding box of the other element's
   boundary layer, tested with the (modified) Cohen–Sutherland outcode
   loop;
2. **ADT stage** — surviving candidates have their segment extent boxes
   projected to 4D points and queried against an alternating digital tree
   of the opposing segments' extent boxes, reducing the candidate pairs to
   near neighbours in O(log n) per query;
3. **exact stage** — robust segment intersection tests, and truncation at
   the computed crossing point.

The truncation keeps ``truncation_factor`` of the distance to the crossing
(default 0.5: each of two mutually crossing rays stops halfway, which
leaves room for the well-shaped transition triangles in Figs. 13b-e; the
paper truncates *at* the intersection point, but with both rays retained a
shared stop point would produce coincident vertices).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..geometry.aabb import AABB, segment_extent_box
from ..geometry.clipping import segment_intersects_box
from ..geometry.primitives import (
    distance,
    segment_intersection_point,
    segments_intersect,
)
from ..spatial.adt import ADT
from .rays import Ray

__all__ = [
    "ray_segment",
    "resolve_self_intersections",
    "resolve_multi_element_intersections",
    "outer_border_segments",
]


def ray_segment(ray: Ray, default_height: float) -> Tuple[tuple, tuple]:
    """The ray as a segment from its origin to its current allowed tip."""
    h = min(ray.max_height, default_height)
    return ray.origin, ray.point_at(h)


def _truncate(ray: Ray, hit_distance: float, factor: float) -> None:
    ray.max_height = min(ray.max_height, factor * hit_distance)


def resolve_self_intersections(
    rays: Sequence[Ray],
    default_height: float,
    *,
    truncation_factor: float = 0.5,
    max_passes: int = 8,
) -> int:
    """Clip mutually crossing rays of ONE element; returns #truncations.

    Rays sharing an origin (fan members) cannot "properly" cross and are
    skipped by using proper-crossing tests only.  Because truncating one
    pair can reveal no new crossings (segments only shrink), a single
    pass over the ADT candidates suffices for correctness; extra passes
    just converge the pairwise halving, so we iterate until stable.
    """
    if not rays:
        return 0
    if not 0 < truncation_factor <= 1.0:
        raise ValueError("truncation_factor must be in (0, 1]")
    total = 0
    for _ in range(max_passes):
        segs = [ray_segment(r, default_height) for r in rays]
        boxes = [segment_extent_box(a, b) for a, b in segs]
        bounds = boxes[0]
        for b in boxes[1:]:
            bounds = bounds.union(b)
        tree = ADT(bounds.expanded(1e-12 + 1e-9 * max(bounds.width,
                                                      bounds.height)))
        tree.build(boxes)
        changed = 0
        for i, (a1, b1) in enumerate(segs):
            for j in tree.query(boxes[i]):
                if j <= i:
                    continue
                a2, b2 = segs[j]
                if rays[i].origin == rays[j].origin:
                    continue  # same fan origin
                if not segments_intersect(a1, b1, a2, b2, proper_only=True):
                    continue
                p = segment_intersection_point(a1, b1, a2, b2)
                if p is None:
                    continue
                di = distance(rays[i].origin, p)
                dj = distance(rays[j].origin, p)
                new_i = truncation_factor * di
                new_j = truncation_factor * dj
                if new_i < min(rays[i].max_height, default_height) - 1e-15:
                    _truncate(rays[i], di, truncation_factor)
                    changed += 1
                if new_j < min(rays[j].max_height, default_height) - 1e-15:
                    _truncate(rays[j], dj, truncation_factor)
                    changed += 1
        total += changed
        if changed == 0:
            break
    return total


def outer_border_segments(
    rays: Sequence[Ray], default_height: float
) -> List[Tuple[tuple, tuple]]:
    """The boundary layer's enclosing outer border: tip-to-tip polyline.

    The rays are in surface order around a closed loop, so consecutive
    tips bound the outermost layer; the returned closed polyline is the
    "enclosing border segments of the airfoil component's boundary layer"
    used for multi-element checks.
    """
    tips = [r.point_at(min(r.max_height, default_height)) for r in rays]
    n = len(tips)
    return [(tips[i], tips[(i + 1) % n]) for i in range(n)]


def resolve_multi_element_intersections(
    element_rays: Sequence[Sequence[Ray]],
    default_height: float,
    *,
    truncation_factor: float = 0.5,
    margin: float = 0.0,
) -> int:
    """Clip rays of each element against every OTHER element's BL border.

    Implements the hierarchical prune: element-level AABB via
    Cohen–Sutherland, then an ADT over the other element's border-segment
    extent boxes, then exact tests.  Returns the number of truncations.

    ``margin`` expands the other element's border outward (a safety gap).
    """
    if not 0 < truncation_factor <= 1.0:
        raise ValueError("truncation_factor must be in (0, 1]")
    total = 0
    n_el = len(element_rays)
    for other in range(n_el):
        others = element_rays[other]
        if not others:
            continue
        border = outer_border_segments(others, default_height)
        # Include the surface itself so rays cannot pierce the body.
        surface = [(others[i].origin, others[(i + 1) % len(others)].origin)
                   for i in range(len(others))]
        all_segs = border + surface
        boxes = [segment_extent_box(a, b) for a, b in all_segs]
        el_box = boxes[0]
        for b in boxes[1:]:
            el_box = el_box.union(b)
        if margin:
            el_box = el_box.expanded(margin)
        tree = ADT(el_box.expanded(1e-12 + 1e-9 * max(el_box.width,
                                                      el_box.height)))
        tree.build(boxes)

        for mine in range(n_el):
            if mine == other:
                continue
            for ray in element_rays[mine]:
                a, b = ray_segment(ray, default_height)
                # Stage 1: Cohen–Sutherland against the element AABB.
                if not segment_intersects_box(a, b, el_box):
                    continue
                # Stage 2: ADT candidate segments.
                qbox = segment_extent_box(a, b)
                hits = tree.query(qbox)
                # Stage 3: exact intersection; truncate at nearest.
                nearest: Optional[float] = None
                for h in hits:
                    s0, s1 = all_segs[h]
                    # Improper (endpoint) touches count here: a ray grazing
                    # the other element's border corner must still stop.
                    if not segments_intersect(a, b, s0, s1):
                        continue
                    p = segment_intersection_point(a, b, s0, s1)
                    if p is None or p == (a[0], a[1]):
                        continue
                    d = distance(ray.origin, p)
                    if nearest is None or d < nearest:
                        nearest = d
                if nearest is not None:
                    before = ray.max_height
                    _truncate(ray, nearest, truncation_factor)
                    if ray.max_height < before:
                        total += 1
    return total
