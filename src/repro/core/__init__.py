"""Core algorithms: the paper's parallel anisotropic meshing contribution."""

from .bl_pipeline import (
    BoundaryLayerConfig,
    BoundaryLayerResult,
    generate_boundary_layer,
    interior_seed,
)
from .normals import SurfaceVertex, VertexKind, loop_surface_vertices
from .rays import Ray, build_rays, refine_rays

__all__ = [
    "BoundaryLayerConfig",
    "BoundaryLayerResult",
    "Ray",
    "SurfaceVertex",
    "VertexKind",
    "build_rays",
    "generate_boundary_layer",
    "interior_seed",
    "loop_surface_vertices",
    "refine_rays",
]
