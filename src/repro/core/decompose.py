"""Recursive projection-based decomposition driver (Section II.D).

Used as a *coarse partitioner* for the boundary-layer point cloud: the
cloud is recursively median-split along the shortest-bbox-edge axis, each
split contributing a path of true Delaunay edges; leaves are triangulated
independently (here with the incremental kernel, in the paper with
Triangle) and the union is the exact Delaunay triangulation of the whole
cloud — no merge step, no disturbed anisotropic alignment.

Termination criteria (paper Section II.D):
1. no internal (non-path, non-boundary) vertices remain,
2. vertex count below ``leaf_size``,
3. recursion level reached ``max_level`` (set from the process count).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..delaunay.constrained import triangulate_pslg
from ..delaunay.kernel import Triangulation
from ..delaunay.mesh import TriMesh, merge_meshes
from .projection import dividing_path
from .subdomain import Subdomain

__all__ = ["DecompositionResult", "decompose", "triangulate_leaves"]


@dataclass
class DecompositionResult:
    leaves: List[Subdomain]
    path_edges_global: List[Tuple[int, int]] = field(default_factory=list)
    n_splits: int = 0

    def sizes(self) -> List[int]:
        return [len(leaf) for leaf in self.leaves]

    def balance(self) -> float:
        """max/mean leaf size — 1.0 is perfect balance."""
        s = self.sizes()
        return max(s) / (sum(s) / len(s)) if s else float("nan")


def decompose(
    points: np.ndarray,
    *,
    leaf_size: int = 64,
    max_level: int = 32,
    boundary: Optional[np.ndarray] = None,
    partition_mode: str = "path",
) -> DecompositionResult:
    """Decompose a point cloud into independently triangulable leaves.

    ``max_level`` maps to the paper's process-count-dependent recursion
    tolerance: ``2**max_level`` leaves upper-bound the parallelism.
    ``partition_mode`` selects exact path-side assignment (``"path"``) or
    the paper's branch-free coordinate split (``"coordinate"``) — see
    :meth:`Subdomain.partition`.
    """
    points = np.asarray(points, dtype=np.float64)
    if len(points) < 1:
        raise ValueError("empty point cloud")
    root = Subdomain.from_points(points, boundary=boundary)
    result = DecompositionResult(leaves=[])
    stack = [root]
    while stack:
        sub = stack.pop()
        if (
            len(sub) <= max(leaf_size, 3)
            or sub.level >= max_level
            or not sub.has_internal_vertices()
        ):
            result.leaves.append(sub)
            continue
        axis = sub.cut_axis()
        median = sub.median_vertex(axis)
        hull = dividing_path(sub, axis, median)
        for a, b in zip(hull, hull[1:]):
            result.path_edges_global.append(
                (int(sub.gid[a]), int(sub.gid[b]))
            )
        left, right = sub.partition(axis, median, hull, mode=partition_mode)
        if len(left) >= len(sub) or len(right) >= len(sub):
            # Degenerate split (e.g. all points on the path): stop here.
            result.leaves.append(sub)
            continue
        result.n_splits += 1
        stack.append(left)
        stack.append(right)
    return result


from .projection import side_of_path as _side_of_path  # re-export for tests


def leaf_region_mask(leaf: Subdomain, mesh: TriMesh) -> np.ndarray:
    """Boolean mask of ``mesh`` triangles inside the leaf's region.

    A leaf's Delaunay triangulation covers the convex hull of its points,
    which spills across the dividing paths; only triangles whose centroid
    sits on the leaf's side of every ancestor path belong to it (the
    spill-over is re-created identically by the neighbouring leaf).
    """
    keep = np.ones(mesh.n_triangles, dtype=bool)
    if not leaf.regions or mesh.n_triangles == 0:
        return keep
    cents = mesh.centroids()
    for t in range(mesh.n_triangles):
        for path, axis, sign in leaf.regions:
            s = _side_of_path(path, axis, cents[t])
            if s * sign < 0:
                keep[t] = False
                break
    return keep


def triangulate_leaves(result: DecompositionResult) -> List[TriMesh]:
    """Independently triangulate every leaf (the concurrent stage).

    The dividing-path edges are supplied as constraints; by the
    projection-path theorem they are Delaunay edges, so constraining them
    changes nothing mathematically but protects against floating-point
    tie-breaks on cocircular point sets.  Each leaf mesh is clipped to the
    leaf's path-bounded region; the clipped meshes tile the global
    triangulation exactly and :func:`merge_meshes` welds them together.
    """
    out: List[TriMesh] = []
    for leaf in result.leaves:
        if len(leaf) < 3:
            out.append(TriMesh(leaf.coords,
                               np.empty((0, 3), dtype=np.int32)))
            continue
        segs = np.asarray(leaf.path_edges, dtype=np.int64).reshape(-1, 2)
        tri = triangulate_pslg(leaf.coords, segs, assume_sorted=False)
        mesh = tri.to_mesh()
        keep = leaf_region_mask(leaf, mesh)
        out.append(TriMesh(mesh.points, mesh.triangles[keep], mesh.segments))
    return out
