"""Command-line entry point: the push-button mesher.

Examples
--------
Generate a NACA 0012 hybrid mesh and write Triangle-format output::

    repro-mesh --naca 0012 --surface-points 101 -o out/naca0012

Three-element high-lift configuration with custom BL parameters::

    repro-mesh --three-element --first-spacing 1e-3 --growth-ratio 1.25 \\
        --farfield-chords 40 -o out/highlift --format npz

Meshing as a service — start a resident daemon once, then submit many
requests without paying startup/fork per mesh::

    repro-mesh serve --socket /tmp/mesh.sock --backend processes
    repro-mesh submit --socket /tmp/mesh.sock --naca 0012 -o out/naca0012
    repro-mesh submit --socket /tmp/mesh.sock --shutdown
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

import numpy as np

from .core.bl_pipeline import BoundaryLayerConfig
from .core.pipeline import MeshConfig, generate_mesh
from .delaunay import cavity as insertion
from .geometry.airfoils import naca4, three_element_airfoil
from .geometry.pslg import PSLG
from .io.meshio import read_poly, write_mesh_ascii, write_mesh_npz
from .lint import RULESET_VERSION, rule_ids, tsan
from .runtime import executor
from .runtime.counters import timed

__all__ = ["main", "build_parser"]

#: argv[0] values routed to the service subcommand parsers; everything
#: else goes through the legacy one-shot parser unchanged.
SERVICE_COMMANDS = ("serve", "submit")


def _add_geometry_arguments(p: argparse.ArgumentParser, *,
                            required: bool = True) -> None:
    geo = p.add_mutually_exclusive_group(required=required)
    geo.add_argument("--naca", metavar="XXXX",
                     help="NACA 4-digit single-element airfoil")
    geo.add_argument("--naca5", metavar="XXXXX",
                     help="NACA 5-digit single-element airfoil (230xx family)")
    geo.add_argument("--joukowski", action="store_true",
                     help="Joukowski airfoil (conformal map, cusped TE)")
    geo.add_argument("--flat-plate", action="store_true",
                     help="thin flat plate (blunt ends)")
    geo.add_argument("--cylinder", action="store_true",
                     help="circular cylinder section")
    geo.add_argument("--three-element", action="store_true",
                     help="synthetic 3-element high-lift configuration")
    geo.add_argument("--poly", metavar="FILE",
                     help="read the input PSLG from a Triangle .poly file")


def _add_mesh_arguments(p: argparse.ArgumentParser) -> None:
    p.add_argument("--surface-points", type=int, default=101,
                   help="surface stations per element (default 101)")
    p.add_argument("--first-spacing", type=float, default=1e-3,
                   help="wall spacing of the first BL layer")
    p.add_argument("--growth-ratio", type=float, default=1.3,
                   help="geometric BL growth ratio")
    p.add_argument("--bl-mode", choices=["delaunay", "structured"],
                   default="delaunay",
                   help="BL triangulation: constrained Delaunay (default) "
                   "or pseudo-structured quad-strip stitching")
    p.add_argument("--resample", type=int, metavar="N", default=0,
                   help="curvature-adaptively resample each surface loop "
                   "to N points before meshing")
    p.add_argument("--max-layers", type=int, default=60)
    p.add_argument("--farfield-chords", type=float, default=40.0)
    p.add_argument("--grading", type=float, default=0.35)
    p.add_argument("--subdomains", type=int, default=16,
                   help="decoupled inviscid subdomain count")


def _add_backend_argument(p: argparse.ArgumentParser) -> None:
    p.add_argument("--backend", choices=executor.available_backends(),
                   default=None,
                   help="refinement executor (default: $REPRO_BACKEND or "
                   "local); 'threads' models the paper's MPI ranks but is "
                   "GIL-bound, 'processes' runs GIL-free workers")
    p.add_argument("--insert-strategy",
                   choices=insertion.available_strategies(), default=None,
                   help="Delaunay cavity-engine insertion strategy "
                   "(default: $REPRO_INSERT or scalar); 'batch' bins "
                   "BRIO rounds and inserts independent cavity sets "
                   "through vectorised predicates")


def _add_address_arguments(p: argparse.ArgumentParser) -> None:
    where = p.add_mutually_exclusive_group(required=True)
    where.add_argument("--socket", metavar="PATH",
                       help="Unix domain socket path for the service")
    where.add_argument("--tcp", metavar="HOST:PORT",
                       help="localhost TCP endpoint for the service "
                       "(port 0 binds an ephemeral port)")


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-mesh",
        description="Parallel 2D anisotropic Delaunay mesh generator "
        "(ICPP 2016 reproduction)",
        epilog="Subcommands 'repro-mesh serve' and 'repro-mesh submit' run "
        "the meshing-as-a-service daemon and client; see their --help.",
    )
    _add_geometry_arguments(p, required=True)
    _add_mesh_arguments(p)
    _add_backend_argument(p)
    p.add_argument("--ranks", type=int, default=None,
                   help="worker count for the parallel backends "
                   "(default 4); rejected with --backend local/serial")
    p.add_argument("--no-stream", action="store_true",
                   help="disable streamed decompose->refine dispatch "
                   "(equivalent to REPRO_STREAM=0): decouple fully, then "
                   "refine; the mesh is byte-identical either way")
    p.add_argument("--no-warm-pool", action="store_true",
                   help="disable the persistent worker pool of the "
                   "processes backend (equivalent to REPRO_POOL=0): fork "
                   "workers per dispatch instead of reusing them")
    p.add_argument("--pool-ttl", type=float, metavar="SECONDS", default=None,
                   help="idle worker time-to-live for the persistent pool "
                   f"(default {executor.DEFAULT_POOL_TTL:.0f}s; equivalent "
                   "to REPRO_POOL_TTL)")
    adapt = p.add_argument_group(
        "metric adaptation",
        "solution-driven anisotropic adaptation of the inviscid mesh "
        "(solve potential flow, recover the streamfunction Hessian, "
        "adapt to the resulting metric, repeat)")
    adapt.add_argument("--adapt", action="store_true",
                       help="run metric-driven adaptation cycles after "
                       "meshing (the surface and BL region are protected)")
    adapt.add_argument("--adapt-cycles", type=int, metavar="N", default=2,
                       help="solve->adapt cycles (default 2)")
    adapt.add_argument("--adapt-eps", type=float, default=1e-2,
                       help="target interpolation error for the Hessian "
                       "metric (default 1e-2)")
    adapt.add_argument("--adapt-hmin", type=float, default=None,
                       help="smallest metric spacing (default: "
                       "--first-spacing)")
    adapt.add_argument("--adapt-hmax", type=float, default=None,
                       help="largest metric spacing (default: one chord)")
    adapt.add_argument("--adapt-passes", type=int, default=3,
                       help="local-operation passes per adapt step "
                       "(default 3)")
    p.add_argument("-o", "--output", required=True,
                   help="output base path (no extension)")
    p.add_argument("--format", choices=["ascii", "npz", "vtk", "both"],
                   default="ascii")
    p.add_argument("--report", action="store_true",
                   help="print the mesh analysis report (validation, "
                   "quality, anisotropy)")
    p.add_argument("--stats-json", action="store_true",
                   help="print run statistics as JSON")
    p.add_argument("--profile", action="store_true",
                   help="collect and print kernel/phase counters "
                   "(walk steps, cavity sizes, predicate escalations)")
    p.add_argument("--sanitize", action="store_true",
                   help="enable the runtime race sanitizer (equivalent to "
                   "REPRO_SANITIZE=1): instrument the threads backend's "
                   "RMA windows and communicator for data races")
    return p


def build_serve_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-mesh serve",
        description="Run the resident meshing service: one warm executor "
        "pool and a content-addressed mesh cache shared across requests",
    )
    _add_address_arguments(p)
    _add_backend_argument(p)
    p.add_argument("--ranks", type=int, default=None,
                   help="worker count per batched dispatch (default 4)")
    p.add_argument("--batch-window", type=float, metavar="SECONDS",
                   default=0.005,
                   help="how long to gather concurrent cache misses into "
                   "one executor dispatch (default 0.005s)")
    p.add_argument("--max-batch", type=int, default=16,
                   help="cap on requests per dispatch window (default 16)")
    p.add_argument("--cache-entries", type=int, default=256,
                   help="content-addressed mesh cache capacity (default 256)")
    p.add_argument("--stats-json", action="store_true",
                   help="print the service counter snapshot as JSON on exit")
    return p


def build_submit_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-mesh submit",
        description="Submit one mesh request to a running repro-mesh "
        "service (or --ping / --shutdown it)",
    )
    _add_address_arguments(p)
    _add_geometry_arguments(p, required=False)
    _add_mesh_arguments(p)
    p.add_argument("--ping", action="store_true",
                   help="round-trip a ping frame and print the RTT")
    p.add_argument("--shutdown", action="store_true",
                   help="ask the service to shut down gracefully "
                   "(after the mesh request, when one is given)")
    p.add_argument("--server-stats", action="store_true",
                   help="print the service's counter snapshot as JSON")
    p.add_argument("--timeout", type=float, metavar="SECONDS", default=300.0,
                   help="socket timeout for the request (default 300s)")
    p.add_argument("--connect-retries", type=int, default=0,
                   help="retry the initial connect this many times at "
                   "0.1s intervals (for scripted startup races)")
    p.add_argument("-o", "--output", default=None,
                   help="output base path (no extension); required when "
                   "submitting a geometry")
    p.add_argument("--format", choices=["ascii", "npz", "vtk", "both"],
                   default="ascii")
    p.add_argument("--stats-json", action="store_true",
                   help="print the reply summary as JSON")
    return p


def _load_geometry(args: argparse.Namespace) -> PSLG:
    from .geometry.airfoils import circle, flat_plate, joukowski, naca5
    from .geometry.resample import resample_curvature

    if args.naca:
        pslg = PSLG.from_loops([naca4(args.naca, args.surface_points)],
                               names=[f"naca{args.naca}"])
    elif args.naca5:
        pslg = PSLG.from_loops([naca5(args.naca5, args.surface_points)],
                               names=[f"naca{args.naca5}"])
    elif args.joukowski:
        pslg = PSLG.from_loops([joukowski(args.surface_points)],
                               names=["joukowski"])
    elif args.flat_plate:
        pslg = PSLG.from_loops([flat_plate(args.surface_points)],
                               names=["plate"])
    elif args.cylinder:
        pslg = PSLG.from_loops([circle(args.surface_points)],
                               names=["cylinder"])
    elif args.three_element:
        pslg = three_element_airfoil(n_points=args.surface_points)
    else:
        pslg, _holes = read_poly(args.poly)
    if args.resample:
        loops = [
            resample_curvature(pslg.loop_points(lp), args.resample,
                               strength=2.0)
            for lp in pslg.loops
        ]
        pslg = PSLG.from_loops(loops, names=[lp.name for lp in pslg.loops],
                               is_body=[lp.is_body for lp in pslg.loops])
    return pslg


def _config_from_args(args: argparse.Namespace) -> MeshConfig:
    return MeshConfig(
        bl=BoundaryLayerConfig(
            first_spacing=args.first_spacing,
            growth_ratio=args.growth_ratio,
            max_layers=args.max_layers,
            triangulation=args.bl_mode,
        ),
        farfield_chords=args.farfield_chords,
        grading=args.grading,
        target_subdomains=args.subdomains,
    )


def _write_mesh_outputs(args: argparse.Namespace, mesh) -> list:
    out = Path(args.output)
    out.parent.mkdir(parents=True, exist_ok=True)
    written = []
    if args.format in ("ascii", "both"):
        written.extend(str(x) for x in write_mesh_ascii(out, mesh))
    if args.format in ("npz", "both"):
        written.append(str(write_mesh_npz(out.with_suffix(".npz"), mesh)))
    if args.format == "vtk":
        from .io.meshio import write_vtk

        written.append(str(write_vtk(out.with_suffix(".vtk"), mesh)))
    return written


def _run_adaptation(pslg: PSLG, mesh, args: argparse.Namespace,
                    backend_impl) -> tuple:
    """Metric-adaptation cycles on the final mesh -> (mesh, summary).

    Sensor: the potential-flow streamfunction.  Each cycle solves the
    flow, recovers the Hessian metric, limits its gradation, and
    dispatches one packed adapt work item through the selected executor
    backend (serde round trips are exact, so the backend cannot change
    the result).  Body surfaces are constrained segments and protected
    from splitting, so the geometry never degrades.
    """
    from .core.bl_pipeline import interior_seed
    from .core.pipeline import (adapt_workitem, pack_adapt_item,
                                unpack_adapt_result)
    from .metric import MetricField
    from .solver.flow import solve_potential_flow

    body_loops = [pslg.loop_points(lp) for lp in pslg.body_loops]
    holes = [interior_seed(lp) for lp in body_loops]
    h_min = (args.adapt_hmin if args.adapt_hmin is not None
             else args.first_spacing)
    h_max = args.adapt_hmax if args.adapt_hmax is not None else 1.0
    cycles = []
    for _ in range(max(args.adapt_cycles, 0)):
        flow = solve_potential_flow(mesh, body_loops)
        metric = MetricField.from_hessian(mesh, flow.psi,
                                          eps=args.adapt_eps,
                                          h_min=h_min, h_max=h_max)
        edges = np.unique(np.sort(np.concatenate([
            mesh.triangles[:, [0, 1]], mesh.triangles[:, [1, 2]],
            mesh.triangles[:, [2, 0]]]), axis=1), axis=0)
        metric = metric.limit_gradation(edges, grading=args.grading)
        payload = pack_adapt_item(mesh, metric, holes=holes,
                                  max_passes=args.adapt_passes,
                                  protect_segments=True)
        (out,) = backend_impl.map_workitems(adapt_workitem, [payload])
        mesh, report = unpack_adapt_result(out)
        cycles.append(report.to_dict())
    summary = {
        "cycles": len(cycles),
        "eps": args.adapt_eps,
        "h_min": h_min,
        "h_max": h_max,
        "reports": cycles,
        "splits": sum(c["splits"] for c in cycles),
        "collapses": sum(c["collapses"] for c in cycles),
        "flips": sum(c["flips"] for c in cycles),
        "smooth_moves": sum(c["smooth_moves"] for c in cycles),
        "conformity": (cycles[-1]["conformity_after"] if cycles
                       else float("nan")),
    }
    return mesh, summary


def _service_address(args: argparse.Namespace) -> str:
    return f"unix:{args.socket}" if args.socket else f"tcp:{args.tcp}"


def _serve_main(argv) -> int:
    import asyncio

    from .runtime.service import MeshService

    parser = build_serve_parser()
    args = parser.parse_args(argv)
    backend = executor.resolve_backend_name(args.backend)
    if args.ranks is not None and not executor.get_backend(backend).parallel:
        parser.error(
            f"--ranks only applies to parallel backends; --backend "
            f"{backend} runs in-process")
    if args.insert_strategy is not None:
        # Exported before the pool forks so every worker triangulates
        # with the requested strategy.
        os.environ[insertion.INSERT_ENV] = insertion.canonical_strategy_name(
            args.insert_strategy)
    service = MeshService(
        _service_address(args),
        backend=backend,
        n_ranks=args.ranks if args.ranks is not None else 4,
        batch_window=args.batch_window,
        max_batch=args.max_batch,
        cache_entries=args.cache_entries,
    )

    async def _run() -> None:
        await service.start()
        print(f"repro-mesh service on {service.endpoint} "
              f"(backend={service.backend_name})", flush=True)
        try:
            await service.serve_forever()
        except asyncio.CancelledError:
            # ^C cancels the main task; shut down on the same loop so
            # in-flight batches abort through the pool's epoch fence.
            await service.shutdown()
            raise

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    if args.stats_json:
        print(json.dumps(service.stats(), indent=2))
    return 0


def _submit_main(argv) -> int:
    from .runtime.client import ServiceClient

    parser = build_submit_parser()
    args = parser.parse_args(argv)
    has_geometry = bool(args.naca or args.naca5 or args.joukowski
                        or args.flat_plate or args.cylinder
                        or args.three_element or args.poly)
    if not (has_geometry or args.ping or args.shutdown or args.server_stats):
        parser.error("nothing to do: give a geometry, --ping, "
                     "--server-stats or --shutdown")
    if has_geometry and args.output is None:
        parser.error("-o/--output is required when submitting a geometry")
    client = ServiceClient(_service_address(args), timeout=args.timeout,
                           connect_retries=max(args.connect_retries, 0))
    summary = {}
    try:
        if args.ping:
            summary["ping_rtt_s"] = round(client.ping(), 6)
        if has_geometry:
            pslg = _load_geometry(args)
            reply = client.submit(pslg, _config_from_args(args))
            written = _write_mesh_outputs(args, reply.mesh)
            summary.update({
                "cached": reply.cached,
                "key": reply.key,
                "elapsed_s": round(reply.elapsed_s, 6),
                "n_points": reply.mesh.n_points,
                "n_triangles": reply.mesh.n_triangles,
                "outputs": written,
            })
        if args.server_stats:
            summary["server"] = client.stats()
        if args.shutdown:
            client.shutdown_server()
            summary["shutdown"] = True
    finally:
        client.close()
    if args.stats_json:
        print(json.dumps(summary, indent=2))
    else:
        if "ping_rtt_s" in summary:
            print(f"pong in {summary['ping_rtt_s']}s")
        if "n_triangles" in summary:
            source = "cache" if summary["cached"] else "meshed"
            print(f"mesh: {summary['n_triangles']} triangles, "
                  f"{summary['n_points']} points in "
                  f"{summary['elapsed_s']}s ({source})")
            for path in summary["outputs"]:
                print(f"wrote {path}")
        if "server" in summary:
            print(json.dumps(summary["server"], indent=2))
        if summary.get("shutdown"):
            print("service shut down")
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "submit":
        return _submit_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    backend = executor.resolve_backend_name(args.backend)
    try:
        backend_impl = executor.get_backend(backend)
    except ValueError as exc:
        parser.error(str(exc))
    if args.ranks is not None and not backend_impl.parallel:
        parser.error(
            f"--ranks only applies to parallel backends; --backend "
            f"{backend} runs in-process (drop --ranks or pick one of: "
            + ", ".join(sorted(n for n in executor.available_backends()
                               if executor.get_backend(n).parallel)) + ")")
    if args.sanitize and not backend_impl.supports_sanitizer:
        parser.error(
            f"--sanitize instruments shared-memory backends only; "
            f"--backend {backend} shares no mutable state to instrument "
            "(use --backend threads to race-check the runtime)")
    canonical = executor.canonical_backend_name(backend)
    if (args.no_warm_pool or args.pool_ttl is not None) \
            and canonical != "processes":
        parser.error(
            "--no-warm-pool/--pool-ttl configure the processes backend's "
            f"persistent worker pool; --backend {backend} has no pool")
    if args.no_warm_pool:
        os.environ[executor.POOL_ENV] = "0"
    if args.pool_ttl is not None:
        os.environ[executor.POOL_TTL_ENV] = repr(float(args.pool_ttl))
    n_ranks = args.ranks if args.ranks is not None else 4
    insert_strategy = insertion.resolve_strategy_name(args.insert_strategy)
    pslg = _load_geometry(args)
    config = _config_from_args(args)
    if args.sanitize and not tsan.enabled():
        os.environ["REPRO_SANITIZE"] = "1"  # inherited by any subprocesses
        tsan.enable()
    with timed("total") as tm:
        if args.profile:
            from .runtime.counters import use_counters

            # Worker counter snapshots (including from the processes
            # backend's separate address spaces) merge into this sink.
            with use_counters() as profile_sink:
                result = generate_mesh(pslg, config, backend=backend,
                                       n_ranks=n_ranks,
                                       stream=not args.no_stream,
                                       insert_strategy=insert_strategy)
        else:
            profile_sink = None
            result = generate_mesh(pslg, config, backend=backend,
                                   n_ranks=n_ranks,
                                   stream=not args.no_stream,
                                   insert_strategy=insert_strategy)
    elapsed = tm.elapsed

    adapt_summary = None
    final_mesh = result.mesh
    if args.adapt:
        with timed("adapt") as tma:
            final_mesh, adapt_summary = _run_adaptation(
                pslg, final_mesh, args, backend_impl)
        adapt_summary["elapsed_s"] = round(tma.elapsed, 3)

    written = _write_mesh_outputs(args, final_mesh)
    if args.report:
        from .analysis.report import mesh_report

        surface = np.vstack([
            pslg.loop_points(lp) for lp in pslg.body_loops
        ])
        print(mesh_report(final_mesh, surface=surface))

    summary = {
        "backend": canonical,
        "insert_strategy": insert_strategy,
        "n_ranks": n_ranks,
        "stream": not args.no_stream,
        "warm_pool": bool(getattr(backend_impl, "pool_enabled", False)),
        "elapsed_s": round(elapsed, 3),
        "n_points": final_mesh.n_points,
        "n_triangles": final_mesh.n_triangles,
        "n_bl_triangles": int(result.stats["n_bl_triangles"]),
        "n_subdomains": int(result.stats["n_subdomains"]),
        "min_angle_deg": round(
            float(np.degrees(final_mesh.min_angle())), 3),
        "outputs": written,
        "timings": {k: round(v, 3) for k, v in result.timings.items()},
        "sanitizer": tsan.status(),
        "lint": {"ruleset": RULESET_VERSION, "rules": list(rule_ids())},
    }
    if adapt_summary is not None:
        summary["adapt"] = adapt_summary
    if profile_sink is not None:
        print(profile_sink.report())
    if args.stats_json:
        if profile_sink is not None:
            summary["profile"] = profile_sink.as_dict()
        print(json.dumps(summary, indent=2))
    else:
        print(f"mesh: {summary['n_triangles']} triangles, "
              f"{summary['n_points']} points in {summary['elapsed_s']}s")
        if adapt_summary is not None:
            print(f"adapt: {adapt_summary['cycles']} cycles, "
                  f"{adapt_summary['splits']} splits / "
                  f"{adapt_summary['collapses']} collapses / "
                  f"{adapt_summary['flips']} flips, "
                  f"conformity {adapt_summary['conformity']:.3f} "
                  f"in {adapt_summary['elapsed_s']}s")
        for path in written:
            print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
