"""Vertex-based SPD metric-tensor fields: recovery, interpolation, limits.

A :class:`MetricField` assigns one SPD 2x2 tensor to every vertex of a
mesh (or any point cloud): the anisotropic generalisation of the scalar
sizing functions in :mod:`repro.sizing`.  A mesh is *unit* with respect
to the field when every edge has metric length 1; the adaptation loop
(:mod:`repro.delaunay.adapt`, :mod:`repro.solver.adapt`) drives meshes
toward that state, with edge lengths accepted inside the classical band
``[1/sqrt(2), sqrt(2)]``.

The pieces assembled here are the standard metric-based adaptation
toolkit (Alauzet/Loseille; Tsolakis & Chrisochoides, arXiv:2404.18030):

* :meth:`MetricField.from_hessian` — recover a metric from a P1 finite
  element solution by double L2 projection of gradients (via
  :func:`repro.solver.fem.gradients`), eigenvalue scaling
  ``lam <- clip(|lam| / eps, 1/h_max^2, 1/h_min^2)``;
* log-Euclidean interpolation at arbitrary points (SPD by construction);
* metric edge lengths with the exact linear-interpolation quadrature;
* :meth:`MetricField.intersect` — pointwise simultaneous-reduction
  intersection with a second field;
* :meth:`MetricField.limit_gradation` — bounded size growth along mesh
  edges, sharing :func:`repro.sizing.limit.limit_field` as its scalar
  core so scalar and metric sizing obey one gradation guarantee.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from . import tensor

__all__ = ["MetricField"]


@dataclass
class MetricField:
    """SPD 2x2 tensors sampled at points (compact ``[m11, m12, m22]``).

    Attributes
    ----------
    points:
        ``(n, 2)`` float64 sample locations (mesh vertices, usually).
    tensors:
        ``(n, 3)`` float64 compact SPD rows.
    """

    points: np.ndarray
    tensors: np.ndarray

    def __post_init__(self) -> None:
        self.points = np.ascontiguousarray(self.points, dtype=np.float64)
        self.tensors = np.ascontiguousarray(self.tensors, dtype=np.float64)
        if self.points.ndim != 2 or self.points.shape[1] != 2:
            raise ValueError("points must be (n, 2)")
        if self.tensors.shape != (len(self.points), 3):
            raise ValueError("tensors must be (n, 3) compact SPD rows")
        lam1, lam2, _ = tensor.eig(self.tensors)
        if len(lam2) and float(lam2.min()) <= 0.0:
            raise ValueError("metric tensors must be positive definite")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, points: np.ndarray, h: float) -> "MetricField":
        """Isotropic field prescribing edge length ``h`` everywhere."""
        points = np.ascontiguousarray(points, dtype=np.float64)
        if h <= 0:
            raise ValueError("h must be positive")
        return cls(points, tensor.identity(len(points), 1.0 / (h * h)))

    @classmethod
    def from_full(cls, points: np.ndarray, full: np.ndarray) -> "MetricField":
        """Build from ``(n, 2, 2)`` symmetric matrices."""
        return cls(points, tensor.as_compact(full))

    @classmethod
    def from_sizes(cls, points: np.ndarray, h: np.ndarray) -> "MetricField":
        """Isotropic field from a per-vertex edge-length array."""
        h = np.asarray(h, dtype=np.float64).reshape(-1)
        if np.any(h <= 0):
            raise ValueError("sizes must be positive")
        lam = 1.0 / (h * h)
        out = np.zeros((len(h), 3))
        out[:, 0] = out[:, 2] = lam
        return cls(points, out)

    @classmethod
    def from_hessian(
        cls,
        mesh,
        u: np.ndarray,
        *,
        eps: float = 1e-2,
        h_min: float = 1e-4,
        h_max: float = 1.0,
    ) -> "MetricField":
        """Metric from the recovered Hessian of a P1 nodal solution.

        Gradient recovery is the classic double L2 projection: element
        gradients (from :func:`repro.solver.fem.gradients`) are
        area-averaged to vertices, the vertex-gradient field is
        differentiated again element-wise, and the element Hessians are
        area-averaged back to vertices.  The metric is then

            M = R diag(clip(|lam_i| / eps, 1/h_max^2, 1/h_min^2)) R^T

        — the interpolation-error-equidistributing metric for target
        error ``eps``, with spacing clamped to ``[h_min, h_max]``.
        """
        from ..solver.fem import gradients

        if eps <= 0 or h_min <= 0 or h_max < h_min:
            raise ValueError("need eps > 0 and 0 < h_min <= h_max")
        u = np.asarray(u, dtype=np.float64).reshape(-1)
        if len(u) != mesh.n_points:
            raise ValueError("solution length does not match mesh points")
        g, areas = gradients(mesh)
        tris = mesh.triangles
        n = mesh.n_points

        def to_vertices(elem_field: np.ndarray) -> np.ndarray:
            """Area-weighted average of per-element rows to vertices."""
            cols = elem_field.shape[1]
            acc = np.zeros((n, cols))
            w = np.repeat(areas, 3)
            np.add.at(acc, tris.ravel(),
                      np.repeat(elem_field, 3, axis=0) * w[:, None])
            wsum = np.zeros(n)
            np.add.at(wsum, tris.ravel(), w)
            wsum = np.where(wsum <= 0.0, 1.0, wsum)
            return acc / wsum[:, None]

        grad_e = np.einsum("tia,ti->ta", g, u[tris])        # (m, 2)
        grad_v = to_vertices(grad_e)                          # (n, 2)
        hx_e = np.einsum("tia,ti->ta", g, grad_v[tris][:, :, 0])
        hy_e = np.einsum("tia,ti->ta", g, grad_v[tris][:, :, 1])
        hess_e = np.column_stack([
            hx_e[:, 0],
            0.5 * (hx_e[:, 1] + hy_e[:, 0]),
            hy_e[:, 1],
        ])
        hess_v = to_vertices(hess_e)                          # (n, 3)

        lam1, lam2, v1 = tensor.eig(hess_v)
        lo = 1.0 / (h_max * h_max)
        hi = 1.0 / (h_min * h_min)
        lam1 = np.clip(np.abs(lam1) / eps, lo, hi)
        lam2 = np.clip(np.abs(lam2) / eps, lo, hi)
        return cls(mesh.points, tensor.from_eigs(lam1, lam2, v1))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        return len(self.points)

    def full(self) -> np.ndarray:
        """Tensors as ``(n, 2, 2)`` matrices."""
        return tensor.as_full(self.tensors)

    def sizes(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-vertex ``(h_small, h_large)`` spacings (``1/sqrt(lam)``)."""
        lam1, lam2, _ = tensor.eig(self.tensors)
        return 1.0 / np.sqrt(lam1), 1.0 / np.sqrt(np.maximum(lam2, 1e-300))

    def anisotropy(self) -> np.ndarray:
        """Per-vertex stretch ratio ``sqrt(lam1 / lam2)`` (>= 1)."""
        lam1, lam2, _ = tensor.eig(self.tensors)
        return np.sqrt(lam1 / np.maximum(lam2, 1e-300))

    def edge_lengths(self, edges: np.ndarray) -> np.ndarray:
        """Metric length of vertex-index edges (exact linear quadrature).

        With endpoint lengths ``l0 = |e|_{M_u}`` and ``l1 = |e|_{M_v}``
        the length under linearly interpolated metric is
        ``l0 (r - 1) / ln(r)`` with ``r = l1 / l0`` (Alauzet), which the
        near-isotropic limit replaces by the mean.
        """
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        e = self.points[edges[:, 1]] - self.points[edges[:, 0]]
        l0 = np.sqrt(np.maximum(
            tensor.quad_form(self.tensors[edges[:, 0]], e), 0.0))
        l1 = np.sqrt(np.maximum(
            tensor.quad_form(self.tensors[edges[:, 1]], e), 0.0))
        lo = np.minimum(l0, l1)
        hi = np.maximum(l0, l1)
        out = 0.5 * (l0 + l1)
        graded = hi > lo * (1.0 + 1e-8)
        with np.errstate(divide="ignore", invalid="ignore"):
            r = hi[graded] / np.maximum(lo[graded], 1e-300)
            out[graded] = lo[graded] * (r - 1.0) / np.log(r)
        return out

    def interpolate(self, query: np.ndarray, *, k: int = 3) -> np.ndarray:
        """Log-Euclidean interpolation of the field at ``query`` points.

        Inverse-distance weighting over the ``k`` nearest samples,
        averaged in log space (Arsigny's log-Euclidean mean), so the
        result is SPD whatever the weights.  Exact sample hits return
        the sample tensor bit-for-bit.
        """
        query = np.asarray(query, dtype=np.float64).reshape(-1, 2)
        k = min(max(int(k), 1), self.n_points)
        d, idx = self._kdtree().query(query, k=k)
        if k == 1:
            d = d[:, None]
            idx = idx[:, None]
        logs = getattr(self, "_logs", None)
        if logs is None:
            logs = tensor.log(self.tensors)
            object.__setattr__(self, "_logs", logs)
        exact = d[:, 0] <= 1e-14
        # Exact-hit rows are overwritten below; clamp so their weights
        # stay finite in the meantime.
        w = 1.0 / np.maximum(d, 1e-30) ** 2
        w /= w.sum(axis=1, keepdims=True)
        mixed = np.einsum("qk,qkc->qc", w, logs[idx])
        out = tensor.exp(mixed)
        out[exact] = self.tensors[idx[exact, 0]]
        return out

    def _kdtree(self):
        """Lazily built (and cached) KD-tree over the sample points.

        Fields are treated as immutable after construction, so the tree
        never needs invalidation; log-tensors are cached alongside.
        """
        tree = getattr(self, "_tree", None)
        if tree is None:
            from scipy.spatial import cKDTree

            tree = cKDTree(self.points)
            object.__setattr__(self, "_tree", tree)
        return tree

    def interpolate_field(self, query: np.ndarray, *, k: int = 3
                          ) -> "MetricField":
        """:meth:`interpolate` packaged as a new field at ``query``."""
        return MetricField(np.asarray(query, dtype=np.float64).reshape(-1, 2),
                           self.interpolate(query, k=k))

    # ------------------------------------------------------------------
    # Combination and limiting
    # ------------------------------------------------------------------
    def intersect(self, other: "MetricField") -> "MetricField":
        """Pointwise metric intersection (fields on identical points)."""
        if other.n_points != self.n_points:
            raise ValueError("intersect requires fields on the same points")
        return MetricField(self.points,
                           tensor.intersect(self.tensors, other.tensors))

    def bound_sizes(self, h_min: float, h_max: float) -> "MetricField":
        """Clamp both principal spacings into ``[h_min, h_max]``."""
        if h_min <= 0 or h_max < h_min:
            raise ValueError("need 0 < h_min <= h_max")
        lam1, lam2, v1 = tensor.eig(self.tensors)
        lo = 1.0 / (h_max * h_max)
        hi = 1.0 / (h_min * h_min)
        return MetricField(self.points, tensor.from_eigs(
            np.clip(lam1, lo, hi), np.clip(lam2, lo, hi), v1))

    def limit_gradation(self, edges: np.ndarray, *, grading: float = 0.3
                        ) -> "MetricField":
        """Bound size growth along the given edge graph.

        The per-vertex *minimum* spacing ``s = 1/sqrt(lam_max)`` is run
        through the scalar Hamilton-Jacobi limiter
        (:func:`repro.sizing.limit.limit_field` — the shared gradation
        core) over the Euclidean edge graph with slope ``grading``;
        each tensor is then scaled by ``(s / s*)^2 >= 1`` so its
        finest spacing matches the limited size while the anisotropy
        ratio and orientation are preserved.  The scalar sizing
        limiter is exactly this operation applied to isotropic tensors.
        """
        from ..sizing.limit import limit_field

        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        lengths = np.linalg.norm(
            self.points[edges[:, 1]] - self.points[edges[:, 0]], axis=1)
        keep = lengths > 0
        lam1, lam2, _ = tensor.eig(self.tensors)
        s = 1.0 / np.sqrt(lam1)
        s_lim = limit_field(edges[keep], lengths[keep], s, grading)
        factor = (s / np.maximum(s_lim, 1e-300)) ** 2
        return MetricField(self.points,
                           tensor.scale(self.tensors, np.maximum(factor, 1.0)))

    # ------------------------------------------------------------------
    # Quality
    # ------------------------------------------------------------------
    def mean_size(self) -> float:
        """Average prescribed spacing ``(h_small * h_large)^{1/2}``."""
        hs, hl = self.sizes()
        return float(np.sqrt(hs * hl).mean()) if len(hs) else math.nan
