"""SPD 2x2 metric-tensor fields for anisotropic mesh adaptation.

``repro.metric`` is the shared sizing vocabulary of the adaptation loop:
:mod:`tensor` holds the vectorised compact-storage SPD algebra
(closed-form eigen-decomposition, log-Euclidean calculus, simultaneous-
reduction intersection) and :mod:`field` the :class:`MetricField`
abstraction (Hessian recovery from P1 solutions, interpolation, metric
edge lengths, gradation limiting shared with :mod:`repro.sizing.limit`).
"""

from . import tensor
from .field import MetricField

__all__ = ["MetricField", "tensor"]
