"""Vectorised algebra for fields of SPD 2x2 metric tensors.

A 2D anisotropic metric is a symmetric positive-definite 2x2 matrix
``M``; lengths are measured as ``sqrt(e^T M e)`` and a unit mesh in
``M`` has edges of metric length 1.  Every routine here operates on
*fields* of tensors in compact storage — an ``(n, 3)`` float64 array of
``[m11, m12, m22]`` rows — with closed-form 2x2 eigen-decompositions,
so whole-mesh metric operations (Hessian scaling, log-Euclidean means,
intersection, quadratic forms) are single NumPy passes with no
per-vertex Python.

Conventions
-----------
* ``eig`` returns eigenvalues sorted ``lam1 >= lam2`` with the unit
  eigenvector of ``lam1``; ``1/sqrt(lam1)`` is the *smallest* length
  the metric prescribes (the across-the-layer spacing).
* ``log``/``exp`` act on eigenvalues only (the log-Euclidean calculus
  of Arsigny et al.): interpolation and averaging happen in log space
  where SPD matrices form a vector space, so interpolated tensors are
  SPD by construction.
* ``intersect`` is the simultaneous-reduction intersection (Alauzet):
  the largest metric whose unit ball fits inside both arguments' unit
  balls.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "as_compact",
    "as_full",
    "identity",
    "eig",
    "from_eigs",
    "quad_form",
    "det",
    "log",
    "exp",
    "sqrtm",
    "scale",
    "intersect",
]

#: Relative floor used when a discriminant or norm underflows: below
#: this the two eigen-directions are numerically indistinguishable and
#: any orthonormal basis is valid.
_TINY = 1e-300


def as_compact(full: np.ndarray) -> np.ndarray:
    """``(n, 2, 2)`` symmetric matrices -> compact ``(n, 3)`` rows."""
    full = np.asarray(full, dtype=np.float64)
    if full.ndim == 2:
        full = full[None]
    return np.column_stack([full[:, 0, 0],
                            0.5 * (full[:, 0, 1] + full[:, 1, 0]),
                            full[:, 1, 1]])


def as_full(m: np.ndarray) -> np.ndarray:
    """Compact ``(n, 3)`` rows -> ``(n, 2, 2)`` matrices."""
    m = np.asarray(m, dtype=np.float64).reshape(-1, 3)
    out = np.empty((len(m), 2, 2))
    out[:, 0, 0] = m[:, 0]
    out[:, 0, 1] = out[:, 1, 0] = m[:, 1]
    out[:, 1, 1] = m[:, 2]
    return out


def identity(n: int, scale_value: float = 1.0) -> np.ndarray:
    """``n`` copies of ``scale_value * I`` in compact storage."""
    out = np.zeros((n, 3))
    out[:, 0] = out[:, 2] = scale_value
    return out


def eig(m: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Closed-form eigen-decomposition of compact symmetric 2x2 rows.

    Returns ``(lam1, lam2, v1)`` with ``lam1 >= lam2`` and ``v1`` the
    ``(n, 2)`` unit eigenvector of ``lam1``.  For (numerically)
    isotropic rows any direction is an eigenvector; ``+x`` is returned
    so downstream reconstruction is deterministic.
    """
    m = np.asarray(m, dtype=np.float64).reshape(-1, 3)
    a, b, c = m[:, 0], m[:, 1], m[:, 2]
    half_tr = 0.5 * (a + c)
    disc = np.sqrt(np.maximum((0.5 * (a - c)) ** 2 + b * b, 0.0))
    lam1 = half_tr + disc
    lam2 = half_tr - disc
    # Both (b, lam1 - a) and (lam1 - c, b) are eigenvectors of lam1;
    # pick the better-conditioned one per row (the other degenerates
    # when lam1 ~ a or lam1 ~ c).
    v1 = np.column_stack([b, lam1 - a])
    v2 = np.column_stack([lam1 - c, b])
    use2 = np.abs(v2).sum(axis=1) > np.abs(v1).sum(axis=1)
    v = np.where(use2[:, None], v2, v1)
    norm = np.hypot(v[:, 0], v[:, 1])
    iso = norm <= _TINY
    v[iso, 0] = 1.0
    v[iso, 1] = 0.0
    norm = np.where(iso, 1.0, norm)
    return lam1, lam2, v / norm[:, None]


def from_eigs(lam1: np.ndarray, lam2: np.ndarray, v1: np.ndarray
              ) -> np.ndarray:
    """Rebuild compact rows from ``lam1 v1 v1^T + lam2 w w^T``
    (``w`` = ``v1`` rotated 90 degrees)."""
    vx, vy = v1[:, 0], v1[:, 1]
    return np.column_stack([
        lam1 * vx * vx + lam2 * vy * vy,
        (lam1 - lam2) * vx * vy,
        lam1 * vy * vy + lam2 * vx * vx,
    ])


def quad_form(m: np.ndarray, e: np.ndarray) -> np.ndarray:
    """``e^T M e`` per row (squared metric length of vector ``e``)."""
    m = np.asarray(m, dtype=np.float64).reshape(-1, 3)
    e = np.asarray(e, dtype=np.float64).reshape(-1, 2)
    ex, ey = e[:, 0], e[:, 1]
    return m[:, 0] * ex * ex + 2.0 * m[:, 1] * ex * ey + m[:, 2] * ey * ey


def det(m: np.ndarray) -> np.ndarray:
    """Determinant per compact row."""
    m = np.asarray(m, dtype=np.float64).reshape(-1, 3)
    return m[:, 0] * m[:, 2] - m[:, 1] * m[:, 1]


def _map_eigs(m: np.ndarray, fn) -> np.ndarray:
    lam1, lam2, v1 = eig(m)
    return from_eigs(fn(lam1), fn(lam2), v1)


def log(m: np.ndarray) -> np.ndarray:
    """Matrix logarithm per row (requires SPD input)."""
    return _map_eigs(m, lambda lam: np.log(np.maximum(lam, _TINY)))


def exp(m: np.ndarray) -> np.ndarray:
    """Matrix exponential per row (inverse of :func:`log` on SPD)."""
    return _map_eigs(m, np.exp)


def sqrtm(m: np.ndarray) -> np.ndarray:
    """Matrix square root per row (SPD input; the map to metric space:
    ``x -> M^{1/2} x`` turns metric lengths into Euclidean ones)."""
    return _map_eigs(m, lambda lam: np.sqrt(np.maximum(lam, 0.0)))


def scale(m: np.ndarray, factor: np.ndarray) -> np.ndarray:
    """Multiply each row's tensor by a per-row scalar factor."""
    m = np.asarray(m, dtype=np.float64).reshape(-1, 3)
    return m * np.asarray(factor, dtype=np.float64).reshape(-1, 1)


def intersect(m1: np.ndarray, m2: np.ndarray) -> np.ndarray:
    """Simultaneous-reduction intersection of two compact tensor fields.

    Row-wise largest metric finer than both inputs: diagonalise
    ``N = M1^{-1} M2`` (always real-diagonalisable for SPD pairs — it
    is similar to the SPD matrix ``M1^{-1/2} M2 M1^{-1/2}``), measure
    both metrics along the shared eigen-directions, keep the max, and
    map back.  Near-proportional pairs (``N`` ~ ``lam I``, eigenbasis
    ill-defined) mean ``M2 ~ lam M1``: the intersection is simply the
    finer input (``M2`` when ``lam >= 1``), so those rows bypass the
    reconstruction.
    """
    m1 = np.asarray(m1, dtype=np.float64).reshape(-1, 3)
    m2 = np.asarray(m2, dtype=np.float64).reshape(-1, 3)
    a1, b1, c1 = m1[:, 0], m1[:, 1], m1[:, 2]
    a2, b2, c2 = m2[:, 0], m2[:, 1], m2[:, 2]
    d1 = a1 * c1 - b1 * b1
    # N = M1^{-1} M2 entries (2x2, generally non-symmetric).
    n11 = (c1 * a2 - b1 * b2) / d1
    n12 = (c1 * b2 - b1 * c2) / d1
    n21 = (a1 * b2 - b1 * a2) / d1
    n22 = (a1 * c2 - b1 * b2) / d1
    half_tr = 0.5 * (n11 + n22)
    disc2 = np.maximum(half_tr * half_tr - (n11 * n22 - n12 * n21), 0.0)
    disc = np.sqrt(disc2)
    lam_a = half_tr + disc
    lam_b = half_tr - disc
    # N ~ lam I (M2 ~ lam M1): the eigenvector formulas below produce
    # roundoff-level garbage directions, so detect proportional pairs
    # from the eigenvalue spread itself; the bypass errs by
    # O(disc / half_tr) while a garbage basis errs by O(1).  half_tr
    # is positive because N is similar to the SPD ``M1^{-1/2} M2
    # M1^{-1/2}``.
    proportional = disc <= 1e-6 * half_tr
    # Eigenvectors of N per eigenvalue: (n12, lam - n11) or
    # (lam - n22, n21); pick the better-conditioned pair.
    def evec(lam):
        va = np.column_stack([n12, lam - n11])
        vb = np.column_stack([lam - n22, n21])
        useb = np.abs(vb).sum(axis=1) > np.abs(va).sum(axis=1)
        v = np.where(useb[:, None], vb, va)
        norm = np.hypot(v[:, 0], v[:, 1])
        bad = norm <= _TINY
        v[bad, 0] = 1.0
        v[bad, 1] = 0.0
        return v / np.where(bad, 1.0, norm)[:, None]

    pa = evec(lam_a)
    pb = evec(lam_b)
    # Degenerate rows: eigen-directions collapse.  Substitute an
    # orthonormal pair to keep the reconstruction well-posed, then
    # overwrite those rows with the finer input below.
    colinear = proportional | (
        np.abs(pa[:, 0] * pb[:, 1] - pa[:, 1] * pb[:, 0]) < 1e-6)
    pb[colinear, 0] = -pa[colinear, 1]
    pb[colinear, 1] = pa[colinear, 0]
    mu_a = np.maximum(quad_form(m1, pa), quad_form(m2, pa))
    mu_b = np.maximum(quad_form(m1, pb), quad_form(m2, pb))
    # M = P^{-T} diag(mu) P^{-1} with P = [pa | pb] columns.
    det_p = pa[:, 0] * pb[:, 1] - pa[:, 1] * pb[:, 0]
    det_p = np.where(np.abs(det_p) <= _TINY, 1.0, det_p)
    # P^{-1} rows: [pb_y, -pb_x]/det, [-pa_y, pa_x]/det.
    i11 = pb[:, 1] / det_p
    i12 = -pb[:, 0] / det_p
    i21 = -pa[:, 1] / det_p
    i22 = pa[:, 0] / det_p
    out = np.empty_like(m1)
    out[:, 0] = mu_a * i11 * i11 + mu_b * i21 * i21
    out[:, 1] = mu_a * i11 * i12 + mu_b * i21 * i22
    out[:, 2] = mu_a * i12 * i12 + mu_b * i22 * i22
    finer = np.where((lam_a >= 1.0)[:, None], m2, m1)
    out[colinear] = finer[colinear]
    return out
