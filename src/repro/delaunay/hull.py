"""Andrew's Monotone Chain convex hull.

The projection-based decomposition (paper Section II.D, Fig. 7) computes
the *lower* convex hull of points flattened onto a vertical plane.  Because
those points arrive already sorted along the primary axis (the subdomain
maintains x- and y-sorted vertex arrays), the hull is computed in
**worst-case linear time**: one sweep, each point pushed once and popped at
most once.

``lower_hull``/``upper_hull``/``convex_hull`` operate on index arrays into
a coordinate array so callers keep working with subdomain vertex ids.
Right-hand-turn removal uses the robust orientation predicate.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..geometry.predicates import orient2d

__all__ = ["lower_hull", "upper_hull", "convex_hull", "lower_hull_sorted"]


def _sorted_order(points: np.ndarray) -> np.ndarray:
    """Lexicographic (x, then y) sort order of the rows of ``points``."""
    return np.lexsort((points[:, 1], points[:, 0]))


def lower_hull_sorted(points: np.ndarray, order: Sequence[int]) -> List[int]:
    """Lower hull of ``points[order]`` where ``order`` is already sorted
    lexicographically by (x, y).  Returns hull vertex ids (subset of
    ``order``) from the leftmost to the rightmost point.  Collinear points
    on the hull are *dropped* (strict turns only), which is what the
    dividing-path construction wants: collinear interior points would
    create zero-length-cavity path edges.

    This is the linear-time core: each element is appended once and removed
    at most once (paper Fig. 7's sweep).
    """
    hull: List[int] = []
    for idx in order:
        p = points[idx]
        while len(hull) >= 2:
            o = orient2d(points[hull[-2]], points[hull[-1]], p)
            # Keep only strict left turns on the lower hull: pop while the
            # last point makes a right turn or is collinear.
            if o <= 0:
                hull.pop()
            else:
                break
        hull.append(int(idx))
    return hull


def lower_hull(points: np.ndarray) -> List[int]:
    """Lower convex hull indices of an unsorted ``(n, 2)`` array."""
    points = np.asarray(points, dtype=np.float64)
    if len(points) == 0:
        return []
    return lower_hull_sorted(points, _sorted_order(points))


def upper_hull(points: np.ndarray) -> List[int]:
    """Upper convex hull indices of an unsorted ``(n, 2)`` array."""
    points = np.asarray(points, dtype=np.float64)
    if len(points) == 0:
        return []
    order = _sorted_order(points)[::-1]
    # The upper hull is the lower hull of the reversed sweep.
    return lower_hull_sorted(points, order)


def convex_hull(points: np.ndarray) -> List[int]:
    """Full convex hull in counter-clockwise order (no repeated endpoint).

    Degenerate inputs: fewer than 3 distinct points, or all points
    collinear, return the extreme points only (0, 1 or 2 indices).
    """
    points = np.asarray(points, dtype=np.float64)
    n = len(points)
    if n == 0:
        return []
    lo = lower_hull(points)
    hi = upper_hull(points)
    if len(lo) <= 1:
        return lo
    # Concatenate, dropping the duplicated extreme points.
    return lo[:-1] + hi[:-1] if len(lo) + len(hi) > 2 else lo
