"""Structure-of-arrays mesh storage shared by the kernel and every boundary.

The paper credits its single-rank efficiency to compact array-based
triangle storage and its strong scaling to cheap subdomain handoff; this
module is that representation.  One :class:`MeshArrays` instance owns

* ``pts``        — ``float64 (cap_pts, 2)``   vertex coordinates,
* ``tri_v``      — ``int32   (cap_tris, 3)``  triangle vertex ids,
* ``tri_n``      — ``int32   (cap_tris, 3)``  triangle neighbour ids,
* ``vertex_tri`` — ``int32   (cap_pts,)``     one incident triangle per vertex,
* ``free``       — recycled triangle slots (plain list),

all preallocated with amortized-doubling growth.  The same buffers back

* the kernel's scalar hot path (through cached flat :class:`memoryview`
  casts — measurably faster than list-of-lists indexing on CPython),
* vectorised batch reads (``incircle_batch`` cavity levels, grid builds),
* zero-copy finalize (:meth:`compact` fancy-indexes triangles at C speed
  and can return the point block as a *view*), and
* zero-copy serde / ``multiprocessing.shared_memory`` transport — the
  arrays are already contiguous ``float64`` / ``int32`` blocks.

Dead-triangle contract (lint-able)
----------------------------------
A recycled slot is marked dead by writing :data:`DEAD` (= ``-2``) into
``tri_v[t, 0]``; the remaining five ints are stale garbage.  ``-1`` is
*not* usable as a death marker because :data:`~repro.delaunay.kernel.GHOST`
(= ``-1``) legitimately occupies any ``tri_v`` column.  Callers must
check :meth:`is_dead` (or use :meth:`triangle`, which returns ``None``)
before interpreting a row; APIs that dereference a dead slot raise.

Growth invalidates cached memoryviews: any routine holding local aliases
of ``px``/``tv``/``tn``/``vt`` must call :meth:`reserve_points` /
:meth:`reserve_triangles` for its worst case *before* taking the aliases
(reserve-before-alias discipline).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

__all__ = ["DEAD", "MeshArrays"]

#: Marker stored in ``tri_v[t, 0]`` of a dead (recycled) triangle slot.
DEAD = -2

# The flat memoryview casts assume C int == int32 and C double == float64.
if memoryview(np.zeros(1, dtype=np.int32)).cast("B").cast("i").itemsize != 4:
    raise ImportError("MeshArrays requires a 4-byte C int")


class MeshArrays:
    """Preallocated SoA storage for a mutable triangulation.

    ``n_pts`` / ``n_tris`` are high-water marks: rows beyond them are
    uninitialised capacity.  Triangle rows below ``n_tris`` are live
    unless :meth:`is_dead`.
    """

    __slots__ = ("pts", "tri_v", "tri_n", "vertex_tri", "free",
                 "n_pts", "n_tris", "px", "tv", "tn", "vt")

    def __init__(self, cap_pts: int = 64, cap_tris: int = 128) -> None:
        self.pts = np.empty((max(cap_pts, 4), 2), dtype=np.float64)
        self.tri_v = np.full((max(cap_tris, 4), 3), DEAD, dtype=np.int32)
        self.tri_n = np.full((max(cap_tris, 4), 3), -1, dtype=np.int32)
        self.vertex_tri = np.full(max(cap_pts, 4), -1, dtype=np.int32)
        self.free: List[int] = []
        self.n_pts = 0
        self.n_tris = 0
        self._rebind()

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    def _rebind(self) -> None:
        """Refresh the flat scalar-access views after (re)allocation."""
        self.px = memoryview(self.pts).cast("B").cast("d")
        self.tv = memoryview(self.tri_v).cast("B").cast("i")
        self.tn = memoryview(self.tri_n).cast("B").cast("i")
        self.vt = memoryview(self.vertex_tri).cast("B").cast("i")

    def reserve_points(self, k: int) -> None:
        """Guarantee capacity for ``k`` more points without reallocation."""
        need = self.n_pts + k
        cap = len(self.vertex_tri)
        if need <= cap:
            return
        new_cap = max(2 * cap, need)
        pts = np.empty((new_cap, 2), dtype=np.float64)
        pts[: self.n_pts] = self.pts[: self.n_pts]
        vt = np.full(new_cap, -1, dtype=np.int32)
        vt[: self.n_pts] = self.vertex_tri[: self.n_pts]
        self.pts = pts
        self.vertex_tri = vt
        self._rebind()

    def reserve_triangles(self, k: int) -> None:
        """Guarantee ``k`` more appended triangle slots without realloc.

        (Slots recycled from ``free`` never need capacity, so this is a
        safe upper bound.)
        """
        need = self.n_tris + k
        cap = len(self.tri_v)
        if need <= cap:
            return
        new_cap = max(2 * cap, need)
        tv = np.full((new_cap, 3), DEAD, dtype=np.int32)
        tv[: self.n_tris] = self.tri_v[: self.n_tris]
        tn = np.full((new_cap, 3), -1, dtype=np.int32)
        tn[: self.n_tris] = self.tri_n[: self.n_tris]
        self.tri_v = tv
        self.tri_n = tn
        self._rebind()

    # ------------------------------------------------------------------
    # Element lifecycle
    # ------------------------------------------------------------------
    def new_point(self, x: float, y: float) -> int:
        self.reserve_points(1)
        i = self.n_pts
        j = 2 * i
        self.px[j] = x
        self.px[j + 1] = y
        self.vt[i] = -1
        self.n_pts = i + 1
        return i

    def bulk_new_points(self, xy: np.ndarray) -> np.ndarray:
        """Append a block of points at once; returns their vertex ids.

        Vectorised sibling of :meth:`new_point` for the batch insertion
        strategy: one reserve, one slice assign, no per-point Python.
        Callers holding flat-view aliases must re-read them afterwards
        (reservation may reallocate, exactly as with ``new_point``).
        """
        xy = np.asarray(xy, dtype=np.float64).reshape(-1, 2)
        m = len(xy)
        self.reserve_points(m)
        i = self.n_pts
        self.pts[i:i + m] = xy
        self.vertex_tri[i:i + m] = -1
        self.n_pts = i + m
        return np.arange(i, i + m, dtype=np.int64)

    def new_triangle_slot(self) -> int:
        """Pop a recycled slot or append one (capacity must be reserved
        by the caller when it holds view aliases)."""
        if self.free:
            return self.free.pop()
        self.reserve_triangles(1)
        t = self.n_tris
        self.n_tris = t + 1
        return t

    def kill(self, t: int) -> None:
        self.tv[3 * t] = DEAD
        self.free.append(t)

    def is_dead(self, t: int) -> bool:
        """Dead-slot check — the one sanctioned way to test liveness."""
        return self.tv[3 * t] == DEAD

    def point(self, v: int) -> Tuple[float, float]:
        j = 2 * v
        return (self.px[j], self.px[j + 1])

    def triangle(self, t: int) -> Optional[Tuple[int, int, int]]:
        """Vertex triple of ``t``, or ``None`` when the slot is dead."""
        i = 3 * t
        a = self.tv[i]
        if a == DEAD:
            return None
        return (a, self.tv[i + 1], self.tv[i + 2])

    # ------------------------------------------------------------------
    # Finalize
    # ------------------------------------------------------------------
    def compact(self, keep_mask: Optional[np.ndarray] = None
                ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Vectorised compaction of the live real triangles.

        Returns ``(points, triangles, remap)`` where ``triangles`` is a
        fresh ``int32 (m, 3)`` array re-indexed against ``points`` and
        ``remap`` maps kernel vertex id -> compact id (``-1`` unused).
        When every vertex is referenced, ``points`` is a **read-only
        zero-copy view** of the underlying buffer and ``remap`` is
        ``None`` (identity); otherwise both are fancy-indexed at C speed.
        No per-triangle Python loops (lint rule R7).
        """
        n_p = self.n_pts
        tv = self.tri_v[: self.n_tris]
        # min over the row excludes DEAD (-2) and GHOST (-1) rows at once.
        mask = tv.min(axis=1) >= 0
        if keep_mask is not None:
            mask &= np.asarray(keep_mask, dtype=bool)[: self.n_tris]
        tris = tv[mask]
        if tris.size == 0:
            return (np.empty((0, 2), dtype=np.float64),
                    np.empty((0, 3), dtype=np.int32),
                    np.full(n_p, -1, dtype=np.int64))
        # Presence scatter instead of np.unique: same sorted id set,
        # O(n) instead of a sort.
        present = np.zeros(n_p, dtype=bool)
        present[tris.ravel()] = True
        n_used = int(np.count_nonzero(present))
        if n_used == n_p:
            # Dense: every vertex referenced -> the point block is the
            # finalized coordinate array already.  Freeze the view so a
            # consumer cannot silently mutate live kernel storage.
            points = self.pts[:n_p]
            points.flags.writeable = False
            return points, np.ascontiguousarray(tris), None
        used = np.flatnonzero(present)
        remap = np.full(n_p, -1, dtype=np.int64)
        remap[used] = np.arange(n_used, dtype=np.int64)
        points = np.ascontiguousarray(self.pts[used])
        return points, remap[tris].astype(np.int32), remap
