"""Finalised triangle mesh: contiguous arrays, adjacency, quality metrics.

:class:`TriMesh` is the immutable product of the triangulation kernel and
the currency of everything downstream: refinement statistics, the FEM
solver, mesh I/O, and the experiment harnesses.  Vertices and triangles
live in contiguous NumPy arrays (structure-of-arrays, per the paper's
Section III implementation notes) and all per-triangle quantities are
computed vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import numpy as np

from ..geometry.predicates import exact_eq

__all__ = ["TriMesh", "merge_meshes"]


@dataclass
class TriMesh:
    """Triangle mesh with optional constrained-edge markers.

    Attributes
    ----------
    points:
        ``(n, 2)`` float64 vertex coordinates.
    triangles:
        ``(m, 3)`` int32 vertex indices, counter-clockwise.
    segments:
        ``(s, 2)`` int32 constrained/boundary edges (may be empty).
    """

    points: np.ndarray
    triangles: np.ndarray
    segments: np.ndarray = field(
        default_factory=lambda: np.empty((0, 2), dtype=np.int32)
    )

    def __post_init__(self) -> None:
        self.points = np.ascontiguousarray(self.points, dtype=np.float64)
        self.triangles = np.ascontiguousarray(self.triangles, dtype=np.int32)
        self.segments = np.ascontiguousarray(self.segments, dtype=np.int32)
        if self.points.ndim != 2 or self.points.shape[1] != 2:
            raise ValueError("points must be (n, 2)")
        if self.triangles.size and (
            self.triangles.ndim != 2 or self.triangles.shape[1] != 3
        ):
            raise ValueError("triangles must be (m, 3)")
        if self.triangles.size and self.triangles.max() >= len(self.points):
            raise ValueError("triangle index out of range")
        if self.triangles.size and self.triangles.min() < 0:
            raise ValueError("negative triangle index")
        if self.segments.size and (
            self.segments.ndim != 2 or self.segments.shape[1] != 2
        ):
            raise ValueError("segments must be (s, 2)")
        if self.segments.size and (
            self.segments.min() < 0
            or self.segments.max() >= len(self.points)
        ):
            raise ValueError("segment index out of range")

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        return len(self.points)

    @property
    def n_triangles(self) -> int:
        return len(self.triangles)

    def __repr__(self) -> str:
        return f"TriMesh(n_points={self.n_points}, n_triangles={self.n_triangles})"

    # ------------------------------------------------------------------
    # Per-triangle geometry (vectorised)
    # ------------------------------------------------------------------
    def _corners(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        p = self.points
        t = self.triangles
        return p[t[:, 0]], p[t[:, 1]], p[t[:, 2]]

    def areas(self) -> np.ndarray:
        """Signed triangle areas (positive == CCW)."""
        a, b, c = self._corners()
        return 0.5 * (
            (b[:, 0] - a[:, 0]) * (c[:, 1] - a[:, 1])
            - (b[:, 1] - a[:, 1]) * (c[:, 0] - a[:, 0])
        )

    def centroids(self) -> np.ndarray:
        a, b, c = self._corners()
        return (a + b + c) / 3.0

    def edge_lengths(self) -> np.ndarray:
        """``(m, 3)`` edge lengths; column k is the edge opposite vertex k."""
        a, b, c = self._corners()
        la = np.linalg.norm(c - b, axis=1)
        lb = np.linalg.norm(a - c, axis=1)
        lc = np.linalg.norm(b - a, axis=1)
        return np.column_stack([la, lb, lc])

    def circumradii(self) -> np.ndarray:
        """Circumradius per triangle (R = abc / 4A); inf where degenerate."""
        ls = self.edge_lengths()
        area = np.abs(self.areas())
        with np.errstate(divide="ignore", invalid="ignore"):
            r = ls[:, 0] * ls[:, 1] * ls[:, 2] / (4.0 * area)
        r[exact_eq(area, 0.0)] = np.inf
        return r

    def radius_edge_ratios(self) -> np.ndarray:
        """Circumradius-to-shortest-edge ratio (Ruppert's quality measure).

        A triangulation refined to ratio <= sqrt(2) has minimum angle
        >= arcsin(1/(2*sqrt(2))) ~ 20.7 degrees — the bound the paper's
        isotropic comparison mesh satisfies.
        """
        ls = self.edge_lengths()
        with np.errstate(divide="ignore", invalid="ignore"):
            return self.circumradii() / ls.min(axis=1)

    def angles(self) -> np.ndarray:
        """``(m, 3)`` interior angles in radians (column k at vertex k)."""
        ls = self.edge_lengths()
        la, lb, lc = ls[:, 0], ls[:, 1], ls[:, 2]
        with np.errstate(divide="ignore", invalid="ignore"):
            cos_a = (lb**2 + lc**2 - la**2) / (2 * lb * lc)
            cos_b = (la**2 + lc**2 - lb**2) / (2 * la * lc)
            cos_c = (la**2 + lb**2 - lc**2) / (2 * la * lb)
        cos_all = np.clip(np.column_stack([cos_a, cos_b, cos_c]), -1.0, 1.0)
        return np.arccos(cos_all)

    def min_angle(self) -> float:
        """Smallest interior angle in the mesh, radians."""
        if self.n_triangles == 0:
            return float("nan")
        return float(self.angles().min())

    def aspect_ratios(self) -> np.ndarray:
        """Longest-edge to shortest-altitude ratio per triangle.

        Anisotropic boundary-layer triangles legitimately reach ratios of
        thousands; this is the quantity the paper's 10,000:1 claim refers
        to.
        """
        ls = self.edge_lengths()
        lmax = ls.max(axis=1)
        area = np.abs(self.areas())
        with np.errstate(divide="ignore", invalid="ignore"):
            h_min = 2.0 * area / lmax
            return lmax / h_min

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def edges(self) -> np.ndarray:
        """Unique undirected edges as an ``(e, 2)`` sorted-index array."""
        t = self.triangles
        e = np.vstack([t[:, [0, 1]], t[:, [1, 2]], t[:, [2, 0]]])
        e.sort(axis=1)
        return np.unique(e, axis=0)

    def boundary_edges(self) -> np.ndarray:
        """Edges used by exactly one triangle."""
        t = self.triangles
        e = np.vstack([t[:, [0, 1]], t[:, [1, 2]], t[:, [2, 0]]])
        e.sort(axis=1)
        uniq, counts = np.unique(e, axis=0, return_counts=True)
        return uniq[counts == 1]

    def neighbors(self) -> np.ndarray:
        """``(m, 3)`` adjacent triangle per edge (opposite vertex k); -1 none."""
        t = self.triangles
        m = len(t)
        edge_map: Dict[Tuple[int, int], Tuple[int, int]] = {}
        nbr = np.full((m, 3), -1, dtype=np.int32)
        for ti in range(m):
            for k in range(3):
                u, v = int(t[ti, (k + 1) % 3]), int(t[ti, (k + 2) % 3])
                key = (u, v) if u < v else (v, u)
                if key in edge_map:
                    tj, kj = edge_map.pop(key)
                    nbr[ti, k] = tj
                    nbr[tj, kj] = ti
                else:
                    edge_map[key] = (ti, k)
        return nbr

    def vertex_degrees(self) -> np.ndarray:
        deg = np.zeros(self.n_points, dtype=np.int64)
        np.add.at(deg, self.triangles.ravel(), 1)
        return deg

    def is_conforming(self) -> bool:
        """Every internal edge shared by exactly 2 triangles, none by more."""
        t = self.triangles
        if len(t) == 0:
            return True
        e = np.vstack([t[:, [0, 1]], t[:, [1, 2]], t[:, [2, 0]]])
        e.sort(axis=1)
        _, counts = np.unique(e, axis=0, return_counts=True)
        return bool(np.all(counts <= 2))

    def contains_segments(self, segments: np.ndarray) -> bool:
        """True if every given vertex-index segment appears as a mesh edge."""
        if len(segments) == 0:
            return True
        have = {tuple(e) for e in self.edges().tolist()}
        for u, v in np.asarray(segments, dtype=np.int64):
            a, b = (int(u), int(v)) if u < v else (int(v), int(u))
            if (a, b) not in have:
                return False
        return True

    # ------------------------------------------------------------------
    # Delaunay verification
    # ------------------------------------------------------------------
    def delaunay_violations(self, *, tol: float = 0.0,
                            respect_segments: bool = True) -> int:
        """Count internal edges violating the local Delaunay criterion.

        An edge is locally Delaunay when the opposite vertex of each
        adjacent triangle is not inside the other's circumcircle.  For a
        *constrained* Delaunay triangulation, constrained edges are exempt
        (``respect_segments``).  ``tol`` (relative) absorbs floating error
        for near-cocircular configurations when comparing against other
        implementations.
        """
        from ..geometry.predicates import incircle

        t = self.triangles
        nbr = self.neighbors()
        constrained: Set[Tuple[int, int]] = set()
        if respect_segments and len(self.segments):
            for u, v in self.segments.tolist():
                constrained.add((min(u, v), max(u, v)))
        p = self.points
        bad = 0
        for ti in range(len(t)):
            for k in range(3):
                tj = nbr[ti, k]
                if tj < 0 or tj < ti:
                    continue
                u, v = int(t[ti, (k + 1) % 3]), int(t[ti, (k + 2) % 3])
                if (min(u, v), max(u, v)) in constrained:
                    continue
                a, b, c = (p[t[ti, 0]], p[t[ti, 1]], p[t[ti, 2]])
                # opposite vertex in tj
                opp = [w for w in t[tj] if w != u and w != v]
                if len(opp) != 1:
                    continue
                d = p[opp[0]]
                if exact_eq(tol, 0.0):
                    if incircle(a, b, c, d) > 0:
                        bad += 1
                else:
                    # Tolerant check via circumcircle distance.
                    from ..geometry.primitives import circumcenter, distance

                    try:
                        cc = circumcenter(a, b, c)
                    except ValueError:
                        continue
                    r = distance(cc, a)
                    if distance(cc, d) < r * (1.0 - tol):
                        bad += 1
        return bad

    def is_delaunay(self, *, tol: float = 0.0,
                    respect_segments: bool = True) -> bool:
        return self.delaunay_violations(
            tol=tol, respect_segments=respect_segments) == 0

    # ------------------------------------------------------------------
    # Statistics bundle (for reports / EXPERIMENTS.md)
    # ------------------------------------------------------------------
    def quality_summary(self) -> Dict[str, float]:
        if self.n_triangles == 0:
            return {"n_points": self.n_points, "n_triangles": 0}
        ang = np.degrees(self.angles())
        return {
            "n_points": self.n_points,
            "n_triangles": self.n_triangles,
            "min_angle_deg": float(ang.min()),
            "max_angle_deg": float(ang.max()),
            "mean_min_angle_deg": float(ang.min(axis=1).mean()),
            "max_aspect_ratio": float(self.aspect_ratios().max()),
            "max_radius_edge": float(self.radius_edge_ratios().max()),
            "total_area": float(np.abs(self.areas()).sum()),
        }


def merge_meshes(meshes: List[TriMesh], *, tol: float = 1e-12) -> TriMesh:
    """Merge subdomain meshes, welding vertices that coincide within ``tol``.

    Subdomains produced by the decomposition/decoupling share only border
    vertices, which are bit-identical by construction; welding uses a
    quantised coordinate key.  Duplicate triangles (none expected) are
    dropped.
    """
    if not meshes:
        raise ValueError("no meshes to merge")
    inv = 1.0 / tol

    # Weld: quantised keys for every vertex of every mesh, welded to the
    # global id of their first appearance (np.round == round: both
    # half-to-even).  Fully vectorised — no per-vertex Python loop.
    all_pts = np.vstack([np.asarray(m.points, dtype=np.float64).reshape(-1, 2)
                         for m in meshes])
    keys = np.round(all_pts * inv).astype(np.int64)
    _, first_idx, inverse = np.unique(keys, axis=0, return_index=True,
                                      return_inverse=True)
    # np.unique sorts by key; renumber so gids follow first appearance.
    appearance = np.argsort(first_idx, kind="stable")
    rank = np.empty(len(first_idx), dtype=np.int64)
    rank[appearance] = np.arange(len(first_idx), dtype=np.int64)
    gid = rank[inverse]
    points = all_pts[first_idx[appearance]]

    offsets = np.cumsum([0] + [m.n_points for m in meshes])
    tri_blocks = [
        gid[offsets[i]:offsets[i + 1]][np.asarray(m.triangles, np.int64)]
        for i, m in enumerate(meshes) if m.n_triangles
    ]
    if tri_blocks:
        tris = np.vstack(tri_blocks)
        # Drop duplicate triangles (none expected), keeping first
        # appearance order like the sequential weld did.
        canon = np.sort(tris, axis=1)
        _, tfirst = np.unique(canon, axis=0, return_index=True)
        tris = tris[np.sort(tfirst)].astype(np.int32)
    else:
        tris = np.empty((0, 3), np.int32)

    seg_blocks = [
        gid[offsets[i]:offsets[i + 1]][np.asarray(m.segments, np.int64)]
        for i, m in enumerate(meshes) if len(m.segments)
    ]
    if seg_blocks:
        segs = np.sort(np.vstack(seg_blocks), axis=1)
        segs = np.unique(segs, axis=0).astype(np.int32)
    else:
        segs = np.empty((0, 2), np.int32)

    return TriMesh(points, tris, segs)
