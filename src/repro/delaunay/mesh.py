"""Finalised triangle mesh: contiguous arrays, adjacency, quality metrics.

:class:`TriMesh` is the immutable product of the triangulation kernel and
the currency of everything downstream: refinement statistics, the FEM
solver, mesh I/O, and the experiment harnesses.  Vertices and triangles
live in contiguous NumPy arrays (structure-of-arrays, per the paper's
Section III implementation notes) and all per-triangle quantities are
computed vectorised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import numpy as np

from ..geometry.predicates import exact_eq

__all__ = ["TriMesh", "merge_meshes"]


@dataclass
class TriMesh:
    """Triangle mesh with optional constrained-edge markers.

    Attributes
    ----------
    points:
        ``(n, 2)`` float64 vertex coordinates.
    triangles:
        ``(m, 3)`` int32 vertex indices, counter-clockwise.
    segments:
        ``(s, 2)`` int32 constrained/boundary edges (may be empty).
    """

    points: np.ndarray
    triangles: np.ndarray
    segments: np.ndarray = field(
        default_factory=lambda: np.empty((0, 2), dtype=np.int32)
    )

    def __post_init__(self) -> None:
        self.points = np.ascontiguousarray(self.points, dtype=np.float64)
        self.triangles = np.ascontiguousarray(self.triangles, dtype=np.int32)
        self.segments = np.ascontiguousarray(self.segments, dtype=np.int32)
        if self.points.ndim != 2 or self.points.shape[1] != 2:
            raise ValueError("points must be (n, 2)")
        if self.triangles.size and (
            self.triangles.ndim != 2 or self.triangles.shape[1] != 3
        ):
            raise ValueError("triangles must be (m, 3)")
        if self.triangles.size and self.triangles.max() >= len(self.points):
            raise ValueError("triangle index out of range")
        if self.triangles.size and self.triangles.min() < 0:
            raise ValueError("negative triangle index")
        if self.segments.size and (
            self.segments.ndim != 2 or self.segments.shape[1] != 2
        ):
            raise ValueError("segments must be (s, 2)")
        if self.segments.size and (
            self.segments.min() < 0
            or self.segments.max() >= len(self.points)
        ):
            raise ValueError("segment index out of range")

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        return len(self.points)

    @property
    def n_triangles(self) -> int:
        return len(self.triangles)

    def __repr__(self) -> str:
        return f"TriMesh(n_points={self.n_points}, n_triangles={self.n_triangles})"

    # ------------------------------------------------------------------
    # Per-triangle geometry (vectorised)
    # ------------------------------------------------------------------
    def _corners(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        p = self.points
        t = self.triangles
        return p[t[:, 0]], p[t[:, 1]], p[t[:, 2]]

    def areas(self) -> np.ndarray:
        """Signed triangle areas (positive == CCW)."""
        a, b, c = self._corners()
        return 0.5 * (
            (b[:, 0] - a[:, 0]) * (c[:, 1] - a[:, 1])
            - (b[:, 1] - a[:, 1]) * (c[:, 0] - a[:, 0])
        )

    def centroids(self) -> np.ndarray:
        a, b, c = self._corners()
        return (a + b + c) / 3.0

    def edge_lengths(self) -> np.ndarray:
        """``(m, 3)`` edge lengths; column k is the edge opposite vertex k."""
        a, b, c = self._corners()
        la = np.linalg.norm(c - b, axis=1)
        lb = np.linalg.norm(a - c, axis=1)
        lc = np.linalg.norm(b - a, axis=1)
        return np.column_stack([la, lb, lc])

    def circumradii(self) -> np.ndarray:
        """Circumradius per triangle (R = abc / 4A); inf where degenerate."""
        ls = self.edge_lengths()
        area = np.abs(self.areas())
        with np.errstate(divide="ignore", invalid="ignore"):
            r = ls[:, 0] * ls[:, 1] * ls[:, 2] / (4.0 * area)
        r[exact_eq(area, 0.0)] = np.inf
        return r

    def radius_edge_ratios(self) -> np.ndarray:
        """Circumradius-to-shortest-edge ratio (Ruppert's quality measure).

        A triangulation refined to ratio <= sqrt(2) has minimum angle
        >= arcsin(1/(2*sqrt(2))) ~ 20.7 degrees — the bound the paper's
        isotropic comparison mesh satisfies.
        """
        ls = self.edge_lengths()
        with np.errstate(divide="ignore", invalid="ignore"):
            return self.circumradii() / ls.min(axis=1)

    def angles(self) -> np.ndarray:
        """``(m, 3)`` interior angles in radians (column k at vertex k)."""
        ls = self.edge_lengths()
        la, lb, lc = ls[:, 0], ls[:, 1], ls[:, 2]
        with np.errstate(divide="ignore", invalid="ignore"):
            cos_a = (lb**2 + lc**2 - la**2) / (2 * lb * lc)
            cos_b = (la**2 + lc**2 - lb**2) / (2 * la * lc)
            cos_c = (la**2 + lb**2 - lc**2) / (2 * la * lb)
        cos_all = np.clip(np.column_stack([cos_a, cos_b, cos_c]), -1.0, 1.0)
        return np.arccos(cos_all)

    def min_angle(self) -> float:
        """Smallest interior angle in the mesh, radians."""
        if self.n_triangles == 0:
            return float("nan")
        return float(self.angles().min())

    def aspect_ratios(self) -> np.ndarray:
        """Longest-edge to shortest-altitude ratio per triangle.

        Anisotropic boundary-layer triangles legitimately reach ratios of
        thousands; this is the quantity the paper's 10,000:1 claim refers
        to.
        """
        ls = self.edge_lengths()
        lmax = ls.max(axis=1)
        area = np.abs(self.areas())
        with np.errstate(divide="ignore", invalid="ignore"):
            h_min = 2.0 * area / lmax
            return lmax / h_min

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def edges(self) -> np.ndarray:
        """Unique undirected edges as an ``(e, 2)`` sorted-index array."""
        t = self.triangles
        e = np.vstack([t[:, [0, 1]], t[:, [1, 2]], t[:, [2, 0]]])
        e.sort(axis=1)
        return np.unique(e, axis=0)

    def boundary_edges(self) -> np.ndarray:
        """Edges used by exactly one triangle."""
        t = self.triangles
        e = np.vstack([t[:, [0, 1]], t[:, [1, 2]], t[:, [2, 0]]])
        e.sort(axis=1)
        uniq, counts = np.unique(e, axis=0, return_counts=True)
        return uniq[counts == 1]

    def neighbors(self) -> np.ndarray:
        """``(m, 3)`` adjacent triangle per edge (opposite vertex k); -1 none."""
        t = self.triangles
        m = len(t)
        edge_map: Dict[Tuple[int, int], Tuple[int, int]] = {}
        nbr = np.full((m, 3), -1, dtype=np.int32)
        for ti in range(m):
            for k in range(3):
                u, v = int(t[ti, (k + 1) % 3]), int(t[ti, (k + 2) % 3])
                key = (u, v) if u < v else (v, u)
                if key in edge_map:
                    tj, kj = edge_map.pop(key)
                    nbr[ti, k] = tj
                    nbr[tj, kj] = ti
                else:
                    edge_map[key] = (ti, k)
        return nbr

    def vertex_degrees(self) -> np.ndarray:
        deg = np.zeros(self.n_points, dtype=np.int64)
        np.add.at(deg, self.triangles.ravel(), 1)
        return deg

    def is_conforming(self) -> bool:
        """Every internal edge shared by exactly 2 triangles, none by more."""
        t = self.triangles
        if len(t) == 0:
            return True
        e = np.vstack([t[:, [0, 1]], t[:, [1, 2]], t[:, [2, 0]]])
        e.sort(axis=1)
        _, counts = np.unique(e, axis=0, return_counts=True)
        return bool(np.all(counts <= 2))

    def contains_segments(self, segments: np.ndarray) -> bool:
        """True if every given vertex-index segment appears as a mesh edge."""
        if len(segments) == 0:
            return True
        have = {tuple(e) for e in self.edges().tolist()}
        for u, v in np.asarray(segments, dtype=np.int64):
            a, b = (int(u), int(v)) if u < v else (int(v), int(u))
            if (a, b) not in have:
                return False
        return True

    # ------------------------------------------------------------------
    # Delaunay verification
    # ------------------------------------------------------------------
    def delaunay_violations(self, *, tol: float = 0.0,
                            respect_segments: bool = True) -> int:
        """Count internal edges violating the local Delaunay criterion.

        An edge is locally Delaunay when the opposite vertex of each
        adjacent triangle is not inside the other's circumcircle.  For a
        *constrained* Delaunay triangulation, constrained edges are exempt
        (``respect_segments``).  ``tol`` (relative) absorbs floating error
        for near-cocircular configurations when comparing against other
        implementations.
        """
        from ..geometry.predicates import incircle

        t = self.triangles
        nbr = self.neighbors()
        constrained: Set[Tuple[int, int]] = set()
        if respect_segments and len(self.segments):
            for u, v in self.segments.tolist():
                constrained.add((min(u, v), max(u, v)))
        p = self.points
        bad = 0
        for ti in range(len(t)):
            for k in range(3):
                tj = nbr[ti, k]
                if tj < 0 or tj < ti:
                    continue
                u, v = int(t[ti, (k + 1) % 3]), int(t[ti, (k + 2) % 3])
                if (min(u, v), max(u, v)) in constrained:
                    continue
                a, b, c = (p[t[ti, 0]], p[t[ti, 1]], p[t[ti, 2]])
                # opposite vertex in tj
                opp = [w for w in t[tj] if w != u and w != v]
                if len(opp) != 1:
                    continue
                d = p[opp[0]]
                if exact_eq(tol, 0.0):
                    if incircle(a, b, c, d) > 0:
                        bad += 1
                else:
                    # Tolerant check via circumcircle distance.
                    from ..geometry.primitives import circumcenter, distance

                    try:
                        cc = circumcenter(a, b, c)
                    except ValueError:
                        continue
                    r = distance(cc, a)
                    if distance(cc, d) < r * (1.0 - tol):
                        bad += 1
        return bad

    def is_delaunay(self, *, tol: float = 0.0,
                    respect_segments: bool = True) -> bool:
        return self.delaunay_violations(
            tol=tol, respect_segments=respect_segments) == 0

    # ------------------------------------------------------------------
    # Canonical form
    # ------------------------------------------------------------------
    def canonical(self) -> "TriMesh":
        """Order-independent canonical form of this mesh.

        Two Delaunay meshes over the same point set have bit-identical
        canonical forms regardless of insertion order: vertices are
        lexsorted by coordinate, exact cocircular ties (the one place
        the Delaunay triangulation is *not* unique — e.g. the mirrored
        surface stations of a symmetric airfoil) are resolved by
        flipping every tied quad to its lexicographically smaller
        diagonal, each triangle is rotated so its smallest vertex id
        leads (rotation preserves the CCW orientation), and
        triangle/segment rows are lexsorted.  Feed the result through
        :func:`repro.runtime.serde.pack_mesh` +
        :func:`~repro.runtime.serde.canonical_hash` to compare meshes
        produced by different insertion strategies.
        """
        pts = self.points
        order = np.lexsort((pts[:, 1], pts[:, 0]))
        remap = np.empty(len(pts), dtype=np.int64)
        remap[order] = np.arange(len(pts), dtype=np.int64)
        points = pts[order]
        tris = remap[self.triangles.astype(np.int64)]
        segs = remap[self.segments.astype(np.int64)]
        if len(segs):
            segs = np.sort(segs, axis=1)
            segs = segs[np.lexsort((segs[:, 1], segs[:, 0]))]
        if len(tris):
            tris = _canonical_ties(points, tris, segs)
            lead = np.argmin(tris, axis=1)
            cols = (lead[:, None] + np.arange(3)) % 3
            tris = np.take_along_axis(tris, cols, axis=1)
            tris = tris[np.lexsort((tris[:, 2], tris[:, 1], tris[:, 0]))]
        return TriMesh(points, tris.astype(np.int32),
                       segs.astype(np.int32))

    # ------------------------------------------------------------------
    # Statistics bundle (for reports / EXPERIMENTS.md)
    # ------------------------------------------------------------------
    def quality_summary(self) -> Dict[str, float]:
        if self.n_triangles == 0:
            return {"n_points": self.n_points, "n_triangles": 0}
        ang = np.degrees(self.angles())
        return {
            "n_points": self.n_points,
            "n_triangles": self.n_triangles,
            "min_angle_deg": float(ang.min()),
            "max_angle_deg": float(ang.max()),
            "mean_min_angle_deg": float(ang.min(axis=1).mean()),
            "max_aspect_ratio": float(self.aspect_ratios().max()),
            "max_radius_edge": float(self.radius_edge_ratios().max()),
            "total_area": float(np.abs(self.areas()).sum()),
        }


def _canonical_ties(points: np.ndarray, tris: np.ndarray,
                    segs: np.ndarray) -> np.ndarray:
    """Resolve exact cocircular ties toward the smaller diagonal.

    A Delaunay triangulation is unique except where four (or more)
    points are exactly cocircular; there the diagonal choice records
    insertion order.  This pass flips every non-constrained internal
    edge whose quad is an exact tie (``incircle == 0``) when the
    opposite diagonal is lexicographically smaller.  Each executed flip
    replaces an edge key with a strictly smaller one, so the sorted
    edge multiset strictly decreases and the loop terminates at the
    unique all-ties-minimal triangulation.  Non-tied edges are locally
    Delaunay already and are never touched.
    """
    from ..geometry.predicates import incircle

    tlist = [list(map(int, row)) for row in tris]
    constrained = {(min(u, v), max(u, v)) for u, v in segs.tolist()}
    edge_map: Dict[Tuple[int, int], List[int]] = {}
    for ti, (a, b, c) in enumerate(tlist):
        for u, v in ((a, b), (b, c), (c, a)):
            edge_map.setdefault((min(u, v), max(u, v)), []).append(ti)

    def _rehome(key: Tuple[int, int], old: int, new: int) -> None:
        lst = edge_map[key]
        lst[lst.index(old)] = new

    queue = [e for e, owners in edge_map.items() if len(owners) == 2]
    while queue:
        e = queue.pop()
        if e in constrained:
            continue
        owners = edge_map.get(e)
        if owners is None or len(owners) != 2:
            continue  # stale entry from an earlier flip
        u, v = e
        t1, t2 = owners
        tv1, tv2 = tlist[t1], tlist[t2]
        if u not in tv1 or v not in tv1 or u not in tv2 or v not in tv2:
            continue
        a = next(w for w in tv1 if w != u and w != v)
        b = next(w for w in tv2 if w != u and w != v)
        if a == b:
            continue
        diag = (a, b) if a < b else (b, a)
        if diag >= e or diag in edge_map:
            continue
        if incircle(points[tv1[0]], points[tv1[1]], points[tv1[2]],
                    points[b]) != 0:
            continue  # not a tie: this edge is locally Delaunay
        # Orient from t1's directed copy p -> q of the edge (apex a);
        # t2 then holds q -> p with apex b, and the CCW quad cycle is
        # p -> b -> q -> a, so (a, p, b) and (b, q, a) are the CCW
        # halves across the new diagonal.
        i = tv1.index(u)
        p, q = (u, v) if tv1[(i + 1) % 3] == v else (v, u)
        tlist[t1] = [a, p, b]
        tlist[t2] = [b, q, a]
        del edge_map[e]
        edge_map[diag] = [t1, t2]
        # Rim edges (q, a) and (p, b) change hands; (p, a)/(q, b) stay.
        _rehome((min(q, a), max(q, a)), t1, t2)
        _rehome((min(p, b), max(p, b)), t2, t1)
        for rim in ((p, a), (q, a), (p, b), (q, b)):
            key = (min(rim), max(rim))
            if len(edge_map.get(key, ())) == 2:
                queue.append(key)
    return np.asarray(tlist, dtype=np.int64)


def merge_meshes(meshes: List[TriMesh], *, tol: float = 1e-12) -> TriMesh:
    """Merge subdomain meshes, welding vertices that coincide within ``tol``.

    Subdomains produced by the decomposition/decoupling share only border
    vertices, which are bit-identical by construction; welding uses a
    quantised coordinate key.  Duplicate triangles (none expected) are
    dropped.
    """
    if not meshes:
        raise ValueError("no meshes to merge")
    inv = 1.0 / tol

    # Weld: quantised keys for every vertex of every mesh, welded to the
    # global id of their first appearance (np.round == round: both
    # half-to-even).  Fully vectorised — no per-vertex Python loop.
    all_pts = np.vstack([np.asarray(m.points, dtype=np.float64).reshape(-1, 2)
                         for m in meshes])
    keys = np.round(all_pts * inv).astype(np.int64)
    _, first_idx, inverse = np.unique(keys, axis=0, return_index=True,
                                      return_inverse=True)
    # np.unique sorts by key; renumber so gids follow first appearance.
    appearance = np.argsort(first_idx, kind="stable")
    rank = np.empty(len(first_idx), dtype=np.int64)
    rank[appearance] = np.arange(len(first_idx), dtype=np.int64)
    gid = rank[inverse]
    points = all_pts[first_idx[appearance]]

    offsets = np.cumsum([0] + [m.n_points for m in meshes])
    tri_blocks = [
        gid[offsets[i]:offsets[i + 1]][np.asarray(m.triangles, np.int64)]
        for i, m in enumerate(meshes) if m.n_triangles
    ]
    if tri_blocks:
        tris = np.vstack(tri_blocks)
        # Drop duplicate triangles (none expected), keeping first
        # appearance order like the sequential weld did.
        canon = np.sort(tris, axis=1)
        _, tfirst = np.unique(canon, axis=0, return_index=True)
        tris = tris[np.sort(tfirst)].astype(np.int32)
    else:
        tris = np.empty((0, 3), np.int32)

    seg_blocks = [
        gid[offsets[i]:offsets[i + 1]][np.asarray(m.segments, np.int64)]
        for i, m in enumerate(meshes) if len(m.segments)
    ]
    if seg_blocks:
        segs = np.sort(np.vstack(seg_blocks), axis=1)
        segs = np.unique(segs, axis=0).astype(np.int32)
    else:
        segs = np.empty((0, 2), np.int32)

    return TriMesh(points, tris, segs)
