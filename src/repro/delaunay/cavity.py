"""Cavity-operation engine for the incremental Delaunay kernel.

This module owns the Bowyer–Watson *cavity operations* — point location
(walking with inlined orientation filters), conflict search (circumdisk
BFS), cavity carving and star-fan retriangulation — as free functions
over a :class:`~repro.delaunay.kernel.Triangulation` and its SoA
:class:`~repro.delaunay.arrays.MeshArrays` storage.  The kernel class
keeps the bookkeeping (slots, adjacency, constraints, stats) and
delegates every insertion-path operation here; :mod:`constrained` and
:mod:`refine` call the shared helpers directly instead of carrying
private copies.

On top of the operations sits an **insertion-strategy registry**
(mirroring the executor backend registry in
:mod:`repro.runtime.executor`): a strategy turns a bulk point set plus
an insertion order into kernel vertices.

* ``scalar`` — today's one-point-at-a-time fused fast path
  (:func:`insert_point_fast`), behaviour-preserving and the default.
* ``batch`` — independent-set insertion: BRIO rounds are binned through
  the kernel's :class:`~repro.spatial.grid.BucketGrid` snapshot (one
  candidate per bucket per sub-batch, the CPAFT consistent-partitioning
  trick), every candidate walks to its containing triangle with one
  vectorised :func:`~repro.geometry.predicates.orient2d_batch3` call
  per step, cavities are carved level-by-level with
  :func:`~repro.geometry.predicates.incircle_batch`, and a greedy scan
  keeps only candidates whose cavity closed edge-neighbourhoods are
  pairwise non-overlapping (Spielman, Teng & Üngör: conflict-free
  insertion sets of bounded depth exist).  Neighbourhood-separated
  cavities commute — inserting one point never grows another accepted
  point's conflict set — so replaying the precomputed cavities
  sequentially through :func:`retriangulate` produces exactly the
  Delaunay triangulation the scalar path builds, up to vertex
  numbering.  Conflicting candidates retry in the next sub-batch and
  fall back to the scalar path after :data:`_MAX_RETRIES` rounds, as do
  walks that leave the hull, hit an exactly-degenerate orientation, or
  exceed the step cap — the batch path never *decides* a degeneracy,
  it defers it.

Strategy selection: explicit argument > ``REPRO_INSERT`` environment
variable > ``scalar``.
"""

from __future__ import annotations

import gc
import math
import os
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .arrays import DEAD
from ..geometry.predicates import (
    INCIRCLE_ERR_BOUND,
    INCIRCLE_UNDERFLOW_GUARD,
    ORIENT_ERR_BOUND,
    ORIENT_UNDERFLOW_GUARD,
    batch_exact_counts,
    incircle,
    incircle_batch,
    orient2d,
    orient2d_batch3,
)
from ..runtime.counters import current as counters_current

__all__ = [
    "GHOST",
    "TriangulationError",
    "INSERT_ENV",
    "InsertionStrategy",
    "ScalarInsertion",
    "BatchInsertion",
    "register_strategy",
    "get_strategy",
    "available_strategies",
    "canonical_strategy_name",
    "resolve_strategy_name",
    "brio_order",
    "find_directed_edge",
    "walk_start",
    "locate_fast",
    "locate_ref",
    "locate_fallback",
    "carve_cavity_fast",
    "carve_cavity_ref",
    "expand_level_batch",
    "insert_point_fast",
    "retriangulate",
    "prune_cavity_visibility",
]

#: Symbolic hull vertex: ghost triangle ``[u, v, GHOST]`` is the open
#: half-plane strictly left of the directed hull edge ``u -> v`` plus
#: the open edge itself.
GHOST = -1

# Negative-index translation tables for flat triangle rows: with a list
# ``tv``, ``tv[k - 2] == tv[_NXT[k]]`` and ``tv[k - 1] == tv[_PRV[k]]``.
_NXT = (1, 2, 0)
_PRV = (2, 0, 1)

# Hot-loop local aliases for the filter bounds (module constants resolve
# faster than attribute lookups and keep the loops readable).
_CCW_ERR = ORIENT_ERR_BOUND
_ICC_ERR = INCIRCLE_ERR_BOUND
_CCW_GUARD = ORIENT_UNDERFLOW_GUARD
_ICC_GUARD = INCIRCLE_UNDERFLOW_GUARD

#: Frontier size at which cavity expansion switches from the inlined
#: scalar filter to one vectorised ``incircle_batch`` call per level.
_BATCH_MIN = 12
#: Cheap first-stage incircle certificate: with ``S = alift+blift+clift``
#: the Shewchuk permanent obeys ``permanent <= S*S/3`` (AM-GM on the six
#: products), so ``|det| > _ICC_CHEAP * S * S`` certifies the sign with
#: strictly more slack than the full filter — and needs no abs() chain.
_ICC_CHEAP = INCIRCLE_ERR_BOUND / 3.0
#: ``S*S`` must stay clear of underflow for the cheap bound to be sound.
_ICC_S_GUARD = 1e-125
#: Walk-length EMA above which the vertex grid is built (cold insertion
#: orders; BRIO-local insertion stays well below this).
_GRID_EMA_THRESHOLD = 16.0
#: Once built, the grid seeds walks only while the EMA stays above this
#: (hysteresis: when locality returns, ``_last_tri`` is cheaper).
_GRID_EMA_USE = 6.0
#: Minimum vertex count before a grid is worth building.
_GRID_MIN_POINTS = 128

#: Environment variable selecting the bulk insertion strategy.
INSERT_ENV = "REPRO_INSERT"

#: Scalar insertions before the batch strategy starts batching: the
#: initial structure must exist and the grid partition must be coarser
#: than the cavity diameter for independent sets to be worth finding.
#: 120 is a BRIO round boundary, so batch windows align with rounds.
_BATCH_BOOTSTRAP = 120
#: Sub-batches smaller than this go through the scalar path — the numpy
#: call overhead would exceed the interpreter savings.
_BATCH_MIN_GROUP = 8
#: Vectorised-walk step cap; a walker still travelling defers to the
#: scalar path (its exhaustive-fallback guarantees still apply).
_WALK_STEP_CAP = 64
#: Conflicted candidates retry this many sub-batches, then go scalar.
#: Retries are cheap (they restart beside their winner's fresh fan via
#: the hint machinery), so patience beats the scalar fallback.
_MAX_RETRIES = 8
#: Window cap: one batch window never stages more points than this.
_WINDOW_CAP = 8192
#: Independence partition coarsening: one candidate per _COARSEN x
#: _COARSEN block of grid buckets.  The locator grid averages ~2-4
#: points per bucket, so adjacent-bucket candidates' cavities touch and
#: conflict; a 2x2 block balances the acceptance rate against sub-batch
#: size (coarser blocks shrink the batches until per-level numpy
#: overhead dominates, finer ones drown the planner in retries).
_COARSEN = 2


class TriangulationError(RuntimeError):
    """Raised for structurally invalid kernel operations."""


# ----------------------------------------------------------------------
# Insertion order
# ----------------------------------------------------------------------
def brio_order(points: np.ndarray, seed: int = 0xC0FFEE) -> np.ndarray:
    """Biased randomised insertion order: random rounds of doubling size,
    each round x-sorted — keeps the walk from the previous insert short
    (expected O(1)) while keeping cavity sizes bounded in expectation.
    The shuffle is fully determined by ``seed``."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(len(points))
    chunks = []
    start, size = 0, 8
    while start < len(points):
        block = perm[start:start + size]
        # Snake order within the round: x-buckets, alternating y sweep —
        # consecutive inserts are spatial neighbours, so the walk from the
        # previous insertion is O(1) expected.
        m = len(block)
        nb = max(1, int(math.sqrt(m)))
        xs = points[block, 0]
        ranks = np.argsort(np.argsort(xs, kind="stable"), kind="stable")
        bucket = np.minimum(ranks * nb // max(m, 1), nb - 1)
        ys = points[block, 1]
        y_key = np.where(bucket % 2 == 0, ys, -ys)
        order = np.lexsort((y_key, bucket))
        chunks.append(block[order])
        start += size
        size *= 2
    return np.concatenate(chunks) if chunks else np.arange(0)


# ----------------------------------------------------------------------
# Point location
# ----------------------------------------------------------------------
def walk_start(tri, px: float, py: float, hint: int) -> int:
    """Pick a live, real starting triangle for a walk toward ``(px, py)``."""
    arr = tri._arr
    tvm = arr.tv
    t = (hint if 0 <= hint < arr.n_tris and tvm[3 * hint] != DEAD
         else -1)
    if t < 0:
        if tri._grid is not None and tri._walk_ema > _GRID_EMA_USE:
            t = tri._grid_start(px, py)
        if t < 0:
            t = tri._last_tri
        if t < 0 or tvm[3 * t] == DEAD:
            t = next(iter(tri.live_triangles()))
    if tri.is_ghost(t):
        # step into the real triangle across the hull edge
        u, v = tri.ghost_edge(t)
        k = tri._edge_index(t, u, v)
        nb = arr.tn[3 * t + k]
        t = nb if nb >= 0 else t
    return t


def locate_ref(tri, p: Tuple[float, float], hint: int) -> int:
    """Scalar-predicate walk (the reference / seed hot path)."""
    t = walk_start(tri, p[0], p[1], hint)
    max_steps = 4 * (tri.n_live_triangles + 8)
    steps = 0
    prev = -1
    while steps < max_steps:
        steps += 1
        if tri.is_ghost(t):
            # Walked off the hull; check this ghost's half-plane.
            u, v = tri.ghost_edge(t)
            if orient2d(tri.pts[u], tri.pts[v], p) >= 0:
                tri._last_tri = t
                tri._note_walk(steps)
                return t
            # p visible from a different hull edge: walk along the hull.
            # Move to the next ghost sharing vertex v or u.
            tv = tri.tri_v[t]
            g = tv.index(GHOST)
            nxt = tri.tri_n[t][g - 2]  # neighbour across (v, G)
            if nxt == prev:
                nxt = tri.tri_n[t][g - 1]
            prev, t = t, nxt
            continue
        moved = False
        # Cheap pseudo-random starting edge (an LCG step) breaks the
        # degenerate walk cycles a fixed order could orbit, without the
        # cost of a real shuffle on every step.
        tri._lcg = (tri._lcg * 1103515245 + 12345) & 0x7FFFFFFF
        k0 = tri._lcg % 3
        for dk in range(3):
            k = (k0 + dk) % 3
            u, v = tri._edge(t, k)
            if tri.tri_n[t][k] == prev:
                continue
            if orient2d(tri.pts[u], tri.pts[v], p) < 0:
                prev, t = t, tri.tri_n[t][k]
                moved = True
                break
        if not moved:
            tri._last_tri = t
            tri._note_walk(steps)
            return t
    tri._note_walk(steps)
    return locate_fallback(tri, p)


def locate_fast(tri, p: Tuple[float, float], hint: int) -> int:
    """Walk with the orientation filter inlined (exact escalation)."""
    px, py = p
    t = walk_start(tri, px, py, hint)
    arr = tri._arr
    tvm = arr.tv
    tnm = arr.tn
    pxm = arr.px
    max_steps = 4 * (tri.n_live_triangles + 8)
    steps = 0
    prev = -1
    lcg = tri._lcg
    n_fast = 0
    result = -1
    while steps < max_steps:
        steps += 1
        i3 = 3 * t
        a0 = tvm[i3]
        a1 = tvm[i3 + 1]
        a2 = tvm[i3 + 2]
        if a0 < 0 or a1 < 0 or a2 < 0:
            # Ghost triangle: is p in (or on) its half-plane?
            g = 0 if a0 < 0 else (1 if a1 < 0 else 2)
            u = tvm[i3 + _NXT[g]]
            v = tvm[i3 + _PRV[g]]
            j = 2 * u
            ux = pxm[j]
            uy = pxm[j + 1]
            j = 2 * v
            vx = pxm[j]
            vy = pxm[j + 1]
            detleft = (ux - px) * (vy - py)
            detright = (uy - py) * (vx - px)
            det = detleft - detright
            detsum = abs(detleft) + abs(detright)
            if detsum > _CCW_GUARD and (
                    det > _CCW_ERR * detsum or -det > _CCW_ERR * detsum):  # lint: disable=R1 -- inlined orient2d filter; inconclusive signs escalate below
                n_fast += 1
                inside = det > 0.0  # lint: disable=R1 -- sign certified by the filter on the line above
            else:
                tri.stat_orient_exact += 1
                inside = orient2d((ux, uy), (vx, vy), p) >= 0
            if inside:
                result = t
                break
            nxt = tnm[i3 + _NXT[g]]  # neighbour across (v, G)
            if nxt == prev:
                nxt = tnm[i3 + _PRV[g]]
            prev, t = t, nxt
            continue
        moved = False
        lcg = (lcg * 1103515245 + 12345) & 0x7FFFFFFF
        k0 = lcg % 3
        for dk in range(3):
            k = k0 + dk
            if k > 2:
                k -= 3
            nb = tnm[i3 + k]
            if nb == prev:
                continue
            u = tvm[i3 + _NXT[k]]
            v = tvm[i3 + _PRV[k]]
            j = 2 * u
            ux = pxm[j]
            uy = pxm[j + 1]
            j = 2 * v
            vx = pxm[j]
            vy = pxm[j + 1]
            detleft = (ux - px) * (vy - py)
            detright = (uy - py) * (vx - px)
            det = detleft - detright
            detsum = abs(detleft) + abs(detright)
            if detsum > _CCW_GUARD:
                errbound = _CCW_ERR * detsum
                if det > errbound:  # lint: disable=R1 -- inlined orient2d filter; shares ORIENT_ERR_BOUND, exact fallback below
                    n_fast += 1
                    continue          # p weakly left: not through here
                if -det > errbound:
                    n_fast += 1
                    prev, t = t, nb   # certified right of u->v: cross
                    moved = True
                    break
            tri.stat_orient_exact += 1
            if orient2d((ux, uy), (vx, vy), p) < 0:
                prev, t = t, nb
                moved = True
                break
        if not moved:
            result = t
            break
    tri._lcg = lcg
    tri.stat_orient_fast += n_fast
    tri._note_walk(steps)
    if result >= 0:
        tri._last_tri = result
        return result
    return locate_fallback(tri, p)


def locate_fallback(tri, p: Tuple[float, float]) -> int:
    """Exhaustive exact containment scan (adversarial degeneracies)."""
    tri.stat_brute_locates += 1
    for t in tri.live_triangles():
        if tri.is_ghost(t):
            continue
        tv = tri.tri_v[t]
        if all(
            orient2d(tri.pts[tv[k - 2]], tri.pts[tv[k - 1]], p) >= 0
            for k in range(3)
        ):
            tri._last_tri = t
            return t
    for t in tri.live_triangles():
        if tri.is_ghost(t) and tri._in_disk(t, p):
            tri._last_tri = t
            return t
    raise TriangulationError(f"point {p} could not be located")


def find_directed_edge(tri, u: int, v: int) -> Optional[Tuple[int, int]]:
    """Locate ``(triangle, edge-index)`` holding the directed edge
    ``(u, v)``, or ``None`` when the edge is not present.

    Shared by segment recovery (:mod:`repro.delaunay.constrained`) and
    refinement — previously each carried a private copy of this scan.
    """
    for t in tri.triangles_around_vertex(u):
        tv = tri.tri_v[t]
        for k in range(3):
            if tv[(k + 1) % 3] == u and tv[(k + 2) % 3] == v:
                return t, k
    return None


# ----------------------------------------------------------------------
# Cavity carving
# ----------------------------------------------------------------------
def carve_cavity_ref(tri, p: Tuple[float, float], t0: int
                     ) -> Tuple[Set[int], bool]:
    """Circumdisk BFS with scalar robust predicates (reference)."""
    cavity: Set[int] = {t0}
    stack = [t0]
    blocked = False
    constraints = tri.constraints
    while stack:
        t = stack.pop()
        for k in range(3):
            nb = tri.tri_n[t][k]
            if nb < 0 or nb in cavity:
                continue
            u, v = tri._edge(t, k)
            if u != GHOST and v != GHOST:
                key = (u, v) if u < v else (v, u)
                if key in constraints:
                    blocked = True
                    continue
            if tri._in_disk(nb, p):
                cavity.add(nb)
                stack.append(nb)
    return cavity, blocked


def carve_cavity_fast(tri, p: Tuple[float, float], t0: int
                      ) -> Tuple[Set[int], bool]:
    """Level-order circumdisk search with inlined filtered predicates.

    Small frontiers use the scalar filter inline; frontiers of
    :data:`_BATCH_MIN` or more candidates go through one vectorised
    :func:`incircle_batch` call (refinement cavities on graded
    meshes).  Membership decisions are identical to the reference:
    the cavity is the constraint-respecting connected component of
    triangles whose open circumdisk contains ``p``, independent of
    traversal order.
    """
    tri_v = tri.tri_v
    tri_n = tri.tri_n
    pts = tri.pts
    constraints = tri.constraints
    px, py = p
    cavity: Set[int] = {t0}
    frontier = [t0]
    blocked = False
    n_icc_fast = 0
    while frontier:
        cand: List[int] = []
        for t in frontier:
            tv = tri_v[t]
            tn = tri_n[t]
            for k in range(3):
                nb = tn[k]
                if nb < 0 or nb in cavity:
                    continue
                if constraints:
                    u = tv[k - 2]
                    v = tv[k - 1]
                    if u >= 0 and v >= 0:
                        key = (u, v) if u < v else (v, u)
                        if key in constraints:
                            blocked = True
                            continue
                cand.append(nb)
        if not cand:
            break
        if len(cand) >= _BATCH_MIN:
            frontier = expand_level_batch(tri, cand, cavity, px, py)
            continue
        frontier = []
        for nb in cand:
            if nb in cavity:
                continue  # added via a sibling this level
            tv = tri_v[nb]
            a = tv[0]
            b = tv[1]
            c = tv[2]
            if a < 0 or b < 0 or c < 0:
                if tri._in_disk_fast(nb, px, py):
                    cavity.add(nb)
                    frontier.append(nb)
                continue
            # Inlined incircle filter (matches the scalar predicate's
            # first stage); only inconclusive signs leave this loop.
            ax, ay = pts[a]
            bx, by = pts[b]
            cx, cy = pts[c]
            adx = ax - px
            ady = ay - py
            bdx = bx - px
            bdy = by - py
            cdx = cx - px
            cdy = cy - py
            bdxcdy = bdx * cdy
            cdxbdy = cdx * bdy
            cdxady = cdx * ady
            adxcdy = adx * cdy
            adxbdy = adx * bdy
            bdxady = bdx * ady
            alift = adx * adx + ady * ady
            blift = bdx * bdx + bdy * bdy
            clift = cdx * cdx + cdy * cdy
            det = (alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy)
                   + clift * (adxbdy - bdxady))
            permanent = ((abs(bdxcdy) + abs(cdxbdy)) * alift
                         + (abs(cdxady) + abs(adxcdy)) * blift
                         + (abs(adxbdy) + abs(bdxady)) * clift)
            if permanent > _ICC_GUARD:
                errbound = _ICC_ERR * permanent
                if det > errbound:
                    n_icc_fast += 1
                    cavity.add(nb)
                    frontier.append(nb)
                    continue
                if -det > errbound:
                    n_icc_fast += 1
                    continue
            tri.stat_incircle_exact += 1
            if incircle(pts[a], pts[b], pts[c], (px, py)) > 0:
                cavity.add(nb)
                frontier.append(nb)
    tri.stat_incircle_fast += n_icc_fast
    return cavity, blocked


def expand_level_batch(tri, cand: List[int], cavity: Set[int],
                       px: float, py: float) -> List[int]:
    """Batched in-disk test of one BFS level; returns accepted tris.

    Vectorised over the SoA buffers: one fancy-indexed gather pulls
    the candidate vertex rows and their coordinates straight out of
    ``MeshArrays`` (no per-triangle Python coordinate staging), then
    a single :func:`incircle_batch` call decides the level.  Ghost
    candidates keep the scalar half-plane test.
    """
    arr = tri._arr
    idx = np.asarray(cand, dtype=np.int64)
    rows = arr.tri_v[idx]                       # (m, 3) gather
    ghost = rows.min(axis=1) < 0
    nxt: List[int] = []
    if ghost.any():
        for nb in idx[ghost].tolist():
            if nb not in cavity and tri._in_disk_fast(nb, px, py):
                cavity.add(nb)
                nxt.append(nb)
    real = ~ghost
    m = int(real.sum())
    if m:
        reals = idx[real].tolist()
        abc = arr.pts[rows[real]]               # (m, 3, 2) gather
        before = batch_exact_counts()["incircle"]
        signs = incircle_batch(abc[:, 0], abc[:, 1], abc[:, 2],
                               np.array((px, py)))
        n_exact = batch_exact_counts()["incircle"] - before
        tri.stat_batch_calls += 1
        tri.stat_batch_entries += m
        tri.stat_incircle_exact += n_exact
        tri.stat_incircle_fast += m - n_exact
        for nb, s in zip(reals, signs.tolist()):
            if s > 0 and nb not in cavity:
                cavity.add(nb)
                nxt.append(nb)
    return nxt


# ----------------------------------------------------------------------
# Scalar fused insertion (walk + dup check + carve + retriangulate)
# ----------------------------------------------------------------------
def insert_point_fast(tri, px: float, py: float, hint: int) -> int:
    """Fused fast-path insertion: walk, duplicate check, cavity carve
    and retriangulation in one frame with every predicate's filter
    stage inlined.

    Decision-for-decision equivalent to ``locate`` + ``find_vertex_at``
    + ``_insert_into_cavity`` — certified filter signs are exact signs,
    and inconclusive ones escalate to the exact predicates.  Returns
    the new vertex id, or ``-2 - v`` when the point duplicates existing
    vertex ``v``.
    """
    arr = tri._arr
    # Reserve-before-alias: the single appended point must not force
    # a reallocation while the flat views below are live (triangle
    # growth is reserved inside retriangulate, which re-aliases).
    arr.reserve_points(1)
    tvm = arr.tv
    tnm = arr.tn
    pxm = arr.px
    # ---- walking point location (inlined orientation filter) ----
    t = (hint if 0 <= hint < arr.n_tris and tvm[3 * hint] != DEAD
         else -1)
    if t < 0:
        if tri._grid is not None and tri._walk_ema > _GRID_EMA_USE:
            t = tri._grid_start(px, py)
        if t < 0:
            t = tri._last_tri
        if t < 0 or tvm[3 * t] == DEAD:
            t = next(iter(tri.live_triangles()))
    i3 = 3 * t
    if tvm[i3] < 0 or tvm[i3 + 1] < 0 or tvm[i3 + 2] < 0:
        # Ghost start: step across its real edge into the hull.
        g = (0 if tvm[i3] < 0 else (1 if tvm[i3 + 1] < 0 else 2))
        nb = tnm[i3 + g]
        if nb >= 0:
            t = nb
    max_steps = 4 * (tri.n_live_triangles + 8)
    steps = 0
    prev = -1
    # One pseudo-random starting-edge draw per insertion, rotated each
    # step — enough stochasticity to break degenerate walk cycles
    # (and the exhaustive fallback guards the rest), without an LCG
    # step per triangle.
    lcg = (tri._lcg * 1103515245 + 12345) & 0x7FFFFFFF
    tri._lcg = lcg
    k0 = lcg % 3
    n_ofast = 0
    n_oexact = 0
    t0 = -1
    # certified == p is *strictly* inside t0 (strictly inside a ghost
    # half-plane), which already implies cavity membership — the
    # circumdisk pre-check can be skipped.
    certified = False
    while steps < max_steps:
        steps += 1
        i3 = 3 * t
        a0 = tvm[i3]
        a1 = tvm[i3 + 1]
        a2 = tvm[i3 + 2]
        if a0 < 0 or a1 < 0 or a2 < 0:
            # Ghost: accept if p is in its closed half-plane, else
            # continue along the hull.
            g = 0 if a0 < 0 else (1 if a1 < 0 else 2)
            j = 2 * tvm[i3 + _NXT[g]]
            ux = pxm[j]
            uy = pxm[j + 1]
            j = 2 * tvm[i3 + _PRV[g]]
            vx = pxm[j]
            vy = pxm[j + 1]
            detleft = (ux - px) * (vy - py)
            detright = (uy - py) * (vx - px)
            det = detleft - detright
            detsum = abs(detleft) + abs(detright)
            if detsum > _CCW_GUARD:
                errbound = _CCW_ERR * detsum
                if det > errbound:  # lint: disable=R1 -- inlined orient2d filter; shares ORIENT_ERR_BOUND, exact fallback below
                    n_ofast += 1
                    t0 = t
                    certified = True
                    break
                if -det > errbound:
                    n_ofast += 1
                    nxt = tnm[i3 + _NXT[g]]
                    if nxt == prev:
                        nxt = tnm[i3 + _PRV[g]]
                    prev = t
                    t = nxt
                    continue
            n_oexact += 1
            o = orient2d((ux, uy), (vx, vy), (px, py))
            if o > 0:
                t0 = t
                certified = True
                break
            if o == 0:
                t0 = t
                break
            nxt = tnm[i3 + _NXT[g]]
            if nxt == prev:
                nxt = tnm[i3 + _PRV[g]]
            prev = t
            t = nxt
            continue
        k0 += 1
        if k0 > 2:
            k0 = 0
        moved = False
        strict = True
        for dk in (0, 1, 2):
            k = k0 + dk
            if k > 2:
                k -= 3
            nb = tnm[i3 + k]
            if nb == prev:
                # Entered across this edge, so p is strictly on this
                # side of it — no need to re-test.
                continue
            j = 2 * tvm[i3 + _NXT[k]]
            ux = pxm[j]
            uy = pxm[j + 1]
            j = 2 * tvm[i3 + _PRV[k]]
            vx = pxm[j]
            vy = pxm[j + 1]
            detleft = (ux - px) * (vy - py)
            detright = (uy - py) * (vx - px)
            det = detleft - detright
            detsum = abs(detleft) + abs(detright)
            if detsum > _CCW_GUARD:
                errbound = _CCW_ERR * detsum
                if det > errbound:  # lint: disable=R1 -- inlined orient2d filter; shares ORIENT_ERR_BOUND, exact fallback below
                    n_ofast += 1
                    continue
                if -det > errbound:
                    n_ofast += 1
                    prev = t
                    t = nb
                    moved = True
                    break
            n_oexact += 1
            o = orient2d((ux, uy), (vx, vy), (px, py))
            if o < 0:
                prev = t
                t = nb
                moved = True
                break
            if o == 0:
                strict = False
        if not moved:
            t0 = t
            certified = strict
            break
    tri.stat_orient_fast += n_ofast
    tri.stat_orient_exact += n_oexact
    tri._note_walk(steps)
    if t0 < 0:
        t0 = locate_fallback(tri, (px, py))
        certified = False
    # ---- duplicate check (vertices of the containing triangle) ----
    i3 = 3 * t0
    for vtx in (tvm[i3], tvm[i3 + 1], tvm[i3 + 2]):
        if vtx >= 0:
            j = 2 * vtx
            if pxm[j] == px and pxm[j + 1] == py:
                tri._last_tri = t0
                tri.last_created = []
                tri.last_removed = []
                return -2 - vtx
    # ---- new vertex (capacity reserved at entry) ----
    vid = arr.n_pts
    j = 2 * vid
    pxm[j] = px
    pxm[j + 1] = py
    arr.vt[vid] = -1
    arr.n_pts = vid + 1
    tri.stat_inserts += 1
    if not certified and not tri._in_disk_fast(t0, px, py):
        # p on the boundary of t0: some adjacent circumdisk holds it.
        found = -1
        for k in (0, 1, 2):
            nb = tnm[3 * t0 + k]
            if nb >= 0 and tri._in_disk_fast(nb, px, py):
                found = nb
                break
        if found < 0:
            raise TriangulationError(
                f"insertion point {(px, py)} in no circumdisk (duplicate?)"
            )
        t0 = found
    # ---- cavity carve (level BFS, inlined incircle filter) ----
    constraints = tri.constraints
    cavity: Set[int] = {t0}
    # seen = cavity plus rejected candidates, so a rejected triangle
    # bordering two cavity triangles is tested once, not twice.
    seen: Set[int] = {t0}
    frontier = [t0]
    blocked = False
    n_ifast = 0
    n_iexact = 0
    while frontier:
        cand: List[int] = []
        if constraints:
            for t in frontier:
                i3 = 3 * t
                nb = tnm[i3]
                if nb >= 0 and nb not in seen:
                    u = tvm[i3 + 1]
                    v = tvm[i3 + 2]
                    if (u >= 0 and v >= 0
                            and ((u, v) if u < v else (v, u)) in constraints):
                        blocked = True
                    else:
                        cand.append(nb)
                nb = tnm[i3 + 1]
                if nb >= 0 and nb not in seen:
                    u = tvm[i3 + 2]
                    v = tvm[i3]
                    if (u >= 0 and v >= 0
                            and ((u, v) if u < v else (v, u)) in constraints):
                        blocked = True
                    else:
                        cand.append(nb)
                nb = tnm[i3 + 2]
                if nb >= 0 and nb not in seen:
                    u = tvm[i3]
                    v = tvm[i3 + 1]
                    if (u >= 0 and v >= 0
                            and ((u, v) if u < v else (v, u)) in constraints):
                        blocked = True
                    else:
                        cand.append(nb)
        else:
            for t in frontier:
                i3 = 3 * t
                nb = tnm[i3]
                if nb >= 0 and nb not in seen:
                    cand.append(nb)
                nb = tnm[i3 + 1]
                if nb >= 0 and nb not in seen:
                    cand.append(nb)
                nb = tnm[i3 + 2]
                if nb >= 0 and nb not in seen:
                    cand.append(nb)
        if not cand:
            break
        if len(cand) >= _BATCH_MIN:
            frontier = expand_level_batch(tri, cand, cavity, px, py)
            seen.update(cand)
            continue
        frontier = []
        for nb in cand:
            if nb in seen:
                continue  # reached via a sibling this level
            seen.add(nb)
            j3 = 3 * nb
            a = tvm[j3]
            b = tvm[j3 + 1]
            c = tvm[j3 + 2]
            if a < 0 or b < 0 or c < 0:
                if tri._in_disk_fast(nb, px, py):
                    cavity.add(nb)
                    frontier.append(nb)
                continue
            j = 2 * a
            pax = pxm[j]
            pay = pxm[j + 1]
            j = 2 * b
            pbx = pxm[j]
            pby = pxm[j + 1]
            j = 2 * c
            pcx = pxm[j]
            pcy = pxm[j + 1]
            adx = pax - px
            ady = pay - py
            bdx = pbx - px
            bdy = pby - py
            cdx = pcx - px
            cdy = pcy - py
            bdxcdy = bdx * cdy
            cdxbdy = cdx * bdy
            cdxady = cdx * ady
            adxcdy = adx * cdy
            adxbdy = adx * bdy
            bdxady = bdx * ady
            alift = adx * adx + ady * ady
            blift = bdx * bdx + bdy * bdy
            clift = cdx * cdx + cdy * cdy
            det = (alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy)
                   + clift * (adxbdy - bdxady))
            s = alift + blift + clift
            if s > _ICC_S_GUARD:
                cheap = _ICC_CHEAP * s * s
                if det > cheap:  # lint: disable=R1 -- inlined incircle cheap certificate; full filter + exact below
                    n_ifast += 1
                    cavity.add(nb)
                    frontier.append(nb)
                    continue
                if -det > cheap:
                    n_ifast += 1
                    continue
            # Cheap certificate inconclusive: full Shewchuk filter.
            permanent = ((abs(bdxcdy) + abs(cdxbdy)) * alift
                         + (abs(cdxady) + abs(adxcdy)) * blift
                         + (abs(adxbdy) + abs(bdxady)) * clift)
            if permanent > _ICC_GUARD:
                errbound = _ICC_ERR * permanent
                if det > errbound:  # lint: disable=R1 -- inlined incircle Shewchuk filter; exact escalation below
                    n_ifast += 1
                    cavity.add(nb)
                    frontier.append(nb)
                    continue
                if -det > errbound:
                    n_ifast += 1
                    continue
            n_iexact += 1
            if incircle((pax, pay), (pbx, pby), (pcx, pcy),
                        (px, py)) > 0:
                cavity.add(nb)
                frontier.append(nb)
    tri.stat_incircle_fast += n_ifast
    tri.stat_incircle_exact += n_iexact
    retriangulate(tri, vid, cavity, t0, blocked)
    return vid


# ----------------------------------------------------------------------
# Retriangulation
# ----------------------------------------------------------------------
def retriangulate(tri, vid: int, cavity: Set[int], t0: int,
                  blocked: bool) -> None:
    """Replace ``cavity`` by the star fan of ``vid`` (shared tail of
    the fast and reference insertion paths)."""
    arr = tri._arr
    n_cavity = len(cavity)
    # Reserve-before-alias: a connected cavity of n triangles has at
    # most n + 2 boundary edges (Euler), so at most n + 2 fan slots
    # are appended; reserving them up front keeps the flat views
    # below valid for the whole frame.
    arr.reserve_triangles(n_cavity + 2)
    tvm = arr.tv
    tnm = arr.tn
    vtm = arr.vt
    tri.stat_cavity_tris += n_cavity
    tri.stat_cavity_hist[n_cavity if n_cavity < 31 else 31] += 1

    # Constrained-Delaunay visibility pruning: with spiky constrained
    # boundaries the circumdisk BFS can wrap AROUND a constrained edge
    # (reaching both of its sides without ever crossing it).  Keeping
    # such triangles would delete the constraint during
    # retriangulation.  Detect the configuration and prune cavity
    # triangles whose centroid is not visible from p.
    if tri.constraints:
        p = tri.pts[vid]
        wrapped_edge = False
        for t in cavity:
            i3 = 3 * t
            for k in range(3):
                nb = tnm[i3 + k]
                if nb not in cavity:
                    continue
                u = tvm[i3 + _NXT[k]]
                v = tvm[i3 + _PRV[k]]
                if u == GHOST or v == GHOST:
                    continue
                key = (u, v) if u < v else (v, u)
                if key in tri.constraints:
                    wrapped_edge = True
                    break
            if wrapped_edge:
                break
        if wrapped_edge:
            cavity = prune_cavity_visibility(tri, cavity, t0, p)
            blocked = True
            n_cavity = len(cavity)

    # Walk the cavity boundary in ring order, creating the fan as we
    # go: fan triangle [u, v, vid] has edge 0 = (v, vid) bordering
    # the NEXT fan triangle and edge 1 = (vid, u) bordering the
    # PREVIOUS one, so creating in ring order links the fan without
    # any vertex maps or second pass.  New slots come from the free
    # list (cavity slots are freed only afterwards, so ids never
    # collide with live ones).
    free = arr.free
    n_tris_local = arr.n_tris
    new_tris: List[int] = []
    # Any cavity edge whose neighbour survives starts the ring.
    t = k = -1
    for t in cavity:
        i3 = 3 * t
        if tnm[i3] not in cavity:
            k = 0
            break
        if tnm[i3 + 1] not in cavity:
            k = 1
            break
        if tnm[i3 + 2] not in cavity:
            k = 2
            break
    if k < 0:
        raise TriangulationError("cavity has no boundary")
    start_t = t
    start_k = k
    first_nt = -1
    prev_nt = -1
    while True:
        i3 = 3 * t
        u = tvm[i3 + _NXT[k]]
        v = tvm[i3 + _PRV[k]]
        nb = tnm[i3 + k]
        if free:
            nt = free.pop()
        else:
            nt = n_tris_local
            n_tris_local += 1
        j3 = 3 * nt
        tvm[j3] = u
        tvm[j3 + 1] = v
        tvm[j3 + 2] = vid
        tnm[j3] = -1
        tnm[j3 + 1] = prev_nt
        tnm[j3 + 2] = nb
        if nb >= 0:
            # Directed edge (v, u) of nb: v appears exactly once there.
            m3 = 3 * nb
            tnm[m3 + (0 if tvm[m3 + 1] == v
                      else (1 if tvm[m3 + 2] == v else 2))] = nt
        if u >= 0:
            vtm[u] = nt
        if prev_nt >= 0:
            tnm[3 * prev_nt] = nt
        else:
            first_nt = nt
        prev_nt = nt
        new_tris.append(nt)
        # Advance to the boundary edge starting at v: pivot around v
        # through cavity triangles until an edge leaves the cavity.
        j = k + 1
        if j > 2:
            j = 0
        while True:
            nb2 = tnm[3 * t + j]
            if nb2 not in cavity:
                break
            t = nb2
            m3 = 3 * t
            # Edge (v, .) of t, i.e. the index j with tv[j - 2] == v.
            j = (0 if tvm[m3] == v else (1 if tvm[m3 + 1] == v else 2)) - 1
            if j < 0:
                j = 2
        k = j
        if t == start_t and k == start_k:
            break
    arr.n_tris = n_tris_local
    tnm[3 * prev_nt] = first_nt
    tnm[3 * first_nt + 1] = prev_nt

    tri.last_removed = list(cavity)
    for t in cavity:
        tvm[3 * t] = DEAD
    free.extend(cavity)
    tri.n_live_triangles += len(new_tris) - n_cavity
    tri._last_tri = first_nt
    tri.last_created = new_tris
    # Pick a real incident triangle as the vertex hint when available.
    vtm[vid] = new_tris[0]
    for t in new_tris:
        i3 = 3 * t
        if tvm[i3] >= 0 and tvm[i3 + 1] >= 0 and tvm[i3 + 2] >= 0:
            vtm[vid] = t
            break
    if blocked:
        # A constraint clipped the cavity: the star fan is not
        # automatically locally Delaunay, so legalise around the new
        # vertex (Lawson flips, never crossing constraints).  Flips
        # reuse the two triangle slots, so last_created stays valid.
        tri._legalize_vertex(vid)


def prune_cavity_visibility(tri, cavity: Set[int], t0: int,
                            p: Tuple[float, float]) -> Set[int]:
    """Drop cavity triangles whose centroid p cannot see.

    Visibility is tested against the constrained edges incident to
    cavity triangles (a blocking constraint must appear there); the
    surviving set is re-restricted to the connected component of
    ``t0`` so the retriangulated fan stays star-shaped about ``p``.
    """
    from ..geometry.primitives import segments_intersect

    constr: Set[Tuple[int, int]] = set()
    for t in cavity:
        tv = tri.tri_v[t]
        for k in range(3):
            u, v = tv[k - 2], tv[k - 1]
            if u == GHOST or v == GHOST:
                continue
            key = (u, v) if u < v else (v, u)
            if key in tri.constraints:
                constr.add(key)
    if not constr:
        return cavity

    def visible(t: int) -> bool:
        tv = tri.tri_v[t]
        if GHOST in tv:
            reals = [tri.pts[w] for w in tv if w != GHOST]
            cx = sum(q[0] for q in reals) / len(reals)
            cy = sum(q[1] for q in reals) / len(reals)
        else:
            cx = sum(tri.pts[w][0] for w in tv) / 3.0
            cy = sum(tri.pts[w][1] for w in tv) / 3.0
        for (u, v) in constr:
            if segments_intersect(p, (cx, cy), tri.pts[u],
                                  tri.pts[v], proper_only=True):
                return False
        return True

    kept = {t for t in cavity if t == t0 or visible(t)}
    # Connected component of t0 within the kept set, still never
    # crossing constrained edges.
    comp = {t0}
    stack = [t0]
    while stack:
        t = stack.pop()
        for k in range(3):
            nb = tri.tri_n[t][k]
            if nb not in kept or nb in comp:
                continue
            u, v = tri._edge(t, k)
            if u != GHOST and v != GHOST:
                key = (u, v) if u < v else (v, u)
                if key in tri.constraints:
                    continue
            comp.add(nb)
            stack.append(nb)
    return comp


def retriangulate_batch(tri, vids: np.ndarray,
                        cavities: List[List[int]]) -> bool:
    """Commit every accepted fan of a sub-batch in one vectorised pass.

    The batch planner guarantees the cavities' closed
    edge-neighbourhoods are pairwise disjoint, so no two records share
    a cavity triangle, a boundary edge, or an outer neighbour — every
    gather/scatter below is conflict-free by construction and the
    result is identical to replaying :func:`retriangulate` per record.

    Returns ``False`` without touching the mesh when the vector path
    does not apply (constraints present, a pinched cavity boundary, or
    an open boundary cycle); the caller then falls back to the scalar
    loop.
    """
    arr = tri._arr
    if tri.constraints:
        return False
    n_rec = len(cavities)
    sizes = np.array([len(c) for c in cavities], dtype=np.int64)
    n_cav = int(sizes.sum())
    cav_t = np.fromiter((t for c in cavities for t in c),
                        dtype=np.int64, count=n_cav)
    rec_of = np.repeat(np.arange(n_rec, dtype=np.int64), sizes)

    tri.stat_cavity_tris += n_cav
    hist = np.bincount(np.minimum(sizes, 31), minlength=32)
    ch = tri.stat_cavity_hist
    for b in np.flatnonzero(hist).tolist():
        ch[b] += int(hist[b])

    # Reserve-before-alias: each record appends at most |cavity| + 2
    # fan slots (Euler); recycled slots never need capacity.
    arr.reserve_triangles(n_cav + 2 * n_rec)
    TV = arr.tri_v
    TN = arr.tri_n
    VT = arr.vertex_tri

    # Boundary edges.  Closed neighbourhoods are disjoint, so an edge
    # leaves its record's cavity iff the neighbour is in NO cavity —
    # one global membership table replaces per-record set probes.
    nb = TN[cav_t].astype(np.int64)
    vs = TV[cav_t].astype(np.int64)
    in_cav = np.zeros(arr.n_tris, dtype=bool)
    in_cav[cav_t] = True
    bmask = (nb < 0) | ~in_cav[np.where(nb >= 0, nb, 0)]
    bi, bk = np.nonzero(bmask)
    b_rec = rec_of[bi]
    b_out = nb[bi, bk]
    b_u = vs[bi, _NXT_ARR[bk]]
    b_v = vs[bi, _PRV_ARR[bk]]
    n_fan = b_u.size

    # Ring linking: fan (u, v, vid) neighbours the fan whose boundary
    # edge starts at v.  A star-shaped cavity boundary is a simple
    # cycle, so within a record each start vertex appears exactly once
    # (GHOST included: a hull cavity passes through it once) — match
    # edge starts against edge ends with one sorted lookup.
    base = np.int64(arr.n_pts) + 1
    ku = b_rec * base + b_u + 1
    order = np.argsort(ku, kind="stable")
    ks = ku[order]
    if n_fan and bool((ks[1:] == ks[:-1]).any()):
        return False  # pinched boundary: scalar fallback handles it
    kv = b_rec * base + b_v + 1
    pos = np.minimum(np.searchsorted(ks, kv), n_fan - 1)
    if not np.array_equal(ks[pos], kv):
        return False  # open cycle: malformed cavity, let scalar raise
    nxt = order[pos]
    prv = np.empty(n_fan, dtype=np.int64)
    prv[nxt] = np.arange(n_fan, dtype=np.int64)

    # Fan slots: recycle the free-list tail (as the scalar path pops),
    # then append.  Cavity slots are still live here, so ids never
    # collide with the fans being written.
    free = arr.free
    take = min(len(free), n_fan)
    slots = np.empty(n_fan, dtype=np.int64)
    if take:
        slots[:take] = free[len(free) - take:]
        del free[len(free) - take:]
    if take < n_fan:
        t0 = arr.n_tris
        slots[take:] = np.arange(t0, t0 + n_fan - take, dtype=np.int64)
        arr.n_tris = t0 + n_fan - take

    fan_v = np.empty((n_fan, 3), dtype=np.int32)
    fan_v[:, 0] = b_u
    fan_v[:, 1] = b_v
    fan_v[:, 2] = vids[b_rec]
    TV[slots] = fan_v
    fan_n = np.empty((n_fan, 3), dtype=np.int32)
    fan_n[:, 0] = slots[nxt]
    fan_n[:, 1] = slots[prv]
    fan_n[:, 2] = b_out
    TN[slots] = fan_n

    # Outer back-pointers: the surviving neighbour's edge that pointed
    # at the destroyed cavity triangle now points at the fan.  The
    # column is the one whose directed edge ends at v; an outer
    # triangle bordering one cavity along two edges lands on two
    # distinct columns, so the scatter never collides.
    om = b_out >= 0
    m = b_out[om]
    mv = TV[m]
    v_o = b_v[om]
    col = np.where(mv[:, 1] == v_o, 0, np.where(mv[:, 2] == v_o, 1, 2))
    TN[m, col] = slots[om]

    # Vertex→triangle hints: boundary vertices point at their fan; the
    # new vertices prefer an all-real fan (walk seeds then never start
    # on a ghost), falling back to any fan of their record.
    um = b_u >= 0
    VT[b_u[um]] = slots[um]
    VT[vids[b_rec]] = slots
    rm = um & (b_v >= 0)
    VT[vids[b_rec[rm]]] = slots[rm]

    TV[cav_t, 0] = DEAD
    free.extend(cav_t.tolist())
    tri.n_live_triangles += n_fan - n_cav
    tri._last_tri = int(slots[-1])
    last = n_rec - 1
    tri.last_removed = cav_t[rec_of == last].tolist()
    tri.last_created = slots[b_rec == last].tolist()
    return True


_NXT_ARR = np.array([1, 2, 0], dtype=np.int64)
_PRV_ARR = np.array([2, 0, 1], dtype=np.int64)


# ----------------------------------------------------------------------
# Insertion-strategy registry (mirrors runtime/executor.py backends)
# ----------------------------------------------------------------------
class InsertionStrategy:
    """A bulk point-insertion policy over a :class:`Triangulation`.

    Concrete strategies implement :meth:`insert_points`; they receive
    the kernel, the raw ``(n, 2)`` coordinate array and the insertion
    order (input indices) and return the ``input index -> kernel
    vertex id`` map.  Duplicate inputs map to the existing vertex.
    """

    name: str = "abstract"
    description: str = ""

    def insert_points(self, tri, points: np.ndarray,
                      order: Sequence[int]) -> Dict[int, int]:
        raise NotImplementedError


_REGISTRY: Dict[str, InsertionStrategy] = {}
_ALIASES: Dict[str, str] = {}


def register_strategy(strategy: InsertionStrategy,
                      aliases: Sequence[str] = ()) -> InsertionStrategy:
    """Register a strategy instance under its name (plus aliases)."""
    _REGISTRY[strategy.name] = strategy
    for alias in aliases:
        _ALIASES[alias] = strategy.name
    return strategy


def canonical_strategy_name(name: str) -> str:
    """Resolve aliases (``vectorized`` -> ``batch``); raise on unknown."""
    resolved = _ALIASES.get(name, name)
    if resolved not in _REGISTRY:
        raise ValueError(
            f"unknown insertion strategy: {name} (available: "
            f"{', '.join(available_strategies())})"
        )
    return resolved


def get_strategy(name: str) -> InsertionStrategy:
    """Look up a strategy by registry name or alias."""
    return _REGISTRY[canonical_strategy_name(name)]


def available_strategies() -> List[str]:
    """Every accepted ``--insert-strategy`` value (names + aliases)."""
    return sorted(set(_REGISTRY) | set(_ALIASES))


def resolve_strategy_name(name: Optional[str] = None, *,
                          default: str = "scalar") -> str:
    """Pick the strategy: explicit arg > ``REPRO_INSERT`` > default."""
    if name is not None:
        return canonical_strategy_name(name)
    env = os.environ.get(INSERT_ENV)
    if env:
        return canonical_strategy_name(env)
    return default


# ----------------------------------------------------------------------
# Scalar strategy (behaviour-preserving default)
# ----------------------------------------------------------------------
class ScalarInsertion(InsertionStrategy):
    """One-point-at-a-time insertion through the fused fast path.

    Exactly the historical bulk loop of ``triangulate``: per-point
    wrapper insertions until the first real triangle exists, then the
    fused :func:`insert_point_fast` (or the wrapper throughout for
    ``fast_predicates=False`` kernels).
    """

    name = "scalar"
    description = "sequential fused-walk insertion (default)"

    def insert_points(self, tri, points: np.ndarray,
                      order: Sequence[int]) -> Dict[int, int]:
        coords = (points.tolist() if isinstance(points, np.ndarray)
                  else [list(q) for q in points])
        inserted: Dict[int, int] = {}
        insert = tri.insert_point
        fast = tri._fast
        # The bulk loop allocates ~a dozen small objects per insertion
        # and keeps them all reachable; generational GC scans buy
        # nothing here, so pause collection for the loop.
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            it = iter(order)
            for i in it:
                i = int(i)
                x, y = coords[i]
                inserted[i] = insert(x, y)
                if fast and tri.n_live_triangles:
                    break
            if fast:
                for i in it:
                    i = int(i)
                    x, y = coords[i]
                    # Bulk path: coordinates validated by the caller, so
                    # skip the per-point wrapper (duplicates map to the
                    # existing vertex).
                    r = insert_point_fast(tri, x, y, -1)
                    inserted[i] = r if r >= 0 else -2 - r
            else:
                for i in it:
                    i = int(i)
                    x, y = coords[i]
                    inserted[i] = insert(x, y)
        finally:
            if gc_was_enabled:
                gc.enable()
        return inserted


# ----------------------------------------------------------------------
# Batch strategy (independent-set insertion)
# ----------------------------------------------------------------------
def _scalar_insert_one(tri, x: float, y: float, hint: int = -1) -> int:
    """Scalar fallback insert used by the batch path; returns the
    kernel vertex id (duplicates map to the existing vertex).

    ``hint`` is a walk-start triangle (the batch walk's last position
    for this point) — it spares the fallback the grid ring-scan that a
    cold start pays, and :func:`insert_point_fast` revalidates it, so a
    hint killed by an interleaved commit is merely ignored."""
    if tri._fast and tri.n_live_triangles:
        r = insert_point_fast(tri, x, y, hint)
        return r if r >= 0 else -2 - r
    return tri.insert_point(x, y)


def walk_batch(tri, seeds: np.ndarray, qxy: np.ndarray
               ) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised visibility walk for a batch of query points.

    One :func:`orient2d_batch3` call per step evaluates all three edge
    orientations of every still-walking record with exact escalation,
    so each step's routing decisions are exact.  Records are *located*
    when every sign is strictly positive (strictly inside a real
    triangle — which also certifies cavity membership of the containing
    triangle).  Records defer to the scalar path when they reach a
    ghost row (outside the hull), meet an exactly-zero orientation
    (on an edge or vertex: duplicate/boundary handling stays scalar),
    or survive past the straggler cutoff — once the active set shrinks
    to a sliver of the batch, each further level is numpy fixed cost
    for a handful of rows, so the tail finishes scalar instead.

    Returns ``(t0, located)`` arrays aligned with the batch.  For
    located records ``t0`` is the containing triangle; for deferred
    ones it is the record's last walk position — a warm start for the
    scalar fallback either way.
    """
    arr = tri._arr
    m = len(seeds)
    t0_out = np.asarray(seeds, dtype=np.int64).copy()
    located = np.zeros(m, dtype=bool)
    cutoff = max(4, m >> 5)
    act = np.arange(m, dtype=np.int64)
    cur = np.asarray(seeds, dtype=np.int64).copy()
    # Per-record deterministic LCG streams derived from the kernel LCG
    # (one global draw per batch, Knuth-hashed per record): the walk
    # stays reproducible for identical inputs and seeds.
    tri._lcg = (tri._lcg * 1103515245 + 12345) & 0x7FFFFFFF
    lcg = (tri._lcg + 2654435761 * (act + 1)) & 0x7FFFFFFF
    steps_total = 0
    n_steps = np.zeros(m, dtype=np.int64)
    col = np.arange(3, dtype=np.int64)
    tv_rows = arr.tri_v
    tn_rows = arr.tri_n
    coords_all = arr.pts
    exact_before = batch_exact_counts()["orient2d"]
    entries = 0
    for _ in range(_WALK_STEP_CAP):
        if act.size == 0:
            break
        if act.size < cutoff:
            # Straggler tail: remember where each survivor got to and
            # let the scalar fallback finish from there.
            t0_out[act] = cur
            break
        rows = tv_rows[cur]                          # (ma, 3) gather
        ghost = rows.min(axis=1) < 0
        if ghost.any():
            t0_out[act[ghost]] = cur[ghost]
            keep = ~ghost
            act = act[keep]
            cur = cur[keep]
            lcg = lcg[keep]
            if act.size == 0:
                break
            rows = rows[keep]
        n_steps[act] += 1
        steps_total += act.size
        tri_xy = coords_all[rows]                    # (ma, 3, 2) gather
        p_now = qxy[act]
        # Directed edge opposite vertex k is (tv[_NXT[k]], tv[_PRV[k]]).
        signs = orient2d_batch3(tri_xy[:, (1, 2, 0), :],
                                tri_xy[:, (2, 0, 1), :], p_now)
        entries += 3 * act.size
        neg = signs < 0
        zero_any = (signs == 0).any(axis=1)
        has_neg = neg.any(axis=1)
        inside = ~has_neg & ~zero_any
        if inside.any():
            hit = act[inside]
            t0_out[hit] = cur[inside]
            located[hit] = True
        dropped = ~(has_neg & ~zero_any)
        if dropped.any():
            # Located and zero-sign records both leave here; either way
            # ``cur`` is the best-known position for this point.
            t0_out[act[dropped]] = cur[dropped]
        move = ~dropped
        if not move.any():
            break
        # Pseudo-random edge priority, rotated per record: among the
        # negative edges pick the first at-or-after k0 (the scalar
        # walk's tie-breaking, vectorised).
        lcg = (lcg * 1103515245 + 12345) & 0x7FFFFFFF
        k0 = lcg % 3
        prio = (col[None, :] - k0[:, None]) % 3
        prio = np.where(neg, prio, 4)
        ksel = prio.argmin(axis=1)
        nxt = tn_rows[cur, ksel]
        act = act[move]
        cur = nxt[move]
        lcg = lcg[move]
    if act.size:
        t0_out[act] = cur        # step-cap exhaustion: warm starts too
    n_exact = batch_exact_counts()["orient2d"] - exact_before
    tri.stat_batch_calls += 1
    tri.stat_batch_entries += entries
    tri.stat_orient_exact += n_exact
    tri.stat_orient_fast += entries - n_exact
    tri.stat_locates += m
    tri.stat_walk_steps += steps_total
    hist = tri.stat_walk_hist
    for s, c in zip(*np.unique(np.minimum(n_steps, 31),
                               return_counts=True)):
        hist[int(s)] += int(c)
    return t0_out, located


def carve_batch(tri, t0s: Sequence[int], qxy: np.ndarray
                ) -> Tuple[List[List[int]], List[List[int]]]:
    """Carve the Bowyer–Watson cavities of a batch of located points.

    Level-synchronous BFS over all records at once: each level gathers
    every record's unseen neighbour candidates, decides the real ones
    with a single :func:`incircle_batch` call (exact escalation inside)
    and the ghost ones with the scalar half-plane test, then advances.
    Per-record membership is identical to the scalar carve: the cavity
    is the connected component of triangles whose open circumdisk
    contains the point, reached from the containing triangle.  The
    cross-level "already tested" bookkeeping is a sorted array of
    ``record * n_tris + triangle`` composite keys (triangle slots are
    stable during the carve — nothing commits), so dedup is a
    ``searchsorted`` instead of a Python set probe per candidate.

    ``qxy[i]`` must lie strictly inside triangle ``t0s[i]``, which
    makes ``t0s[i]`` a cavity member for free.

    Returns ``(cavities, neighbours)``: per record the cavity as a
    duplicate-free list of triangle ids and the raw gathered adjacency
    rows of those triangles (3 entries per cavity triangle, possibly
    duplicated, cavity members and ``-1`` placeholders included).
    Together the two lists cover the closed edge-neighbourhood, which
    is all the independence selection needs — handing back plain lists
    instead of sets keeps the hot path free of per-record set
    construction (the commit path consumes the lists directly).
    """
    n_rec = len(t0s)
    if n_rec == 0:
        return [], []
    arr = tri._arr
    tn_rows = arr.tri_n
    tv_rows = arr.tri_v
    coords_all = arr.pts
    tn_flat = arr.tn
    n_cap = arr.n_tris            # slot-stable for the whole carve
    f_rec = np.arange(n_rec, dtype=np.int64)
    f_tri = np.asarray(t0s, dtype=np.int64)
    acc_rec = [f_rec]
    acc_tri = [f_tri]
    seen_keys = np.sort(f_rec * n_cap + f_tri)
    q_list = qxy.tolist()
    cutoff = max(4, n_rec >> 5)
    stragglers: Optional[Tuple[List[int], List[int]]] = None
    while f_rec.size:
        if f_rec.size < cutoff:
            # Straggler tail: a few deep cavities still growing.  Each
            # numpy level now costs fixed overhead for a handful of
            # rows, so finish them scalar after the grouping below.
            stragglers = (f_rec.tolist(), f_tri.tolist())
            break
        nb3 = tn_rows[f_tri]                          # (F, 3) gather
        cand_rec = np.repeat(f_rec, 3)
        cand_tri = nb3.reshape(-1)
        valid = cand_tri >= 0
        keys = np.unique(cand_rec[valid] * n_cap + cand_tri[valid])
        pos = np.searchsorted(seen_keys, keys)
        pos_c = np.minimum(pos, seen_keys.size - 1)
        keys = keys[(seen_keys[pos_c] != keys) | (pos == seen_keys.size)]
        if keys.size == 0:
            break
        seen_keys = np.sort(np.concatenate((seen_keys, keys)))
        rec = keys // n_cap
        tids = keys % n_cap
        rows = tv_rows[tids]
        ghost = rows.min(axis=1) < 0
        keep = np.zeros(keys.size, dtype=bool)
        if ghost.any():
            in_disk = tri._in_disk_fast
            for ii in np.flatnonzero(ghost).tolist():
                qx, qy = q_list[rec[ii]]
                if in_disk(int(tids[ii]), qx, qy):
                    keep[ii] = True
        real = ~ghost
        n_real = int(real.sum())
        if n_real:
            abc = coords_all[rows[real]]              # (m, 3, 2) gather
            before = batch_exact_counts()["incircle"]
            signs = incircle_batch(abc[:, 0], abc[:, 1], abc[:, 2],
                                   qxy[rec[real]])
            n_exact = batch_exact_counts()["incircle"] - before
            tri.stat_batch_calls += 1
            tri.stat_batch_entries += n_real
            tri.stat_incircle_exact += n_exact
            tri.stat_incircle_fast += n_real - n_exact
            keep[real] = signs > 0
        f_rec = rec[keep]
        f_tri = tids[keep]
        if f_rec.size:
            acc_rec.append(f_rec)
            acc_tri.append(f_tri)
    # Group accumulated members into per-record lists in one pass
    # (every record owns at least its t0, so every chunk exists).
    all_rec = np.concatenate(acc_rec)
    all_tri = np.concatenate(acc_tri)
    order = np.argsort(all_rec, kind="stable")
    ar = all_rec[order]
    at = all_tri[order]
    chunk = np.flatnonzero(np.diff(ar)) + 1
    starts = np.concatenate(([0], chunk))
    ends = np.concatenate((chunk, [ar.size]))
    at_l = at.tolist()
    nb_l = tn_rows[at].reshape(-1).tolist()
    cavities: List[List[int]] = [[] for _ in range(n_rec)]
    nbrs: List[List[int]] = [[] for _ in range(n_rec)]
    for r, s, e in zip(ar[starts].tolist(), starts.tolist(),
                       ends.tolist()):
        cavities[r] = at_l[s:e]
        nbrs[r] = nb_l[3 * s:3 * e]
    if stragglers is not None:
        in_disk = tri._in_disk_fast
        s_rec, s_tri = stragglers
        touched = sorted(set(s_rec))
        # Rebuild each straggler's "seen" set from its key range (the
        # keys are sorted, so it is one contiguous slice).
        seen_of = {}
        for r in touched:
            lo = int(np.searchsorted(seen_keys, r * n_cap))
            hi = int(np.searchsorted(seen_keys, (r + 1) * n_cap))
            seen_of[r] = set((seen_keys[lo:hi] % n_cap).tolist())
        for r, t in zip(s_rec, s_tri):
            stack = [t]
            cav = cavities[r]
            sn = seen_of[r]
            qx, qy = q_list[r]
            while stack:
                i3 = 3 * stack.pop()
                for nb in (tn_flat[i3], tn_flat[i3 + 1],
                           tn_flat[i3 + 2]):
                    if nb >= 0 and nb not in sn:
                        sn.add(nb)
                        if in_disk(nb, qx, qy):
                            cav.append(nb)
                            stack.append(nb)
        for r in touched:
            nbr = []
            for t in cavities[r]:
                i3 = 3 * t
                nbr.append(tn_flat[i3])
                nbr.append(tn_flat[i3 + 1])
                nbr.append(tn_flat[i3 + 2])
            nbrs[r] = nbr
    return cavities, nbrs


_NBR8 = ((1, 0), (-1, 0), (0, 1), (0, -1),
         (1, 1), (-1, 1), (1, -1), (-1, -1))


def _near_hint(arr, h: int, qx: float, qy: float, r2: float) -> int:
    """Return ``h`` when it is a live triangle within ``sqrt(r2)`` of
    ``(qx, qy)``, else ``-1``.

    Freed triangle slots are recycled by later commits *anywhere* in
    the domain, so a stored hint can pass a liveness check yet sit far
    from the point it was recorded for — and a far seed turns the walk
    into an O(domain-diameter) march.  The distance gate keeps only
    hints that still buy something over a grid seed."""
    if h < 0 or h >= arr.n_tris:
        return -1
    i3 = 3 * h
    v = arr.tv[i3]
    if v == DEAD:
        return -1
    if v < 0:
        v = arr.tv[i3 + 1]
        if v < 0:
            return -1
    j = 2 * v
    dx = arr.px[j] - qx
    dy = arr.px[j + 1] - qy
    if dx * dx + dy * dy <= r2:
        return h
    return -1


class BatchInsertion(InsertionStrategy):
    """Independent-set batched insertion (see the module docstring).

    ``trace``, when set to a list, records one entry per committed
    sub-batch: ``[(input_index, sorted cavity ids, sorted closed
    edge-neighbourhood ids), ...]`` for every accepted candidate,
    captured *before* any of the batch's retriangulations ran — the
    property tests assert pairwise cavity disjointness and
    neighbourhood separation on exactly this planning data.
    """

    name = "batch"
    description = ("BRIO-binned independent-set insertion with "
                   "vectorised predicate batches")

    def __init__(self, *, trace: Optional[list] = None) -> None:
        self.trace = trace

    # -- driver -------------------------------------------------------
    def insert_points(self, tri, points: np.ndarray,
                      order: Sequence[int]) -> Dict[int, int]:
        pts_arr = np.asarray(points, dtype=np.float64)
        order_list = [int(i) for i in order]
        inserted: Dict[int, int] = {}
        # Constraints make cavities order-dependent (clipping + Lawson
        # repair); the batch plan assumes pure Delaunay cavities, so a
        # constrained kernel takes the scalar path wholesale.  Bulk
        # insertion in triangulate()/triangulate_pslg() always runs
        # before segment recovery, so this is the cold branch.
        if tri.constraints:
            return get_strategy("scalar").insert_points(tri, points, order)
        n = len(order_list)
        tri._arr.reserve_points(n)
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            pos = 0
            # Scalar bootstrap: initial structure + enough density for
            # the bucket partition to separate candidates.
            while pos < n and (pos < _BATCH_BOOTSTRAP
                               or tri.n_live_triangles == 0):
                i = order_list[pos]
                inserted[i] = tri.insert_point(pts_arr[i, 0], pts_arr[i, 1])
                pos += 1
            # Window boundaries follow the BRIO doubling rounds (8, 24,
            # 56, 120, ...): a full round is a random sample of the
            # input spread over the whole domain, so binning it yields
            # many distinct buckets (a *contiguous* slice of a round
            # would be one snake-ordered band and bin terribly).
            bound, size = 8, 8
            while bound <= pos:
                size *= 2
                bound += size
            while pos < n:
                end = min(bound, n)
                w = pos
                while w < end:
                    stop = min(w + _WINDOW_CAP, end)
                    self._process_window(tri, order_list[w:stop],
                                         pts_arr, inserted)
                    w = stop
                pos = end
                size *= 2
                bound += size
        finally:
            if gc_was_enabled:
                gc.enable()
        return inserted

    # -- one BRIO-round window ---------------------------------------
    def _process_window(self, tri, idxs: List[int], pts_arr: np.ndarray,
                        inserted: Dict[int, int]) -> None:
        arr = tri._arr
        # Grid snapshot policy matches _note_walk's rebuild rule: build
        # once, rebuild when the point count outgrows the snapshot.
        if tri._grid is None or arr.n_pts > tri._grid_cap:
            tri._build_grid()
        grid = tri._grid
        w_xy = pts_arr[np.asarray(idxs, dtype=np.int64)]
        ids = grid.cell_ids(w_xy)
        if _COARSEN > 1:
            # One candidate per _COARSEN x _COARSEN block of buckets:
            # the independence partition must be coarser than a cavity
            # diameter or same-sub-batch neighbours mostly conflict.
            ix = ids % grid.nx
            iy = ids // grid.nx
            ncx = (grid.nx + _COARSEN - 1) // _COARSEN
            ids = (iy // _COARSEN) * ncx + (ix // _COARSEN)
        n_w = len(idxs)
        pending = np.arange(n_w, dtype=np.int64)
        tries = np.zeros(n_w, dtype=np.int64)
        # Last known walk position per window record (filled in by
        # _insert_batch): retries re-seed from it and scalar fallbacks
        # start warm instead of paying a grid ring scan.  Hints only
        # count when still within a few grid cells of their point
        # (_near_hint) — recycled slots otherwise send walks across
        # the whole domain.
        hints = np.full(n_w, -1, dtype=np.int64)
        cw = (grid.bounds.width or 1.0) / grid.nx
        ch = (grid.bounds.height or 1.0) / grid.ny
        r2 = 9.0 * (cw * cw + ch * ch)
        while pending.size:
            # One candidate per block and round: np.unique's
            # return_index is the first occurrence in pending order,
            # exactly the scan the scalar loop used to do.
            sel = np.zeros(pending.size, dtype=bool)
            sel[np.unique(ids[pending], return_index=True)[1]] = True
            batch = pending[sel].tolist()
            later = pending[~sel]
            conflicted = self._insert_batch(tri, idxs, w_xy, batch,
                                            inserted, hints, r2)
            if conflicted:
                cf = np.asarray(conflicted, dtype=np.int64)
                tries[cf] += 1
                exhausted = tries[cf] >= _MAX_RETRIES
                for j in cf[exhausted].tolist():
                    x, y = w_xy[j, 0], w_xy[j, 1]
                    inserted[idxs[j]] = _scalar_insert_one(
                        tri, x, y, _near_hint(arr, int(hints[j]), x, y,
                                              r2))
                pending = np.sort(np.concatenate((cf[~exhausted],
                                                  later)))
            else:
                pending = later

    # -- one conflict-screened sub-batch ------------------------------
    def _insert_batch(self, tri, idxs: List[int], w_xy: np.ndarray,
                      batch: List[int], inserted: Dict[int, int],
                      hints: np.ndarray, r2: float) -> List[int]:
        """Walk + carve + select + commit one sub-batch (one candidate
        per grid bucket).  Returns the window positions whose cavities
        conflicted (the caller retries them); ``hints`` is updated with
        each record's last walk position."""
        m = len(batch)
        arr = tri._arr
        if m < _BATCH_MIN_GROUP:
            for j in batch:
                x, y = w_xy[j, 0], w_xy[j, 1]
                inserted[idxs[j]] = _scalar_insert_one(
                    tri, x, y, _near_hint(arr, int(hints[j]), x, y, r2))
            return []
        batch_np = np.asarray(batch, dtype=np.int64)
        qxy = w_xy[batch_np]
        seeds = self._seed_triangles(tri, qxy, hints[batch_np], r2)
        t0s, located = walk_batch(tri, seeds, qxy)
        hints[batch_np] = t0s
        loc_pos = np.flatnonzero(located).tolist()
        cavities, nbrs = carve_batch(
            tri, t0s[loc_pos], qxy[np.asarray(loc_pos, dtype=np.int64)])
        # Greedy independent-set selection in batch order: keep a
        # candidate only when its cavity's *closed edge-neighbourhood*
        # (cavity plus every triangle sharing an edge with it) misses
        # every cavity already claimed this sub-batch.  Disjointness of
        # the cavities alone is NOT enough: by the Clarkson–Shor
        # history lemma, a fan triangle created over cavity boundary
        # edge (u, v) has its circumdisk inside disk(destroyed inner
        # triangle) ∪ disk(surviving outer neighbour) — so a candidate
        # whose cavity *touches* an accepted cavity across an edge can
        # still gain that fan triangle as a new conflict.  With the
        # neighbourhood kept clear, no accepted point's conflict set
        # changes while the batch replays (adjacency is symmetric, so
        # the one-sided check covers both directions), and replaying
        # the precomputed cavities sequentially below is exactly
        # Delaunay.
        claimed: Set[int] = set()
        owner: Dict[int, int] = {}
        accepted: List[Tuple[int, List[int], List[int]]] = []
        conflicted: List[int] = []
        loser_owner: List[Tuple[int, int]] = []
        for k, cav, nbr in zip(loc_pos, cavities, nbrs):
            # cav plus the raw adjacency rows cover the closed
            # neighbourhood; testing the two lists separately avoids
            # materialising a per-record set on the hot path.
            if claimed.isdisjoint(cav) and claimed.isdisjoint(nbr):
                owner.update(dict.fromkeys(cav, len(accepted)))
                claimed.update(cav)
                accepted.append((k, cav, nbr))
            else:
                # The winner whose cavity intruded: its committed fan
                # will sit exactly where this loser wants to go, so it
                # becomes the retry hint once the vids are known.
                w = next((t for t in cav if t in claimed), -1)
                if w < 0:
                    w = next(t for t in nbr if t in claimed)
                loser_owner.append((batch[k], owner[w]))
                conflicted.append(batch[k])
        if self.trace is not None:
            self.trace.append([
                (idxs[batch[k]], sorted(set(cav)),
                 sorted(set(cav) | set(nbr)))
                for k, cav, nbr in accepted])
        if accepted:
            new_xy = qxy[np.asarray([k for k, _, _ in accepted],
                                    dtype=np.int64)]
            vids = arr.bulk_new_points(new_xy)
            vid_list = vids.tolist()
            tri.stat_inserts += len(accepted)
            if not retriangulate_batch(tri, vids,
                                       [cav for _, cav, _ in accepted]):
                for (k, cav, _), vid in zip(accepted, vid_list):
                    retriangulate(tri, vid, set(cav), int(t0s[k]), False)
            for (k, _, _), vid in zip(accepted, vid_list):
                inserted[idxs[batch[k]]] = vid
            tri.stat_batch_points += len(accepted)
            # Losers restart from their winner's live star fan (set
            # after all commits: vt rows are final only then).
            vtm = arr.vt
            for j, oi in loser_owner:
                hints[j] = vtm[vid_list[oi]]
        # Walk deferrals (hull exits, degeneracies, step-cap) go
        # through the scalar path now, in batch order.
        for k in range(m):
            if not located[k]:
                j = batch[k]
                inserted[idxs[j]] = _scalar_insert_one(
                    tri, w_xy[j, 0], w_xy[j, 1], int(hints[j]))
        tri.stat_conflict_retries += len(conflicted)
        sink = counters_current()
        if sink is not None:
            sink.observe("kernel.batch_size", float(len(accepted)))
            sink.observe("kernel.conflict_retries", float(len(conflicted)))
        return conflicted

    @staticmethod
    def _seed_triangles(tri, qxy: np.ndarray, hints: Sequence[int],
                        r2: float) -> np.ndarray:
        """Per-record walk-start triangles: a nearby live walk hint
        from an earlier round wins (retried candidates restart next to
        their previous cavity), else the grid snapshot.  One vectorised
        pass: the hint liveness/distance gate, the bucket head lookup,
        the 8-neighbour probe for empty buckets and the ghost step-in
        are all array expressions (:func:`_near_hint` is the scalar
        reference semantics)."""
        arr = tri._arr
        grid = tri._grid
        tv_rows = arr.tri_v
        tn_rows = arr.tri_n
        vt_arr = arr.vertex_tri
        fallback = tri._last_tri
        if fallback < 0 or arr.tv[3 * fallback] == DEAD:
            fallback = next(iter(tri.live_triangles()))

        # Hint gate: live (first vertex not DEAD), with a real vertex
        # to measure from, within sqrt(r2) of the query.
        h = np.asarray(hints, dtype=np.int64)
        ok = (h >= 0) & (h < arr.n_tris)
        hc = np.where(ok, h, 0)
        v0 = tv_rows[hc, 0].astype(np.int64)
        v1 = tv_rows[hc, 1].astype(np.int64)
        v = np.where(v0 >= 0, v0, v1)
        ok &= (v0 != DEAD) & (v >= 0)
        d = arr.pts[np.where(ok, v, 0)] - qxy
        ok &= (d * d).sum(axis=1) <= r2
        seeds = np.where(ok, h, np.int64(-1))

        # Grid path for the rest: bucket head, widening to the 8
        # neighbours when the bucket is empty (the snapshot averages
        # ~2 points per cell, so ~13% of buckets are empty).
        need = np.flatnonzero(~ok)
        if need.size:
            nx = grid.nx
            ny = grid.ny
            heads = grid.head_payloads()
            cells = grid.cell_ids(qxy[need])
            pay = heads[cells]
            miss = pay < 0
            if miss.any():
                cx = cells[miss] % nx
                cy = cells[miss] // nx
                pm = pay[miss]
                for dx, dy in _NBR8:
                    if not (pm < 0).any():
                        break
                    x2 = cx + dx
                    y2 = cy + dy
                    inb = (x2 >= 0) & (x2 < nx) & (y2 >= 0) & (y2 < ny)
                    cand = heads[np.where(inb, y2 * nx + x2, 0)]
                    cand = np.where(inb, cand, -1)
                    pm = np.where(pm < 0, cand, pm)
                pay[miss] = pm
            t = vt_arr[np.maximum(pay, 0)].astype(np.int64)
            live = (pay >= 0) & (t >= 0) & (tv_rows[np.maximum(t, 0), 0]
                                            != DEAD)
            tri.stat_grid_seeds += int(live.sum())
            seeds[need] = np.where(live, t, np.int64(fallback))

        # Ghost seeds: step across the real edge into the hull.
        sv = tv_rows[seeds]
        g_rows = np.flatnonzero((sv < 0).any(axis=1))
        if g_rows.size:
            g_col = np.argmax(sv[g_rows] < 0, axis=1)
            nb = tn_rows[seeds[g_rows], g_col].astype(np.int64)
            take = nb >= 0
            seeds[g_rows[take]] = nb[take]
        return seeds


register_strategy(ScalarInsertion(), aliases=("serial", "default"))
register_strategy(BatchInsertion(), aliases=("vectorized",))
