"""Delaunay substrate: kernel, hull, constrained triangulation, refinement.

This package is the repository's from-scratch replacement for Shewchuk's
Triangle (see DESIGN.md, substitutions table).
"""

from .cavity import (
    INSERT_ENV,
    InsertionStrategy,
    available_strategies,
    get_strategy,
    register_strategy,
    resolve_strategy_name,
)
from .constrained import constrained_delaunay, insert_segment, triangulate_pslg, carve
from .dnc import insertion_order, triangulate_ordered
from .hull import convex_hull, lower_hull, lower_hull_sorted, upper_hull
from .kernel import (
    GHOST,
    Triangulation,
    TriangulationError,
    delaunay_mesh,
    triangulate,
)
from .adapt import AdaptReport, MeshAdaptor, adapt_mesh
from .mesh import TriMesh, merge_meshes
from .refine import (
    RUPPERT_BOUND,
    AreaCriterion,
    MetricCriterion,
    RefinementError,
    Refiner,
    SizingCriterion,
    refine_pslg,
)
from .smooth import (
    ValidationReport,
    laplacian_smooth,
    metric_smooth,
    validate_mesh,
)

__all__ = [
    "GHOST",
    "INSERT_ENV",
    "AdaptReport",
    "AreaCriterion",
    "InsertionStrategy",
    "MeshAdaptor",
    "MetricCriterion",
    "RUPPERT_BOUND",
    "RefinementError",
    "Refiner",
    "SizingCriterion",
    "TriMesh",
    "Triangulation",
    "TriangulationError",
    "ValidationReport",
    "adapt_mesh",
    "available_strategies",
    "get_strategy",
    "laplacian_smooth",
    "metric_smooth",
    "register_strategy",
    "resolve_strategy_name",
    "validate_mesh",
    "carve",
    "constrained_delaunay",
    "convex_hull",
    "delaunay_mesh",
    "insert_segment",
    "insertion_order",
    "lower_hull",
    "lower_hull_sorted",
    "merge_meshes",
    "refine_pslg",
    "triangulate",
    "triangulate_ordered",
    "triangulate_pslg",
    "upper_hull",
]
