"""Mesh smoothing and validation utilities.

Post-processing helpers a downstream CFD user expects from a mesh
generator:

* :func:`laplacian_smooth` — constrained Laplacian smoothing of interior
  vertices (boundary and constrained-segment vertices stay put), with an
  orientation guard so no triangle ever inverts;
* :func:`validate_mesh` — a one-call structural report (conformity,
  orientation, Delaunay violations, boundary/segment preservation, area
  accounting) used by the experiment harnesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from .mesh import TriMesh

__all__ = ["laplacian_smooth", "validate_mesh", "ValidationReport"]


def laplacian_smooth(
    mesh: TriMesh,
    *,
    iterations: int = 5,
    relaxation: float = 0.6,
    protect: Optional[np.ndarray] = None,
) -> TriMesh:
    """Constrained Laplacian smoothing with inversion protection.

    Each free vertex moves toward the centroid of its neighbours by
    ``relaxation`` per sweep; a move that would flip the sign of any
    incident triangle's area is rejected (halved once, then skipped).
    Boundary vertices, endpoints of constrained segments, and any indices
    in ``protect`` are fixed — smoothing must never distort the carefully
    graded decoupling borders or the anisotropic boundary layers, so the
    caller passes those regions in ``protect``.
    """
    if not 0 < relaxation <= 1.0:
        raise ValueError("relaxation must be in (0, 1]")
    pts = mesh.points.copy()
    tris = mesh.triangles

    fixed = np.zeros(len(pts), dtype=bool)
    fixed[np.unique(mesh.boundary_edges().ravel())] = True
    if len(mesh.segments):
        fixed[np.unique(mesh.segments.ravel())] = True
    if protect is not None:
        fixed[np.asarray(protect, dtype=np.int64)] = True

    # Vertex -> neighbour adjacency and vertex -> incident triangles.
    nbrs: List[Set[int]] = [set() for _ in range(len(pts))]
    incident: List[List[int]] = [[] for _ in range(len(pts))]
    for t, (a, b, c) in enumerate(tris):
        for u, v in ((a, b), (b, c), (c, a)):
            nbrs[u].add(int(v))
            nbrs[v].add(int(u))
        for v in (a, b, c):
            incident[v].append(t)

    def signed_area(t: int) -> float:
        a, b, c = tris[t]
        return (
            (pts[b, 0] - pts[a, 0]) * (pts[c, 1] - pts[a, 1])
            - (pts[b, 1] - pts[a, 1]) * (pts[c, 0] - pts[a, 0])
        )

    for _ in range(iterations):
        for v in range(len(pts)):
            if fixed[v] or not nbrs[v]:
                continue
            target = pts[list(nbrs[v])].mean(axis=0)
            old = pts[v].copy()
            step = relaxation
            for _attempt in range(2):
                pts[v] = old + step * (target - old)
                if all(signed_area(t) > 0 for t in incident[v]):
                    break
                step *= 0.5
            else:
                pts[v] = old
    return TriMesh(pts, tris.copy(), mesh.segments.copy())


@dataclass
class ValidationReport:
    n_points: int
    n_triangles: int
    conforming: bool
    inverted_triangles: int
    zero_area_triangles: int
    delaunay_violations: int
    segments_present: bool
    duplicate_points: int
    total_area: float
    boundary_loops: int

    @property
    def ok(self) -> bool:
        return (
            self.conforming
            and self.inverted_triangles == 0
            and self.segments_present
            and self.duplicate_points == 0
        )

    def summary(self) -> str:
        status = "OK" if self.ok else "INVALID"
        return (
            f"[{status}] {self.n_triangles} tris / {self.n_points} pts; "
            f"conforming={self.conforming}, inverted={self.inverted_triangles}, "
            f"zero-area={self.zero_area_triangles}, "
            f"delaunay-violations={self.delaunay_violations}, "
            f"segments-present={self.segments_present}, "
            f"dup-points={self.duplicate_points}, "
            f"boundary-loops={self.boundary_loops}, "
            f"area={self.total_area:.6g}"
        )


def validate_mesh(mesh: TriMesh, *, check_delaunay: bool = True
                  ) -> ValidationReport:
    """Structural validation report for a finished mesh."""
    areas = mesh.areas() if mesh.n_triangles else np.empty(0)
    # Orientation must be decided EXACTLY: the float area of a robustly
    # CCW sliver (boundary-layer aspect ratios, cusp-guarded corners) can
    # round to zero or slightly negative.
    from ..geometry.predicates import orient2d

    inverted = 0
    zero = 0
    suspicious = np.flatnonzero(areas <= 0)
    for t in suspicious:
        a, b, c = mesh.triangles[t]
        o = orient2d(mesh.points[a], mesh.points[b], mesh.points[c])
        if o < 0:
            inverted += 1
        elif o == 0:
            zero += 1
    uniq = np.unique(mesh.points, axis=0)
    dups = mesh.n_points - len(uniq)
    violations = (
        mesh.delaunay_violations(respect_segments=True)
        if (check_delaunay and mesh.n_triangles) else 0
    )

    # Count closed boundary loops by walking boundary edges.
    be = mesh.boundary_edges()
    loops = 0
    if len(be):
        succ: Dict[int, List[int]] = {}
        for u, v in be.tolist():
            succ.setdefault(u, []).append(v)
            succ.setdefault(v, []).append(u)
        seen: Set[int] = set()
        for start in succ:
            if start in seen:
                continue
            loops += 1
            stack = [start]
            while stack:
                n = stack.pop()
                if n in seen:
                    continue
                seen.add(n)
                stack.extend(succ[n])

    return ValidationReport(
        n_points=mesh.n_points,
        n_triangles=mesh.n_triangles,
        conforming=mesh.is_conforming(),
        inverted_triangles=inverted,
        zero_area_triangles=zero,
        delaunay_violations=violations,
        segments_present=mesh.contains_segments(mesh.segments),
        duplicate_points=dups,
        total_area=float(np.abs(areas).sum()) if len(areas) else 0.0,
        boundary_loops=loops,
    )
