"""Mesh smoothing and validation utilities.

Post-processing helpers a downstream CFD user expects from a mesh
generator:

* :func:`laplacian_smooth` — constrained Laplacian smoothing of interior
  vertices (boundary and constrained-segment vertices stay put), with an
  orientation guard so no triangle ever inverts;
* :func:`metric_smooth` — the anisotropic variant: vertices move toward
  the *metric-weighted* centroid of their neighbours, equalising metric
  edge lengths against a :class:`repro.metric.MetricField`;
* :func:`validate_mesh` — a one-call structural report (conformity,
  orientation, Delaunay violations, boundary/segment preservation, area
  accounting) used by the experiment harnesses.

Both smoothers are fully vectorised Jacobi sweeps (lint rule R7 keeps
them that way): every free vertex proposes its move simultaneously, and
an iterative step-halving pass scales back exactly the vertices incident
to a would-be inverted triangle until the whole proposal is valid — a
vertex whose scale reaches zero lands bit-exactly on its old position,
so the guard always terminates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from .mesh import TriMesh

__all__ = ["laplacian_smooth", "metric_smooth", "validate_mesh",
           "ValidationReport"]


def _fixed_mask(mesh: TriMesh, protect: Optional[np.ndarray]) -> np.ndarray:
    fixed = np.zeros(mesh.n_points, dtype=bool)
    be = mesh.boundary_edges()
    if len(be):
        fixed[np.unique(be.ravel())] = True
    if len(mesh.segments):
        fixed[np.unique(mesh.segments.ravel())] = True
    if protect is not None:
        fixed[np.asarray(protect, dtype=np.int64)] = True
    return fixed


def _directed_edges(tris: np.ndarray) -> np.ndarray:
    """Unique directed vertex pairs (src, dst) of the triangle set."""
    half = np.concatenate([tris[:, [0, 1]], tris[:, [1, 2]],
                           tris[:, [2, 0]]])
    both = np.concatenate([half, half[:, ::-1]])
    return np.unique(both, axis=0)


def _guarded_jacobi_sweeps(
    pts: np.ndarray,
    tris: np.ndarray,
    fixed: np.ndarray,
    *,
    iterations: int,
    relaxation: float,
    weights_fn: Callable[[np.ndarray], Optional[np.ndarray]],
    edges: np.ndarray,
) -> np.ndarray:
    """Shared Jacobi smoothing core with vectorised inversion guards.

    ``weights_fn(pts) -> (n_edges,)`` gives per-directed-edge weights for
    the neighbour average (``None`` for uniform).  Returns new positions.
    """
    n = len(pts)
    src, dst = edges[:, 0], edges[:, 1]
    a_idx, b_idx, c_idx = tris[:, 0], tris[:, 1], tris[:, 2]
    for _ in range(iterations):
        w = weights_fn(pts)
        acc = np.zeros((n, 2))
        wsum = np.zeros(n)
        if w is None:
            np.add.at(acc, src, pts[dst])
            np.add.at(wsum, src, 1.0)
        else:
            np.add.at(acc, src, w[:, None] * pts[dst])
            np.add.at(wsum, src, w)
        has = wsum > 0
        target = pts.copy()
        target[has] = acc[has] / wsum[has, None]
        scale = np.where(fixed | ~has, 0.0, relaxation)
        delta = target - pts
        prop = pts
        for _halving in range(60):
            prop = pts + scale[:, None] * delta
            pa, pb, pc = prop[a_idx], prop[b_idx], prop[c_idx]
            area2 = ((pb[:, 0] - pa[:, 0]) * (pc[:, 1] - pa[:, 1])
                     - (pb[:, 1] - pa[:, 1]) * (pc[:, 0] - pa[:, 0]))
            bad = area2 <= 0  # lint: disable=R1 -- conservative reject filter: a false positive only halves the smoothing step, never accepts an inverted triangle
            if not bad.any():
                break
            bad_v = np.unique(tris[bad].ravel())
            sc = scale[bad_v]
            # Halve, snapping tiny steps to exactly zero so the implied
            # positions return bit-exactly to the (valid) input.
            scale[bad_v] = np.where(sc > 1e-6, sc * 0.5, 0.0)
        else:
            # Unreachable in practice: all scales are zero by now, which
            # reproduces the valid input positions exactly.
            prop = pts
        pts = prop
    return pts


def laplacian_smooth(
    mesh: TriMesh,
    *,
    iterations: int = 5,
    relaxation: float = 0.6,
    protect: Optional[np.ndarray] = None,
) -> TriMesh:
    """Constrained Laplacian smoothing with inversion protection.

    Each free vertex moves toward the centroid of its neighbours by
    ``relaxation`` per sweep (simultaneous Jacobi update, fully
    vectorised); moves that would invert a triangle are scaled back by
    the shared step-halving guard.  Boundary vertices, endpoints of
    constrained segments, and any indices in ``protect`` are fixed —
    smoothing must never distort the carefully graded decoupling borders
    or the anisotropic boundary layers, so the caller passes those
    regions in ``protect``.
    """
    if not 0 < relaxation <= 1.0:
        raise ValueError("relaxation must be in (0, 1]")
    if mesh.n_triangles == 0:
        return TriMesh(mesh.points.copy(), mesh.triangles.copy(),
                       mesh.segments.copy())
    new_pts = _guarded_jacobi_sweeps(
        mesh.points.copy(),
        mesh.triangles,
        _fixed_mask(mesh, protect),
        iterations=int(iterations),
        relaxation=float(relaxation),
        weights_fn=lambda pts: None,
        edges=_directed_edges(mesh.triangles),
    )
    return TriMesh(new_pts, mesh.triangles.copy(), mesh.segments.copy())


def metric_smooth(
    mesh: TriMesh,
    metric_field,
    *,
    iterations: int = 3,
    relaxation: float = 0.5,
    protect: Optional[np.ndarray] = None,
) -> TriMesh:
    """Metric-weighted smoothing against a :class:`~repro.metric.MetricField`.

    Neighbour positions are averaged with weights equal to the current
    *metric* edge length (longer-in-metric neighbours pull harder), which
    drives incident metric edge lengths toward equality — the smoothing
    half of the unit-mesh criterion.  Same fixed-vertex contract and
    inversion guard as :func:`laplacian_smooth`.
    """
    if not 0 < relaxation <= 1.0:
        raise ValueError("relaxation must be in (0, 1]")
    if mesh.n_triangles == 0:
        return TriMesh(mesh.points.copy(), mesh.triangles.copy(),
                       mesh.segments.copy())
    from ..metric import tensor as _mt

    edges = _directed_edges(mesh.triangles)

    def weights(pts: np.ndarray) -> np.ndarray:
        tens = metric_field.interpolate(pts)
        vec = pts[edges[:, 1]] - pts[edges[:, 0]]
        m_edge = 0.5 * (tens[edges[:, 0]] + tens[edges[:, 1]])
        w = np.sqrt(np.maximum(_mt.quad_form(m_edge, vec), 0.0))
        return np.maximum(w, 1e-12)

    new_pts = _guarded_jacobi_sweeps(
        mesh.points.copy(),
        mesh.triangles,
        _fixed_mask(mesh, protect),
        iterations=int(iterations),
        relaxation=float(relaxation),
        weights_fn=weights,
        edges=edges,
    )
    return TriMesh(new_pts, mesh.triangles.copy(), mesh.segments.copy())


@dataclass
class ValidationReport:
    n_points: int
    n_triangles: int
    conforming: bool
    inverted_triangles: int
    zero_area_triangles: int
    delaunay_violations: int
    segments_present: bool
    duplicate_points: int
    total_area: float
    boundary_loops: int

    @property
    def ok(self) -> bool:
        return (
            self.conforming
            and self.inverted_triangles == 0
            and self.segments_present
            and self.duplicate_points == 0
        )

    def summary(self) -> str:
        status = "OK" if self.ok else "INVALID"
        return (
            f"[{status}] {self.n_triangles} tris / {self.n_points} pts; "
            f"conforming={self.conforming}, inverted={self.inverted_triangles}, "
            f"zero-area={self.zero_area_triangles}, "
            f"delaunay-violations={self.delaunay_violations}, "
            f"segments-present={self.segments_present}, "
            f"dup-points={self.duplicate_points}, "
            f"boundary-loops={self.boundary_loops}, "
            f"area={self.total_area:.6g}"
        )


def validate_mesh(mesh: TriMesh, *, check_delaunay: bool = True
                  ) -> ValidationReport:
    """Structural validation report for a finished mesh."""
    areas = mesh.areas() if mesh.n_triangles else np.empty(0)
    # Orientation must be decided EXACTLY: the float area of a robustly
    # CCW sliver (boundary-layer aspect ratios, cusp-guarded corners) can
    # round to zero or slightly negative.
    from ..geometry.predicates import orient2d

    inverted = 0
    zero = 0
    suspicious = np.flatnonzero(areas <= 0)
    for t in suspicious:
        a, b, c = mesh.triangles[t]
        o = orient2d(mesh.points[a], mesh.points[b], mesh.points[c])
        if o < 0:
            inverted += 1
        elif o == 0:
            zero += 1
    uniq = np.unique(mesh.points, axis=0)
    dups = mesh.n_points - len(uniq)
    violations = (
        mesh.delaunay_violations(respect_segments=True)
        if (check_delaunay and mesh.n_triangles) else 0
    )

    # Count closed boundary loops by walking boundary edges.
    be = mesh.boundary_edges()
    loops = 0
    if len(be):
        succ: Dict[int, List[int]] = {}
        for u, v in be.tolist():
            succ.setdefault(u, []).append(v)
            succ.setdefault(v, []).append(u)
        seen: Set[int] = set()
        for start in succ:
            if start in seen:
                continue
            loops += 1
            stack = [start]
            while stack:
                n = stack.pop()
                if n in seen:
                    continue
                seen.add(n)
                stack.extend(succ[n])

    return ValidationReport(
        n_points=mesh.n_points,
        n_triangles=mesh.n_triangles,
        conforming=mesh.is_conforming(),
        inverted_triangles=inverted,
        zero_area_triangles=zero,
        delaunay_violations=violations,
        segments_present=mesh.contains_segments(mesh.segments),
        duplicate_points=dups,
        total_area=float(np.abs(areas).sum()) if len(areas) else 0.0,
        boundary_loops=loops,
    )
