"""Incremental Delaunay triangulation kernel (Bowyer–Watson with ghosts).

This is the repository's substitute for Shewchuk's Triangle: the engine
used to triangulate boundary-layer subdomains and to Delaunay-refine the
decoupled inviscid subdomains.  Design:

* **Ghost triangles.**  The convex hull is bordered by *ghost* triangles
  sharing a symbolic vertex :data:`GHOST`.  A ghost triangle ``[u, v, G]``
  represents the open half-plane strictly left of the directed hull edge
  ``u -> v`` (plus the open edge itself).  Ghosts make insertion outside
  the current hull a completely uniform cavity operation — no giant
  super-triangle, no magic coordinates, exact arithmetic everywhere.
* **Robust predicates, filter inlined.**  All sign decisions are exact.
  The hot paths (point-location walk, cavity membership) evaluate the
  floating-point *filter* stage of :mod:`repro.geometry.predicates`
  inline and escalate only inconclusive signs to the exact rational
  path; large cavity frontiers route through the vectorised
  :func:`~repro.geometry.predicates.incircle_batch`.  A
  ``fast_predicates=False`` kernel keeps every test on the scalar robust
  functions — the reference used by differential tests and as the
  benchmark baseline.
* **BRIO insertion + walking point location** seeded from the most
  recent triangle (or a caller-provided hint).  When the kernel observes
  persistently long walks (cold, non-local insertion orders) it builds a
  :class:`~repro.spatial.grid.BucketGrid` over its vertices and seeds
  subsequent walks from the nearest known vertex, restoring expected-O(1)
  location.  A step cap with a brute-force fallback guards adversarial
  inputs.
* **Constrained edges.**  A set of locked undirected edges that cavity
  searches refuse to cross; segment *recovery* (making an arbitrary edge
  appear) lives in :mod:`repro.delaunay.constrained`.
* **Determinism.**  All randomness (walk tie-breaking, BRIO rounds) is
  derived from explicit seeds threaded through the constructor and the
  module-level drivers, so identical inputs yield byte-identical meshes.
* **Observability.**  The kernel accumulates plain-integer ``stat_*``
  counters (walk-step and cavity-size histograms, exact-predicate
  escalations, grid seeds, flips) that
  :class:`repro.runtime.counters.KernelCounters` absorbs; the overhead
  is a handful of integer adds per insertion.

Storage is the structure-of-arrays core
:class:`repro.delaunay.arrays.MeshArrays` (preallocated ``float64`` /
``int32`` NumPy buffers with amortized-doubling growth).  The scalar hot
paths index the buffers through cached flat :class:`memoryview` casts
(faster than list-of-lists on CPython and zero-copy into the arrays);
batch paths (``_expand_level_batch``, grid builds) fancy-index the same
arrays at C speed; :meth:`to_mesh` is a vectorised compaction whose
point block can be a zero-copy view.  ``pts`` / ``tri_v`` / ``tri_n`` /
``vertex_tri`` remain available as read-compatible sequence views for
consumers and tests.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from .arrays import DEAD, MeshArrays

# The cavity module owns the shared geometric constants and every
# insertion-path operation; the kernel class keeps the bookkeeping
# (slots, adjacency, constraints, stats) and delegates to it.
from .cavity import (
    GHOST,
    TriangulationError,
    _CCW_ERR,
    _CCW_GUARD,
    _GRID_EMA_THRESHOLD,
    _GRID_MIN_POINTS,
    _ICC_ERR,
    _ICC_GUARD,
    _NXT,
    _PRV,
    brio_order,
    carve_cavity_fast,
    carve_cavity_ref,
    expand_level_batch,
    get_strategy,
    insert_point_fast,
    locate_fallback,
    locate_fast,
    locate_ref,
    prune_cavity_visibility,
    resolve_strategy_name,
    retriangulate,
    walk_start,
)
from ..geometry.predicates import incircle, orient2d
from .mesh import TriMesh
from ..runtime.counters import monotonic_ns

__all__ = [
    "GHOST",
    "Triangulation",
    "TriangulationError",
    "delaunay_mesh",
    "triangulate",
]


class _PointsView:
    """Read-only sequence view of the SoA coordinates: ``pts[v] == (x, y)``.

    Behaves like the historical list of tuples for reading, length,
    iteration and equality; mutation goes through the kernel only.
    """

    __slots__ = ("_a",)

    def __init__(self, arr: MeshArrays) -> None:
        self._a = arr

    def __len__(self) -> int:
        return self._a.n_pts

    def __getitem__(self, v: int) -> Tuple[float, float]:
        a = self._a
        n = a.n_pts
        if v < 0:
            v += n
        if not 0 <= v < n:
            raise IndexError(f"point index {v} out of range")
        px = a.px
        j = 2 * v
        return (px[j], px[j + 1])

    def __iter__(self):
        px = self._a.px
        for v in range(self._a.n_pts):
            j = 2 * v
            yield (px[j], px[j + 1])

    def __eq__(self, other) -> bool:
        try:
            return list(self) == list(other)
        except TypeError:
            return NotImplemented

    __hash__ = None

    def __array__(self, dtype=None, copy=None):
        out = self._a.pts[: self._a.n_pts]
        if dtype is not None and np.dtype(dtype) != out.dtype:
            return out.astype(dtype)
        return np.array(out, copy=True) if copy else out

    def __repr__(self) -> str:
        return f"_PointsView(n={len(self)})"


class _TriRowsView:
    """Sequence view of a triangle attribute: ``view[t]`` is the 3-list
    for a live slot or ``None`` for a dead one (the historical contract).
    """

    __slots__ = ("_a", "_which")

    def __init__(self, arr: MeshArrays, which: str) -> None:
        self._a = arr
        self._which = which  # "v" or "n"

    def __len__(self) -> int:
        return self._a.n_tris

    def __getitem__(self, t: int) -> Optional[List[int]]:
        a = self._a
        n = a.n_tris
        if t < 0:
            t += n
        if not 0 <= t < n:
            raise IndexError(f"triangle index {t} out of range")
        i = 3 * t
        if a.tv[i] == DEAD:
            return None
        m = a.tv if self._which == "v" else a.tn
        return [m[i], m[i + 1], m[i + 2]]

    def __iter__(self):
        for t in range(self._a.n_tris):
            yield self[t]

    def __eq__(self, other) -> bool:
        try:
            return list(self) == list(other)
        except TypeError:
            return NotImplemented

    __hash__ = None

    def __repr__(self) -> str:
        return f"_TriRowsView({self._which!r}, n={len(self)})"


class _VertexTriView:
    """Read/write int sequence view over ``vertex_tri``."""

    __slots__ = ("_a",)

    def __init__(self, arr: MeshArrays) -> None:
        self._a = arr

    def __len__(self) -> int:
        return self._a.n_pts

    def __getitem__(self, v: int) -> int:
        if not 0 <= v < self._a.n_pts:
            raise IndexError(f"vertex index {v} out of range")
        return self._a.vt[v]

    def __setitem__(self, v: int, t: int) -> None:
        if not 0 <= v < self._a.n_pts:
            raise IndexError(f"vertex index {v} out of range")
        self._a.vt[v] = t

    def __iter__(self):
        vt = self._a.vt
        for v in range(self._a.n_pts):
            yield vt[v]


class Triangulation:
    """Mutable 2D Delaunay triangulation under incremental insertion.

    Create empty, then :meth:`insert_point` each vertex (or use the
    module-level :func:`triangulate` convenience).  Triangle slots are
    recycled through a free list so ids stay dense.

    Parameters
    ----------
    seed:
        Seeds every source of randomness in the kernel (walk
        tie-breaking).  Identical inputs + identical seed give
        byte-identical triangulations.
    fast_predicates:
        ``True`` (default) uses the inlined filtered predicates with
        exact escalation; ``False`` routes every test through the scalar
        robust predicate functions (the pre-overhaul hot path, kept as a
        reference for differential testing and benchmarking).
    """

    def __init__(self, *, seed: int = 0x5EED,
                 fast_predicates: bool = True) -> None:
        #: SoA storage: coordinates, triangle vertices/neighbours, free
        #: list and per-vertex incident triangle all live here.
        self._arr = MeshArrays()
        # Sequence-compatible views (read path of refine/constrained/dnc
        # and the test harness); the kernel itself indexes the flat
        # memoryviews in self._arr on hot paths.
        self.pts = _PointsView(self._arr)
        self.tri_v = _TriRowsView(self._arr, "v")
        self.tri_n = _TriRowsView(self._arr, "n")
        self.vertex_tri = _VertexTriView(self._arr)
        self._free = self._arr.free
        self.constraints: Set[Tuple[int, int]] = set()
        self._last_tri: int = -1                     # walk hint
        # Seeded, instance-owned generator (never the stdlib/global RNG —
        # lint rule R3): concurrent kernels on the SPMD threads backend
        # must not share hidden RNG state.
        self._rng = np.random.default_rng(seed)
        self._lcg = int(self._rng.integers(1, 1 << 31))
        self._fast = bool(fast_predicates)
        self.n_live_triangles = 0                    # includes ghosts
        # Triangles created/removed by the most recent insert_point call —
        # lets refinement track per-triangle labels in O(cavity) instead of
        # O(n) snapshots.
        self.last_created: List[int] = []
        self.last_removed: List[int] = []
        # Walk-acceleration grid: built lazily when walks run long.
        self._grid = None
        self._grid_cap = 0
        self._walk_ema = 0.0
        # Observability counters (absorbed by repro.runtime.counters).
        self.stat_inserts = 0
        self.stat_locates = 0
        self.stat_walk_steps = 0
        self.stat_brute_locates = 0
        self.stat_grid_seeds = 0
        self.stat_cavity_tris = 0
        self.stat_flips = 0
        self.stat_orient_fast = 0
        self.stat_orient_exact = 0
        self.stat_incircle_fast = 0
        self.stat_incircle_exact = 0
        self.stat_batch_calls = 0
        self.stat_batch_entries = 0
        self.stat_batch_points = 0
        self.stat_conflict_retries = 0
        self.stat_walk_hist = [0] * 32
        self.stat_cavity_hist = [0] * 32
        self.stat_finalize_ns = 0

    # ------------------------------------------------------------------
    # Low-level triangle bookkeeping
    # ------------------------------------------------------------------
    def _new_triangle(self, a: int, b: int, c: int) -> int:
        arr = self._arr
        if arr.free:
            t = arr.free.pop()
        else:
            arr.reserve_triangles(1)
            t = arr.n_tris
            arr.n_tris = t + 1
        tv = arr.tv
        tn = arr.tn
        i = 3 * t
        tv[i] = a
        tv[i + 1] = b
        tv[i + 2] = c
        tn[i] = -1
        tn[i + 1] = -1
        tn[i + 2] = -1
        vt = arr.vt
        if a != GHOST:
            vt[a] = t
        if b != GHOST:
            vt[b] = t
        if c != GHOST:
            vt[c] = t
        self.n_live_triangles += 1
        return t

    def _kill_triangle(self, t: int) -> None:
        self._arr.kill(t)
        self.n_live_triangles -= 1

    def is_ghost(self, t: int) -> bool:
        """True if live triangle ``t`` is a ghost.

        Dead-triangle contract (enforced, see :mod:`repro.delaunay.arrays`):
        callers must not ask about recycled slots — check
        ``MeshArrays.is_dead`` / ``tri_v[t] is None`` first.  Historically
        this silently returned ``False`` for dead slots, masking stale-id
        bugs under free-list reuse.
        """
        tv = self._arr.tv
        i = 3 * t
        a = tv[i]
        if a == DEAD:
            raise TriangulationError(
                f"is_ghost({t}): dead (recycled) triangle slot")
        return a == GHOST or tv[i + 1] == GHOST or tv[i + 2] == GHOST

    def _edge(self, t: int, k: int) -> Tuple[int, int]:
        """Directed edge opposite vertex ``k`` of triangle ``t``."""
        tv = self._arr.tv
        i = 3 * t
        return tv[i + _NXT[k]], tv[i + _PRV[k]]

    def _set_mutual(self, t1: int, k1: int, t2: int, k2: int) -> None:
        tn = self._arr.tn
        tn[3 * t1 + k1] = t2
        tn[3 * t2 + k2] = t1

    def _edge_index(self, t: int, u: int, v: int) -> int:
        """Index k such that the directed edge k of ``t`` is (u, v)."""
        tv = self._arr.tv
        i = 3 * t
        for k in range(3):
            if tv[i + _NXT[k]] == u and tv[i + _PRV[k]] == v:
                return k
        raise TriangulationError(
            f"edge ({u},{v}) not in triangle {t}={self.tri_v[t]}")

    def ghost_edge(self, t: int) -> Tuple[int, int]:
        """The real directed hull edge ``(u, v)`` of ghost triangle ``t``."""
        tv = self._arr.tv
        i = 3 * t
        for k in range(3):
            if tv[i + k] == GHOST:
                return tv[i + _NXT[k]], tv[i + _PRV[k]]
        raise TriangulationError(f"triangle {t} is not a ghost")

    def live_triangles(self) -> Iterable[int]:
        # Re-reads bounds and the view every step so concurrent inserts
        # behave like iterating the historical (growing) list.
        arr = self._arr
        t = 0
        while t < arr.n_tris:
            if arr.tv[3 * t] != DEAD:
                yield t
            t += 1

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def kernel_stats(self) -> Dict[str, float]:
        """Snapshot of the kernel's counters (histograms as raw buckets)."""
        total = self.stat_orient_fast + self.stat_orient_exact \
            + self.stat_incircle_fast + self.stat_incircle_exact
        exact = self.stat_orient_exact + self.stat_incircle_exact
        return {
            "inserts": self.stat_inserts,
            "locates": self.stat_locates,
            "walk_steps": self.stat_walk_steps,
            "brute_locates": self.stat_brute_locates,
            "grid_seeds": self.stat_grid_seeds,
            "cavity_triangles": self.stat_cavity_tris,
            "flips": self.stat_flips,
            "orient_fast": self.stat_orient_fast,
            "orient_exact": self.stat_orient_exact,
            "incircle_fast": self.stat_incircle_fast,
            "incircle_exact": self.stat_incircle_exact,
            "batch_calls": self.stat_batch_calls,
            "batch_entries": self.stat_batch_entries,
            "batch_points": self.stat_batch_points,
            "conflict_retries": self.stat_conflict_retries,
            "finalize_ns": self.stat_finalize_ns,
            "exact_escalation_rate": (exact / total) if total else 0.0,
            "walk_hist": list(self.stat_walk_hist),
            "cavity_hist": list(self.stat_cavity_hist),
        }

    def _note_walk(self, steps: int) -> None:
        self.stat_locates += 1
        self.stat_walk_steps += steps
        self.stat_walk_hist[steps if steps < 31 else 31] += 1
        ema = self._walk_ema + 0.125 * (steps - self._walk_ema)
        self._walk_ema = ema
        n_pts = self._arr.n_pts
        if ema > _GRID_EMA_THRESHOLD and n_pts >= _GRID_MIN_POINTS:
            if self._grid is None or n_pts > self._grid_cap:
                self._build_grid()

    # ------------------------------------------------------------------
    # Walk-acceleration grid
    # ------------------------------------------------------------------
    def _build_grid(self) -> None:
        from ..geometry.aabb import AABB
        from ..spatial.grid import BucketGrid

        n = self._arr.n_pts
        if n == 0:
            return
        # Vectorised over the SoA point block: bounds and bulk insert
        # read the float64 buffer directly, no per-point staging.
        pts = self._arr.pts[:n]
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        bounds = AABB(float(lo[0]), float(lo[1]), float(hi[0]), float(hi[1]))
        # The grid is a snapshot: inserts do not feed it (that would tax
        # every insertion), so when the point count doubles it is rebuilt
        # — a stale nearest vertex is still a nearby walk seed, just a
        # few steps further out.
        self._grid_cap = max(2 * n, 2 * _GRID_MIN_POINTS)
        grid = BucketGrid(bounds, target_per_bucket=4.0,
                          expected_points=self._grid_cap)
        grid.insert_many(pts)
        self._grid = grid

    def _grid_start(self, px: float, py: float) -> int:
        """Walk-start triangle from the vertex grid, or -1."""
        near = self._grid.nearest(px, py)
        if near is None:
            return -1
        arr = self._arr
        t = arr.vt[near]
        if t >= 0 and arr.tv[3 * t] != DEAD:
            self.stat_grid_seeds += 1
            return t
        return -1

    # ------------------------------------------------------------------
    # Predicates (real / ghost uniform)
    # ------------------------------------------------------------------
    def _in_disk(self, t: int, p: Tuple[float, float]) -> bool:
        """True if ``p`` lies in triangle ``t``'s (possibly ghost) open
        circumdisk — the Bowyer–Watson cavity membership test.  Scalar
        robust path (the reference; hot paths use :meth:`_in_disk_fast`).
        """
        tv = self.tri_v[t]
        if GHOST not in tv:
            return incircle(self.pts[tv[0]], self.pts[tv[1]], self.pts[tv[2]], p) > 0
        u, v = self.ghost_edge(t)
        pu, pv = self.pts[u], self.pts[v]
        # Ghost [u, v, G]: outside-hull half-plane strictly left of u->v,
        # plus the open edge uv.
        o = orient2d(pu, pv, p)
        if o > 0:
            return True
        if o == 0:
            return (
                min(pu[0], pv[0]) <= p[0] <= max(pu[0], pv[0])
                and min(pu[1], pv[1]) <= p[1] <= max(pu[1], pv[1])
                and p != pu and p != pv
            )
        return False

    def _in_disk_fast(self, t: int, px: float, py: float) -> bool:
        """:meth:`_in_disk` with the filter stage inlined.

        Certified filter signs return immediately (counted as fast);
        inconclusive ones escalate to the exact scalar predicates
        (counted as exact).  Decisions are identical to :meth:`_in_disk`.
        """
        tvm = self._arr.tv
        pxm = self._arr.px
        i = 3 * t
        a = tvm[i]
        b = tvm[i + 1]
        c = tvm[i + 2]
        if a >= 0 and b >= 0 and c >= 0:
            j = 2 * a
            ax = pxm[j]
            ay = pxm[j + 1]
            j = 2 * b
            bx = pxm[j]
            by = pxm[j + 1]
            j = 2 * c
            cx = pxm[j]
            cy = pxm[j + 1]
            adx = ax - px
            ady = ay - py
            bdx = bx - px
            bdy = by - py
            cdx = cx - px
            cdy = cy - py
            bdxcdy = bdx * cdy
            cdxbdy = cdx * bdy
            cdxady = cdx * ady
            adxcdy = adx * cdy
            adxbdy = adx * bdy
            bdxady = bdx * ady
            alift = adx * adx + ady * ady
            blift = bdx * bdx + bdy * bdy
            clift = cdx * cdx + cdy * cdy
            det = (alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy)
                   + clift * (adxbdy - bdxady))
            permanent = ((abs(bdxcdy) + abs(cdxbdy)) * alift
                         + (abs(cdxady) + abs(adxcdy)) * blift
                         + (abs(adxbdy) + abs(bdxady)) * clift)
            if permanent > _ICC_GUARD:
                errbound = _ICC_ERR * permanent
                if det > errbound:
                    self.stat_incircle_fast += 1
                    return True
                if -det > errbound:
                    self.stat_incircle_fast += 1
                    return False
            self.stat_incircle_exact += 1
            return incircle((ax, ay), (bx, by), (cx, cy), (px, py)) > 0
        # Ghost triangle: half-plane left of the hull edge plus the open edge.
        u, v = self.ghost_edge(t)
        j = 2 * u
        ux = pxm[j]
        uy = pxm[j + 1]
        j = 2 * v
        vx = pxm[j]
        vy = pxm[j + 1]
        pu = (ux, uy)
        pv = (vx, vy)
        detleft = (ux - px) * (vy - py)
        detright = (uy - py) * (vx - px)
        det = detleft - detright
        detsum = abs(detleft) + abs(detright)
        if detsum > _CCW_GUARD:
            errbound = _CCW_ERR * detsum
            if det > errbound:
                self.stat_orient_fast += 1
                return True
            if -det > errbound:
                self.stat_orient_fast += 1
                return False
        self.stat_orient_exact += 1
        o = orient2d(pu, pv, (px, py))
        if o > 0:
            return True
        if o < 0:
            return False
        return (
            min(ux, vx) <= px <= max(ux, vx)
            and min(uy, vy) <= py <= max(uy, vy)
            and (px, py) != pu and (px, py) != pv
        )

    def _in_disk_any(self, t: int, p: Tuple[float, float]) -> bool:
        if self._fast:
            return self._in_disk_fast(t, p[0], p[1])
        return self._in_disk(t, p)

    # ------------------------------------------------------------------
    # Point location
    # ------------------------------------------------------------------
    def locate(self, p: Tuple[float, float], hint: int = -1) -> int:
        """Return a triangle whose closed region contains ``p``.

        For ``p`` outside the hull this is a ghost triangle whose
        half-plane contains it.  Uses a straight walk with pseudo-random
        edge tie-breaking, seeded from ``hint``, the last touched
        triangle, or (when walks have been running long) the vertex
        grid; falls back to exhaustive scan after a step cap (can only
        trigger on adversarial degeneracies).
        """
        if self.n_live_triangles == 0:
            raise TriangulationError("empty triangulation")
        if self._fast:
            return self._locate_fast(p, hint)
        return self._locate_ref(p, hint)

    def _walk_start(self, px: float, py: float, hint: int) -> int:
        return walk_start(self, px, py, hint)

    def _locate_ref(self, p: Tuple[float, float], hint: int) -> int:
        """Scalar-predicate walk (the reference / seed hot path)."""
        return locate_ref(self, p, hint)

    def _locate_fast(self, p: Tuple[float, float], hint: int) -> int:
        """Walk with the orientation filter inlined (exact escalation)."""
        return locate_fast(self, p, hint)

    def _locate_fallback(self, p: Tuple[float, float]) -> int:
        """Exhaustive exact containment scan (adversarial degeneracies)."""
        return locate_fallback(self, p)

    def find_vertex_at(self, p: Tuple[float, float], t: int) -> Optional[int]:
        """Vertex of triangle ``t`` exactly coincident with ``p``, if any."""
        for v in self.tri_v[t]:
            if v != GHOST and self.pts[v] == (p[0], p[1]):
                return v
        return None

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert_point(self, x: float, y: float, *, hint: int = -1,
                     on_duplicate: str = "return") -> int:
        """Insert vertex ``(x, y)``; returns its id.

        ``on_duplicate``: ``"return"`` yields the existing vertex id,
        ``"raise"`` raises :class:`TriangulationError`.

        The first three non-collinear points bootstrap the initial
        triangle + three ghosts; collinear prefixes are buffered.
        """
        p = (float(x), float(y))
        if not (math.isfinite(p[0]) and math.isfinite(p[1])):
            raise ValueError("non-finite coordinates")
        self.last_created = []
        self.last_removed = []

        if self.n_live_triangles == 0:
            return self._bootstrap_insert(p, on_duplicate)

        if self._fast:
            r = self._insert_fast(p[0], p[1], hint)
            if r >= 0:
                return r
            dup = -2 - r
            if on_duplicate == "raise":
                raise TriangulationError(f"duplicate point {p}")
            return dup

        t0 = self.locate(p, hint)
        dup = self.find_vertex_at(p, t0)
        if dup is not None:
            if on_duplicate == "raise":
                raise TriangulationError(f"duplicate point {p}")
            return dup

        vid = self._arr.new_point(p[0], p[1])
        self.stat_inserts += 1
        self._insert_into_cavity(vid, t0)
        return vid

    def _insert_fast(self, px: float, py: float, hint: int) -> int:
        """Fused fast-path insertion (walk + duplicate check + carve +
        retriangulate in one frame); see :func:`repro.delaunay.cavity.
        insert_point_fast`.  Returns the new vertex id, or ``-2 - v``
        when the point duplicates existing vertex ``v``.
        """
        return insert_point_fast(self, px, py, hint)

    def _bootstrap_insert(self, p: Tuple[float, float], on_duplicate: str) -> int:
        """Handle insertions before the first real triangle exists."""
        for i, q in enumerate(self.pts):
            if q == p:
                if on_duplicate == "raise":
                    raise TriangulationError(f"duplicate point {p}")
                return i
        self._arr.new_point(p[0], p[1])
        self.stat_inserts += 1
        if len(self.pts) < 3:
            return len(self.pts) - 1
        # Try to find a non-collinear triple including the newest point.
        n = len(self.pts)
        c = n - 1
        for a in range(n):
            for b in range(a + 1, n):
                if b == c or a == c:
                    continue
                o = orient2d(self.pts[a], self.pts[b], self.pts[c])
                if o != 0:
                    if o < 0:
                        a, b = b, a
                    self._create_first_triangle(a, b, c)
                    # Re-insert any remaining buffered points.
                    used = {a, b, c}
                    for v in range(n):
                        if v not in used:
                            t0 = self.locate(self.pts[v])
                            self._insert_into_cavity(v, t0)
                    return c
        return c  # all points still collinear

    def _create_first_triangle(self, a: int, b: int, c: int) -> None:
        t = self._new_triangle(a, b, c)
        # Ghosts: [c,b,G], [a,c,G], [b,a,G] — outside left of each edge.
        g0 = self._new_triangle(c, b, GHOST)  # across edge (b, c)
        g1 = self._new_triangle(a, c, GHOST)  # across edge (c, a)
        g2 = self._new_triangle(b, a, GHOST)  # across edge (a, b)
        # Real <-> ghost links.
        self._set_mutual(t, 0, g0, self._edge_index(g0, c, b))
        self._set_mutual(t, 1, g1, self._edge_index(g1, a, c))
        self._set_mutual(t, 2, g2, self._edge_index(g2, b, a))
        # Ghost <-> ghost links (around GHOST).
        for ga, gb in ((g0, g2), (g2, g1), (g1, g0)):
            ua, va = self.ghost_edge(ga)
            ub, vb = self.ghost_edge(gb)
            # ga edge (va, G) matches gb edge (G, ub) when va == ub
            ka = self._edge_index(ga, va, GHOST)
            kb = self._edge_index(gb, GHOST, ub)
            if va != ub:
                raise TriangulationError("ghost ring construction bug")
            self._set_mutual(ga, ka, gb, kb)
        self._last_tri = t
        self.last_created = [t, g0, g1, g2]
        self.last_removed = []

    # ------------------------------------------------------------------
    # Cavity carving
    # ------------------------------------------------------------------
    def _carve_cavity_ref(self, p: Tuple[float, float], t0: int
                          ) -> Tuple[Set[int], bool]:
        """Circumdisk BFS with scalar robust predicates (reference)."""
        return carve_cavity_ref(self, p, t0)

    def _carve_cavity_fast(self, p: Tuple[float, float], t0: int
                           ) -> Tuple[Set[int], bool]:
        """Level-order circumdisk search with inlined filtered
        predicates; see :func:`repro.delaunay.cavity.carve_cavity_fast`.
        """
        return carve_cavity_fast(self, p, t0)

    def _expand_level_batch(self, cand: List[int], cavity: Set[int],
                            px: float, py: float) -> List[int]:
        """Batched in-disk test of one BFS level; returns accepted tris."""
        return expand_level_batch(self, cand, cavity, px, py)

    def _insert_into_cavity(self, vid: int, t0: int) -> None:
        """Bowyer–Watson: carve the cavity of circumdisks containing the new
        point and re-fan from it.  Never crosses constrained edges."""
        p = self.pts[vid]
        if not self._in_disk_any(t0, p):
            # locate returned a triangle whose closed region holds p but p
            # is on its boundary; at least one adjacent triangle's open
            # disk must contain p. Search neighbours.
            found = None
            for k in range(3):
                nb = self.tri_n[t0][k]
                if nb >= 0 and self._in_disk_any(nb, p):
                    found = nb
                    break
            if found is None:
                raise TriangulationError(
                    f"insertion point {p} in no circumdisk (duplicate?)"
                )
            t0 = found

        if self._fast:
            cavity, blocked = self._carve_cavity_fast(p, t0)
        else:
            cavity, blocked = self._carve_cavity_ref(p, t0)
        self._retriangulate(vid, cavity, t0, blocked)

    def _retriangulate(self, vid: int, cavity: Set[int], t0: int,
                       blocked: bool) -> None:
        """Replace ``cavity`` by the star fan of ``vid`` (shared tail of
        the fast and reference insertion paths)."""
        retriangulate(self, vid, cavity, t0, blocked)

    def _prune_cavity_visibility(self, cavity: Set[int], t0: int,
                                 p: Tuple[float, float]) -> Set[int]:
        """Drop cavity triangles whose centroid ``p`` cannot see."""
        return prune_cavity_visibility(self, cavity, t0, p)

    def _legalize_vertex(self, vid: int, *, max_ops: int = 100_000) -> None:
        """Lawson legalisation of the edges opposite ``vid`` in its star.

        Flips every non-constrained, non-locally-Delaunay edge opposite
        ``vid``; each flip exposes two new opposite edges which are
        re-queued (the classic incremental-Delaunay recursion).
        """
        from collections import deque

        queue: deque = deque()
        for t in self.triangles_around_vertex(vid):
            tv = self.tri_v[t]
            if tv is None or GHOST in tv:
                continue
            i = tv.index(vid)
            queue.append((tv[i - 2], tv[i - 1]))
        ops = 0
        while queue:
            ops += 1
            if ops > max_ops:
                raise TriangulationError("vertex legalisation diverged")
            u, v = queue.popleft()
            if u == GHOST or v == GHOST:
                continue
            key = (u, v) if u < v else (v, u)
            if key in self.constraints:
                continue
            # Find the triangle (vid, u, v) if it still exists.
            t1 = None
            for t in self.triangles_around_vertex(vid):
                tv = self.tri_v[t]
                if tv is not None and u in tv and v in tv and vid in tv:
                    t1 = t
                    break
            if t1 is None:
                continue
            k1 = self.tri_v[t1].index(vid)
            t2 = self.tri_n[t1][k1]
            if t2 < 0 or self.is_ghost(t2):
                continue
            uu, vv = self._edge(t1, k1)
            k2 = self._edge_index(t2, vv, uu)
            w = self.tri_v[t2][k2]
            if w == GHOST:
                continue
            tv1 = self.tri_v[t1]
            if incircle(self.pts[tv1[0]], self.pts[tv1[1]],
                        self.pts[tv1[2]], self.pts[w]) > 0:
                if self.edge_is_flippable(t1, k1):
                    self.flip(t1, k1)
                    queue.append((uu, w))
                    queue.append((w, vv))

    # ------------------------------------------------------------------
    # Edge flipping (used by constraint recovery and legalisation)
    # ------------------------------------------------------------------
    def flip(self, t1: int, k1: int) -> Tuple[int, int]:
        """Flip the edge opposite vertex ``k1`` of ``t1``.

        Returns the two triangle ids after the flip (same slots reused).
        The quadrilateral must be strictly convex — caller checks.
        """
        arr = self._arr
        tvm = arr.tv
        tnm = arr.tn
        i1 = 3 * t1
        t2 = tnm[i1 + k1]
        if t2 < 0:
            raise TriangulationError("cannot flip hull edge")
        u = tvm[i1 + _NXT[k1]]
        v = tvm[i1 + _PRV[k1]]
        k2 = self._edge_index(t2, v, u)
        i2 = 3 * t2
        a = tvm[i1 + k1]   # apex of t1
        b = tvm[i2 + k2]   # apex of t2
        if GHOST in (a, b, u, v):
            raise TriangulationError("cannot flip an edge of a ghost triangle")
        key = (u, v) if u < v else (v, u)
        if key in self.constraints:
            raise TriangulationError("cannot flip a constrained edge")

        # Outer neighbours before rewiring.
        # Edges of t1 = [.., a at k1], directed edges: k1:(u,v), k1+1:(v,a), k1+2:(a,u)
        n_va = tnm[i1 + _NXT[k1]]    # across (v, a)
        n_au = tnm[i1 + _PRV[k1]]    # across (a, u)
        n_ub = tnm[i2 + _NXT[k2]]    # across (u, b)
        n_bv = tnm[i2 + _PRV[k2]]    # across (b, v)

        # New triangles: t1 <- [a, u, b], t2 <- [b, v, a]; shared edge (a, b)?
        # t1=[a,u,b]: edges: 0:(u,b) -> n_ub ; 1:(b,a) -> t2 ; 2:(a,u) -> n_au
        # t2=[b,v,a]: edges: 0:(v,a) -> n_va ; 1:(a,b) -> t1 ; 2:(b,v) -> n_bv
        tvm[i1] = a
        tvm[i1 + 1] = u
        tvm[i1 + 2] = b
        tvm[i2] = b
        tvm[i2 + 1] = v
        tvm[i2 + 2] = a
        tnm[i1] = n_ub
        tnm[i1 + 1] = t2
        tnm[i1 + 2] = n_au
        tnm[i2] = n_va
        tnm[i2 + 1] = t1
        tnm[i2 + 2] = n_bv
        # Fix back-pointers of outer neighbours.
        for t, nb, eu, ev in (
            (t1, n_ub, u, b),
            (t1, n_au, a, u),
            (t2, n_va, v, a),
            (t2, n_bv, b, v),
        ):
            if nb >= 0:
                tnm[3 * nb + self._edge_index(nb, ev, eu)] = t
        # All four quad vertices are real (GHOST raised above); net effect
        # of the old per-triangle hint loops: u -> t1, the rest -> t2.
        vtm = arr.vt
        vtm[u] = t1
        vtm[b] = t2
        vtm[v] = t2
        vtm[a] = t2
        self.stat_flips += 1
        return t1, t2

    def edge_is_flippable(self, t1: int, k1: int) -> bool:
        """The quad around edge k1 of t1 is strictly convex and all-real."""
        arr = self._arr
        tvm = arr.tv
        i1 = 3 * t1
        t2 = arr.tn[i1 + k1]
        if t2 < 0 or self.is_ghost(t1) or self.is_ghost(t2):
            return False
        u = tvm[i1 + _NXT[k1]]
        v = tvm[i1 + _PRV[k1]]
        k2 = self._edge_index(t2, v, u)
        a = tvm[i1 + k1]
        b = tvm[3 * t2 + k2]
        pxm = arr.px
        ja, jb, ju, jv = 2 * a, 2 * b, 2 * u, 2 * v
        pa = (pxm[ja], pxm[ja + 1])
        pb = (pxm[jb], pxm[jb + 1])
        pu = (pxm[ju], pxm[ju + 1])
        pv = (pxm[jv], pxm[jv + 1])
        return (
            orient2d(pa, pu, pb) > 0
            and orient2d(pb, pv, pa) > 0
        )

    # ------------------------------------------------------------------
    # Constraints
    # ------------------------------------------------------------------
    def mark_constraint(self, u: int, v: int) -> None:
        self.constraints.add((u, v) if u < v else (v, u))

    def unmark_constraint(self, u: int, v: int) -> None:
        self.constraints.discard((u, v) if u < v else (v, u))

    def has_edge(self, u: int, v: int) -> bool:
        """True if (u, v) is currently an edge of the triangulation."""
        t = self.vertex_tri[u]
        if t < 0:
            return False
        for tt in self.triangles_around_vertex(u):
            if v in self.tri_v[tt]:
                return True
        return False

    def triangles_around_vertex(self, v: int) -> List[int]:
        """All live triangles (including ghosts) incident to vertex ``v``."""
        t0 = self.vertex_tri[v]
        if t0 < 0 or self.tri_v[t0] is None or v not in self.tri_v[t0]:
            # Hint is stale; rebuild by scanning (rare).
            t0 = -1
            for t in self.live_triangles():
                if v in self.tri_v[t]:
                    t0 = t
                    break
            if t0 < 0:
                return []
            self.vertex_tri[v] = t0
        out = [t0]
        # Rotate around v using adjacency: in triangle t with v at index i,
        # the next triangle CCW is across edge (i+1)%3 (the edge following... )
        # Walk both directions to cope with hull interruptions (ghosts close
        # the ring so a full loop always exists).
        seen = {t0}
        cur = t0
        while True:
            i = self.tri_v[cur].index(v)
            nxt = self.tri_n[cur][i - 2]
            if nxt < 0 or nxt in seen:
                break
            seen.add(nxt)
            out.append(nxt)
            cur = nxt
        cur = t0
        while True:
            i = self.tri_v[cur].index(v)
            nxt = self.tri_n[cur][i - 1]
            if nxt < 0 or nxt in seen:
                break
            seen.add(nxt)
            out.append(nxt)
            cur = nxt
        return out

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_mesh(self, *, keep_mask: Optional[Sequence[bool]] = None) -> TriMesh:
        """Export real triangles as a :class:`TriMesh`.

        ``keep_mask`` (indexed by triangle id) optionally filters triangles
        (used by exterior/hole carving).  Vertices are compacted; the
        constraint set is exported as ``segments`` (only those whose both
        endpoints survive).

        The compaction is fully vectorised (:meth:`MeshArrays.compact`,
        no per-triangle Python loops); when every kernel vertex survives
        the point block is a read-only zero-copy view of kernel storage.
        """
        t_start = monotonic_ns()
        arr = self._arr
        mask = None
        if keep_mask is not None:
            mask = np.zeros(arr.n_tris, dtype=bool)
            km = np.asarray(keep_mask, dtype=bool)
            n = min(len(km), arr.n_tris)
            mask[:n] = km[:n]
        pts, tarr, remap = arr.compact(mask)
        if remap is None:
            # Dense compaction: kernel vertex ids are the mesh ids.
            segs = list(self.constraints)
        else:
            segs = [(remap[u], remap[v]) for u, v in self.constraints
                    if remap[u] >= 0 and remap[v] >= 0]
        sarr = (np.asarray(sorted(segs), dtype=np.int32)
                if segs else np.empty((0, 2), dtype=np.int32))
        mesh = TriMesh(pts, tarr, sarr)
        self.stat_finalize_ns += monotonic_ns() - t_start
        return mesh

    # ------------------------------------------------------------------
    # Structural self-check (tests, expensive)
    # ------------------------------------------------------------------
    def check_integrity(self) -> None:
        """Assert adjacency symmetry and positive orientation everywhere."""
        for t in self.live_triangles():
            tv = self.tri_v[t]
            if GHOST not in tv:
                o = orient2d(self.pts[tv[0]], self.pts[tv[1]], self.pts[tv[2]])
                if o <= 0:
                    raise TriangulationError(f"triangle {t}={tv} not CCW ({o})")
            for k in range(3):
                nb = self.tri_n[t][k]
                if nb < 0:
                    if self.n_live_triangles > 1:
                        raise TriangulationError(f"triangle {t} edge {k} unlinked")
                    continue
                if self.tri_v[nb] is None:
                    raise TriangulationError(f"{t} links dead triangle {nb}")
                u, v = self._edge(t, k)
                kk = self._edge_index(nb, v, u)
                if self.tri_n[nb][kk] != t:
                    raise TriangulationError(f"asymmetric adjacency {t}<->{nb}")


def triangulate(points: np.ndarray, *, assume_sorted: bool = False,
                seed: int = 0xC0FFEE,
                fast_predicates: bool = True,
                strategy: Optional[str] = None) -> Triangulation:
    """Delaunay-triangulate a point set incrementally.

    ``assume_sorted`` mirrors the paper's Triangle optimisation (Section
    III): when the caller guarantees x-sorted input the kernel inserts in
    the given order, which keeps walks short (each point lands next to its
    predecessor).  Otherwise points are inserted in BRIO order derived
    from ``seed`` for expected-case robustness.  Identical inputs and
    seed produce byte-identical triangulations.

    ``strategy`` picks the bulk insertion strategy from the
    :mod:`repro.delaunay.cavity` registry (``scalar`` or ``batch``);
    ``None`` defers to the ``REPRO_INSERT`` environment variable and
    then the scalar default.  Every strategy produces a Delaunay
    triangulation of the same point set; vertex numbering may differ.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must be (n, 2)")
    tri, _ = _triangulate_with_map(points, assume_sorted=assume_sorted,
                                   seed=seed, fast_predicates=fast_predicates,
                                   strategy=strategy)
    return tri


#: Historical name for the shared BRIO ordering (now owned by
#: :mod:`repro.delaunay.cavity`); kept for importers.
_brio_order = brio_order


def _triangulate_with_map(points: np.ndarray, *, assume_sorted: bool,
                          seed: int = 0xC0FFEE,
                          fast_predicates: bool = True,
                          strategy: Optional[str] = None,
                          ) -> Tuple[Triangulation, Dict[int, int]]:
    if len(points) and not np.isfinite(points).all():
        raise ValueError("non-finite coordinates")
    tri = Triangulation(seed=seed, fast_predicates=fast_predicates)
    # Bulk pre-reserve: one allocation instead of log2(n) doublings.
    tri._arr.reserve_points(len(points))
    if assume_sorted:
        order = range(len(points))
    else:
        order = brio_order(points, seed=seed).tolist()
    name = resolve_strategy_name(strategy)
    inserted = get_strategy(name).insert_points(tri, points, order)
    return tri, inserted


def delaunay_mesh(points: np.ndarray, *, assume_sorted: bool = False,
                  seed: int = 0xC0FFEE,
                  strategy: Optional[str] = None) -> TriMesh:
    """Delaunay triangulation as a :class:`TriMesh` indexed like ``points``.

    Duplicate input points map to the first occurrence, so triangle indices
    always refer to the caller's array.
    """
    points = np.asarray(points, dtype=np.float64)
    tri, inserted = _triangulate_with_map(points, assume_sorted=assume_sorted,
                                          seed=seed, strategy=strategy)
    # kernel vertex id -> smallest input index that produced it
    inv: Dict[int, int] = {}
    for i, k in inserted.items():
        if k not in inv or i < inv[k]:
            inv[k] = i
    tris = [
        (inv[a], inv[b], inv[c])
        for t in tri.live_triangles()
        if not tri.is_ghost(t)
        for (a, b, c) in (tri.tri_v[t],)
    ]
    tarr = (np.asarray(tris, dtype=np.int32)
            if tris else np.empty((0, 3), dtype=np.int32))
    return TriMesh(points, tarr)
