"""Incremental Delaunay triangulation kernel (Bowyer–Watson with ghosts).

This is the repository's substitute for Shewchuk's Triangle: the engine
used to triangulate boundary-layer subdomains and to Delaunay-refine the
decoupled inviscid subdomains.  Design:

* **Ghost triangles.**  The convex hull is bordered by *ghost* triangles
  sharing a symbolic vertex :data:`GHOST`.  A ghost triangle ``[u, v, G]``
  represents the open half-plane strictly left of the directed hull edge
  ``u -> v`` (plus the open edge itself).  Ghosts make insertion outside
  the current hull a completely uniform cavity operation — no giant
  super-triangle, no magic coordinates, exact arithmetic everywhere.
* **Robust predicates.**  All sign decisions go through
  :mod:`repro.geometry.predicates`, so the kernel never produces an
  inverted triangle and cavity searches terminate.
* **Walking point location** seeded from the most recent triangle (or a
  caller-provided hint), with a step cap and a brute-force fallback for
  adversarial inputs.
* **Constrained edges.**  A set of locked undirected edges that cavity
  searches refuse to cross; segment *recovery* (making an arbitrary edge
  appear) lives in :mod:`repro.delaunay.constrained`.

The structure is array-of-lists Python for mutability; :meth:`to_mesh`
exports a contiguous :class:`~repro.delaunay.mesh.TriMesh`.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..geometry.predicates import incircle, orient2d
from ..geometry.primitives import point_on_segment
from .mesh import TriMesh

__all__ = [
    "GHOST",
    "Triangulation",
    "TriangulationError",
    "delaunay_mesh",
    "triangulate",
]

GHOST = -1


class TriangulationError(RuntimeError):
    """Raised for structurally invalid kernel operations."""


class Triangulation:
    """Mutable 2D Delaunay triangulation under incremental insertion.

    Create empty, then :meth:`insert_point` each vertex (or use the
    module-level :func:`triangulate` convenience).  Triangle slots are
    recycled through a free list so ids stay dense.
    """

    def __init__(self) -> None:
        self.pts: List[Tuple[float, float]] = []
        self.tri_v: List[Optional[List[int]]] = []   # 3 vertex ids or None (dead)
        self.tri_n: List[Optional[List[int]]] = []   # 3 neighbour tri ids
        self._free: List[int] = []
        self.vertex_tri: List[int] = []              # one incident tri per vertex
        self.constraints: Set[Tuple[int, int]] = set()
        self._last_tri: int = -1                     # walk hint
        self._rng = random.Random(0x5EED)
        self._lcg = 0x5EED
        self.n_live_triangles = 0                    # includes ghosts
        # Triangles created/removed by the most recent insert_point call —
        # lets refinement track per-triangle labels in O(cavity) instead of
        # O(n) snapshots.
        self.last_created: List[int] = []
        self.last_removed: List[int] = []

    # ------------------------------------------------------------------
    # Low-level triangle bookkeeping
    # ------------------------------------------------------------------
    def _new_triangle(self, a: int, b: int, c: int) -> int:
        if self._free:
            t = self._free.pop()
            self.tri_v[t] = [a, b, c]
            self.tri_n[t] = [-1, -1, -1]
        else:
            t = len(self.tri_v)
            self.tri_v.append([a, b, c])
            self.tri_n.append([-1, -1, -1])
        for v in (a, b, c):
            if v != GHOST:
                self.vertex_tri[v] = t
        self.n_live_triangles += 1
        return t

    def _kill_triangle(self, t: int) -> None:
        self.tri_v[t] = None
        self.tri_n[t] = None
        self._free.append(t)
        self.n_live_triangles -= 1

    def is_ghost(self, t: int) -> bool:
        tv = self.tri_v[t]
        return tv is not None and (tv[0] == GHOST or tv[1] == GHOST or tv[2] == GHOST)

    def _edge(self, t: int, k: int) -> Tuple[int, int]:
        """Directed edge opposite vertex ``k`` of triangle ``t``."""
        tv = self.tri_v[t]
        return tv[(k + 1) % 3], tv[(k + 2) % 3]

    def _set_mutual(self, t1: int, k1: int, t2: int, k2: int) -> None:
        self.tri_n[t1][k1] = t2
        self.tri_n[t2][k2] = t1

    def _edge_index(self, t: int, u: int, v: int) -> int:
        """Index k such that the directed edge k of ``t`` is (u, v)."""
        tv = self.tri_v[t]
        for k in range(3):
            if tv[(k + 1) % 3] == u and tv[(k + 2) % 3] == v:
                return k
        raise TriangulationError(f"edge ({u},{v}) not in triangle {t}={tv}")

    def ghost_edge(self, t: int) -> Tuple[int, int]:
        """The real directed hull edge ``(u, v)`` of ghost triangle ``t``."""
        tv = self.tri_v[t]
        for k in range(3):
            if tv[k] == GHOST:
                return tv[(k + 1) % 3], tv[(k + 2) % 3]
        raise TriangulationError(f"triangle {t} is not a ghost")

    def live_triangles(self) -> Iterable[int]:
        for t, tv in enumerate(self.tri_v):
            if tv is not None:
                yield t

    # ------------------------------------------------------------------
    # Predicates (real / ghost uniform)
    # ------------------------------------------------------------------
    def _in_disk(self, t: int, p: Tuple[float, float]) -> bool:
        """True if ``p`` lies in triangle ``t``'s (possibly ghost) open
        circumdisk — the Bowyer–Watson cavity membership test."""
        tv = self.tri_v[t]
        if GHOST not in tv:
            return incircle(self.pts[tv[0]], self.pts[tv[1]], self.pts[tv[2]], p) > 0
        u, v = self.ghost_edge(t)
        pu, pv = self.pts[u], self.pts[v]
        # Ghost [u, v, G]: outside-hull half-plane strictly left of u->v,
        # plus the open edge uv.
        o = orient2d(pu, pv, p)
        if o > 0:
            return True
        if o == 0:
            return (
                min(pu[0], pv[0]) <= p[0] <= max(pu[0], pv[0])
                and min(pu[1], pv[1]) <= p[1] <= max(pu[1], pv[1])
                and p != tuple(pu) and p != tuple(pv)
            )
        return False

    # ------------------------------------------------------------------
    # Point location
    # ------------------------------------------------------------------
    def locate(self, p: Tuple[float, float], hint: int = -1) -> int:
        """Return a triangle whose closed region contains ``p``.

        For ``p`` outside the hull this is a ghost triangle whose
        half-plane contains it.  Uses a straight walk with random edge
        tie-breaking; falls back to exhaustive scan after a step cap (can
        only trigger on adversarial degeneracies).
        """
        if self.n_live_triangles == 0:
            raise TriangulationError("empty triangulation")
        t = hint if hint >= 0 and self.tri_v[hint] is not None else self._last_tri
        if t < 0 or self.tri_v[t] is None:
            t = next(iter(self.live_triangles()))
        if self.is_ghost(t):
            # step into the real triangle across the hull edge
            u, v = self.ghost_edge(t)
            k = self._edge_index(t, u, v)
            nb = self.tri_n[t][k]
            t = nb if nb >= 0 else t

        max_steps = 4 * (self.n_live_triangles + 8)
        steps = 0
        prev = -1
        while steps < max_steps:
            steps += 1
            if self.is_ghost(t):
                # Walked off the hull; check this ghost's half-plane.
                u, v = self.ghost_edge(t)
                if orient2d(self.pts[u], self.pts[v], p) >= 0:
                    self._last_tri = t
                    return t
                # p visible from a different hull edge: walk along the hull.
                # Move to the next ghost sharing vertex v or u.
                tv = self.tri_v[t]
                g = tv.index(GHOST)
                nxt = self.tri_n[t][(g + 1) % 3]  # neighbour across (v, G)
                if nxt == prev:
                    nxt = self.tri_n[t][(g + 2) % 3]
                prev, t = t, nxt
                continue
            moved = False
            # Cheap pseudo-random starting edge (an LCG step) breaks the
            # degenerate walk cycles a fixed order could orbit, without
            # the cost of a real shuffle on every step.
            self._lcg = (self._lcg * 1103515245 + 12345) & 0x7FFFFFFF
            k0 = self._lcg % 3
            for dk in range(3):
                k = (k0 + dk) % 3
                u, v = self._edge(t, k)
                if self.tri_n[t][k] == prev:
                    continue
                if orient2d(self.pts[u], self.pts[v], p) < 0:
                    prev, t = t, self.tri_n[t][k]
                    moved = True
                    break
            if not moved:
                self._last_tri = t
                return t
        # Fallback: exhaustive containment scan (exact).
        for t in self.live_triangles():
            if self.is_ghost(t):
                continue
            tv = self.tri_v[t]
            if all(
                orient2d(self.pts[tv[(k + 1) % 3]], self.pts[tv[(k + 2) % 3]], p) >= 0
                for k in range(3)
            ):
                self._last_tri = t
                return t
        for t in self.live_triangles():
            if self.is_ghost(t) and self._in_disk(t, p):
                self._last_tri = t
                return t
        raise TriangulationError(f"point {p} could not be located")

    def find_vertex_at(self, p: Tuple[float, float], t: int) -> Optional[int]:
        """Vertex of triangle ``t`` exactly coincident with ``p``, if any."""
        for v in self.tri_v[t]:
            if v != GHOST and tuple(self.pts[v]) == (p[0], p[1]):
                return v
        return None

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert_point(self, x: float, y: float, *, hint: int = -1,
                     on_duplicate: str = "return") -> int:
        """Insert vertex ``(x, y)``; returns its id.

        ``on_duplicate``: ``"return"`` yields the existing vertex id,
        ``"raise"`` raises :class:`TriangulationError`.

        The first three non-collinear points bootstrap the initial
        triangle + three ghosts; collinear prefixes are buffered.
        """
        p = (float(x), float(y))
        if not (np.isfinite(p[0]) and np.isfinite(p[1])):
            raise ValueError("non-finite coordinates")
        self.last_created = []
        self.last_removed = []

        if self.n_live_triangles == 0:
            return self._bootstrap_insert(p, on_duplicate)

        t0 = self.locate(p, hint)
        dup = self.find_vertex_at(p, t0)
        if dup is None and not self.is_ghost(t0):
            # p may coincide with a vertex of a neighbouring triangle when it
            # sits exactly on an edge of t0; check edge endpoints too.
            for v in self.tri_v[t0]:
                if v != GHOST and tuple(self.pts[v]) == p:
                    dup = v
        if dup is not None:
            if on_duplicate == "raise":
                raise TriangulationError(f"duplicate point {p}")
            return dup

        vid = len(self.pts)
        self.pts.append(p)
        self.vertex_tri.append(-1)
        self._insert_into_cavity(vid, t0)
        return vid

    def _bootstrap_insert(self, p: Tuple[float, float], on_duplicate: str) -> int:
        """Handle insertions before the first real triangle exists."""
        for i, q in enumerate(self.pts):
            if q == p:
                if on_duplicate == "raise":
                    raise TriangulationError(f"duplicate point {p}")
                return i
        self.pts.append(p)
        self.vertex_tri.append(-1)
        if len(self.pts) < 3:
            return len(self.pts) - 1
        # Try to find a non-collinear triple including the newest point.
        n = len(self.pts)
        c = n - 1
        for a in range(n):
            for b in range(a + 1, n):
                if b == c or a == c:
                    continue
                o = orient2d(self.pts[a], self.pts[b], self.pts[c])
                if o != 0:
                    if o < 0:
                        a, b = b, a
                    self._create_first_triangle(a, b, c)
                    # Re-insert any remaining buffered points.
                    used = {a, b, c}
                    for v in range(n):
                        if v not in used:
                            t0 = self.locate(self.pts[v])
                            self._insert_into_cavity(v, t0)
                    return c
        return c  # all points still collinear

    def _create_first_triangle(self, a: int, b: int, c: int) -> None:
        t = self._new_triangle(a, b, c)
        # Ghosts: [c,b,G], [a,c,G], [b,a,G] — outside left of each edge.
        g0 = self._new_triangle(c, b, GHOST)  # across edge (b, c)
        g1 = self._new_triangle(a, c, GHOST)  # across edge (c, a)
        g2 = self._new_triangle(b, a, GHOST)  # across edge (a, b)
        # Real <-> ghost links.
        self._set_mutual(t, 0, g0, self._edge_index(g0, c, b))
        self._set_mutual(t, 1, g1, self._edge_index(g1, a, c))
        self._set_mutual(t, 2, g2, self._edge_index(g2, b, a))
        # Ghost <-> ghost links (around GHOST).
        for ga, gb in ((g0, g2), (g2, g1), (g1, g0)):
            ua, va = self.ghost_edge(ga)
            ub, vb = self.ghost_edge(gb)
            # ga edge (va, G) matches gb edge (G, ub) when va == ub
            ka = self._edge_index(ga, va, GHOST)
            kb = self._edge_index(gb, GHOST, ub)
            if va != ub:
                raise TriangulationError("ghost ring construction bug")
            self._set_mutual(ga, ka, gb, kb)
        self._last_tri = t
        self.last_created = [t, g0, g1, g2]
        self.last_removed = []

    def _insert_into_cavity(self, vid: int, t0: int) -> None:
        """Bowyer–Watson: carve the cavity of circumdisks containing the new
        point and re-fan from it.  Never crosses constrained edges."""
        p = self.pts[vid]
        if not self._in_disk(t0, p):
            # locate returned a triangle whose closed region holds p but p
            # is on its boundary; at least one adjacent triangle's open
            # disk must contain p. Search neighbours.
            found = None
            for k in range(3):
                nb = self.tri_n[t0][k]
                if nb >= 0 and self._in_disk(nb, p):
                    found = nb
                    break
            if found is None:
                raise TriangulationError(
                    f"insertion point {p} in no circumdisk (duplicate?)"
                )
            t0 = found

        cavity: Set[int] = {t0}
        stack = [t0]
        blocked = False
        while stack:
            t = stack.pop()
            for k in range(3):
                nb = self.tri_n[t][k]
                if nb < 0 or nb in cavity:
                    continue
                u, v = self._edge(t, k)
                if u != GHOST and v != GHOST:
                    key = (u, v) if u < v else (v, u)
                    if key in self.constraints:
                        blocked = True
                        continue
                if self._in_disk(nb, p):
                    cavity.add(nb)
                    stack.append(nb)

        # Constrained-Delaunay visibility pruning: with spiky constrained
        # boundaries the circumdisk BFS can wrap AROUND a constrained edge
        # (reaching both of its sides without ever crossing it).  Keeping
        # such triangles would delete the constraint during
        # retriangulation.  Detect the configuration and prune cavity
        # triangles whose centroid is not visible from p.
        if self.constraints:
            wrapped_edge = False
            for t in cavity:
                for k in range(3):
                    nb = self.tri_n[t][k]
                    if nb not in cavity:
                        continue
                    u, v = self._edge(t, k)
                    if u == GHOST or v == GHOST:
                        continue
                    key = (u, v) if u < v else (v, u)
                    if key in self.constraints:
                        wrapped_edge = True
                        break
                if wrapped_edge:
                    break
            if wrapped_edge:
                cavity = self._prune_cavity_visibility(cavity, t0, p)
                blocked = True

        # Collect directed boundary edges (u, v) with their outside triangle.
        boundary: List[Tuple[int, int, int, int]] = []  # (u, v, nb, nb_edge_k)
        for t in cavity:
            for k in range(3):
                nb = self.tri_n[t][k]
                if nb in cavity:
                    continue
                u, v = self._edge(t, k)
                nbk = self._edge_index(nb, v, u) if nb >= 0 else -1
                boundary.append((u, v, nb, nbk))

        self.last_removed = list(cavity)
        for t in cavity:
            self._kill_triangle(t)

        start_map: Dict[int, int] = {}
        end_map: Dict[int, int] = {}
        new_tris: List[Tuple[int, int, int]] = []
        for u, v, nb, nbk in boundary:
            t = self._new_triangle(u, v, vid)
            if nb >= 0:
                self._set_mutual(t, 2, nb, nbk)  # edge 2 of [u,v,p] is (u,v)
            start_map[u] = t
            end_map[v] = t
            new_tris.append(t)
        # Link the fan: [u,v,p] edge0 = (v,p) borders triangle starting at v;
        # edge1 = (p,u) borders triangle ending at u.
        for t in new_tris:
            u, v, _ = self.tri_v[t]
            t_next = start_map.get(v)
            t_prev = end_map.get(u)
            if t_next is None or t_prev is None:
                raise TriangulationError("open cavity boundary")
            self.tri_n[t][0] = t_next
            self.tri_n[t][1] = t_prev
        self._last_tri = new_tris[0]
        self.last_created = new_tris
        # Pick a real incident triangle as the vertex hint when available.
        for t in new_tris:
            if not self.is_ghost(t):
                self.vertex_tri[vid] = t
                break
        if blocked:
            # A constraint clipped the cavity: the star fan is not
            # automatically locally Delaunay, so legalise around the new
            # vertex (Lawson flips, never crossing constraints).  Flips
            # reuse the two triangle slots, so last_created stays valid.
            self._legalize_vertex(vid)

    def _prune_cavity_visibility(self, cavity: Set[int], t0: int,
                                 p: Tuple[float, float]) -> Set[int]:
        """Drop cavity triangles whose centroid p cannot see.

        Visibility is tested against the constrained edges incident to
        cavity triangles (a blocking constraint must appear there); the
        surviving set is re-restricted to the connected component of
        ``t0`` so the retriangulated fan stays star-shaped about ``p``.
        """
        from ..geometry.primitives import segments_intersect

        constr: Set[Tuple[int, int]] = set()
        for t in cavity:
            tv = self.tri_v[t]
            for k in range(3):
                u, v = tv[(k + 1) % 3], tv[(k + 2) % 3]
                if u == GHOST or v == GHOST:
                    continue
                key = (u, v) if u < v else (v, u)
                if key in self.constraints:
                    constr.add(key)
        if not constr:
            return cavity

        def visible(t: int) -> bool:
            tv = self.tri_v[t]
            if GHOST in tv:
                reals = [self.pts[w] for w in tv if w != GHOST]
                cx = sum(q[0] for q in reals) / len(reals)
                cy = sum(q[1] for q in reals) / len(reals)
            else:
                cx = sum(self.pts[w][0] for w in tv) / 3.0
                cy = sum(self.pts[w][1] for w in tv) / 3.0
            for (u, v) in constr:
                if segments_intersect(p, (cx, cy), self.pts[u],
                                      self.pts[v], proper_only=True):
                    return False
            return True

        kept = {t for t in cavity if t == t0 or visible(t)}
        # Connected component of t0 within the kept set, still never
        # crossing constrained edges.
        comp = {t0}
        stack = [t0]
        while stack:
            t = stack.pop()
            for k in range(3):
                nb = self.tri_n[t][k]
                if nb not in kept or nb in comp:
                    continue
                u, v = self._edge(t, k)
                if u != GHOST and v != GHOST:
                    key = (u, v) if u < v else (v, u)
                    if key in self.constraints:
                        continue
                comp.add(nb)
                stack.append(nb)
        return comp

    def _legalize_vertex(self, vid: int, *, max_ops: int = 100_000) -> None:
        """Lawson legalisation of the edges opposite ``vid`` in its star.

        Flips every non-constrained, non-locally-Delaunay edge opposite
        ``vid``; each flip exposes two new opposite edges which are
        re-queued (the classic incremental-Delaunay recursion).
        """
        from collections import deque

        queue: deque = deque()
        for t in self.triangles_around_vertex(vid):
            tv = self.tri_v[t]
            if tv is None or GHOST in tv:
                continue
            i = tv.index(vid)
            queue.append((tv[(i + 1) % 3], tv[(i + 2) % 3]))
        ops = 0
        while queue:
            ops += 1
            if ops > max_ops:
                raise TriangulationError("vertex legalisation diverged")
            u, v = queue.popleft()
            if u == GHOST or v == GHOST:
                continue
            key = (u, v) if u < v else (v, u)
            if key in self.constraints:
                continue
            # Find the triangle (vid, u, v) if it still exists.
            t1 = None
            for t in self.triangles_around_vertex(vid):
                tv = self.tri_v[t]
                if tv is not None and u in tv and v in tv and vid in tv:
                    t1 = t
                    break
            if t1 is None:
                continue
            k1 = self.tri_v[t1].index(vid)
            t2 = self.tri_n[t1][k1]
            if t2 < 0 or self.is_ghost(t2):
                continue
            uu, vv = self._edge(t1, k1)
            k2 = self._edge_index(t2, vv, uu)
            w = self.tri_v[t2][k2]
            if w == GHOST:
                continue
            tv1 = self.tri_v[t1]
            if incircle(self.pts[tv1[0]], self.pts[tv1[1]],
                        self.pts[tv1[2]], self.pts[w]) > 0:
                if self.edge_is_flippable(t1, k1):
                    self.flip(t1, k1)
                    queue.append((uu, w))
                    queue.append((w, vv))

    # ------------------------------------------------------------------
    # Edge flipping (used by constraint recovery and legalisation)
    # ------------------------------------------------------------------
    def flip(self, t1: int, k1: int) -> Tuple[int, int]:
        """Flip the edge opposite vertex ``k1`` of ``t1``.

        Returns the two triangle ids after the flip (same slots reused).
        The quadrilateral must be strictly convex — caller checks.
        """
        t2 = self.tri_n[t1][k1]
        if t2 < 0:
            raise TriangulationError("cannot flip hull edge")
        u, v = self._edge(t1, k1)
        k2 = self._edge_index(t2, v, u)
        a = self.tri_v[t1][k1]   # apex of t1
        b = self.tri_v[t2][k2]   # apex of t2
        if GHOST in (a, b, u, v):
            raise TriangulationError("cannot flip an edge of a ghost triangle")
        key = (u, v) if u < v else (v, u)
        if key in self.constraints:
            raise TriangulationError("cannot flip a constrained edge")

        # Outer neighbours before rewiring.
        n_uv_a = self.tri_n[t1][(k1 + 2) % 3]  # across (a, u)... see below
        # Edges of t1 = [.., a at k1], directed edges: k1:(u,v), k1+1:(v,a), k1+2:(a,u)
        n_va = self.tri_n[t1][(k1 + 1) % 3]    # across (v, a)
        n_au = self.tri_n[t1][(k1 + 2) % 3]    # across (a, u)
        n_ub = self.tri_n[t2][(k2 + 1) % 3]    # across (u, b)
        n_bv = self.tri_n[t2][(k2 + 2) % 3]    # across (b, v)

        # New triangles: t1 <- [a, u, b], t2 <- [b, v, a]; shared edge (a, b)?
        # t1=[a,u,b]: edges: 0:(u,b) -> n_ub ; 1:(b,a) -> t2 ; 2:(a,u) -> n_au
        # t2=[b,v,a]: edges: 0:(v,a) -> n_va ; 1:(a,b) -> t1 ; 2:(b,v) -> n_bv
        self.tri_v[t1] = [a, u, b]
        self.tri_v[t2] = [b, v, a]
        self.tri_n[t1] = [n_ub, t2, n_au]
        self.tri_n[t2] = [n_va, t1, n_bv]
        # Fix back-pointers of outer neighbours.
        for t, k, nb, eu, ev in (
            (t1, 0, n_ub, u, b),
            (t1, 2, n_au, a, u),
            (t2, 0, n_va, v, a),
            (t2, 2, n_bv, b, v),
        ):
            if nb >= 0:
                self.tri_n[nb][self._edge_index(nb, ev, eu)] = t
        for vv in (a, u, b):
            if vv != GHOST:
                self.vertex_tri[vv] = t1
        for vv in (b, v, a):
            if vv != GHOST:
                self.vertex_tri[vv] = t2
        return t1, t2

    def edge_is_flippable(self, t1: int, k1: int) -> bool:
        """The quad around edge k1 of t1 is strictly convex and all-real."""
        t2 = self.tri_n[t1][k1]
        if t2 < 0 or self.is_ghost(t1) or self.is_ghost(t2):
            return False
        u, v = self._edge(t1, k1)
        k2 = self._edge_index(t2, v, u)
        a = self.tri_v[t1][k1]
        b = self.tri_v[t2][k2]
        pa, pb = self.pts[a], self.pts[b]
        pu, pv = self.pts[u], self.pts[v]
        return (
            orient2d(pa, pu, pb) > 0
            and orient2d(pb, pv, pa) > 0
        )

    # ------------------------------------------------------------------
    # Constraints
    # ------------------------------------------------------------------
    def mark_constraint(self, u: int, v: int) -> None:
        self.constraints.add((u, v) if u < v else (v, u))

    def unmark_constraint(self, u: int, v: int) -> None:
        self.constraints.discard((u, v) if u < v else (v, u))

    def has_edge(self, u: int, v: int) -> bool:
        """True if (u, v) is currently an edge of the triangulation."""
        t = self.vertex_tri[u]
        if t < 0:
            return False
        for tt in self.triangles_around_vertex(u):
            if v in self.tri_v[tt]:
                return True
        return False

    def triangles_around_vertex(self, v: int) -> List[int]:
        """All live triangles (including ghosts) incident to vertex ``v``."""
        t0 = self.vertex_tri[v]
        if t0 < 0 or self.tri_v[t0] is None or v not in self.tri_v[t0]:
            # Hint is stale; rebuild by scanning (rare).
            t0 = -1
            for t in self.live_triangles():
                if v in self.tri_v[t]:
                    t0 = t
                    break
            if t0 < 0:
                return []
            self.vertex_tri[v] = t0
        out = [t0]
        # Rotate around v using adjacency: in triangle t with v at index i,
        # the next triangle CCW is across edge (i+1)%3 (the edge following... )
        # Walk both directions to cope with hull interruptions (ghosts close
        # the ring so a full loop always exists).
        seen = {t0}
        cur = t0
        while True:
            i = self.tri_v[cur].index(v)
            nxt = self.tri_n[cur][(i + 1) % 3]
            if nxt < 0 or nxt in seen:
                break
            seen.add(nxt)
            out.append(nxt)
            cur = nxt
        cur = t0
        while True:
            i = self.tri_v[cur].index(v)
            nxt = self.tri_n[cur][(i + 2) % 3]
            if nxt < 0 or nxt in seen:
                break
            seen.add(nxt)
            out.append(nxt)
            cur = nxt
        return out

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_mesh(self, *, keep_mask: Optional[Sequence[bool]] = None) -> TriMesh:
        """Export real triangles as a :class:`TriMesh`.

        ``keep_mask`` (indexed by triangle id) optionally filters triangles
        (used by exterior/hole carving).  Vertices are compacted; the
        constraint set is exported as ``segments`` (only those whose both
        endpoints survive).
        """
        tris: List[Tuple[int, int, int]] = []
        for t in self.live_triangles():
            if self.is_ghost(t):
                continue
            if keep_mask is not None and not keep_mask[t]:
                continue
            tris.append(tuple(self.tri_v[t]))
        used = sorted({v for tri in tris for v in tri})
        remap = {v: i for i, v in enumerate(used)}
        pts = (np.asarray([self.pts[v] for v in used], dtype=np.float64)
               if used else np.empty((0, 2), dtype=np.float64))
        tarr = (
            np.asarray([[remap[a], remap[b], remap[c]] for a, b, c in tris],
                       dtype=np.int32)
            if tris else np.empty((0, 3), dtype=np.int32)
        )
        segs = [
            (remap[u], remap[v])
            for u, v in self.constraints
            if u in remap and v in remap
        ]
        sarr = (np.asarray(sorted(segs), dtype=np.int32)
                if segs else np.empty((0, 2), dtype=np.int32))
        return TriMesh(pts, tarr, sarr)

    # ------------------------------------------------------------------
    # Structural self-check (tests, expensive)
    # ------------------------------------------------------------------
    def check_integrity(self) -> None:
        """Assert adjacency symmetry and positive orientation everywhere."""
        for t in self.live_triangles():
            tv = self.tri_v[t]
            if GHOST not in tv:
                o = orient2d(self.pts[tv[0]], self.pts[tv[1]], self.pts[tv[2]])
                if o <= 0:
                    raise TriangulationError(f"triangle {t}={tv} not CCW ({o})")
            for k in range(3):
                nb = self.tri_n[t][k]
                if nb < 0:
                    if self.n_live_triangles > 1:
                        raise TriangulationError(f"triangle {t} edge {k} unlinked")
                    continue
                if self.tri_v[nb] is None:
                    raise TriangulationError(f"{t} links dead triangle {nb}")
                u, v = self._edge(t, k)
                kk = self._edge_index(nb, v, u)
                if self.tri_n[nb][kk] != t:
                    raise TriangulationError(f"asymmetric adjacency {t}<->{nb}")


def triangulate(points: np.ndarray, *, assume_sorted: bool = False) -> Triangulation:
    """Delaunay-triangulate a point set incrementally.

    ``assume_sorted`` mirrors the paper's Triangle optimisation (Section
    III): when the caller guarantees x-sorted input the kernel inserts in
    the given order, which keeps walks short (each point lands next to its
    predecessor).  Otherwise points are inserted in a shuffled order for
    expected-case robustness.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must be (n, 2)")
    tri, _ = _triangulate_with_map(points, assume_sorted=assume_sorted)
    return tri


def _brio_order(points: np.ndarray, seed: int = 0xC0FFEE) -> np.ndarray:
    """Biased randomised insertion order: random rounds of doubling size,
    each round x-sorted — keeps the walk from the previous insert short
    (expected O(1)) while keeping cavity sizes bounded in expectation."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(len(points))
    chunks = []
    start, size = 0, 8
    while start < len(points):
        block = perm[start:start + size]
        # Snake order within the round: x-buckets, alternating y sweep —
        # consecutive inserts are spatial neighbours, so the walk from the
        # previous insertion is O(1) expected.
        m = len(block)
        nb = max(1, int(math.sqrt(m)))
        xs = points[block, 0]
        ranks = np.argsort(np.argsort(xs, kind="stable"), kind="stable")
        bucket = np.minimum(ranks * nb // max(m, 1), nb - 1)
        ys = points[block, 1]
        y_key = np.where(bucket % 2 == 0, ys, -ys)
        order = np.lexsort((y_key, bucket))
        chunks.append(block[order])
        start += size
        size *= 2
    return np.concatenate(chunks) if chunks else np.arange(0)


def _triangulate_with_map(points: np.ndarray, *, assume_sorted: bool
                          ) -> Tuple[Triangulation, Dict[int, int]]:
    tri = Triangulation()
    if assume_sorted:
        order = np.arange(len(points))
    else:
        order = _brio_order(points)
    inserted: Dict[int, int] = {}
    for i in order:
        inserted[int(i)] = tri.insert_point(points[i, 0], points[i, 1])
    return tri, inserted


def delaunay_mesh(points: np.ndarray, *, assume_sorted: bool = False) -> TriMesh:
    """Delaunay triangulation as a :class:`TriMesh` indexed like ``points``.

    Duplicate input points map to the first occurrence, so triangle indices
    always refer to the caller's array.
    """
    points = np.asarray(points, dtype=np.float64)
    tri, inserted = _triangulate_with_map(points, assume_sorted=assume_sorted)
    # kernel vertex id -> smallest input index that produced it
    inv: Dict[int, int] = {}
    for i, k in inserted.items():
        if k not in inv or i < inv[k]:
            inv[k] = i
    tris = [
        (inv[a], inv[b], inv[c])
        for t in tri.live_triangles()
        if not tri.is_ghost(t)
        for (a, b, c) in (tri.tri_v[t],)
    ]
    tarr = (np.asarray(tris, dtype=np.int32)
            if tris else np.empty((0, 3), dtype=np.int32))
    return TriMesh(points, tarr)
