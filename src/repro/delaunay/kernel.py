"""Incremental Delaunay triangulation kernel (Bowyer–Watson with ghosts).

This is the repository's substitute for Shewchuk's Triangle: the engine
used to triangulate boundary-layer subdomains and to Delaunay-refine the
decoupled inviscid subdomains.  Design:

* **Ghost triangles.**  The convex hull is bordered by *ghost* triangles
  sharing a symbolic vertex :data:`GHOST`.  A ghost triangle ``[u, v, G]``
  represents the open half-plane strictly left of the directed hull edge
  ``u -> v`` (plus the open edge itself).  Ghosts make insertion outside
  the current hull a completely uniform cavity operation — no giant
  super-triangle, no magic coordinates, exact arithmetic everywhere.
* **Robust predicates, filter inlined.**  All sign decisions are exact.
  The hot paths (point-location walk, cavity membership) evaluate the
  floating-point *filter* stage of :mod:`repro.geometry.predicates`
  inline and escalate only inconclusive signs to the exact rational
  path; large cavity frontiers route through the vectorised
  :func:`~repro.geometry.predicates.incircle_batch`.  A
  ``fast_predicates=False`` kernel keeps every test on the scalar robust
  functions — the reference used by differential tests and as the
  benchmark baseline.
* **BRIO insertion + walking point location** seeded from the most
  recent triangle (or a caller-provided hint).  When the kernel observes
  persistently long walks (cold, non-local insertion orders) it builds a
  :class:`~repro.spatial.grid.BucketGrid` over its vertices and seeds
  subsequent walks from the nearest known vertex, restoring expected-O(1)
  location.  A step cap with a brute-force fallback guards adversarial
  inputs.
* **Constrained edges.**  A set of locked undirected edges that cavity
  searches refuse to cross; segment *recovery* (making an arbitrary edge
  appear) lives in :mod:`repro.delaunay.constrained`.
* **Determinism.**  All randomness (walk tie-breaking, BRIO rounds) is
  derived from explicit seeds threaded through the constructor and the
  module-level drivers, so identical inputs yield byte-identical meshes.
* **Observability.**  The kernel accumulates plain-integer ``stat_*``
  counters (walk-step and cavity-size histograms, exact-predicate
  escalations, grid seeds, flips) that
  :class:`repro.runtime.counters.KernelCounters` absorbs; the overhead
  is a handful of integer adds per insertion.

Storage is the structure-of-arrays core
:class:`repro.delaunay.arrays.MeshArrays` (preallocated ``float64`` /
``int32`` NumPy buffers with amortized-doubling growth).  The scalar hot
paths index the buffers through cached flat :class:`memoryview` casts
(faster than list-of-lists on CPython and zero-copy into the arrays);
batch paths (``_expand_level_batch``, grid builds) fancy-index the same
arrays at C speed; :meth:`to_mesh` is a vectorised compaction whose
point block can be a zero-copy view.  ``pts`` / ``tri_v`` / ``tri_n`` /
``vertex_tri`` remain available as read-compatible sequence views for
consumers and tests.
"""

from __future__ import annotations

import gc
import math
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from .arrays import DEAD, MeshArrays

from ..geometry.predicates import (
    INCIRCLE_ERR_BOUND,
    INCIRCLE_UNDERFLOW_GUARD,
    ORIENT_ERR_BOUND,
    ORIENT_UNDERFLOW_GUARD,
    batch_exact_counts,
    incircle,
    incircle_batch,
    orient2d,
)
from .mesh import TriMesh
from ..runtime.counters import monotonic_ns

__all__ = [
    "GHOST",
    "Triangulation",
    "TriangulationError",
    "delaunay_mesh",
    "triangulate",
]

GHOST = -1

# Negative-index translation tables for flat triangle rows: with a list
# ``tv``, ``tv[k - 2] == tv[_NXT[k]]`` and ``tv[k - 1] == tv[_PRV[k]]``.
_NXT = (1, 2, 0)
_PRV = (2, 0, 1)

# Hot-loop local aliases for the filter bounds (module constants resolve
# faster than attribute lookups and keep the loops readable).
_CCW_ERR = ORIENT_ERR_BOUND
_ICC_ERR = INCIRCLE_ERR_BOUND
_CCW_GUARD = ORIENT_UNDERFLOW_GUARD
_ICC_GUARD = INCIRCLE_UNDERFLOW_GUARD

#: Frontier size at which cavity expansion switches from the inlined
#: scalar filter to one vectorised ``incircle_batch`` call per level.
_BATCH_MIN = 12
#: Cheap first-stage incircle certificate: with ``S = alift+blift+clift``
#: the Shewchuk permanent obeys ``permanent <= S*S/3`` (AM-GM on the six
#: products), so ``|det| > _ICC_CHEAP * S * S`` certifies the sign with
#: strictly more slack than the full filter — and needs no abs() chain.
_ICC_CHEAP = INCIRCLE_ERR_BOUND / 3.0
#: ``S*S`` must stay clear of underflow for the cheap bound to be sound.
_ICC_S_GUARD = 1e-125
#: Walk-length EMA above which the vertex grid is built (cold insertion
#: orders; BRIO-local insertion stays well below this).
_GRID_EMA_THRESHOLD = 16.0
#: Once built, the grid seeds walks only while the EMA stays above this
#: (hysteresis: when locality returns, ``_last_tri`` is cheaper).
_GRID_EMA_USE = 6.0
#: Minimum vertex count before a grid is worth building.
_GRID_MIN_POINTS = 128


class TriangulationError(RuntimeError):
    """Raised for structurally invalid kernel operations."""


class _PointsView:
    """Read-only sequence view of the SoA coordinates: ``pts[v] == (x, y)``.

    Behaves like the historical list of tuples for reading, length,
    iteration and equality; mutation goes through the kernel only.
    """

    __slots__ = ("_a",)

    def __init__(self, arr: MeshArrays) -> None:
        self._a = arr

    def __len__(self) -> int:
        return self._a.n_pts

    def __getitem__(self, v: int) -> Tuple[float, float]:
        a = self._a
        n = a.n_pts
        if v < 0:
            v += n
        if not 0 <= v < n:
            raise IndexError(f"point index {v} out of range")
        px = a.px
        j = 2 * v
        return (px[j], px[j + 1])

    def __iter__(self):
        px = self._a.px
        for v in range(self._a.n_pts):
            j = 2 * v
            yield (px[j], px[j + 1])

    def __eq__(self, other) -> bool:
        try:
            return list(self) == list(other)
        except TypeError:
            return NotImplemented

    __hash__ = None

    def __array__(self, dtype=None, copy=None):
        out = self._a.pts[: self._a.n_pts]
        if dtype is not None and np.dtype(dtype) != out.dtype:
            return out.astype(dtype)
        return np.array(out, copy=True) if copy else out

    def __repr__(self) -> str:
        return f"_PointsView(n={len(self)})"


class _TriRowsView:
    """Sequence view of a triangle attribute: ``view[t]`` is the 3-list
    for a live slot or ``None`` for a dead one (the historical contract).
    """

    __slots__ = ("_a", "_which")

    def __init__(self, arr: MeshArrays, which: str) -> None:
        self._a = arr
        self._which = which  # "v" or "n"

    def __len__(self) -> int:
        return self._a.n_tris

    def __getitem__(self, t: int) -> Optional[List[int]]:
        a = self._a
        n = a.n_tris
        if t < 0:
            t += n
        if not 0 <= t < n:
            raise IndexError(f"triangle index {t} out of range")
        i = 3 * t
        if a.tv[i] == DEAD:
            return None
        m = a.tv if self._which == "v" else a.tn
        return [m[i], m[i + 1], m[i + 2]]

    def __iter__(self):
        for t in range(self._a.n_tris):
            yield self[t]

    def __eq__(self, other) -> bool:
        try:
            return list(self) == list(other)
        except TypeError:
            return NotImplemented

    __hash__ = None

    def __repr__(self) -> str:
        return f"_TriRowsView({self._which!r}, n={len(self)})"


class _VertexTriView:
    """Read/write int sequence view over ``vertex_tri``."""

    __slots__ = ("_a",)

    def __init__(self, arr: MeshArrays) -> None:
        self._a = arr

    def __len__(self) -> int:
        return self._a.n_pts

    def __getitem__(self, v: int) -> int:
        if not 0 <= v < self._a.n_pts:
            raise IndexError(f"vertex index {v} out of range")
        return self._a.vt[v]

    def __setitem__(self, v: int, t: int) -> None:
        if not 0 <= v < self._a.n_pts:
            raise IndexError(f"vertex index {v} out of range")
        self._a.vt[v] = t

    def __iter__(self):
        vt = self._a.vt
        for v in range(self._a.n_pts):
            yield vt[v]


class Triangulation:
    """Mutable 2D Delaunay triangulation under incremental insertion.

    Create empty, then :meth:`insert_point` each vertex (or use the
    module-level :func:`triangulate` convenience).  Triangle slots are
    recycled through a free list so ids stay dense.

    Parameters
    ----------
    seed:
        Seeds every source of randomness in the kernel (walk
        tie-breaking).  Identical inputs + identical seed give
        byte-identical triangulations.
    fast_predicates:
        ``True`` (default) uses the inlined filtered predicates with
        exact escalation; ``False`` routes every test through the scalar
        robust predicate functions (the pre-overhaul hot path, kept as a
        reference for differential testing and benchmarking).
    """

    def __init__(self, *, seed: int = 0x5EED,
                 fast_predicates: bool = True) -> None:
        #: SoA storage: coordinates, triangle vertices/neighbours, free
        #: list and per-vertex incident triangle all live here.
        self._arr = MeshArrays()
        # Sequence-compatible views (read path of refine/constrained/dnc
        # and the test harness); the kernel itself indexes the flat
        # memoryviews in self._arr on hot paths.
        self.pts = _PointsView(self._arr)
        self.tri_v = _TriRowsView(self._arr, "v")
        self.tri_n = _TriRowsView(self._arr, "n")
        self.vertex_tri = _VertexTriView(self._arr)
        self._free = self._arr.free
        self.constraints: Set[Tuple[int, int]] = set()
        self._last_tri: int = -1                     # walk hint
        # Seeded, instance-owned generator (never the stdlib/global RNG —
        # lint rule R3): concurrent kernels on the SPMD threads backend
        # must not share hidden RNG state.
        self._rng = np.random.default_rng(seed)
        self._lcg = int(self._rng.integers(1, 1 << 31))
        self._fast = bool(fast_predicates)
        self.n_live_triangles = 0                    # includes ghosts
        # Triangles created/removed by the most recent insert_point call —
        # lets refinement track per-triangle labels in O(cavity) instead of
        # O(n) snapshots.
        self.last_created: List[int] = []
        self.last_removed: List[int] = []
        # Walk-acceleration grid: built lazily when walks run long.
        self._grid = None
        self._grid_cap = 0
        self._walk_ema = 0.0
        # Observability counters (absorbed by repro.runtime.counters).
        self.stat_inserts = 0
        self.stat_locates = 0
        self.stat_walk_steps = 0
        self.stat_brute_locates = 0
        self.stat_grid_seeds = 0
        self.stat_cavity_tris = 0
        self.stat_flips = 0
        self.stat_orient_fast = 0
        self.stat_orient_exact = 0
        self.stat_incircle_fast = 0
        self.stat_incircle_exact = 0
        self.stat_batch_calls = 0
        self.stat_batch_entries = 0
        self.stat_walk_hist = [0] * 32
        self.stat_cavity_hist = [0] * 32
        self.stat_finalize_ns = 0

    # ------------------------------------------------------------------
    # Low-level triangle bookkeeping
    # ------------------------------------------------------------------
    def _new_triangle(self, a: int, b: int, c: int) -> int:
        arr = self._arr
        if arr.free:
            t = arr.free.pop()
        else:
            arr.reserve_triangles(1)
            t = arr.n_tris
            arr.n_tris = t + 1
        tv = arr.tv
        tn = arr.tn
        i = 3 * t
        tv[i] = a
        tv[i + 1] = b
        tv[i + 2] = c
        tn[i] = -1
        tn[i + 1] = -1
        tn[i + 2] = -1
        vt = arr.vt
        if a != GHOST:
            vt[a] = t
        if b != GHOST:
            vt[b] = t
        if c != GHOST:
            vt[c] = t
        self.n_live_triangles += 1
        return t

    def _kill_triangle(self, t: int) -> None:
        self._arr.kill(t)
        self.n_live_triangles -= 1

    def is_ghost(self, t: int) -> bool:
        """True if live triangle ``t`` is a ghost.

        Dead-triangle contract (enforced, see :mod:`repro.delaunay.arrays`):
        callers must not ask about recycled slots — check
        ``MeshArrays.is_dead`` / ``tri_v[t] is None`` first.  Historically
        this silently returned ``False`` for dead slots, masking stale-id
        bugs under free-list reuse.
        """
        tv = self._arr.tv
        i = 3 * t
        a = tv[i]
        if a == DEAD:
            raise TriangulationError(
                f"is_ghost({t}): dead (recycled) triangle slot")
        return a == GHOST or tv[i + 1] == GHOST or tv[i + 2] == GHOST

    def _edge(self, t: int, k: int) -> Tuple[int, int]:
        """Directed edge opposite vertex ``k`` of triangle ``t``."""
        tv = self._arr.tv
        i = 3 * t
        return tv[i + _NXT[k]], tv[i + _PRV[k]]

    def _set_mutual(self, t1: int, k1: int, t2: int, k2: int) -> None:
        tn = self._arr.tn
        tn[3 * t1 + k1] = t2
        tn[3 * t2 + k2] = t1

    def _edge_index(self, t: int, u: int, v: int) -> int:
        """Index k such that the directed edge k of ``t`` is (u, v)."""
        tv = self._arr.tv
        i = 3 * t
        for k in range(3):
            if tv[i + _NXT[k]] == u and tv[i + _PRV[k]] == v:
                return k
        raise TriangulationError(
            f"edge ({u},{v}) not in triangle {t}={self.tri_v[t]}")

    def ghost_edge(self, t: int) -> Tuple[int, int]:
        """The real directed hull edge ``(u, v)`` of ghost triangle ``t``."""
        tv = self._arr.tv
        i = 3 * t
        for k in range(3):
            if tv[i + k] == GHOST:
                return tv[i + _NXT[k]], tv[i + _PRV[k]]
        raise TriangulationError(f"triangle {t} is not a ghost")

    def live_triangles(self) -> Iterable[int]:
        # Re-reads bounds and the view every step so concurrent inserts
        # behave like iterating the historical (growing) list.
        arr = self._arr
        t = 0
        while t < arr.n_tris:
            if arr.tv[3 * t] != DEAD:
                yield t
            t += 1

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def kernel_stats(self) -> Dict[str, float]:
        """Snapshot of the kernel's counters (histograms as raw buckets)."""
        total = self.stat_orient_fast + self.stat_orient_exact \
            + self.stat_incircle_fast + self.stat_incircle_exact
        exact = self.stat_orient_exact + self.stat_incircle_exact
        return {
            "inserts": self.stat_inserts,
            "locates": self.stat_locates,
            "walk_steps": self.stat_walk_steps,
            "brute_locates": self.stat_brute_locates,
            "grid_seeds": self.stat_grid_seeds,
            "cavity_triangles": self.stat_cavity_tris,
            "flips": self.stat_flips,
            "orient_fast": self.stat_orient_fast,
            "orient_exact": self.stat_orient_exact,
            "incircle_fast": self.stat_incircle_fast,
            "incircle_exact": self.stat_incircle_exact,
            "batch_calls": self.stat_batch_calls,
            "batch_entries": self.stat_batch_entries,
            "finalize_ns": self.stat_finalize_ns,
            "exact_escalation_rate": (exact / total) if total else 0.0,
            "walk_hist": list(self.stat_walk_hist),
            "cavity_hist": list(self.stat_cavity_hist),
        }

    def _note_walk(self, steps: int) -> None:
        self.stat_locates += 1
        self.stat_walk_steps += steps
        self.stat_walk_hist[steps if steps < 31 else 31] += 1
        ema = self._walk_ema + 0.125 * (steps - self._walk_ema)
        self._walk_ema = ema
        n_pts = self._arr.n_pts
        if ema > _GRID_EMA_THRESHOLD and n_pts >= _GRID_MIN_POINTS:
            if self._grid is None or n_pts > self._grid_cap:
                self._build_grid()

    # ------------------------------------------------------------------
    # Walk-acceleration grid
    # ------------------------------------------------------------------
    def _build_grid(self) -> None:
        from ..geometry.aabb import AABB
        from ..spatial.grid import BucketGrid

        n = self._arr.n_pts
        if n == 0:
            return
        # Vectorised over the SoA point block: bounds and bulk insert
        # read the float64 buffer directly, no per-point staging.
        pts = self._arr.pts[:n]
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        bounds = AABB(float(lo[0]), float(lo[1]), float(hi[0]), float(hi[1]))
        # The grid is a snapshot: inserts do not feed it (that would tax
        # every insertion), so when the point count doubles it is rebuilt
        # — a stale nearest vertex is still a nearby walk seed, just a
        # few steps further out.
        self._grid_cap = max(2 * n, 2 * _GRID_MIN_POINTS)
        grid = BucketGrid(bounds, target_per_bucket=4.0,
                          expected_points=self._grid_cap)
        grid.insert_many(pts)
        self._grid = grid

    def _grid_start(self, px: float, py: float) -> int:
        """Walk-start triangle from the vertex grid, or -1."""
        near = self._grid.nearest(px, py)
        if near is None:
            return -1
        arr = self._arr
        t = arr.vt[near]
        if t >= 0 and arr.tv[3 * t] != DEAD:
            self.stat_grid_seeds += 1
            return t
        return -1

    # ------------------------------------------------------------------
    # Predicates (real / ghost uniform)
    # ------------------------------------------------------------------
    def _in_disk(self, t: int, p: Tuple[float, float]) -> bool:
        """True if ``p`` lies in triangle ``t``'s (possibly ghost) open
        circumdisk — the Bowyer–Watson cavity membership test.  Scalar
        robust path (the reference; hot paths use :meth:`_in_disk_fast`).
        """
        tv = self.tri_v[t]
        if GHOST not in tv:
            return incircle(self.pts[tv[0]], self.pts[tv[1]], self.pts[tv[2]], p) > 0
        u, v = self.ghost_edge(t)
        pu, pv = self.pts[u], self.pts[v]
        # Ghost [u, v, G]: outside-hull half-plane strictly left of u->v,
        # plus the open edge uv.
        o = orient2d(pu, pv, p)
        if o > 0:
            return True
        if o == 0:
            return (
                min(pu[0], pv[0]) <= p[0] <= max(pu[0], pv[0])
                and min(pu[1], pv[1]) <= p[1] <= max(pu[1], pv[1])
                and p != pu and p != pv
            )
        return False

    def _in_disk_fast(self, t: int, px: float, py: float) -> bool:
        """:meth:`_in_disk` with the filter stage inlined.

        Certified filter signs return immediately (counted as fast);
        inconclusive ones escalate to the exact scalar predicates
        (counted as exact).  Decisions are identical to :meth:`_in_disk`.
        """
        tvm = self._arr.tv
        pxm = self._arr.px
        i = 3 * t
        a = tvm[i]
        b = tvm[i + 1]
        c = tvm[i + 2]
        if a >= 0 and b >= 0 and c >= 0:
            j = 2 * a
            ax = pxm[j]
            ay = pxm[j + 1]
            j = 2 * b
            bx = pxm[j]
            by = pxm[j + 1]
            j = 2 * c
            cx = pxm[j]
            cy = pxm[j + 1]
            adx = ax - px
            ady = ay - py
            bdx = bx - px
            bdy = by - py
            cdx = cx - px
            cdy = cy - py
            bdxcdy = bdx * cdy
            cdxbdy = cdx * bdy
            cdxady = cdx * ady
            adxcdy = adx * cdy
            adxbdy = adx * bdy
            bdxady = bdx * ady
            alift = adx * adx + ady * ady
            blift = bdx * bdx + bdy * bdy
            clift = cdx * cdx + cdy * cdy
            det = (alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy)
                   + clift * (adxbdy - bdxady))
            permanent = ((abs(bdxcdy) + abs(cdxbdy)) * alift
                         + (abs(cdxady) + abs(adxcdy)) * blift
                         + (abs(adxbdy) + abs(bdxady)) * clift)
            if permanent > _ICC_GUARD:
                errbound = _ICC_ERR * permanent
                if det > errbound:
                    self.stat_incircle_fast += 1
                    return True
                if -det > errbound:
                    self.stat_incircle_fast += 1
                    return False
            self.stat_incircle_exact += 1
            return incircle((ax, ay), (bx, by), (cx, cy), (px, py)) > 0
        # Ghost triangle: half-plane left of the hull edge plus the open edge.
        u, v = self.ghost_edge(t)
        j = 2 * u
        ux = pxm[j]
        uy = pxm[j + 1]
        j = 2 * v
        vx = pxm[j]
        vy = pxm[j + 1]
        pu = (ux, uy)
        pv = (vx, vy)
        detleft = (ux - px) * (vy - py)
        detright = (uy - py) * (vx - px)
        det = detleft - detright
        detsum = abs(detleft) + abs(detright)
        if detsum > _CCW_GUARD:
            errbound = _CCW_ERR * detsum
            if det > errbound:
                self.stat_orient_fast += 1
                return True
            if -det > errbound:
                self.stat_orient_fast += 1
                return False
        self.stat_orient_exact += 1
        o = orient2d(pu, pv, (px, py))
        if o > 0:
            return True
        if o < 0:
            return False
        return (
            min(ux, vx) <= px <= max(ux, vx)
            and min(uy, vy) <= py <= max(uy, vy)
            and (px, py) != pu and (px, py) != pv
        )

    def _in_disk_any(self, t: int, p: Tuple[float, float]) -> bool:
        if self._fast:
            return self._in_disk_fast(t, p[0], p[1])
        return self._in_disk(t, p)

    # ------------------------------------------------------------------
    # Point location
    # ------------------------------------------------------------------
    def locate(self, p: Tuple[float, float], hint: int = -1) -> int:
        """Return a triangle whose closed region contains ``p``.

        For ``p`` outside the hull this is a ghost triangle whose
        half-plane contains it.  Uses a straight walk with pseudo-random
        edge tie-breaking, seeded from ``hint``, the last touched
        triangle, or (when walks have been running long) the vertex
        grid; falls back to exhaustive scan after a step cap (can only
        trigger on adversarial degeneracies).
        """
        if self.n_live_triangles == 0:
            raise TriangulationError("empty triangulation")
        if self._fast:
            return self._locate_fast(p, hint)
        return self._locate_ref(p, hint)

    def _walk_start(self, px: float, py: float, hint: int) -> int:
        arr = self._arr
        tvm = arr.tv
        t = (hint if 0 <= hint < arr.n_tris and tvm[3 * hint] != DEAD
             else -1)
        if t < 0:
            if self._grid is not None and self._walk_ema > _GRID_EMA_USE:
                t = self._grid_start(px, py)
            if t < 0:
                t = self._last_tri
            if t < 0 or tvm[3 * t] == DEAD:
                t = next(iter(self.live_triangles()))
        if self.is_ghost(t):
            # step into the real triangle across the hull edge
            u, v = self.ghost_edge(t)
            k = self._edge_index(t, u, v)
            nb = arr.tn[3 * t + k]
            t = nb if nb >= 0 else t
        return t

    def _locate_ref(self, p: Tuple[float, float], hint: int) -> int:
        """Scalar-predicate walk (the reference / seed hot path)."""
        t = self._walk_start(p[0], p[1], hint)
        max_steps = 4 * (self.n_live_triangles + 8)
        steps = 0
        prev = -1
        while steps < max_steps:
            steps += 1
            if self.is_ghost(t):
                # Walked off the hull; check this ghost's half-plane.
                u, v = self.ghost_edge(t)
                if orient2d(self.pts[u], self.pts[v], p) >= 0:
                    self._last_tri = t
                    self._note_walk(steps)
                    return t
                # p visible from a different hull edge: walk along the hull.
                # Move to the next ghost sharing vertex v or u.
                tv = self.tri_v[t]
                g = tv.index(GHOST)
                nxt = self.tri_n[t][g - 2]  # neighbour across (v, G)
                if nxt == prev:
                    nxt = self.tri_n[t][g - 1]
                prev, t = t, nxt
                continue
            moved = False
            # Cheap pseudo-random starting edge (an LCG step) breaks the
            # degenerate walk cycles a fixed order could orbit, without
            # the cost of a real shuffle on every step.
            self._lcg = (self._lcg * 1103515245 + 12345) & 0x7FFFFFFF
            k0 = self._lcg % 3
            for dk in range(3):
                k = (k0 + dk) % 3
                u, v = self._edge(t, k)
                if self.tri_n[t][k] == prev:
                    continue
                if orient2d(self.pts[u], self.pts[v], p) < 0:
                    prev, t = t, self.tri_n[t][k]
                    moved = True
                    break
            if not moved:
                self._last_tri = t
                self._note_walk(steps)
                return t
        self._note_walk(steps)
        return self._locate_fallback(p)

    def _locate_fast(self, p: Tuple[float, float], hint: int) -> int:
        """Walk with the orientation filter inlined (exact escalation)."""
        px, py = p
        t = self._walk_start(px, py, hint)
        arr = self._arr
        tvm = arr.tv
        tnm = arr.tn
        pxm = arr.px
        max_steps = 4 * (self.n_live_triangles + 8)
        steps = 0
        prev = -1
        lcg = self._lcg
        n_fast = 0
        result = -1
        while steps < max_steps:
            steps += 1
            i3 = 3 * t
            a0 = tvm[i3]
            a1 = tvm[i3 + 1]
            a2 = tvm[i3 + 2]
            if a0 < 0 or a1 < 0 or a2 < 0:
                # Ghost triangle: is p in (or on) its half-plane?
                g = 0 if a0 < 0 else (1 if a1 < 0 else 2)
                u = tvm[i3 + _NXT[g]]
                v = tvm[i3 + _PRV[g]]
                j = 2 * u
                ux = pxm[j]
                uy = pxm[j + 1]
                j = 2 * v
                vx = pxm[j]
                vy = pxm[j + 1]
                detleft = (ux - px) * (vy - py)
                detright = (uy - py) * (vx - px)
                det = detleft - detright
                detsum = abs(detleft) + abs(detright)
                if detsum > _CCW_GUARD and (
                        det > _CCW_ERR * detsum or -det > _CCW_ERR * detsum):  # lint: disable=R1 -- inlined orient2d filter; inconclusive signs escalate below
                    n_fast += 1
                    inside = det > 0.0  # lint: disable=R1 -- sign certified by the filter on the line above
                else:
                    self.stat_orient_exact += 1
                    inside = orient2d((ux, uy), (vx, vy), p) >= 0
                if inside:
                    result = t
                    break
                nxt = tnm[i3 + _NXT[g]]  # neighbour across (v, G)
                if nxt == prev:
                    nxt = tnm[i3 + _PRV[g]]
                prev, t = t, nxt
                continue
            moved = False
            lcg = (lcg * 1103515245 + 12345) & 0x7FFFFFFF
            k0 = lcg % 3
            for dk in range(3):
                k = k0 + dk
                if k > 2:
                    k -= 3
                nb = tnm[i3 + k]
                if nb == prev:
                    continue
                u = tvm[i3 + _NXT[k]]
                v = tvm[i3 + _PRV[k]]
                j = 2 * u
                ux = pxm[j]
                uy = pxm[j + 1]
                j = 2 * v
                vx = pxm[j]
                vy = pxm[j + 1]
                detleft = (ux - px) * (vy - py)
                detright = (uy - py) * (vx - px)
                det = detleft - detright
                detsum = abs(detleft) + abs(detright)
                if detsum > _CCW_GUARD:
                    errbound = _CCW_ERR * detsum
                    if det > errbound:  # lint: disable=R1 -- inlined orient2d filter; shares ORIENT_ERR_BOUND, exact fallback below
                        n_fast += 1
                        continue          # p weakly left: not through here
                    if -det > errbound:
                        n_fast += 1
                        prev, t = t, nb   # certified right of u->v: cross
                        moved = True
                        break
                self.stat_orient_exact += 1
                if orient2d((ux, uy), (vx, vy), p) < 0:
                    prev, t = t, nb
                    moved = True
                    break
            if not moved:
                result = t
                break
        self._lcg = lcg
        self.stat_orient_fast += n_fast
        self._note_walk(steps)
        if result >= 0:
            self._last_tri = result
            return result
        return self._locate_fallback(p)

    def _locate_fallback(self, p: Tuple[float, float]) -> int:
        """Exhaustive exact containment scan (adversarial degeneracies)."""
        self.stat_brute_locates += 1
        for t in self.live_triangles():
            if self.is_ghost(t):
                continue
            tv = self.tri_v[t]
            if all(
                orient2d(self.pts[tv[k - 2]], self.pts[tv[k - 1]], p) >= 0
                for k in range(3)
            ):
                self._last_tri = t
                return t
        for t in self.live_triangles():
            if self.is_ghost(t) and self._in_disk(t, p):
                self._last_tri = t
                return t
        raise TriangulationError(f"point {p} could not be located")

    def find_vertex_at(self, p: Tuple[float, float], t: int) -> Optional[int]:
        """Vertex of triangle ``t`` exactly coincident with ``p``, if any."""
        for v in self.tri_v[t]:
            if v != GHOST and self.pts[v] == (p[0], p[1]):
                return v
        return None

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert_point(self, x: float, y: float, *, hint: int = -1,
                     on_duplicate: str = "return") -> int:
        """Insert vertex ``(x, y)``; returns its id.

        ``on_duplicate``: ``"return"`` yields the existing vertex id,
        ``"raise"`` raises :class:`TriangulationError`.

        The first three non-collinear points bootstrap the initial
        triangle + three ghosts; collinear prefixes are buffered.
        """
        p = (float(x), float(y))
        if not (math.isfinite(p[0]) and math.isfinite(p[1])):
            raise ValueError("non-finite coordinates")
        self.last_created = []
        self.last_removed = []

        if self.n_live_triangles == 0:
            return self._bootstrap_insert(p, on_duplicate)

        if self._fast:
            r = self._insert_fast(p[0], p[1], hint)
            if r >= 0:
                return r
            dup = -2 - r
            if on_duplicate == "raise":
                raise TriangulationError(f"duplicate point {p}")
            return dup

        t0 = self.locate(p, hint)
        dup = self.find_vertex_at(p, t0)
        if dup is not None:
            if on_duplicate == "raise":
                raise TriangulationError(f"duplicate point {p}")
            return dup

        vid = self._arr.new_point(p[0], p[1])
        self.stat_inserts += 1
        self._insert_into_cavity(vid, t0)
        return vid

    def _insert_fast(self, px: float, py: float, hint: int) -> int:
        """Fused fast-path insertion: walk, duplicate check, cavity carve
        and retriangulation in one frame with every predicate's filter
        stage inlined.

        Decision-for-decision equivalent to ``locate`` +
        ``find_vertex_at`` + ``_insert_into_cavity`` — certified filter
        signs are exact signs, and inconclusive ones escalate to the
        exact predicates.  Returns the new vertex id, or ``-2 - v`` when
        the point duplicates existing vertex ``v``.
        """
        arr = self._arr
        # Reserve-before-alias: the single appended point must not force
        # a reallocation while the flat views below are live (triangle
        # growth is reserved inside _retriangulate, which re-aliases).
        arr.reserve_points(1)
        tvm = arr.tv
        tnm = arr.tn
        pxm = arr.px
        # ---- walking point location (inlined orientation filter) ----
        t = (hint if 0 <= hint < arr.n_tris and tvm[3 * hint] != DEAD
             else -1)
        if t < 0:
            if self._grid is not None and self._walk_ema > _GRID_EMA_USE:
                t = self._grid_start(px, py)
            if t < 0:
                t = self._last_tri
            if t < 0 or tvm[3 * t] == DEAD:
                t = next(iter(self.live_triangles()))
        i3 = 3 * t
        if tvm[i3] < 0 or tvm[i3 + 1] < 0 or tvm[i3 + 2] < 0:
            # Ghost start: step across its real edge into the hull.
            g = (0 if tvm[i3] < 0 else (1 if tvm[i3 + 1] < 0 else 2))
            nb = tnm[i3 + g]
            if nb >= 0:
                t = nb
        max_steps = 4 * (self.n_live_triangles + 8)
        steps = 0
        prev = -1
        # One pseudo-random starting-edge draw per insertion, rotated each
        # step — enough stochasticity to break degenerate walk cycles
        # (and the exhaustive fallback guards the rest), without an LCG
        # step per triangle.
        lcg = (self._lcg * 1103515245 + 12345) & 0x7FFFFFFF
        self._lcg = lcg
        k0 = lcg % 3
        n_ofast = 0
        n_oexact = 0
        t0 = -1
        # certified == p is *strictly* inside t0 (strictly inside a ghost
        # half-plane), which already implies cavity membership — the
        # circumdisk pre-check can be skipped.
        certified = False
        while steps < max_steps:
            steps += 1
            i3 = 3 * t
            a0 = tvm[i3]
            a1 = tvm[i3 + 1]
            a2 = tvm[i3 + 2]
            if a0 < 0 or a1 < 0 or a2 < 0:
                # Ghost: accept if p is in its closed half-plane, else
                # continue along the hull.
                g = 0 if a0 < 0 else (1 if a1 < 0 else 2)
                j = 2 * tvm[i3 + _NXT[g]]
                ux = pxm[j]
                uy = pxm[j + 1]
                j = 2 * tvm[i3 + _PRV[g]]
                vx = pxm[j]
                vy = pxm[j + 1]
                detleft = (ux - px) * (vy - py)
                detright = (uy - py) * (vx - px)
                det = detleft - detright
                detsum = abs(detleft) + abs(detright)
                if detsum > _CCW_GUARD:
                    errbound = _CCW_ERR * detsum
                    if det > errbound:  # lint: disable=R1 -- inlined orient2d filter; shares ORIENT_ERR_BOUND, exact fallback below
                        n_ofast += 1
                        t0 = t
                        certified = True
                        break
                    if -det > errbound:
                        n_ofast += 1
                        nxt = tnm[i3 + _NXT[g]]
                        if nxt == prev:
                            nxt = tnm[i3 + _PRV[g]]
                        prev = t
                        t = nxt
                        continue
                n_oexact += 1
                o = orient2d((ux, uy), (vx, vy), (px, py))
                if o > 0:
                    t0 = t
                    certified = True
                    break
                if o == 0:
                    t0 = t
                    break
                nxt = tnm[i3 + _NXT[g]]
                if nxt == prev:
                    nxt = tnm[i3 + _PRV[g]]
                prev = t
                t = nxt
                continue
            k0 += 1
            if k0 > 2:
                k0 = 0
            moved = False
            strict = True
            for dk in (0, 1, 2):
                k = k0 + dk
                if k > 2:
                    k -= 3
                nb = tnm[i3 + k]
                if nb == prev:
                    # Entered across this edge, so p is strictly on this
                    # side of it — no need to re-test.
                    continue
                j = 2 * tvm[i3 + _NXT[k]]
                ux = pxm[j]
                uy = pxm[j + 1]
                j = 2 * tvm[i3 + _PRV[k]]
                vx = pxm[j]
                vy = pxm[j + 1]
                detleft = (ux - px) * (vy - py)
                detright = (uy - py) * (vx - px)
                det = detleft - detright
                detsum = abs(detleft) + abs(detright)
                if detsum > _CCW_GUARD:
                    errbound = _CCW_ERR * detsum
                    if det > errbound:  # lint: disable=R1 -- inlined orient2d filter; shares ORIENT_ERR_BOUND, exact fallback below
                        n_ofast += 1
                        continue
                    if -det > errbound:
                        n_ofast += 1
                        prev = t
                        t = nb
                        moved = True
                        break
                n_oexact += 1
                o = orient2d((ux, uy), (vx, vy), (px, py))
                if o < 0:
                    prev = t
                    t = nb
                    moved = True
                    break
                if o == 0:
                    strict = False
            if not moved:
                t0 = t
                certified = strict
                break
        self.stat_orient_fast += n_ofast
        self.stat_orient_exact += n_oexact
        self._note_walk(steps)
        if t0 < 0:
            t0 = self._locate_fallback((px, py))
            certified = False
        # ---- duplicate check (vertices of the containing triangle) ----
        i3 = 3 * t0
        for vtx in (tvm[i3], tvm[i3 + 1], tvm[i3 + 2]):
            if vtx >= 0:
                j = 2 * vtx
                if pxm[j] == px and pxm[j + 1] == py:
                    self._last_tri = t0
                    self.last_created = []
                    self.last_removed = []
                    return -2 - vtx
        # ---- new vertex (capacity reserved at entry) ----
        vid = arr.n_pts
        j = 2 * vid
        pxm[j] = px
        pxm[j + 1] = py
        arr.vt[vid] = -1
        arr.n_pts = vid + 1
        self.stat_inserts += 1
        if not certified and not self._in_disk_fast(t0, px, py):
            # p on the boundary of t0: some adjacent circumdisk holds it.
            found = -1
            for k in (0, 1, 2):
                nb = tnm[3 * t0 + k]
                if nb >= 0 and self._in_disk_fast(nb, px, py):
                    found = nb
                    break
            if found < 0:
                raise TriangulationError(
                    f"insertion point {(px, py)} in no circumdisk (duplicate?)"
                )
            t0 = found
        # ---- cavity carve (level BFS, inlined incircle filter) ----
        constraints = self.constraints
        cavity: Set[int] = {t0}
        # seen = cavity plus rejected candidates, so a rejected triangle
        # bordering two cavity triangles is tested once, not twice.
        seen: Set[int] = {t0}
        frontier = [t0]
        blocked = False
        n_ifast = 0
        n_iexact = 0
        while frontier:
            cand: List[int] = []
            if constraints:
                for t in frontier:
                    i3 = 3 * t
                    nb = tnm[i3]
                    if nb >= 0 and nb not in seen:
                        u = tvm[i3 + 1]
                        v = tvm[i3 + 2]
                        if (u >= 0 and v >= 0
                                and ((u, v) if u < v else (v, u)) in constraints):
                            blocked = True
                        else:
                            cand.append(nb)
                    nb = tnm[i3 + 1]
                    if nb >= 0 and nb not in seen:
                        u = tvm[i3 + 2]
                        v = tvm[i3]
                        if (u >= 0 and v >= 0
                                and ((u, v) if u < v else (v, u)) in constraints):
                            blocked = True
                        else:
                            cand.append(nb)
                    nb = tnm[i3 + 2]
                    if nb >= 0 and nb not in seen:
                        u = tvm[i3]
                        v = tvm[i3 + 1]
                        if (u >= 0 and v >= 0
                                and ((u, v) if u < v else (v, u)) in constraints):
                            blocked = True
                        else:
                            cand.append(nb)
            else:
                for t in frontier:
                    i3 = 3 * t
                    nb = tnm[i3]
                    if nb >= 0 and nb not in seen:
                        cand.append(nb)
                    nb = tnm[i3 + 1]
                    if nb >= 0 and nb not in seen:
                        cand.append(nb)
                    nb = tnm[i3 + 2]
                    if nb >= 0 and nb not in seen:
                        cand.append(nb)
            if not cand:
                break
            if len(cand) >= _BATCH_MIN:
                frontier = self._expand_level_batch(cand, cavity, px, py)
                seen.update(cand)
                continue
            frontier = []
            for nb in cand:
                if nb in seen:
                    continue  # reached via a sibling this level
                seen.add(nb)
                j3 = 3 * nb
                a = tvm[j3]
                b = tvm[j3 + 1]
                c = tvm[j3 + 2]
                if a < 0 or b < 0 or c < 0:
                    if self._in_disk_fast(nb, px, py):
                        cavity.add(nb)
                        frontier.append(nb)
                    continue
                j = 2 * a
                pax = pxm[j]
                pay = pxm[j + 1]
                j = 2 * b
                pbx = pxm[j]
                pby = pxm[j + 1]
                j = 2 * c
                pcx = pxm[j]
                pcy = pxm[j + 1]
                adx = pax - px
                ady = pay - py
                bdx = pbx - px
                bdy = pby - py
                cdx = pcx - px
                cdy = pcy - py
                bdxcdy = bdx * cdy
                cdxbdy = cdx * bdy
                cdxady = cdx * ady
                adxcdy = adx * cdy
                adxbdy = adx * bdy
                bdxady = bdx * ady
                alift = adx * adx + ady * ady
                blift = bdx * bdx + bdy * bdy
                clift = cdx * cdx + cdy * cdy
                det = (alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy)
                       + clift * (adxbdy - bdxady))
                s = alift + blift + clift
                if s > _ICC_S_GUARD:
                    cheap = _ICC_CHEAP * s * s
                    if det > cheap:  # lint: disable=R1 -- inlined incircle cheap certificate; full filter + exact below
                        n_ifast += 1
                        cavity.add(nb)
                        frontier.append(nb)
                        continue
                    if -det > cheap:
                        n_ifast += 1
                        continue
                # Cheap certificate inconclusive: full Shewchuk filter.
                permanent = ((abs(bdxcdy) + abs(cdxbdy)) * alift
                             + (abs(cdxady) + abs(adxcdy)) * blift
                             + (abs(adxbdy) + abs(bdxady)) * clift)
                if permanent > _ICC_GUARD:
                    errbound = _ICC_ERR * permanent
                    if det > errbound:  # lint: disable=R1 -- inlined incircle Shewchuk filter; exact escalation below
                        n_ifast += 1
                        cavity.add(nb)
                        frontier.append(nb)
                        continue
                    if -det > errbound:
                        n_ifast += 1
                        continue
                n_iexact += 1
                if incircle((pax, pay), (pbx, pby), (pcx, pcy),
                            (px, py)) > 0:
                    cavity.add(nb)
                    frontier.append(nb)
        self.stat_incircle_fast += n_ifast
        self.stat_incircle_exact += n_iexact
        self._retriangulate(vid, cavity, t0, blocked)
        return vid

    def _bootstrap_insert(self, p: Tuple[float, float], on_duplicate: str) -> int:
        """Handle insertions before the first real triangle exists."""
        for i, q in enumerate(self.pts):
            if q == p:
                if on_duplicate == "raise":
                    raise TriangulationError(f"duplicate point {p}")
                return i
        self._arr.new_point(p[0], p[1])
        self.stat_inserts += 1
        if len(self.pts) < 3:
            return len(self.pts) - 1
        # Try to find a non-collinear triple including the newest point.
        n = len(self.pts)
        c = n - 1
        for a in range(n):
            for b in range(a + 1, n):
                if b == c or a == c:
                    continue
                o = orient2d(self.pts[a], self.pts[b], self.pts[c])
                if o != 0:
                    if o < 0:
                        a, b = b, a
                    self._create_first_triangle(a, b, c)
                    # Re-insert any remaining buffered points.
                    used = {a, b, c}
                    for v in range(n):
                        if v not in used:
                            t0 = self.locate(self.pts[v])
                            self._insert_into_cavity(v, t0)
                    return c
        return c  # all points still collinear

    def _create_first_triangle(self, a: int, b: int, c: int) -> None:
        t = self._new_triangle(a, b, c)
        # Ghosts: [c,b,G], [a,c,G], [b,a,G] — outside left of each edge.
        g0 = self._new_triangle(c, b, GHOST)  # across edge (b, c)
        g1 = self._new_triangle(a, c, GHOST)  # across edge (c, a)
        g2 = self._new_triangle(b, a, GHOST)  # across edge (a, b)
        # Real <-> ghost links.
        self._set_mutual(t, 0, g0, self._edge_index(g0, c, b))
        self._set_mutual(t, 1, g1, self._edge_index(g1, a, c))
        self._set_mutual(t, 2, g2, self._edge_index(g2, b, a))
        # Ghost <-> ghost links (around GHOST).
        for ga, gb in ((g0, g2), (g2, g1), (g1, g0)):
            ua, va = self.ghost_edge(ga)
            ub, vb = self.ghost_edge(gb)
            # ga edge (va, G) matches gb edge (G, ub) when va == ub
            ka = self._edge_index(ga, va, GHOST)
            kb = self._edge_index(gb, GHOST, ub)
            if va != ub:
                raise TriangulationError("ghost ring construction bug")
            self._set_mutual(ga, ka, gb, kb)
        self._last_tri = t
        self.last_created = [t, g0, g1, g2]
        self.last_removed = []

    # ------------------------------------------------------------------
    # Cavity carving
    # ------------------------------------------------------------------
    def _carve_cavity_ref(self, p: Tuple[float, float], t0: int
                          ) -> Tuple[Set[int], bool]:
        """Circumdisk BFS with scalar robust predicates (reference)."""
        cavity: Set[int] = {t0}
        stack = [t0]
        blocked = False
        constraints = self.constraints
        while stack:
            t = stack.pop()
            for k in range(3):
                nb = self.tri_n[t][k]
                if nb < 0 or nb in cavity:
                    continue
                u, v = self._edge(t, k)
                if u != GHOST and v != GHOST:
                    key = (u, v) if u < v else (v, u)
                    if key in constraints:
                        blocked = True
                        continue
                if self._in_disk(nb, p):
                    cavity.add(nb)
                    stack.append(nb)
        return cavity, blocked

    def _carve_cavity_fast(self, p: Tuple[float, float], t0: int
                           ) -> Tuple[Set[int], bool]:
        """Level-order circumdisk search with inlined filtered predicates.

        Small frontiers use the scalar filter inline; frontiers of
        :data:`_BATCH_MIN` or more candidates go through one vectorised
        :func:`incircle_batch` call (refinement cavities on graded
        meshes).  Membership decisions are identical to the reference:
        the cavity is the constraint-respecting connected component of
        triangles whose open circumdisk contains ``p``, independent of
        traversal order.
        """
        tri_v = self.tri_v
        tri_n = self.tri_n
        pts = self.pts
        constraints = self.constraints
        px, py = p
        cavity: Set[int] = {t0}
        frontier = [t0]
        blocked = False
        n_icc_fast = 0
        while frontier:
            cand: List[int] = []
            for t in frontier:
                tv = tri_v[t]
                tn = tri_n[t]
                for k in range(3):
                    nb = tn[k]
                    if nb < 0 or nb in cavity:
                        continue
                    if constraints:
                        u = tv[k - 2]
                        v = tv[k - 1]
                        if u >= 0 and v >= 0:
                            key = (u, v) if u < v else (v, u)
                            if key in constraints:
                                blocked = True
                                continue
                    cand.append(nb)
            if not cand:
                break
            if len(cand) >= _BATCH_MIN:
                frontier = self._expand_level_batch(cand, cavity, px, py)
                continue
            frontier = []
            for nb in cand:
                if nb in cavity:
                    continue  # added via a sibling this level
                tv = tri_v[nb]
                a = tv[0]
                b = tv[1]
                c = tv[2]
                if a < 0 or b < 0 or c < 0:
                    if self._in_disk_fast(nb, px, py):
                        cavity.add(nb)
                        frontier.append(nb)
                    continue
                # Inlined incircle filter (matches the scalar predicate's
                # first stage); only inconclusive signs leave this loop.
                ax, ay = pts[a]
                bx, by = pts[b]
                cx, cy = pts[c]
                adx = ax - px
                ady = ay - py
                bdx = bx - px
                bdy = by - py
                cdx = cx - px
                cdy = cy - py
                bdxcdy = bdx * cdy
                cdxbdy = cdx * bdy
                cdxady = cdx * ady
                adxcdy = adx * cdy
                adxbdy = adx * bdy
                bdxady = bdx * ady
                alift = adx * adx + ady * ady
                blift = bdx * bdx + bdy * bdy
                clift = cdx * cdx + cdy * cdy
                det = (alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy)
                       + clift * (adxbdy - bdxady))
                permanent = ((abs(bdxcdy) + abs(cdxbdy)) * alift
                             + (abs(cdxady) + abs(adxcdy)) * blift
                             + (abs(adxbdy) + abs(bdxady)) * clift)
                if permanent > _ICC_GUARD:
                    errbound = _ICC_ERR * permanent
                    if det > errbound:
                        n_icc_fast += 1
                        cavity.add(nb)
                        frontier.append(nb)
                        continue
                    if -det > errbound:
                        n_icc_fast += 1
                        continue
                self.stat_incircle_exact += 1
                if incircle(pts[a], pts[b], pts[c], (px, py)) > 0:
                    cavity.add(nb)
                    frontier.append(nb)
        self.stat_incircle_fast += n_icc_fast
        return cavity, blocked

    def _expand_level_batch(self, cand: List[int], cavity: Set[int],
                            px: float, py: float) -> List[int]:
        """Batched in-disk test of one BFS level; returns accepted tris.

        Vectorised over the SoA buffers: one fancy-indexed gather pulls
        the candidate vertex rows and their coordinates straight out of
        ``MeshArrays`` (no per-triangle Python coordinate staging), then
        a single :func:`incircle_batch` call decides the level.  Ghost
        candidates keep the scalar half-plane test.
        """
        arr = self._arr
        idx = np.asarray(cand, dtype=np.int64)
        rows = arr.tri_v[idx]                       # (m, 3) gather
        ghost = rows.min(axis=1) < 0
        nxt: List[int] = []
        if ghost.any():
            for nb in idx[ghost].tolist():
                if nb not in cavity and self._in_disk_fast(nb, px, py):
                    cavity.add(nb)
                    nxt.append(nb)
        real = ~ghost
        m = int(real.sum())
        if m:
            reals = idx[real].tolist()
            abc = arr.pts[rows[real]]               # (m, 3, 2) gather
            before = batch_exact_counts()["incircle"]
            signs = incircle_batch(abc[:, 0], abc[:, 1], abc[:, 2],
                                   np.array((px, py)))
            n_exact = batch_exact_counts()["incircle"] - before
            self.stat_batch_calls += 1
            self.stat_batch_entries += m
            self.stat_incircle_exact += n_exact
            self.stat_incircle_fast += m - n_exact
            for nb, s in zip(reals, signs.tolist()):
                if s > 0 and nb not in cavity:
                    cavity.add(nb)
                    nxt.append(nb)
        return nxt

    def _insert_into_cavity(self, vid: int, t0: int) -> None:
        """Bowyer–Watson: carve the cavity of circumdisks containing the new
        point and re-fan from it.  Never crosses constrained edges."""
        p = self.pts[vid]
        if not self._in_disk_any(t0, p):
            # locate returned a triangle whose closed region holds p but p
            # is on its boundary; at least one adjacent triangle's open
            # disk must contain p. Search neighbours.
            found = None
            for k in range(3):
                nb = self.tri_n[t0][k]
                if nb >= 0 and self._in_disk_any(nb, p):
                    found = nb
                    break
            if found is None:
                raise TriangulationError(
                    f"insertion point {p} in no circumdisk (duplicate?)"
                )
            t0 = found

        if self._fast:
            cavity, blocked = self._carve_cavity_fast(p, t0)
        else:
            cavity, blocked = self._carve_cavity_ref(p, t0)
        self._retriangulate(vid, cavity, t0, blocked)

    def _retriangulate(self, vid: int, cavity: Set[int], t0: int,
                       blocked: bool) -> None:
        """Replace ``cavity`` by the star fan of ``vid`` (shared tail of
        the fast and reference insertion paths)."""
        arr = self._arr
        n_cavity = len(cavity)
        # Reserve-before-alias: a connected cavity of n triangles has at
        # most n + 2 boundary edges (Euler), so at most n + 2 fan slots
        # are appended; reserving them up front keeps the flat views
        # below valid for the whole frame.
        arr.reserve_triangles(n_cavity + 2)
        tvm = arr.tv
        tnm = arr.tn
        vtm = arr.vt
        self.stat_cavity_tris += n_cavity
        self.stat_cavity_hist[n_cavity if n_cavity < 31 else 31] += 1

        # Constrained-Delaunay visibility pruning: with spiky constrained
        # boundaries the circumdisk BFS can wrap AROUND a constrained edge
        # (reaching both of its sides without ever crossing it).  Keeping
        # such triangles would delete the constraint during
        # retriangulation.  Detect the configuration and prune cavity
        # triangles whose centroid is not visible from p.
        if self.constraints:
            p = self.pts[vid]
            wrapped_edge = False
            for t in cavity:
                i3 = 3 * t
                for k in range(3):
                    nb = tnm[i3 + k]
                    if nb not in cavity:
                        continue
                    u = tvm[i3 + _NXT[k]]
                    v = tvm[i3 + _PRV[k]]
                    if u == GHOST or v == GHOST:
                        continue
                    key = (u, v) if u < v else (v, u)
                    if key in self.constraints:
                        wrapped_edge = True
                        break
                if wrapped_edge:
                    break
            if wrapped_edge:
                cavity = self._prune_cavity_visibility(cavity, t0, p)
                blocked = True
                n_cavity = len(cavity)

        # Walk the cavity boundary in ring order, creating the fan as we
        # go: fan triangle [u, v, vid] has edge 0 = (v, vid) bordering
        # the NEXT fan triangle and edge 1 = (vid, u) bordering the
        # PREVIOUS one, so creating in ring order links the fan without
        # any vertex maps or second pass.  New slots come from the free
        # list (cavity slots are freed only afterwards, so ids never
        # collide with live ones).
        free = arr.free
        n_tris_local = arr.n_tris
        new_tris: List[int] = []
        # Any cavity edge whose neighbour survives starts the ring.
        t = k = -1
        for t in cavity:
            i3 = 3 * t
            if tnm[i3] not in cavity:
                k = 0
                break
            if tnm[i3 + 1] not in cavity:
                k = 1
                break
            if tnm[i3 + 2] not in cavity:
                k = 2
                break
        if k < 0:
            raise TriangulationError("cavity has no boundary")
        start_t = t
        start_k = k
        first_nt = -1
        prev_nt = -1
        while True:
            i3 = 3 * t
            u = tvm[i3 + _NXT[k]]
            v = tvm[i3 + _PRV[k]]
            nb = tnm[i3 + k]
            if free:
                nt = free.pop()
            else:
                nt = n_tris_local
                n_tris_local += 1
            j3 = 3 * nt
            tvm[j3] = u
            tvm[j3 + 1] = v
            tvm[j3 + 2] = vid
            tnm[j3] = -1
            tnm[j3 + 1] = prev_nt
            tnm[j3 + 2] = nb
            if nb >= 0:
                # Directed edge (v, u) of nb: v appears exactly once there.
                m3 = 3 * nb
                tnm[m3 + (0 if tvm[m3 + 1] == v
                          else (1 if tvm[m3 + 2] == v else 2))] = nt
            if u >= 0:
                vtm[u] = nt
            if prev_nt >= 0:
                tnm[3 * prev_nt] = nt
            else:
                first_nt = nt
            prev_nt = nt
            new_tris.append(nt)
            # Advance to the boundary edge starting at v: pivot around v
            # through cavity triangles until an edge leaves the cavity.
            j = k + 1
            if j > 2:
                j = 0
            while True:
                nb2 = tnm[3 * t + j]
                if nb2 not in cavity:
                    break
                t = nb2
                m3 = 3 * t
                # Edge (v, .) of t, i.e. the index j with tv[j - 2] == v.
                j = (0 if tvm[m3] == v else (1 if tvm[m3 + 1] == v else 2)) - 1
                if j < 0:
                    j = 2
            k = j
            if t == start_t and k == start_k:
                break
        arr.n_tris = n_tris_local
        tnm[3 * prev_nt] = first_nt
        tnm[3 * first_nt + 1] = prev_nt

        self.last_removed = list(cavity)
        for t in cavity:
            tvm[3 * t] = DEAD
        free.extend(cavity)
        self.n_live_triangles += len(new_tris) - n_cavity
        self._last_tri = first_nt
        self.last_created = new_tris
        # Pick a real incident triangle as the vertex hint when available.
        vtm[vid] = new_tris[0]
        for t in new_tris:
            i3 = 3 * t
            if tvm[i3] >= 0 and tvm[i3 + 1] >= 0 and tvm[i3 + 2] >= 0:
                vtm[vid] = t
                break
        if blocked:
            # A constraint clipped the cavity: the star fan is not
            # automatically locally Delaunay, so legalise around the new
            # vertex (Lawson flips, never crossing constraints).  Flips
            # reuse the two triangle slots, so last_created stays valid.
            self._legalize_vertex(vid)

    def _prune_cavity_visibility(self, cavity: Set[int], t0: int,
                                 p: Tuple[float, float]) -> Set[int]:
        """Drop cavity triangles whose centroid p cannot see.

        Visibility is tested against the constrained edges incident to
        cavity triangles (a blocking constraint must appear there); the
        surviving set is re-restricted to the connected component of
        ``t0`` so the retriangulated fan stays star-shaped about ``p``.
        """
        from ..geometry.primitives import segments_intersect

        constr: Set[Tuple[int, int]] = set()
        for t in cavity:
            tv = self.tri_v[t]
            for k in range(3):
                u, v = tv[k - 2], tv[k - 1]
                if u == GHOST or v == GHOST:
                    continue
                key = (u, v) if u < v else (v, u)
                if key in self.constraints:
                    constr.add(key)
        if not constr:
            return cavity

        def visible(t: int) -> bool:
            tv = self.tri_v[t]
            if GHOST in tv:
                reals = [self.pts[w] for w in tv if w != GHOST]
                cx = sum(q[0] for q in reals) / len(reals)
                cy = sum(q[1] for q in reals) / len(reals)
            else:
                cx = sum(self.pts[w][0] for w in tv) / 3.0
                cy = sum(self.pts[w][1] for w in tv) / 3.0
            for (u, v) in constr:
                if segments_intersect(p, (cx, cy), self.pts[u],
                                      self.pts[v], proper_only=True):
                    return False
            return True

        kept = {t for t in cavity if t == t0 or visible(t)}
        # Connected component of t0 within the kept set, still never
        # crossing constrained edges.
        comp = {t0}
        stack = [t0]
        while stack:
            t = stack.pop()
            for k in range(3):
                nb = self.tri_n[t][k]
                if nb not in kept or nb in comp:
                    continue
                u, v = self._edge(t, k)
                if u != GHOST and v != GHOST:
                    key = (u, v) if u < v else (v, u)
                    if key in self.constraints:
                        continue
                comp.add(nb)
                stack.append(nb)
        return comp

    def _legalize_vertex(self, vid: int, *, max_ops: int = 100_000) -> None:
        """Lawson legalisation of the edges opposite ``vid`` in its star.

        Flips every non-constrained, non-locally-Delaunay edge opposite
        ``vid``; each flip exposes two new opposite edges which are
        re-queued (the classic incremental-Delaunay recursion).
        """
        from collections import deque

        queue: deque = deque()
        for t in self.triangles_around_vertex(vid):
            tv = self.tri_v[t]
            if tv is None or GHOST in tv:
                continue
            i = tv.index(vid)
            queue.append((tv[i - 2], tv[i - 1]))
        ops = 0
        while queue:
            ops += 1
            if ops > max_ops:
                raise TriangulationError("vertex legalisation diverged")
            u, v = queue.popleft()
            if u == GHOST or v == GHOST:
                continue
            key = (u, v) if u < v else (v, u)
            if key in self.constraints:
                continue
            # Find the triangle (vid, u, v) if it still exists.
            t1 = None
            for t in self.triangles_around_vertex(vid):
                tv = self.tri_v[t]
                if tv is not None and u in tv and v in tv and vid in tv:
                    t1 = t
                    break
            if t1 is None:
                continue
            k1 = self.tri_v[t1].index(vid)
            t2 = self.tri_n[t1][k1]
            if t2 < 0 or self.is_ghost(t2):
                continue
            uu, vv = self._edge(t1, k1)
            k2 = self._edge_index(t2, vv, uu)
            w = self.tri_v[t2][k2]
            if w == GHOST:
                continue
            tv1 = self.tri_v[t1]
            if incircle(self.pts[tv1[0]], self.pts[tv1[1]],
                        self.pts[tv1[2]], self.pts[w]) > 0:
                if self.edge_is_flippable(t1, k1):
                    self.flip(t1, k1)
                    queue.append((uu, w))
                    queue.append((w, vv))

    # ------------------------------------------------------------------
    # Edge flipping (used by constraint recovery and legalisation)
    # ------------------------------------------------------------------
    def flip(self, t1: int, k1: int) -> Tuple[int, int]:
        """Flip the edge opposite vertex ``k1`` of ``t1``.

        Returns the two triangle ids after the flip (same slots reused).
        The quadrilateral must be strictly convex — caller checks.
        """
        arr = self._arr
        tvm = arr.tv
        tnm = arr.tn
        i1 = 3 * t1
        t2 = tnm[i1 + k1]
        if t2 < 0:
            raise TriangulationError("cannot flip hull edge")
        u = tvm[i1 + _NXT[k1]]
        v = tvm[i1 + _PRV[k1]]
        k2 = self._edge_index(t2, v, u)
        i2 = 3 * t2
        a = tvm[i1 + k1]   # apex of t1
        b = tvm[i2 + k2]   # apex of t2
        if GHOST in (a, b, u, v):
            raise TriangulationError("cannot flip an edge of a ghost triangle")
        key = (u, v) if u < v else (v, u)
        if key in self.constraints:
            raise TriangulationError("cannot flip a constrained edge")

        # Outer neighbours before rewiring.
        # Edges of t1 = [.., a at k1], directed edges: k1:(u,v), k1+1:(v,a), k1+2:(a,u)
        n_va = tnm[i1 + _NXT[k1]]    # across (v, a)
        n_au = tnm[i1 + _PRV[k1]]    # across (a, u)
        n_ub = tnm[i2 + _NXT[k2]]    # across (u, b)
        n_bv = tnm[i2 + _PRV[k2]]    # across (b, v)

        # New triangles: t1 <- [a, u, b], t2 <- [b, v, a]; shared edge (a, b)?
        # t1=[a,u,b]: edges: 0:(u,b) -> n_ub ; 1:(b,a) -> t2 ; 2:(a,u) -> n_au
        # t2=[b,v,a]: edges: 0:(v,a) -> n_va ; 1:(a,b) -> t1 ; 2:(b,v) -> n_bv
        tvm[i1] = a
        tvm[i1 + 1] = u
        tvm[i1 + 2] = b
        tvm[i2] = b
        tvm[i2 + 1] = v
        tvm[i2 + 2] = a
        tnm[i1] = n_ub
        tnm[i1 + 1] = t2
        tnm[i1 + 2] = n_au
        tnm[i2] = n_va
        tnm[i2 + 1] = t1
        tnm[i2 + 2] = n_bv
        # Fix back-pointers of outer neighbours.
        for t, nb, eu, ev in (
            (t1, n_ub, u, b),
            (t1, n_au, a, u),
            (t2, n_va, v, a),
            (t2, n_bv, b, v),
        ):
            if nb >= 0:
                tnm[3 * nb + self._edge_index(nb, ev, eu)] = t
        # All four quad vertices are real (GHOST raised above); net effect
        # of the old per-triangle hint loops: u -> t1, the rest -> t2.
        vtm = arr.vt
        vtm[u] = t1
        vtm[b] = t2
        vtm[v] = t2
        vtm[a] = t2
        self.stat_flips += 1
        return t1, t2

    def edge_is_flippable(self, t1: int, k1: int) -> bool:
        """The quad around edge k1 of t1 is strictly convex and all-real."""
        arr = self._arr
        tvm = arr.tv
        i1 = 3 * t1
        t2 = arr.tn[i1 + k1]
        if t2 < 0 or self.is_ghost(t1) or self.is_ghost(t2):
            return False
        u = tvm[i1 + _NXT[k1]]
        v = tvm[i1 + _PRV[k1]]
        k2 = self._edge_index(t2, v, u)
        a = tvm[i1 + k1]
        b = tvm[3 * t2 + k2]
        pxm = arr.px
        ja, jb, ju, jv = 2 * a, 2 * b, 2 * u, 2 * v
        pa = (pxm[ja], pxm[ja + 1])
        pb = (pxm[jb], pxm[jb + 1])
        pu = (pxm[ju], pxm[ju + 1])
        pv = (pxm[jv], pxm[jv + 1])
        return (
            orient2d(pa, pu, pb) > 0
            and orient2d(pb, pv, pa) > 0
        )

    # ------------------------------------------------------------------
    # Constraints
    # ------------------------------------------------------------------
    def mark_constraint(self, u: int, v: int) -> None:
        self.constraints.add((u, v) if u < v else (v, u))

    def unmark_constraint(self, u: int, v: int) -> None:
        self.constraints.discard((u, v) if u < v else (v, u))

    def has_edge(self, u: int, v: int) -> bool:
        """True if (u, v) is currently an edge of the triangulation."""
        t = self.vertex_tri[u]
        if t < 0:
            return False
        for tt in self.triangles_around_vertex(u):
            if v in self.tri_v[tt]:
                return True
        return False

    def triangles_around_vertex(self, v: int) -> List[int]:
        """All live triangles (including ghosts) incident to vertex ``v``."""
        t0 = self.vertex_tri[v]
        if t0 < 0 or self.tri_v[t0] is None or v not in self.tri_v[t0]:
            # Hint is stale; rebuild by scanning (rare).
            t0 = -1
            for t in self.live_triangles():
                if v in self.tri_v[t]:
                    t0 = t
                    break
            if t0 < 0:
                return []
            self.vertex_tri[v] = t0
        out = [t0]
        # Rotate around v using adjacency: in triangle t with v at index i,
        # the next triangle CCW is across edge (i+1)%3 (the edge following... )
        # Walk both directions to cope with hull interruptions (ghosts close
        # the ring so a full loop always exists).
        seen = {t0}
        cur = t0
        while True:
            i = self.tri_v[cur].index(v)
            nxt = self.tri_n[cur][i - 2]
            if nxt < 0 or nxt in seen:
                break
            seen.add(nxt)
            out.append(nxt)
            cur = nxt
        cur = t0
        while True:
            i = self.tri_v[cur].index(v)
            nxt = self.tri_n[cur][i - 1]
            if nxt < 0 or nxt in seen:
                break
            seen.add(nxt)
            out.append(nxt)
            cur = nxt
        return out

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_mesh(self, *, keep_mask: Optional[Sequence[bool]] = None) -> TriMesh:
        """Export real triangles as a :class:`TriMesh`.

        ``keep_mask`` (indexed by triangle id) optionally filters triangles
        (used by exterior/hole carving).  Vertices are compacted; the
        constraint set is exported as ``segments`` (only those whose both
        endpoints survive).

        The compaction is fully vectorised (:meth:`MeshArrays.compact`,
        no per-triangle Python loops); when every kernel vertex survives
        the point block is a read-only zero-copy view of kernel storage.
        """
        t_start = monotonic_ns()
        arr = self._arr
        mask = None
        if keep_mask is not None:
            mask = np.zeros(arr.n_tris, dtype=bool)
            km = np.asarray(keep_mask, dtype=bool)
            n = min(len(km), arr.n_tris)
            mask[:n] = km[:n]
        pts, tarr, remap = arr.compact(mask)
        if remap is None:
            # Dense compaction: kernel vertex ids are the mesh ids.
            segs = list(self.constraints)
        else:
            segs = [(remap[u], remap[v]) for u, v in self.constraints
                    if remap[u] >= 0 and remap[v] >= 0]
        sarr = (np.asarray(sorted(segs), dtype=np.int32)
                if segs else np.empty((0, 2), dtype=np.int32))
        mesh = TriMesh(pts, tarr, sarr)
        self.stat_finalize_ns += monotonic_ns() - t_start
        return mesh

    # ------------------------------------------------------------------
    # Structural self-check (tests, expensive)
    # ------------------------------------------------------------------
    def check_integrity(self) -> None:
        """Assert adjacency symmetry and positive orientation everywhere."""
        for t in self.live_triangles():
            tv = self.tri_v[t]
            if GHOST not in tv:
                o = orient2d(self.pts[tv[0]], self.pts[tv[1]], self.pts[tv[2]])
                if o <= 0:
                    raise TriangulationError(f"triangle {t}={tv} not CCW ({o})")
            for k in range(3):
                nb = self.tri_n[t][k]
                if nb < 0:
                    if self.n_live_triangles > 1:
                        raise TriangulationError(f"triangle {t} edge {k} unlinked")
                    continue
                if self.tri_v[nb] is None:
                    raise TriangulationError(f"{t} links dead triangle {nb}")
                u, v = self._edge(t, k)
                kk = self._edge_index(nb, v, u)
                if self.tri_n[nb][kk] != t:
                    raise TriangulationError(f"asymmetric adjacency {t}<->{nb}")


def triangulate(points: np.ndarray, *, assume_sorted: bool = False,
                seed: int = 0xC0FFEE,
                fast_predicates: bool = True) -> Triangulation:
    """Delaunay-triangulate a point set incrementally.

    ``assume_sorted`` mirrors the paper's Triangle optimisation (Section
    III): when the caller guarantees x-sorted input the kernel inserts in
    the given order, which keeps walks short (each point lands next to its
    predecessor).  Otherwise points are inserted in BRIO order derived
    from ``seed`` for expected-case robustness.  Identical inputs and
    seed produce byte-identical triangulations.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must be (n, 2)")
    tri, _ = _triangulate_with_map(points, assume_sorted=assume_sorted,
                                   seed=seed, fast_predicates=fast_predicates)
    return tri


def _brio_order(points: np.ndarray, seed: int = 0xC0FFEE) -> np.ndarray:
    """Biased randomised insertion order: random rounds of doubling size,
    each round x-sorted — keeps the walk from the previous insert short
    (expected O(1)) while keeping cavity sizes bounded in expectation.
    The shuffle is fully determined by ``seed``."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(len(points))
    chunks = []
    start, size = 0, 8
    while start < len(points):
        block = perm[start:start + size]
        # Snake order within the round: x-buckets, alternating y sweep —
        # consecutive inserts are spatial neighbours, so the walk from the
        # previous insertion is O(1) expected.
        m = len(block)
        nb = max(1, int(math.sqrt(m)))
        xs = points[block, 0]
        ranks = np.argsort(np.argsort(xs, kind="stable"), kind="stable")
        bucket = np.minimum(ranks * nb // max(m, 1), nb - 1)
        ys = points[block, 1]
        y_key = np.where(bucket % 2 == 0, ys, -ys)
        order = np.lexsort((y_key, bucket))
        chunks.append(block[order])
        start += size
        size *= 2
    return np.concatenate(chunks) if chunks else np.arange(0)


def _triangulate_with_map(points: np.ndarray, *, assume_sorted: bool,
                          seed: int = 0xC0FFEE,
                          fast_predicates: bool = True,
                          ) -> Tuple[Triangulation, Dict[int, int]]:
    if len(points) and not np.isfinite(points).all():
        raise ValueError("non-finite coordinates")
    tri = Triangulation(seed=seed, fast_predicates=fast_predicates)
    # Bulk pre-reserve: one allocation instead of log2(n) doublings.
    tri._arr.reserve_points(len(points))
    if assume_sorted:
        order = range(len(points))
    else:
        order = _brio_order(points, seed=seed).tolist()
    coords = points.tolist()  # plain floats: much cheaper to insert
    inserted: Dict[int, int] = {}
    insert = tri.insert_point
    fast_insert = tri._insert_fast if fast_predicates else None
    # The bulk loop allocates ~a dozen small objects per insertion and
    # keeps them all reachable; generational GC scans buy nothing here, so
    # pause collection for the loop.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        it = iter(order)
        for i in it:
            i = int(i)
            x, y = coords[i]
            inserted[i] = insert(x, y)
            if fast_insert is not None and tri.n_live_triangles:
                break
        for i in it:
            i = int(i)
            x, y = coords[i]
            # Bulk path: coordinates validated above, so skip the
            # per-point wrapper (duplicates map to the existing vertex).
            r = fast_insert(x, y, -1)
            inserted[i] = r if r >= 0 else -2 - r
    finally:
        if gc_was_enabled:
            gc.enable()
    return tri, inserted


def delaunay_mesh(points: np.ndarray, *, assume_sorted: bool = False,
                  seed: int = 0xC0FFEE) -> TriMesh:
    """Delaunay triangulation as a :class:`TriMesh` indexed like ``points``.

    Duplicate input points map to the first occurrence, so triangle indices
    always refer to the caller's array.
    """
    points = np.asarray(points, dtype=np.float64)
    tri, inserted = _triangulate_with_map(points, assume_sorted=assume_sorted,
                                          seed=seed)
    # kernel vertex id -> smallest input index that produced it
    inv: Dict[int, int] = {}
    for i, k in inserted.items():
        if k not in inv or i < inv[k]:
            inv[k] = i
    tris = [
        (inv[a], inv[b], inv[c])
        for t in tri.live_triangles()
        if not tri.is_ghost(t)
        for (a, b, c) in (tri.tri_v[t],)
    ]
    tarr = (np.asarray(tris, dtype=np.int32)
            if tris else np.empty((0, 3), dtype=np.int32))
    return TriMesh(points, tarr)
